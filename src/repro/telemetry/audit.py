"""The determinism auditor: proving the paper's invariant at run time.

The cache-based strategy's whole claim (Section III) is that once the
loading loop has warmed the private caches, the *execution loop* — the
window where TESTWIN bit 0 is 1 and module activations count — runs
without a single transaction on the shared bus, so no other core can
perturb its timing.  The repro could previously only assert this
indirectly (stable signatures, unchanged fill counters sampled by
tests); the :class:`DeterminismAuditor` watches the event stream and
checks the invariant directly:

    **zero bus transactions attributed to a core while that core's
    TESTWIN bit 0 is set.**

A violation records the offending event itself (cycle, transaction
kind, address, burst), so a failed audit tells you *what* touched the
bus and *when* — the actionable part a mismatched signature can't give.
Attribution uses the submit-time phase: a transaction a core initiates
inside its execution window is a violation even if arbitration grants
it later.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.events import EventKind, TelemetryEvent
from repro.telemetry.phases import PhaseTracker

#: Bus events that mean "this core initiated shared-bus traffic".
_INITIATING_KINDS = (EventKind.BUS_SUBMIT, EventKind.BUS_RETRY)


@dataclass(frozen=True)
class AuditViolation:
    """One bus event a core initiated inside its execution window."""

    core: int
    cycle: int
    window: int
    event: TelemetryEvent

    def describe(self) -> str:
        return (
            f"core {self.core} window #{self.window}: {self.event.describe()}"
        )

    def to_dict(self) -> dict:
        return {
            "core": self.core,
            "cycle": self.cycle,
            "window": self.window,
            "event": self.event.to_dict(),
        }


class DeterminismAuditor:
    """Live subscriber that checks the execution-window bus-silence rule.

    ``windows_opened`` counts, per core, how many times TESTWIN bit 0
    went 0 -> 1: an audit that "passes" without ever seeing a window
    proves nothing, so :meth:`summary` reports both.
    """

    #: Cap on violations kept with full event payloads (the counters
    #: keep counting past it; a broken run can emit millions).
    MAX_RECORDED_VIOLATIONS = 256

    def __init__(self):
        self._tracker = PhaseTracker()
        self.violations: list[AuditViolation] = []
        self.violation_count = 0
        self.windows_opened: dict[int, int] = {}
        self.window_bus_events: dict[int, int] = {}

    # -- event feed -----------------------------------------------------

    def on_event(self, event: TelemetryEvent) -> None:
        kind = event.kind
        if kind in _INITIATING_KINDS:
            core = event.core
            if self._tracker.in_execution_window(core):
                self.violation_count += 1
                self.window_bus_events[core] = (
                    self.window_bus_events.get(core, 0) + 1
                )
                if len(self.violations) < self.MAX_RECORDED_VIOLATIONS:
                    self.violations.append(
                        AuditViolation(
                            core=core,
                            cycle=event.cycle,
                            window=self.windows_opened.get(core, 0),
                            event=event,
                        )
                    )
            return
        if kind is EventKind.CORE_TESTWIN:
            if event.fields.get("value", 0) & 1 and not (
                event.fields.get("prev", 0) & 1
            ):
                core = event.core
                self.windows_opened[core] = self.windows_opened.get(core, 0) + 1
        elif kind is EventKind.CORE_START and event.fields.get("testwin", 0) & 1:
            core = event.core
            self.windows_opened[core] = self.windows_opened.get(core, 0) + 1
        self._tracker.on_event(event)

    # -- verdict --------------------------------------------------------

    @property
    def passed(self) -> bool:
        """True when no core initiated bus traffic inside a window."""
        return self.violation_count == 0

    @property
    def audited(self) -> bool:
        """True when at least one execution window was actually opened."""
        return bool(self.windows_opened)

    def summary(self) -> dict:
        """JSON-ready audit verdict, attached to recovery/campaign reports."""
        return {
            "passed": self.passed,
            "audited": self.audited,
            "windows_opened": {
                str(core): count
                for core, count in sorted(self.windows_opened.items())
            },
            "violation_count": self.violation_count,
            "violations": [v.to_dict() for v in self.violations],
        }

    def render(self, max_lines: int = 12) -> str:
        """Human-readable verdict with the offending events."""
        if not self.audited:
            header = "DeterminismAuditor: NO WINDOWS (no core opened TESTWIN)"
        elif self.passed:
            windows = ", ".join(
                f"core {core}: {count}"
                for core, count in sorted(self.windows_opened.items())
            )
            header = (
                "DeterminismAuditor: PASS - zero execution-window bus "
                f"transactions ({windows} window(s) audited)"
            )
        else:
            header = (
                f"DeterminismAuditor: FAIL - {self.violation_count} bus "
                "transaction(s) initiated inside an execution window"
            )
        lines = [header]
        for violation in self.violations[:max_lines]:
            lines.append("  " + violation.describe())
        hidden = self.violation_count - min(
            len(self.violations), max_lines
        )
        if hidden > 0:
            lines.append(f"  ... and {hidden} more")
        return "\n".join(lines)
