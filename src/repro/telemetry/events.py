"""Cycle-stamped telemetry events and the sinks that collect them.

The whole observability layer hangs off one contract: every instrumented
component (bus, caches, fetch/memory units, cores, supervisor, fault
injectors) holds a ``telemetry`` attribute that is a
:class:`NullSink` by default.  The null sink's ``enabled`` flag is
False, and every emission site is guarded by it::

    telemetry = self.telemetry
    if telemetry.enabled:
        telemetry.emit(EventKind.CACHE_MISS, core=..., address=...)

so a run without telemetry pays a single attribute test per potential
event and allocates nothing — simulated cycle counts are untouched by
construction, and wall-clock overhead stays in the noise.

With telemetry attached (see :mod:`repro.telemetry.session`) the
:class:`RecordingSink` stamps each event with the SoC clock, fans it out
to live subscribers (the phase-aware metrics collector, the determinism
auditor) and optionally keeps the raw stream for export as a Chrome
trace (:mod:`repro.telemetry.chrome_trace`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class EventKind(str, enum.Enum):
    """The typed event taxonomy of the telemetry layer.

    Values are stable strings: they appear verbatim in exported traces
    and JSON metrics reports, so renaming one is a format change.
    """

    # Shared-bus lifecycle of one transaction.
    BUS_SUBMIT = "bus.submit"
    BUS_GRANT = "bus.grant"
    BUS_COMPLETE = "bus.complete"
    BUS_ERROR = "bus.error"
    BUS_RETRY = "bus.retry"
    # Core-private cache activity.
    CACHE_HIT = "cache.hit"
    CACHE_MISS = "cache.miss"
    CACHE_FILL = "cache.fill"
    CACHE_WRITEBACK = "cache.writeback"
    CACHE_INVALIDATE = "cache.invalidate"
    CACHE_WRITE_MISS_BYPASS = "cache.write_miss_bypass"
    CACHE_SOFT_ERROR_FLIP = "cache.soft_error_flip"
    # Core execution milestones.
    CORE_START = "core.start"
    CORE_HALT = "core.halt"
    CORE_TESTWIN = "core.testwin"
    # Supervised recovery (repro.soc.supervisor).
    SUPERVISOR_ATTEMPT = "supervisor.attempt"
    SUPERVISOR_RETRY = "supervisor.retry"
    SUPERVISOR_QUARANTINE = "supervisor.quarantine"
    # Seeded disturbances (repro.faults.soft_errors).
    FAULT_INJECTION = "fault.injection"
    # Supervised campaign orchestration (repro.faults.orchestrator).
    # These are host-side events: the stamp is the orchestrator clock
    # (0 unless a caller binds one), not a simulated SoC cycle.
    SHARD_RETRY = "shard.retry"
    SHARD_STRAGGLER = "shard.straggler"
    SHARD_QUARANTINE = "shard.quarantine"
    POOL_REBUILD = "pool.rebuild"


@dataclass(frozen=True, slots=True)
class TelemetryEvent:
    """One cycle-stamped event.

    ``core`` is the core the event is *attributed to* (the issuing bus
    master for bus events, the owning core for cache events); None for
    events with no per-core attribution.
    """

    cycle: int
    kind: EventKind
    core: int | None
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        # The payload is nested, not flattened: several emission sites
        # carry a ``kind`` field of their own (the bus transaction kind)
        # which must not shadow the event kind in serialised form.
        return {
            "cycle": self.cycle,
            "kind": self.kind.value,
            "core": self.core,
            "fields": dict(self.fields),
        }

    def describe(self) -> str:
        """Compact one-line rendering for reports and error messages."""
        who = "-" if self.core is None else f"core {self.core}"
        extra = " ".join(
            f"{key}={value:#x}" if key == "address" else f"{key}={value}"
            for key, value in self.fields.items()
        )
        return f"cycle {self.cycle:>8} {who}: {self.kind.value} {extra}".rstrip()


class NullSink:
    """The disabled sink: every instrumented component's default.

    ``emit`` is never called when call sites honour the ``enabled``
    guard; it is still a safe no-op for code that does not bother.
    """

    enabled = False

    def emit(
        self, event_kind: EventKind, core: int | None = None, **fields
    ) -> None:
        """Discard the event."""


#: Shared singleton — one disabled sink serves every component.
NULL_SINK = NullSink()


class RecordingSink:
    """An enabled sink: stamps, fans out and (optionally) records events.

    ``clock`` supplies the cycle stamp (bound to ``lambda: soc.cycle``
    by :func:`repro.telemetry.session.TelemetrySession.attach`).
    ``subscribers`` receive every event through ``on_event`` in emission
    order — this is how the metrics collector and the determinism
    auditor observe a run without a second pass.  ``drop_kinds`` trims
    the *recorded* stream only (e.g. per-hit cache events are counted by
    the metrics subscriber but would bloat an exported trace).
    """

    enabled = True

    def __init__(
        self,
        clock=None,
        subscribers=(),
        keep_events: bool = True,
        drop_kinds=(),
        capacity: int | None = None,
    ):
        self.clock = clock if clock is not None else (lambda: 0)
        self.subscribers = list(subscribers)
        self.keep_events = keep_events
        self.drop_kinds = frozenset(drop_kinds)
        self.capacity = capacity
        self.events: list[TelemetryEvent] = []
        #: Events emitted but not recorded (dropped kinds / over capacity).
        self.dropped = 0

    def subscribe(self, subscriber) -> None:
        """Add a live subscriber (an object with ``on_event(event)``)."""
        self.subscribers.append(subscriber)

    def emit(
        self, event_kind: EventKind, core: int | None = None, **fields
    ) -> None:
        # First parameter deliberately not named ``kind``: several
        # emission sites carry a ``kind=...`` payload field (e.g. the
        # bus transaction kind), which lands in ``fields``.
        event = TelemetryEvent(
            cycle=self.clock(), kind=event_kind, core=core, fields=fields
        )
        for subscriber in self.subscribers:
            subscriber.on_event(event)
        if not self.keep_events or event_kind in self.drop_kinds:
            self.dropped += 1
            return
        if self.capacity is not None and len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(event)
