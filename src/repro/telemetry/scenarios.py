"""Canned, self-contained telemetry scenarios for ``python -m repro trace``.

Each scenario builds a SoC, attaches a :class:`TelemetrySession`, runs a
short story worth tracing and returns the live session plus its verdict:

* ``quickstart`` — the paper's headline: all three cores run their
  cache-wrapped forwarding routine in parallel; the determinism auditor
  proves every execution loop stayed off the shared bus.
* ``contention`` — a post-mortem: core 0 runs the *unwrapped* ablation
  (no loading loop, cold caches inside the test window) next to a
  properly wrapped core 1.  The auditor fails core 0 and the trace shows
  exactly which transactions violated the window.
* ``recovery`` — a seeded soft error corrupts a warm D-cache line right
  at loading-to-execution handover; the supervisor's retry re-warms the
  caches and the trace carries injection + retry + verdict end to end.

This module deliberately lives outside ``repro.telemetry``'s package
``__init__``: it builds programs and SoCs, and the telemetry package
itself must stay importable from inside the memory/CPU models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cache_wrapper import CacheWrapperOptions, cache_wrapped_builder
from repro.core.golden import finalise_with_expected
from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_B, CORE_MODEL_C
from repro.faults.soft_errors import ExecutionEntryCorruption, SoftErrorInjector
from repro.soc.loader import CodeAlignment, CodePosition, placement_address
from repro.soc.soc import Soc
from repro.soc.supervisor import RoutineSpec, TestSupervisor
from repro.stl.conventions import DATA_PTR
from repro.stl.routine import RoutineContext, TestRoutine
from repro.stl.routines.forwarding import make_forwarding_routine
from repro.stl.signature import emit_signature_update
from repro.telemetry.session import TelemetrySession

MODELS = {0: CORE_MODEL_A, 1: CORE_MODEL_B, 2: CORE_MODEL_C}

#: Seed for the recovery scenario's injector (reproducible trace).
RECOVERY_SEED = 2024


@dataclass
class TraceRun:
    """One traced scenario: the machine, its session and the outcome."""

    name: str
    soc: Soc
    session: TelemetrySession
    cycles: int
    #: Scenario-specific story line printed above the reports.
    narrative: str = ""
    #: What the scenario *expects* from the auditor (used by --strict
    #: and the tests: a failed audit is the contention scenario's point).
    expect_audit_pass: bool = True
    #: Structured RecoveryReport (recovery scenario only).
    report: object = None

    @property
    def audit_as_expected(self) -> bool:
        return self.session.auditor.passed == self.expect_audit_pass


def _small_routine() -> TestRoutine:
    """A tiny cache-resident body: eight loads folded into the signature."""

    def emit_body(asm, ctx):
        for i in range(8):
            asm.lw(1, 4 * i, DATA_PTR)
            emit_signature_update(asm, 1)

    return TestRoutine("tiny_ld", "GEN", emit_body)


def _routine_for(model, small: bool) -> TestRoutine:
    if small:
        return _small_routine()
    return make_forwarding_routine(model, with_pcs=False)


def _finalised_builder(core_id: int, routine, options=CacheWrapperOptions()):
    """Wrapped builder with its expected signature baked in."""
    ctx = RoutineContext.for_core(core_id, MODELS[core_id])
    base = placement_address(CodePosition.LOW, CodeAlignment.QWORD, core_id)

    def build(expected):
        return cache_wrapped_builder(routine, ctx, expected, options)(base)

    program, expected = finalise_with_expected(build, core_id)
    return program, ctx


def run_quickstart(small: bool = False) -> TraceRun:
    """All three cores run cache-wrapped routines in parallel."""
    soc = Soc()
    entries = {}
    for core_id, model in MODELS.items():
        program, _ = _finalised_builder(core_id, _routine_for(model, small))
        soc.load(program)
        entries[core_id] = program.base_address
    session = TelemetrySession.attach(soc)
    for core_id, entry in sorted(entries.items()):
        soc.start_core(core_id, entry)
    cycles = soc.run()
    return TraceRun(
        name="quickstart",
        soc=soc,
        session=session,
        cycles=cycles,
        narrative=(
            "three cores, cache-wrapped routines, maximum bus contention "
            "- every execution loop must stay off the shared bus"
        ),
    )


def run_contention(small: bool = False) -> TraceRun:
    """Core 0 skips the loading loop (the ablation); core 1 is wrapped."""
    soc = Soc()
    unwrapped, _ = _finalised_builder(
        0,
        _routine_for(MODELS[0], small),
        CacheWrapperOptions(loading_loop=False),
    )
    wrapped, _ = _finalised_builder(1, _routine_for(MODELS[1], small))
    soc.load(unwrapped)
    soc.load(wrapped)
    session = TelemetrySession.attach(soc)
    soc.start_core(0, unwrapped.base_address)
    soc.start_core(1, wrapped.base_address)
    cycles = soc.run()
    return TraceRun(
        name="contention",
        soc=soc,
        session=session,
        cycles=cycles,
        narrative=(
            "core 0 enters its test window with cold caches (no loading "
            "loop): every resulting fill is a determinism violation the "
            "auditor pins to a cycle and an address"
        ),
        expect_audit_pass=False,
    )


def run_recovery(small: bool = False) -> TraceRun:
    """A between-loop cache flip, repaired by one supervised retry."""
    del small  # the recovery body is already minimal
    soc = Soc()
    # The expected signature is baked into the program's own epilogue
    # check; the supervisor reads the mailbox verdict it produces.
    program, ctx = _finalised_builder(0, _small_routine())
    soc.load(program)
    session = TelemetrySession.attach(soc)
    injector = SoftErrorInjector(seed=RECOVERY_SEED)
    session.attach_injector(injector)
    soc.fault_hooks.append(ExecutionEntryCorruption(0, injector))
    supervisor = TestSupervisor(
        soc, injector=injector, auditor=session.auditor
    )
    report = supervisor.run_session(
        [
            RoutineSpec(
                name="tiny_ld",
                core_id=0,
                entry_point=program.base_address,
                mailbox_address=ctx.mailbox_address,
            )
        ]
    )
    return TraceRun(
        name="recovery",
        soc=soc,
        session=session,
        cycles=soc.cycle,
        narrative=(
            "a seeded bit flip corrupts a warm D-cache line at the "
            "loading-to-execution handover; the supervised retry re-runs "
            "the loading loop and the routine re-converges"
        ),
        report=report,
    )


#: Scenario registry for the CLI: name -> (description, runner).
TRACE_SCENARIOS = {
    "quickstart": (
        "3 cores, cache-wrapped routines in parallel (audit passes)",
        run_quickstart,
    ),
    "contention": (
        "unwrapped core next to a wrapped one (audit fails, on purpose)",
        run_contention,
    ),
    "recovery": (
        "seeded cache corruption + supervised retry (audit passes)",
        run_recovery,
    ),
}


def run_trace_scenario(name: str, small: bool = False) -> TraceRun:
    """Run one named scenario; raises KeyError for unknown names."""
    try:
        _, runner = TRACE_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown trace scenario {name!r}; "
            f"choose from {sorted(TRACE_SCENARIOS)}"
        ) from None
    return runner(small=small)
