"""Attaching telemetry to a live SoC.

One call wires a :class:`~repro.telemetry.events.RecordingSink` through
the whole machine — shared bus, each core, its private caches and its
fetch/memory units — stamps every event with the SoC clock, and stands
up the two standard live consumers (phase-aware metrics, determinism
auditor)::

    soc = Soc()
    session = TelemetrySession.attach(soc)
    ... load / start / run ...
    print(session.metrics.render())
    print(session.auditor.render())
    session.export_chrome_trace("trace.json")

Detaching restores the shared no-op null sink, so a SoC can be observed
for one interval and then run untraced again.

This module deliberately never imports the SoC/bus/cache classes: it
only assigns to the ``telemetry`` attributes the instrumented models
expose, which keeps the dependency direction ``mem/cpu/soc ->
telemetry.events`` acyclic.
"""

from __future__ import annotations

from pathlib import Path

from repro.telemetry.audit import DeterminismAuditor
from repro.telemetry.chrome_trace import export_chrome_trace
from repro.telemetry.events import NULL_SINK, EventKind, RecordingSink
from repro.telemetry.metrics import MetricsCollector

#: Recorded-stream trim applied by default: per-hit cache events are
#: counted by the metrics collector but would dominate a stored trace
#: (one per executed load plus one per fetch group on warm caches).
DEFAULT_DROP_KINDS = (EventKind.CACHE_HIT,)


class TelemetrySession:
    """A sink + its standard subscribers, attached to one SoC."""

    def __init__(self, soc, sink: RecordingSink, metrics, auditor):
        self.soc = soc
        self.sink = sink
        self.metrics = metrics
        self.auditor = auditor
        self._attached = []

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------

    @classmethod
    def attach(
        cls,
        soc,
        keep_events: bool = True,
        drop_kinds=DEFAULT_DROP_KINDS,
        capacity: int | None = None,
        extra_subscribers=(),
    ) -> "TelemetrySession":
        """Instrument ``soc`` and return the live session.

        ``keep_events=False`` keeps only the aggregated views (metrics +
        audit) — the right mode for long campaigns.  ``capacity`` bounds
        the recorded stream; overflow increments ``sink.dropped`` rather
        than growing without limit.
        """
        metrics = MetricsCollector()
        auditor = DeterminismAuditor()
        sink = RecordingSink(
            clock=lambda: soc.cycle,
            subscribers=(metrics, auditor, *extra_subscribers),
            keep_events=keep_events,
            drop_kinds=drop_kinds,
            capacity=capacity,
        )
        session = cls(soc, sink, metrics, auditor)
        session._wire(sink)
        return session

    def _wire(self, sink) -> None:
        soc = self.soc
        self._set(soc, sink)
        self._set(soc.bus, sink)
        for core in soc.cores:
            self._set(core, sink)
            self._set(core.fetch, sink)
            self._set(core.memunit, sink)
            for cache in (core.icache, core.dcache):
                cache.telemetry_core = core.core_id
                self._set(cache, sink)

    def _set(self, component, sink) -> None:
        component.telemetry = sink
        self._attached.append(component)

    def attach_injector(self, injector) -> None:
        """Route a :class:`SoftErrorInjector`'s events into this session."""
        self._set(injector, self.sink)

    def detach(self) -> None:
        """Restore the no-op sink on every instrumented component."""
        for component in self._attached:
            component.telemetry = NULL_SINK
        self._attached = []

    # ------------------------------------------------------------------
    # Results.
    # ------------------------------------------------------------------

    @property
    def events(self):
        return self.sink.events

    def core_names(self) -> dict[int, str]:
        return {
            core.core_id: f"core {core.core_id} ({core.model.name})"
            for core in self.soc.cores
        }

    def export_chrome_trace(self, path: str | Path) -> list[dict]:
        """Write the recorded stream as Chrome trace-event JSON."""
        return export_chrome_trace(path, self.sink.events, self.core_names())

    def audit_summary(self) -> dict:
        return self.auditor.summary()
