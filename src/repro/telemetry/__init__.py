"""Unified telemetry: cycle-stamped events, phase-aware metrics, audit.

Public surface:

* :class:`EventKind` / :class:`TelemetryEvent` — the typed event stream;
* :data:`NULL_SINK` / :class:`RecordingSink` — disabled and enabled sinks;
* :class:`MetricsCollector` / :class:`MetricsView` — per-core, per-STL-phase
  counters with snapshot/delta;
* :class:`DeterminismAuditor` — run-time proof of the execution-window
  bus-silence invariant;
* :func:`export_chrome_trace` / :func:`validate_trace_events` — Perfetto
  trace export;
* :class:`TelemetrySession` — one-call attachment to a live SoC.

``repro.telemetry.scenarios`` (the canned ``python -m repro trace``
scenarios) is intentionally not imported here: it builds programs and
SoCs, and this package must stay importable from inside the memory and
CPU models without cycles.
"""

from repro.telemetry.audit import AuditViolation, DeterminismAuditor
from repro.telemetry.chrome_trace import (
    chrome_trace_events,
    export_chrome_trace,
    validate_trace_events,
)
from repro.telemetry.events import (
    NULL_SINK,
    EventKind,
    NullSink,
    RecordingSink,
    TelemetryEvent,
)
from repro.telemetry.metrics import (
    BUS_METRICS,
    CACHE_METRICS,
    MetricsCollector,
    MetricsView,
)
from repro.telemetry.phases import (
    PHASE_EXECUTION,
    PHASE_IDLE,
    PHASE_LOADING,
    PHASES,
    PhaseTracker,
)
from repro.telemetry.session import TelemetrySession

__all__ = [
    "AuditViolation",
    "DeterminismAuditor",
    "chrome_trace_events",
    "export_chrome_trace",
    "validate_trace_events",
    "NULL_SINK",
    "EventKind",
    "NullSink",
    "RecordingSink",
    "TelemetryEvent",
    "BUS_METRICS",
    "CACHE_METRICS",
    "MetricsCollector",
    "MetricsView",
    "PHASE_EXECUTION",
    "PHASE_IDLE",
    "PHASE_LOADING",
    "PHASES",
    "PhaseTracker",
    "TelemetrySession",
]
