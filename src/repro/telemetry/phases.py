"""STL phase derivation from the telemetry event stream.

The paper's cache-based wrapper (Fig. 2b) encodes the phase of a
routine in the TESTWIN CSR: 0 while the *loading loop* warms the
private caches, 1 while the *execution loop* runs cache-resident.  The
telemetry layer splits every metric by that phase, per core:

* ``idle`` — the core has not started, or has halted;
* ``loading`` — the core is running with TESTWIN bit 0 clear (this also
  covers wrapper prologue/epilogue code and unwrapped routines, which
  never open a test window);
* ``execution`` — the core is running with TESTWIN bit 0 set: the
  window in which the determinism claim says the bus must stay silent.

:class:`PhaseTracker` reconstructs the per-core phase purely from
``core.start`` / ``core.testwin`` / ``core.halt`` events, so any
subscriber (metrics, auditor) can attribute an event to a phase at the
moment it is emitted.
"""

from __future__ import annotations

from repro.telemetry.events import EventKind, TelemetryEvent

PHASE_IDLE = "idle"
PHASE_LOADING = "loading"
PHASE_EXECUTION = "execution"

#: Rendering / report order.
PHASES = (PHASE_IDLE, PHASE_LOADING, PHASE_EXECUTION)


class PhaseTracker:
    """Per-core STL phase, reconstructed live from core events.

    Feed it every event (cheap no-op for non-core kinds) and ask
    :meth:`phase` for the current phase of any core.
    """

    def __init__(self):
        self._phase: dict[int, str] = {}

    def phase(self, core: int | None) -> str:
        """Current phase of ``core`` (``idle`` for unknown/None)."""
        if core is None:
            return PHASE_IDLE
        return self._phase.get(core, PHASE_IDLE)

    def in_execution_window(self, core: int | None) -> bool:
        return self.phase(core) == PHASE_EXECUTION

    def on_event(self, event: TelemetryEvent) -> None:
        kind = event.kind
        if kind is EventKind.CORE_START:
            testwin = event.fields.get("testwin", 0)
            self._phase[event.core] = (
                PHASE_EXECUTION if testwin & 1 else PHASE_LOADING
            )
        elif kind is EventKind.CORE_TESTWIN:
            self._phase[event.core] = (
                PHASE_EXECUTION if event.fields.get("value", 0) & 1 else PHASE_LOADING
            )
        elif kind is EventKind.CORE_HALT:
            self._phase[event.core] = PHASE_IDLE
