"""Chrome trace-event export (loadable in Perfetto / chrome://tracing).

Maps a recorded telemetry stream onto the Trace Event Format's JSON
array form:

* one track (``tid``) per core plus one for the shared bus, all inside
  a single ``repro-soc`` process;
* every completed bus transaction becomes a duration slice (``"X"``) on
  the bus track, spanning grant -> completion, with submit/wait/burst
  details in ``args``;
* each core's loading/execution windows (from TESTWIN transitions)
  become duration slices on that core's track, so the phase structure
  of the wrapper is visible at a glance;
* everything else (cache misses/fills, retries, supervisor decisions,
  fault injections, ...) becomes an instant event (``"i"``) on the
  attributed core's track.

Timestamps are simulated clock cycles reported as microseconds — at the
case-study's 180 MHz nothing physical hangs on the unit, and Perfetto's
zoom/measure tools then read directly in cycles.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.events import EventKind, TelemetryEvent

#: Track ids inside the single exported process.
PID = 1
BUS_TID = 0


def _core_tid(core: int) -> int:
    return core + 1


_PHASE_EVENT_KINDS = (
    EventKind.CORE_START,
    EventKind.CORE_TESTWIN,
    EventKind.CORE_HALT,
)

#: Kinds that never become their own trace entries (bus submits/grants
#: are folded into the completion slice; phase kinds become windows).
_FOLDED_KINDS = (
    EventKind.BUS_SUBMIT,
    EventKind.BUS_GRANT,
)


def chrome_trace_events(
    events: list[TelemetryEvent],
    core_names: dict[int, str] | None = None,
) -> list[dict]:
    """Convert a telemetry stream into trace-event JSON dicts."""
    trace: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID,
            "tid": 0,
            "args": {"name": "repro-soc"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": PID,
            "tid": BUS_TID,
            "args": {"name": "shared bus"},
        },
    ]
    cores = sorted({e.core for e in events if e.core is not None})
    for core in cores:
        label = (core_names or {}).get(core, f"core {core}")
        trace.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PID,
                "tid": _core_tid(core),
                "args": {"name": label},
            }
        )

    last_cycle = max((e.cycle for e in events), default=0)
    #: Open phase window per core: (name, start_cycle).
    open_window: dict[int, tuple[str, int]] = {}

    def close_window(core: int, end_cycle: int) -> None:
        window = open_window.pop(core, None)
        if window is None:
            return
        name, start = window
        trace.append(
            {
                "name": name,
                "ph": "X",
                "ts": start,
                "dur": max(end_cycle - start, 0),
                "pid": PID,
                "tid": _core_tid(core),
                "args": {},
            }
        )

    for event in events:
        kind = event.kind
        if kind in _FOLDED_KINDS:
            continue
        if kind in _PHASE_EVENT_KINDS:
            core = event.core
            if kind is EventKind.CORE_HALT:
                close_window(core, event.cycle)
            else:
                testwin = event.fields.get(
                    "value", event.fields.get("testwin", 0)
                )
                name = "execution loop" if testwin & 1 else "loading loop"
                current = open_window.get(core)
                if current is not None and current[0] == name:
                    continue
                close_window(core, event.cycle)
                open_window[core] = (name, event.cycle)
            continue
        if kind in (EventKind.BUS_COMPLETE, EventKind.BUS_ERROR):
            grant = event.fields.get("grant", event.cycle)
            trace.append(
                {
                    "name": f"{event.fields.get('kind', 'txn')}"
                    f" {event.fields.get('address', 0):#010x}",
                    "ph": "X",
                    "ts": grant,
                    "dur": max(event.cycle - grant, 0),
                    "pid": PID,
                    "tid": BUS_TID,
                    "args": {
                        "core": event.core,
                        "error": kind is EventKind.BUS_ERROR,
                        **event.fields,
                    },
                }
            )
            continue
        tid = BUS_TID if event.core is None else _core_tid(event.core)
        trace.append(
            {
                "name": kind.value,
                "ph": "i",
                "ts": event.cycle,
                "pid": PID,
                "tid": tid,
                "s": "t",
                "args": dict(event.fields),
            }
        )
    for core in list(open_window):
        close_window(core, last_cycle)
    return trace


def export_chrome_trace(
    path: str | Path,
    events: list[TelemetryEvent],
    core_names: dict[int, str] | None = None,
) -> list[dict]:
    """Write ``events`` as a Chrome trace JSON file; returns the dicts."""
    trace = chrome_trace_events(events, core_names)
    Path(path).write_text(json.dumps(trace) + "\n")
    return trace


#: The subset of the Trace Event Format this exporter emits.
_VALID_PHASES = {"M", "X", "i", "B", "E", "C"}
_INSTANT_SCOPES = {"t", "p", "g"}


def validate_trace_events(trace: list[dict]) -> None:
    """Check ``trace`` against the trace-event JSON-array schema.

    Raises :class:`ValueError` naming the first offending entry.  Used
    by the test suite so a format regression fails loudly rather than
    producing a file Perfetto silently refuses.
    """
    if not isinstance(trace, list):
        raise ValueError("trace must be a JSON array of event objects")
    for index, entry in enumerate(trace):
        where = f"trace[{index}]"
        if not isinstance(entry, dict):
            raise ValueError(f"{where}: not an object")
        phase = entry.get("ph")
        if phase not in _VALID_PHASES:
            raise ValueError(f"{where}: bad or missing ph {phase!r}")
        if not isinstance(entry.get("name"), str) or not entry["name"]:
            raise ValueError(f"{where}: bad or missing name")
        for key in ("pid", "tid"):
            if not isinstance(entry.get(key), int):
                raise ValueError(f"{where}: bad or missing {key}")
        if phase != "M":
            ts = entry.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"{where}: bad or missing ts {ts!r}")
        if phase == "X":
            dur = entry.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where}: X event needs dur >= 0, got {dur!r}")
        if phase == "i" and entry.get("s") not in _INSTANT_SCOPES:
            raise ValueError(f"{where}: instant event needs s in t/p/g")
        if "args" in entry and not isinstance(entry["args"], dict):
            raise ValueError(f"{where}: args must be an object")
    try:
        json.dumps(trace)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"trace is not JSON-serialisable: {exc}") from None
