"""Phase-aware metric aggregation over the telemetry event stream.

Where the raw ``BusStats``/``CacheStats`` on the models are run-lifetime
totals, the :class:`MetricsCollector` splits every counter three ways —
per core, per STL phase (idle / loading / execution, keyed off TESTWIN,
see :mod:`repro.telemetry.phases`) and per metric — which is what turns
"the execution loop must not touch the bus" from an argument into a row
of zeros you can read off a table.

The collector is a live sink subscriber: it never re-scans the event
list, so it also works with recording disabled (``keep_events=False``)
on arbitrarily long runs.  :meth:`MetricsCollector.snapshot` /
:meth:`MetricsView.delta` give interval measurements without resetting
anything — the telemetry analogue of the new ``BusStats.snapshot()``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.events import EventKind, TelemetryEvent
from repro.telemetry.phases import PHASES, PhaseTracker
from repro.utils.tables import format_table

#: Aggregated bus metric names (report column order).
BUS_METRICS = (
    "transactions",
    "wait_cycles",
    "busy_cycles",
    "glitch_delay_cycles",
    "error_responses",
    "retries",
)

#: Aggregated per-cache metric names (report column order).
CACHE_METRICS = (
    "hits",
    "misses",
    "fills",
    "writebacks",
    "invalidations",
    "write_miss_bypasses",
    "soft_error_flips",
)

_CACHE_EVENT_METRIC = {
    EventKind.CACHE_HIT: "hits",
    EventKind.CACHE_MISS: "misses",
    EventKind.CACHE_FILL: "fills",
    EventKind.CACHE_WRITEBACK: "writebacks",
    EventKind.CACHE_INVALIDATE: "invalidations",
    EventKind.CACHE_WRITE_MISS_BYPASS: "write_miss_bypasses",
    EventKind.CACHE_SOFT_ERROR_FLIP: "soft_error_flips",
}


class MetricsView:
    """An immutable snapshot of the collector's counters.

    ``counts`` maps ``(core, phase) -> {metric: value}`` where bus
    metrics are named ``bus.<metric>`` and cache metrics
    ``<cache>.<metric>`` (cache names come from ``CacheConfig.name``).
    ``host`` carries host-side counters that belong to no simulated
    core or phase — e.g. the parallel fault-simulation engine's
    per-shard timing and throughput (``faultsim.*``).
    """

    def __init__(self, counts: dict, host: dict | None = None):
        self.counts = counts
        self.host = host or {}

    # -- interval arithmetic -------------------------------------------

    def delta(self, since: "MetricsView") -> "MetricsView":
        """Counters accumulated strictly after ``since`` was taken."""
        result: dict = {}
        for key, metrics in self.counts.items():
            base = since.counts.get(key, {})
            diff = {
                name: value - base.get(name, 0)
                for name, value in metrics.items()
                if value - base.get(name, 0)
            }
            if diff:
                result[key] = diff
        host = {
            name: value - since.host.get(name, 0)
            for name, value in self.host.items()
            if value - since.host.get(name, 0)
        }
        return MetricsView(result, host)

    # -- lookups --------------------------------------------------------

    def get(self, core: int | None, phase: str, metric: str) -> int:
        return self.counts.get((core, phase), {}).get(metric, 0)

    def phase_total(self, phase: str, metric: str) -> int:
        """One metric summed over every core, one phase."""
        return sum(
            metrics.get(metric, 0)
            for (_, key_phase), metrics in self.counts.items()
            if key_phase == phase
        )

    def core_total(self, core: int | None, metric: str) -> int:
        """One metric summed over every phase, one core."""
        return sum(
            metrics.get(metric, 0)
            for (key_core, _), metrics in self.counts.items()
            if key_core == core
        )

    def host_subset(self, prefix: str) -> dict[str, int]:
        """Host counters under a dotted prefix, with the prefix stripped.

        ``host_subset("faultsim.orchestrator")`` returns e.g.
        ``{"attempts": 5, "failures": 1, ...}`` — the shape reports and
        tests want, without every consumer re-implementing the split.
        """
        lead = prefix.rstrip(".") + "."
        return {
            name[len(lead):]: value
            for name, value in sorted(self.host.items())
            if name.startswith(lead)
        }

    def cache_names(self) -> tuple[str, ...]:
        names = sorted(
            {
                name.split(".", 1)[0]
                for metrics in self.counts.values()
                for name in metrics
                if not name.startswith("bus.") and "." in name
            }
        )
        return tuple(names)

    def _cores(self) -> list[int | None]:
        cores = sorted(
            {core for core, _ in self.counts if core is not None}
        )
        if any(core is None for core, _ in self.counts):
            cores.append(None)
        return cores

    # -- export ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready nested form: core -> phase -> metric -> value.

        Host-side counters, when present, appear under the reserved
        ``"host"`` key (absent otherwise, so pre-existing consumers see
        an unchanged shape).
        """
        nested: dict = {}
        for (core, phase), metrics in sorted(
            self.counts.items(),
            key=lambda item: (item[0][0] is None, item[0][0] or 0, item[0][1]),
        ):
            label = "unattributed" if core is None else f"core{core}"
            nested.setdefault(label, {})[phase] = dict(sorted(metrics.items()))
        if self.host:
            nested["host"] = dict(sorted(self.host.items()))
        return nested

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    def render(self) -> str:
        """Two text tables: bus metrics and cache metrics, phase-split."""
        bus_rows = []
        cache_rows = []
        caches = self.cache_names()
        for core in self._cores():
            who = "-" if core is None else str(core)
            for phase in PHASES:
                metrics = self.counts.get((core, phase), {})
                if not metrics:
                    continue
                if any(metrics.get(f"bus.{m}", 0) for m in BUS_METRICS):
                    bus_rows.append(
                        (who, phase)
                        + tuple(
                            f"{metrics.get(f'bus.{m}', 0):,}" for m in BUS_METRICS
                        )
                    )
                for cache in caches:
                    if any(metrics.get(f"{cache}.{m}", 0) for m in CACHE_METRICS):
                        cache_rows.append(
                            (who, phase, cache)
                            + tuple(
                                f"{metrics.get(f'{cache}.{m}', 0):,}"
                                for m in CACHE_METRICS
                            )
                        )
        sections = []
        if bus_rows:
            sections.append(
                format_table(
                    ("core", "phase") + BUS_METRICS,
                    bus_rows,
                    title="Bus activity by core and STL phase",
                )
            )
        if cache_rows:
            sections.append(
                format_table(
                    ("core", "phase", "cache") + CACHE_METRICS,
                    cache_rows,
                    title="Cache activity by core and STL phase",
                )
            )
        if self.host:
            sections.append(
                format_table(
                    ("counter", "value"),
                    [
                        (name, f"{value:,}")
                        for name, value in sorted(self.host.items())
                    ],
                    title="Host-side counters",
                )
            )
        if not sections:
            return "(no telemetry metrics recorded)"
        return "\n\n".join(sections)


class MetricsCollector:
    """Live subscriber that aggregates events into phase-split counters."""

    def __init__(self):
        self._tracker = PhaseTracker()
        self._counts: dict = {}
        self._host: dict[str, int] = {}

    def record_host(self, metric: str, amount: int = 1) -> None:
        """Accumulate a host-side counter (no core, no phase).

        The out-of-band entry point for instrumentation that runs on
        the host rather than in the simulated SoC — the parallel
        fault-simulation engine records per-shard wall-clock and
        throughput here, keeping the (core, phase) space reserved for
        simulated activity.
        """
        if amount == 0:
            return
        self._host[metric] = self._host.get(metric, 0) + amount

    def _bump(self, core: int | None, metric: str, amount: int = 1) -> None:
        if amount == 0:
            return
        key = (core, self._tracker.phase(core))
        bucket = self._counts.get(key)
        if bucket is None:
            bucket = self._counts[key] = {}
        bucket[metric] = bucket.get(metric, 0) + amount

    def on_event(self, event: TelemetryEvent) -> None:
        kind = event.kind
        core = event.core
        fields = event.fields
        if kind is EventKind.BUS_GRANT:
            self._bump(core, "bus.transactions")
            self._bump(core, "bus.wait_cycles", fields.get("wait", 0))
            self._bump(core, "bus.glitch_delay_cycles", fields.get("glitch", 0))
        elif kind is EventKind.BUS_COMPLETE:
            self._bump(core, "bus.busy_cycles", fields.get("busy", 0))
        elif kind is EventKind.BUS_ERROR:
            self._bump(core, "bus.error_responses")
        elif kind is EventKind.BUS_RETRY:
            self._bump(core, "bus.retries")
        elif kind in _CACHE_EVENT_METRIC:
            cache = fields.get("cache", "cache")
            self._bump(core, f"{cache}.{_CACHE_EVENT_METRIC[kind]}")
        elif kind is EventKind.FAULT_INJECTION:
            self._bump(core, "faults.injections")
        elif kind is EventKind.SUPERVISOR_ATTEMPT:
            self._bump(core, "supervisor.attempts")
        elif kind is EventKind.SUPERVISOR_RETRY:
            self._bump(core, "supervisor.retries")
        elif kind is EventKind.SUPERVISOR_QUARANTINE:
            self._bump(core, "supervisor.quarantines")
        elif kind is EventKind.SHARD_RETRY:
            self.record_host("orchestrator.shard_retries")
        elif kind is EventKind.SHARD_STRAGGLER:
            self.record_host("orchestrator.stragglers")
        elif kind is EventKind.SHARD_QUARANTINE:
            self.record_host("orchestrator.quarantines")
        elif kind is EventKind.POOL_REBUILD:
            self.record_host("orchestrator.pool_rebuilds")
        else:
            # Phase-transition events carry no counters of their own.
            self._tracker.on_event(event)

    def snapshot(self) -> MetricsView:
        """A frozen copy of the counters accumulated so far."""
        return MetricsView(
            {key: dict(metrics) for key, metrics in self._counts.items()},
            dict(self._host),
        )

    # Convenience pass-throughs so a collector can be used directly
    # where a view is expected (reads see the live counters).
    def view(self) -> MetricsView:
        return MetricsView(self._counts, self._host)

    def render(self) -> str:
        return self.snapshot().render()

    def to_dict(self) -> dict:
        return self.snapshot().to_dict()
