"""Parallel boot-time STL execution (after Floridia et al., ITC 2019 [13]).

The Table I experiment runs the whole library "in parallel on the
physical microcontroller, with a software structure similar to the one
presented by the authors of [13]": every core walks its own statically
assigned sequence of boot-time routines and halts when the sequence is
done.  The scheduler here builds that per-core dispatch program — one
contiguous flash image per core concatenating its routines' bodies,
with a per-routine signature init so each routine remains individually
checkable.

Static partitioning is the decentralised scheme's degenerate (and most
common) configuration: each core owns a fixed slice of the library, so
no inter-core synchronisation is needed beyond the common release.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Csr, Instruction, Mnemonic
from repro.isa.program import Program
from repro.soc.loader import CodeAlignment, CodePosition, placement_address
from repro.stl.conventions import DATA_PTR, SIG_REG, WRAP_TMP
from repro.stl.library import SoftwareTestLibrary
from repro.stl.packets import PhasedBuilder
from repro.stl.routine import RoutineContext
from repro.stl.signature import emit_signature_init


@dataclass
class CoreSchedule:
    """The routine sequence assigned to one core."""

    core_id: int
    routine_names: list[str] = field(default_factory=list)


@dataclass
class ParallelSchedule:
    """A full parallel test session: one routine sequence per core."""

    per_core: dict[int, CoreSchedule] = field(default_factory=dict)

    @classmethod
    def round_robin(
        cls, libraries: dict[int, SoftwareTestLibrary], repeat: int = 1
    ) -> "ParallelSchedule":
        """Assign every generic routine of each core's library, in
        library order, ``repeat`` times."""
        schedule = cls()
        for core_id, library in libraries.items():
            names = [r.name for r in library.generic_routines] * repeat
            schedule.per_core[core_id] = CoreSchedule(core_id, names)
        return schedule


def build_dispatch_program(
    library: SoftwareTestLibrary,
    schedule: CoreSchedule,
    base_address: int,
    ctx: RoutineContext,
) -> Program:
    """Concatenate a core's assigned routines into one boot-time program.

    Each routine gets its own signature seed and test window, exactly as
    if the dispatcher called it; the core halts after the last one.
    """
    asm = PhasedBuilder(base_address, f"dispatch_core{schedule.core_id}")
    for name in schedule.routine_names:
        routine = library.get(name)
        asm.li(WRAP_TMP, 1)
        asm.csrw(Csr.TESTWIN, WRAP_TMP)
        emit_signature_init(asm)
        asm.li(DATA_PTR, ctx.data_base)
        asm.align()
        routine.emit_body(asm, ctx)
        asm.align()
        asm.li(WRAP_TMP, 0)
        asm.csrw(Csr.TESTWIN, WRAP_TMP)
    asm.halt()
    return asm.build()


def dispatch_builders(
    libraries: dict[int, SoftwareTestLibrary],
    schedule: ParallelSchedule,
    contexts: dict[int, RoutineContext],
):
    """Relocatable per-core dispatch builders for the campaign runner."""
    builders = {}
    for core_id, core_schedule in schedule.per_core.items():
        library = libraries[core_id]
        ctx = contexts[core_id]

        def build(base, library=library, core_schedule=core_schedule, ctx=ctx):
            return build_dispatch_program(library, core_schedule, base, ctx)

        builders[core_id] = build
    return builders


@dataclass(frozen=True)
class DynamicSchedulerLayout:
    """SRAM control block of the decentralised dynamic scheduler.

    One shared lock word and a shared next-routine counter implement the
    run-once claiming of [13]: whichever core grabs the lock first pulls
    the next routine index; every routine executes exactly once across
    the whole SoC.  Result slots (one word per routine) collect the
    produced signatures.
    """

    control_base: int = 0x200F_0000
    num_routines: int = 0

    @property
    def lock_address(self) -> int:
        return self.control_base

    @property
    def counter_address(self) -> int:
        return self.control_base + 4

    @property
    def results_base(self) -> int:
        return self.control_base + 8

    def result_address(self, index: int) -> int:
        return self.results_base + 4 * index


def build_dynamic_dispatch_program(
    library: SoftwareTestLibrary,
    base_address: int,
    ctx: RoutineContext,
    layout: DynamicSchedulerLayout,
    routine_names: list[str] | None = None,
) -> Program:
    """One core's dynamic dispatcher: claim-execute until the pool drains.

    The dispatcher spins on the TAS lock, atomically claims the next
    routine index from the shared counter, releases the lock, and calls
    its own copy of the claimed routine through a jump table.  The
    routine's signature is stored into the shared result slot, so the
    host can verify that every routine ran exactly once, wherever it
    landed.
    """
    names = routine_names or [r.name for r in library.generic_routines]
    asm = PhasedBuilder(base_address, f"dyndispatch_core{ctx.core_index}")
    scratch_idx = ctx.mailbox_address + 16  # saved claim index (D-TCM)
    asm.j("dispatch_loop")
    # Routine subroutines; each returns through LINK_REG.
    entry_labels = []
    for name in names:
        routine = library.get(name)
        label = f"rt_{name}"
        entry_labels.append(label)
        asm.align()
        asm.label(label)
        asm.li(WRAP_TMP, 1)
        asm.csrw(Csr.TESTWIN, WRAP_TMP)
        emit_signature_init(asm)
        asm.li(DATA_PTR, ctx.data_base)
        asm.align()
        routine.emit_body(asm, ctx)
        asm.align()
        asm.li(WRAP_TMP, 0)
        asm.csrw(Csr.TESTWIN, WRAP_TMP)
        asm.jr(31)
    asm.label("dispatch_loop")
    # Acquire the pool lock (atomic test-and-set on the shared word).
    asm.label("acquire")
    asm.li(1, layout.lock_address)
    asm.tas(2, 0, 1)
    asm.bne(2, 0, "acquire")
    # Claim the next routine index and release the lock.
    asm.li(3, layout.counter_address)
    asm.lw(4, 0, 3)
    asm.addi(5, 4, 1)
    asm.sw(5, 0, 3)
    asm.sync()
    asm.sw(0, 0, 1)
    asm.li(6, len(names))
    asm.branch_far(Mnemonic.BGE, 4, 6, "drained")
    # Save the claimed index across the routine call (registers are
    # clobbered by the body, like a context switch).
    asm.li(7, scratch_idx)
    asm.sw(4, 0, 7)
    # Jump-table call into the claimed routine.  The table address is
    # only known after build (it follows the code), so a placeholder
    # LUI/ORI pair is emitted and patched afterwards.
    asm.slli(8, 4, 2)
    asm.emit(Instruction(Mnemonic.LUI, rd=9, imm=0))
    asm.emit(Instruction(Mnemonic.ORI, rd=9, rs1=9, imm=0))
    asm.add(9, 9, 8)
    asm.lw(10, 0, 9)
    asm.li_address(31, "dispatch_ret")
    asm.jr(10)
    asm.label("dispatch_ret")
    # Publish the signature into the shared result slot.
    asm.li(7, scratch_idx)
    asm.lw(4, 0, 7)
    asm.slli(8, 4, 2)
    asm.li(9, layout.results_base)
    asm.add(9, 9, 8)
    asm.sw(SIG_REG, 0, 9)
    asm.sync()
    asm.j("dispatch_loop")
    asm.label("drained")
    asm.halt()
    program = asm.build()
    # The jump table lives in flash right after the code, 16-aligned.
    table_base = (program.end_address + 15) & ~15
    for index, label in enumerate(entry_labels):
        program.data[table_base + 4 * index] = program.symbols[label]
    program.symbols["jump_table"] = table_base
    # Patch the two li_address("jump_table") instructions now that the
    # table address is known: rebuild with the real constant.
    return _patch_address_lis(program, "jump_table", table_base)


def _patch_address_lis(program: Program, label: str, address: int) -> Program:
    """Fix up placeholder LUI/ORI pairs (imm 0) with the final address."""
    placeholder_hits = []
    for index in range(len(program.code) - 1):
        first, second = program.code[index], program.code[index + 1]
        if (
            first.mnemonic is Mnemonic.LUI
            and first.imm == 0
            and second.mnemonic is Mnemonic.ORI
            and second.rs1 == first.rd
            and second.rd == first.rd
            and second.imm == 0
        ):
            placeholder_hits.append(index)
    for index in placeholder_hits:
        rd = program.code[index].rd
        program.code[index] = Instruction(Mnemonic.LUI, rd=rd, imm=address >> 12)
        program.code[index + 1] = Instruction(
            Mnemonic.ORI, rd=rd, rs1=rd, imm=address & 0xFFF
        )
    return program


def load_parallel_session(
    soc,
    libraries: dict[int, SoftwareTestLibrary],
    schedule: ParallelSchedule,
    position: CodePosition = CodePosition.LOW,
    alignment: CodeAlignment = CodeAlignment.QWORD,
) -> dict[int, int]:
    """Load one dispatch program per scheduled core; return entry points."""
    entries = {}
    for core_id, core_schedule in schedule.per_core.items():
        ctx = RoutineContext.for_core(core_id, soc.cores[core_id].model)
        base = placement_address(position, alignment, core_id)
        program = build_dispatch_program(
            libraries[core_id], core_schedule, base, ctx
        )
        soc.load(program)
        entries[core_id] = program.base_address
    return entries
