"""Program placement: the code-position and alignment scenarios.

Section IV-C varies, besides the number of active cores, the *code
position in memory* (low, mid and high flash addresses) and the *code
alignment* (word, double-word, double double-word).  Both parameters
shift the phase of every fetch group relative to the flash prefetch
buffer and the bus-arbitration pattern, which is what makes the
no-cache multi-core fault coverage oscillate.

Programs here are position-dependent (absolute ``J`` targets), so a
routine is *re-built* at its placed base address rather than copied.
Routine generators therefore expose a ``build(base_address)`` callable.
"""

from __future__ import annotations

import enum
from collections.abc import Callable

from repro.isa.program import Program


class CodePosition(enum.Enum):
    """Flash region where the test code is linked.

    The three regions deliberately sit at different offsets within the
    32-byte flash line (0, 8 and 24 bytes), because where the code
    falls relative to the prefetch-buffer line decides which fetch
    groups pay the array latency — real linkers place STL sections at
    whatever offset the surrounding image dictates.
    """

    LOW = 0x0000_0100
    MID = 0x0008_0008
    HIGH = 0x000F_0018


class CodeAlignment(enum.Enum):
    """Base-address alignment of the routine, as an offset within the
    16-byte double-double-word grid.

    * ``QWORD`` — double double-word aligned (offset 0);
    * ``DWORD`` — double-word aligned only (offset 8);
    * ``WORD`` — word aligned only (offset 4): the first fetch group is
      a single word, shifting every later group's phase.
    """

    QWORD = 0
    DWORD = 8
    WORD = 4


#: Spacing between consecutive cores' copies of the routine in flash.
#: Not a multiple of the flash line: each core's copy lands at its own
#: sub-line phase, like independently-linked per-core STL sections.
CORE_COPY_STRIDE = 0x4000 + 40


def placement_address(
    position: CodePosition, alignment: CodeAlignment, core_index: int = 0
) -> int:
    """Base address for core ``core_index``'s copy of the routine."""
    base = position.value + alignment.value
    return base + core_index * CORE_COPY_STRIDE


def place(
    build: Callable[[int], Program],
    position: CodePosition,
    alignment: CodeAlignment,
    core_index: int = 0,
) -> Program:
    """Re-build a routine at its scenario-determined base address."""
    return build(placement_address(position, alignment, core_index))
