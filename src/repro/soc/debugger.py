"""Non-intrusive stall monitoring (the paper's "external debugger").

Section IV-B tracks the STL's parallel execution "leveraging an external
debugger, that monitored the number of clock cycles of stall due to the
memory subsystem in each processor core".  :class:`StallMonitor` reads
the cores' performance-counter state without issuing any instruction,
so the measurement cannot perturb the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.soc.soc import Soc


@dataclass(frozen=True)
class CoreStallReport:
    """Stall figures of one core, in clock cycles."""

    core_id: int
    model: str
    cycles: int
    instret: int
    if_stalls: int
    mem_stalls: int
    hazard_stalls: int
    #: Cycles this core's transactions spent queued on the shared bus
    #: (read off the bus-side per-master counters, still non-intrusive).
    bus_wait_cycles: int = 0

    def delta(self, since: "CoreStallReport") -> "CoreStallReport":
        """Counters accumulated strictly after ``since`` was taken."""
        return CoreStallReport(
            core_id=self.core_id,
            model=self.model,
            cycles=self.cycles - since.cycles,
            instret=self.instret - since.instret,
            if_stalls=self.if_stalls - since.if_stalls,
            mem_stalls=self.mem_stalls - since.mem_stalls,
            hazard_stalls=self.hazard_stalls - since.hazard_stalls,
            bus_wait_cycles=self.bus_wait_cycles - since.bus_wait_cycles,
        )


@dataclass(frozen=True)
class StallReport:
    """System-level stall figures (Table I rows)."""

    active_cores: int
    per_core: tuple[CoreStallReport, ...]

    @property
    def total_if_stalls(self) -> int:
        return sum(core.if_stalls for core in self.per_core)

    @property
    def total_mem_stalls(self) -> int:
        return sum(core.mem_stalls for core in self.per_core)

    @property
    def total_cycles(self) -> int:
        return sum(core.cycles for core in self.per_core)

    @property
    def total_bus_wait_cycles(self) -> int:
        return sum(core.bus_wait_cycles for core in self.per_core)

    def delta(self, since: "StallReport") -> "StallReport":
        """Per-core interval figures between two snapshots of one SoC.

        Cores are matched by id; a core that appears only in the newer
        snapshot contributes its full counters.
        """
        base = {core.core_id: core for core in since.per_core}
        per_core = tuple(
            core.delta(base[core.core_id]) if core.core_id in base else core
            for core in self.per_core
        )
        return StallReport(active_cores=self.active_cores, per_core=per_core)


class StallMonitor:
    """Reads stall counters off a finished (or running) SoC."""

    def snapshot(self, soc: Soc) -> StallReport:
        """Capture the stall state of every started core."""
        reports = tuple(
            CoreStallReport(
                core_id=core.core_id,
                model=core.model.name,
                cycles=core.cycles,
                instret=core.instret,
                if_stalls=core.ifstall,
                mem_stalls=core.memstall,
                hazard_stalls=core.hazstall,
                bus_wait_cycles=soc.bus.stats[core.core_id].wait_cycles,
            )
            for core in soc.cores
            if core.started
        )
        return StallReport(active_cores=len(reports), per_core=reports)
