"""Configuration of the modelled triple-core automotive SoC.

The stock configuration mirrors the case-study device of Section IV-A:
three dual-issue cores (A and B the same 32-bit model with different
physical design, C with the 64-bit extended ISA), each with a private
8 KiB instruction cache, 4 KiB data cache and two TCMs, sharing a single
bus to embedded flash (8-cycle array access) and system SRAM, running at
180 MHz.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.core import (
    CORE_MODEL_A,
    CORE_MODEL_B,
    CORE_MODEL_C,
    DCACHE_CONFIG,
    ICACHE_CONFIG,
    CoreModel,
)
from repro.mem.cache import CacheConfig


@dataclass(frozen=True)
class SocConfig:
    """Everything needed to build a :class:`repro.soc.soc.Soc`."""

    core_models: tuple[CoreModel, ...] = (
        CORE_MODEL_A,
        CORE_MODEL_B,
        CORE_MODEL_C,
    )
    icache: CacheConfig = ICACHE_CONFIG
    dcache: CacheConfig = DCACHE_CONFIG
    tcm_size: int = 16 << 10
    flash_base: int = 0x0000_0000
    flash_size: int = 32 << 20
    flash_array_cycles: int = 8
    flash_buffer_cycles: int = 2
    flash_buffer_bytes: int = 32
    flash_num_buffers: int = 2
    sram_base: int = 0x2000_0000
    sram_size: int = 1 << 20
    sram_latency: int = 2
    frequency_hz: int = 180_000_000

    @property
    def num_cores(self) -> int:
        return len(self.core_models)


DEFAULT_SOC_CONFIG = SocConfig()
