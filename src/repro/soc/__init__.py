"""SoC assembly: configuration, cores+bus+memories, loader, scheduler."""

from repro.soc.config import DEFAULT_SOC_CONFIG, SocConfig
from repro.soc.debugger import CoreStallReport, StallMonitor, StallReport
from repro.soc.scheduler import (
    CoreSchedule,
    DynamicSchedulerLayout,
    ParallelSchedule,
    build_dispatch_program,
    build_dynamic_dispatch_program,
    load_parallel_session,
)
from repro.soc.loader import (
    CORE_COPY_STRIDE,
    CodeAlignment,
    CodePosition,
    place,
    placement_address,
)
from repro.soc.soc import Soc
from repro.soc.supervisor import (
    AttemptRecord,
    RecoveryReport,
    RoutineReport,
    RoutineSpec,
    TestSupervisor,
)

__all__ = [
    "CoreSchedule",
    "DynamicSchedulerLayout",
    "ParallelSchedule",
    "build_dispatch_program",
    "build_dynamic_dispatch_program",
    "load_parallel_session",
    "DEFAULT_SOC_CONFIG",
    "SocConfig",
    "CoreStallReport",
    "StallMonitor",
    "StallReport",
    "CORE_COPY_STRIDE",
    "CodeAlignment",
    "CodePosition",
    "place",
    "placement_address",
    "Soc",
    "AttemptRecord",
    "RecoveryReport",
    "RoutineReport",
    "RoutineSpec",
    "TestSupervisor",
]
