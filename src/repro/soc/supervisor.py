"""Supervised boot-time self-test execution: watchdog, retry, quarantine.

On-line testing lives inside a safety loop: a hung or corrupted routine
must never crash the whole boot-time campaign.  The
:class:`TestSupervisor` runs each routine under a per-routine cycle
deadline (the watchdog), classifies every failure (signature mismatch,
watchdog timeout, bus error, simulator-detected corruption), performs
bounded retries — each retry re-enters the routine from its entry point,
so a cache-wrapped routine re-runs its *loading loop* and re-warms the
private caches, which is exactly why a transient soft error is repaired
by one supervised retry — and quarantines a routine after N consecutive
failures instead of raising mid-campaign.

The outcome is a structured :class:`RecoveryReport` (per-routine
attempts, failure causes, final verdicts) that serialises to JSON, so a
host-side safety monitor — or a test — can audit exactly what happened.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import BusError, ExecutionLimitExceeded, ReproError
from repro.stl.conventions import RESULT_FAIL, RESULT_PASS, SIG_REG
from repro.telemetry.events import EventKind

#: Attempt outcome labels.
PASS = "pass"
SIGNATURE_MISMATCH = "signature_mismatch"
WATCHDOG_TIMEOUT = "watchdog_timeout"
BUS_ERROR = "bus_error"
CORRUPTED_EXECUTION = "corrupted_execution"
NO_VERDICT = "no_verdict"


@dataclass(frozen=True)
class RoutineSpec:
    """One supervised routine: where it lives and how to judge it.

    The program must already be loaded into the SoC's memories; the
    supervisor only drives entry points.  ``deadline_cycles`` is the
    per-routine watchdog budget; ``expected_signature`` (when known)
    adds a host-side signature cross-check on top of the program's own
    mailbox verdict.
    """

    name: str
    core_id: int
    entry_point: int
    mailbox_address: int
    expected_signature: int | None = None
    deadline_cycles: int = 200_000


@dataclass(frozen=True)
class AttemptRecord:
    """What one supervised execution attempt of one routine did."""

    attempt: int
    outcome: str
    cycles: int
    signature: int | None = None
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.outcome == PASS

    def to_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "outcome": self.outcome,
            "cycles": self.cycles,
            "signature": self.signature,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AttemptRecord":
        return cls(**data)


@dataclass
class RoutineReport:
    """All attempts of one routine plus the final verdict."""

    name: str
    core_id: int
    attempts: list[AttemptRecord] = field(default_factory=list)
    quarantined: bool = False

    @property
    def passed(self) -> bool:
        return bool(self.attempts) and self.attempts[-1].passed

    @property
    def recovered(self) -> bool:
        """Passed, but only after at least one failed attempt."""
        return self.passed and len(self.attempts) > 1

    @property
    def failure_causes(self) -> list[str]:
        return [a.outcome for a in self.attempts if not a.passed]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "core_id": self.core_id,
            "quarantined": self.quarantined,
            "attempts": [a.to_dict() for a in self.attempts],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RoutineReport":
        return cls(
            name=data["name"],
            core_id=data["core_id"],
            quarantined=data["quarantined"],
            attempts=[AttemptRecord.from_dict(a) for a in data["attempts"]],
        )


@dataclass
class RecoveryReport:
    """Structured outcome of one supervised boot-time session."""

    routines: list[RoutineReport] = field(default_factory=list)
    injections: list[dict] = field(default_factory=list)
    #: Determinism-audit verdict for the session (see
    #: :class:`repro.telemetry.audit.DeterminismAuditor`), when a
    #: supervisor was given an auditor to report from.
    audit: dict | None = None

    @property
    def all_passed(self) -> bool:
        return all(r.passed for r in self.routines)

    @property
    def quarantined_names(self) -> list[str]:
        return [r.name for r in self.routines if r.quarantined]

    @property
    def recovered_names(self) -> list[str]:
        return [r.name for r in self.routines if r.recovered]

    @property
    def total_attempts(self) -> int:
        return sum(len(r.attempts) for r in self.routines)

    def routine(self, name: str) -> RoutineReport:
        for report in self.routines:
            if report.name == name:
                return report
        raise KeyError(f"no routine named {name!r} in the report")

    def to_dict(self) -> dict:
        return {
            "routines": [r.to_dict() for r in self.routines],
            "injections": list(self.injections),
            "audit": self.audit,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RecoveryReport":
        return cls(
            routines=[RoutineReport.from_dict(r) for r in data["routines"]],
            injections=list(data.get("injections", [])),
            audit=data.get("audit"),
        )

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path: str | Path) -> "RecoveryReport":
        return cls.from_dict(json.loads(Path(path).read_text()))


class TestSupervisor:
    """Watchdog-supervised executor of boot-time routines on one SoC.

    ``max_retries`` bounds the re-entries after a failed first attempt,
    so a routine is quarantined after ``1 + max_retries`` consecutive
    failures.  Each attempt hard-resets the core at the routine's entry
    point (flushing pipeline latches and in-flight memory accesses, but
    deliberately *not* the caches: the cache-based wrapper invalidates
    and re-warms them itself, which is the paper's determinism argument
    extended to transients).
    """

    def __init__(self, soc, max_retries: int = 2, injector=None, auditor=None):
        self.soc = soc
        self.max_retries = max_retries
        #: Optional SoftErrorInjector whose log is folded into the report.
        self.injector = injector
        #: Optional DeterminismAuditor whose verdict is attached to the
        #: session's RecoveryReport (usually the one a TelemetrySession
        #: stood up).
        self.auditor = auditor

    # ------------------------------------------------------------------
    # One attempt.
    # ------------------------------------------------------------------

    def _judge(self, spec: RoutineSpec, cycles: int) -> AttemptRecord:
        core = self.soc.cores[spec.core_id]
        signature = core.regfile.read(SIG_REG)
        verdict = core.dtcm.read_word(spec.mailbox_address)
        if verdict == RESULT_PASS:
            if (
                spec.expected_signature is not None
                and signature != spec.expected_signature
            ):
                return AttemptRecord(
                    attempt=0,
                    outcome=SIGNATURE_MISMATCH,
                    cycles=cycles,
                    signature=signature,
                    detail="mailbox PASS but host signature cross-check failed",
                )
            return AttemptRecord(
                attempt=0, outcome=PASS, cycles=cycles, signature=signature
            )
        if verdict == RESULT_FAIL:
            return AttemptRecord(
                attempt=0,
                outcome=SIGNATURE_MISMATCH,
                cycles=cycles,
                signature=signature,
            )
        return AttemptRecord(
            attempt=0,
            outcome=NO_VERDICT,
            cycles=cycles,
            signature=signature,
            detail=f"mailbox holds {verdict:#010x}",
        )

    def _attempt(self, spec: RoutineSpec) -> AttemptRecord:
        core = self.soc.cores[spec.core_id]
        # Scrub the stale verdict so a previous PASS cannot leak through.
        core.dtcm.write_word(spec.mailbox_address, 0)
        core.hard_reset(spec.entry_point)
        start = self.soc.cycle
        try:
            self.soc.run(max_cycles=spec.deadline_cycles)
        except ExecutionLimitExceeded as exc:
            return AttemptRecord(
                attempt=0,
                outcome=WATCHDOG_TIMEOUT,
                cycles=self.soc.cycle - start,
                detail=str(exc),
            )
        except BusError as exc:
            return AttemptRecord(
                attempt=0,
                outcome=BUS_ERROR,
                cycles=self.soc.cycle - start,
                detail=str(exc),
            )
        except ReproError as exc:
            # A corrupted instruction stream can surface as any simulator
            # error (undecodable word, unmapped address, ...): contain it.
            return AttemptRecord(
                attempt=0,
                outcome=CORRUPTED_EXECUTION,
                cycles=self.soc.cycle - start,
                detail=f"{type(exc).__name__}: {exc}",
            )
        record = self._judge(spec, self.soc.cycle - start)
        return record

    # ------------------------------------------------------------------
    # Supervision.
    # ------------------------------------------------------------------

    def run_routine(self, spec: RoutineSpec) -> RoutineReport:
        """Run one routine with watchdog, bounded retry and quarantine."""
        report = RoutineReport(name=spec.name, core_id=spec.core_id)
        telemetry = self.soc.telemetry
        for attempt_index in range(1 + self.max_retries):
            if telemetry.enabled:
                telemetry.emit(
                    EventKind.SUPERVISOR_RETRY
                    if attempt_index
                    else EventKind.SUPERVISOR_ATTEMPT,
                    core=spec.core_id,
                    routine=spec.name,
                    attempt=attempt_index + 1,
                )
            record = self._attempt(spec)
            record = AttemptRecord(
                attempt=attempt_index + 1,
                outcome=record.outcome,
                cycles=record.cycles,
                signature=record.signature,
                detail=record.detail,
            )
            report.attempts.append(record)
            if record.passed:
                return report
        report.quarantined = True
        if telemetry.enabled:
            telemetry.emit(
                EventKind.SUPERVISOR_QUARANTINE,
                core=spec.core_id,
                routine=spec.name,
                attempts=len(report.attempts),
            )
        self._silence_core(spec)
        return report

    def _silence_core(self, spec: RoutineSpec) -> None:
        """Park a quarantined routine's core so the session can go on.

        After a watchdog trip the core may still be spinning; a hard
        reset into a halted state keeps it off the bus for the rest of
        the session.
        """
        core = self.soc.cores[spec.core_id]
        core.exmem_latch = []
        core.memwb_latch = []
        core.retire_latch = []
        core.memunit.cancel()
        core.fetch.redirect(spec.entry_point)
        core.fetch.queue.clear()
        core.halted = True

    def run_session(self, specs: list[RoutineSpec]) -> RecoveryReport:
        """Supervise a whole boot-time session; never raises mid-campaign.

        Routines run one at a time in the given order (the decentralised
        schedulers of the parallel session are themselves programs; the
        supervisor models the safety monitor that sequences and audits
        them).  The report records every attempt of every routine.
        """
        report = RecoveryReport()
        for spec in specs:
            report.routines.append(self.run_routine(spec))
        if self.injector is not None:
            report.injections = self.injector.log_dicts()
        if self.auditor is not None:
            report.audit = self.auditor.summary()
        return report
