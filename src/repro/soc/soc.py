"""The multi-core SoC: cores + shared bus + memories, clocked together."""

from __future__ import annotations

from repro.cpu.core import Core
from repro.errors import CoreDiagnostic, ExecutionLimitExceeded
from repro.isa.program import Program
from repro.mem.bus import SystemBus
from repro.mem.flash import Flash
from repro.mem.memmap import MemoryMap
from repro.mem.sram import Sram
from repro.soc.config import DEFAULT_SOC_CONFIG, SocConfig
from repro.telemetry.events import NULL_SINK


class Soc:
    """A cycle-stepped multi-core system-on-chip."""

    def __init__(self, config: SocConfig = DEFAULT_SOC_CONFIG):
        self.config = config
        self.memmap = MemoryMap()
        self.flash = Flash(
            base=config.flash_base,
            size=config.flash_size,
            array_cycles=config.flash_array_cycles,
            buffer_cycles=config.flash_buffer_cycles,
            buffer_bytes=config.flash_buffer_bytes,
            num_buffers=config.flash_num_buffers,
        )
        self.sram = Sram(
            base=config.sram_base, size=config.sram_size, latency=config.sram_latency
        )
        self.memmap.add(self.flash)
        self.memmap.add(self.sram)
        self.bus = SystemBus(self.memmap, config.num_cores)
        self.cores = [
            Core(
                core_id,
                model,
                self.bus,
                self.memmap,
                icache_config=config.icache,
                dcache_config=config.dcache,
                tcm_size=config.tcm_size,
            )
            for core_id, model in enumerate(config.core_models)
        ]
        self.cycle = 0
        #: Telemetry sink (no-op unless a TelemetrySession is attached).
        #: Components emit through their own ``telemetry`` attributes;
        #: this one serves SoC-level users (e.g. the supervisor).
        self.telemetry = NULL_SINK
        #: Disturbance hooks called once per clock with the SoC (see
        #: :mod:`repro.faults.soft_errors`); a hook that returns True is
        #: spent and removed.
        self.fault_hooks: list = []

    # ------------------------------------------------------------------
    # Program loading.
    # ------------------------------------------------------------------

    def load(self, program: Program) -> None:
        """Write a program's code and data into the backing memories."""
        for address, word in program.image().items():
            device = self.memmap.route(address)
            if device is self.flash:
                self.flash.program_word(address, word)
            else:
                device.write_word(address, word)

    def start_core(self, core_id: int, pc: int) -> None:
        """Reset one core to begin executing at ``pc``."""
        self.cores[core_id].reset(pc)

    def core_by_model(self, name: str) -> Core:
        """Find the core running processor model ``name`` (A, B or C)."""
        for core in self.cores:
            if core.model.name == name:
                return core
        raise KeyError(f"no core with model {name!r}")

    # ------------------------------------------------------------------
    # Clocking.
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance the whole SoC by one clock cycle."""
        self.cycle += 1
        self.bus.step(self.cycle)
        for core in self.cores:
            core.step(self.cycle)
        if self.fault_hooks:
            self.fault_hooks = [
                hook for hook in self.fault_hooks if not hook(self)
            ]

    def core_diagnostics(self) -> tuple[CoreDiagnostic, ...]:
        """Per-core state snapshots (attached to watchdog trips)."""
        return tuple(
            CoreDiagnostic(
                core_id=core.core_id,
                model=core.model.name,
                pc=core.fetch.fetch_pc,
                started=core.started,
                halted=core.halted,
                active=core.active,
                cycles=core.cycles,
                bus_wait_cycles=self.bus.stats[core.core_id].wait_cycles,
            )
            for core in self.cores
        )

    def run(self, max_cycles: int = 2_000_000) -> int:
        """Run until every started core halts; returns elapsed cycles.

        Raises :class:`ExecutionLimitExceeded` when the budget runs out —
        the multi-core equivalent of a watchdog firing on a hung test.
        The exception carries a :class:`CoreDiagnostic` per core (id, PC,
        run state, bus-wait cycles) so the trip is debuggable.
        """
        start = self.cycle
        while any(core.active for core in self.cores):
            if self.cycle - start >= max_cycles:
                raise ExecutionLimitExceeded(
                    f"SoC still running after {max_cycles} cycles",
                    diagnostics=self.core_diagnostics(),
                )
            self.step()
        return self.cycle - start

    def run_cycles(self, cycles: int) -> None:
        """Run for a fixed number of cycles (cores may still be active)."""
        for _ in range(cycles):
            self.step()
