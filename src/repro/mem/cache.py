"""Core-private set-associative caches.

The modelled SoC gives each core an 8 KiB instruction cache and a 4 KiB
data cache (Section IV-A).  The data cache is write-back and supports the
two write-miss policies the paper distinguishes:

* **write allocate** — a write miss fills the line and then writes into it,
  which is what lets the *loading loop* of the cache-based strategy pull
  the routine's data into the D-cache as a side effect of its stores;
* **no-write allocate** — a write miss goes straight to memory, so the
  methodology requires a dummy load after each store (Section III.1).

Invalidation (``ICINV``/``DCINV``) drops every line without writing dirty
data back: the self-test procedures only keep scratch data in the cache
and their verdict lives in registers, matching the paper's usage.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.errors import MemoryError_
from repro.telemetry.events import NULL_SINK, EventKind
from repro.utils.bitops import align_down


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one cache."""

    name: str
    size_bytes: int
    line_bytes: int = 32
    ways: int = 2
    write_allocate: bool = True

    def __post_init__(self):
        for value, label in (
            (self.size_bytes, "size"),
            (self.line_bytes, "line size"),
            (self.ways, "ways"),
        ):
            if value <= 0 or value & (value - 1):
                raise MemoryError_(f"cache {label} must be a power of two")
        if self.size_bytes % (self.line_bytes * self.ways):
            raise MemoryError_("cache size not divisible by line*ways")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)

    @property
    def words_per_line(self) -> int:
        return self.line_bytes // 4


@dataclass
class _Line:
    tag: int = 0
    valid: bool = False
    dirty: bool = False
    words: list[int] = field(default_factory=list)


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache."""

    hits: int = 0
    misses: int = 0
    fills: int = 0
    writebacks: int = 0
    write_miss_bypasses: int = 0
    invalidations: int = 0
    soft_error_flips: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def snapshot(self) -> "CacheStats":
        """An independent copy of the counters as they stand now."""
        return replace(self)

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counters accumulated strictly after ``since`` was taken."""
        return CacheStats(
            **{
                f.name: getattr(self, f.name) - getattr(since, f.name)
                for f in fields(self)
            }
        )


@dataclass
class FillPlan:
    """What the memory unit must do to service a miss."""

    line_address: int
    writeback_address: int | None = None
    writeback_words: list[int] = field(default_factory=list)


class Cache:
    """A set-associative write-back cache with true-LRU replacement."""

    def __init__(self, config: CacheConfig):
        self.config = config
        #: Effective write-miss policy; runtime-configurable through the
        #: CACHECFG CSR before the cache is used (Section IV-A).
        self.write_allocate = config.write_allocate
        self._sets = [
            [_Line() for _ in range(config.ways)] for _ in range(config.num_sets)
        ]
        self._lru = [list(range(config.ways)) for _ in range(config.num_sets)]
        self.stats = CacheStats()
        #: Telemetry sink (no-op unless a TelemetrySession is attached)
        #: and the core id events are attributed to while attached.
        self.telemetry = NULL_SINK
        self.telemetry_core: int | None = None

    # ------------------------------------------------------------------
    # Address decomposition.
    # ------------------------------------------------------------------

    def _decompose(self, address: int) -> tuple[int, int, int]:
        line = align_down(address, self.config.line_bytes)
        set_index = (line // self.config.line_bytes) % self.config.num_sets
        tag = line // (self.config.line_bytes * self.config.num_sets)
        return tag, set_index, (address - line) // 4

    def _find(self, address: int) -> tuple[int, int] | None:
        tag, set_index, _ = self._decompose(address)
        for way, line in enumerate(self._sets[set_index]):
            if line.valid and line.tag == tag:
                return set_index, way
        return None

    def _touch(self, set_index: int, way: int) -> None:
        order = self._lru[set_index]
        order.remove(way)
        order.append(way)

    # ------------------------------------------------------------------
    # Lookup and hit-path access.
    # ------------------------------------------------------------------

    def probe(self, address: int) -> bool:
        """Non-intrusive hit test (no LRU update, no statistics)."""
        return self._find(address) is not None

    def lookup(self, address: int) -> bool:
        """Hit test that records one access in the statistics."""
        hit = self._find(address) is not None
        if hit:
            self.stats.hits += 1
        else:
            self.stats.misses += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                EventKind.CACHE_HIT if hit else EventKind.CACHE_MISS,
                core=self.telemetry_core,
                cache=self.config.name,
                address=address,
            )
        return hit

    def read(self, address: int, width: int = 4) -> int:
        """Read a word or byte that must currently hit."""
        location = self._find(address)
        if location is None:
            raise MemoryError_(
                f"{self.config.name}: read of {address:#010x} is not resident"
            )
        set_index, way = location
        self._touch(set_index, way)
        _, _, word_index = self._decompose(address)
        word = self._sets[set_index][way].words[word_index]
        if width == 4:
            return word
        if width == 1:
            return (word >> (8 * (address & 3))) & 0xFF
        raise MemoryError_(f"unsupported access width {width}")

    def write(self, address: int, value: int, width: int = 4) -> None:
        """Write into a resident line (marks it dirty)."""
        location = self._find(address)
        if location is None:
            raise MemoryError_(
                f"{self.config.name}: write to {address:#010x} is not resident"
            )
        set_index, way = location
        self._touch(set_index, way)
        line = self._sets[set_index][way]
        _, _, word_index = self._decompose(address)
        if width == 4:
            line.words[word_index] = value & 0xFFFF_FFFF
        elif width == 1:
            shift = 8 * (address & 3)
            word = line.words[word_index]
            line.words[word_index] = (word & ~(0xFF << shift)) | (
                (value & 0xFF) << shift
            )
        else:
            raise MemoryError_(f"unsupported access width {width}")
        line.dirty = True

    # ------------------------------------------------------------------
    # Miss handling.
    # ------------------------------------------------------------------

    def prepare_fill(self, address: int) -> FillPlan:
        """Pick a victim for the line containing ``address``.

        Returns the aligned line address to fetch and, if the victim is
        dirty, the write-back the memory unit must perform first.  The
        victim is *not* modified yet; :meth:`install` completes the fill.
        """
        line_address = align_down(address, self.config.line_bytes)
        _, set_index, _ = self._decompose(address)
        victim_way = self._lru[set_index][0]
        victim = self._sets[set_index][victim_way]
        plan = FillPlan(line_address=line_address)
        if victim.valid and victim.dirty:
            victim_base = (
                victim.tag * self.config.num_sets + set_index
            ) * self.config.line_bytes
            plan.writeback_address = victim_base
            plan.writeback_words = list(victim.words)
            self.stats.writebacks += 1
            telemetry = self.telemetry
            if telemetry.enabled:
                telemetry.emit(
                    EventKind.CACHE_WRITEBACK,
                    core=self.telemetry_core,
                    cache=self.config.name,
                    address=victim_base,
                )
        return plan

    def install(self, line_address: int, words: list[int]) -> None:
        """Install a fetched line (replacing the LRU victim)."""
        if len(words) != self.config.words_per_line:
            raise MemoryError_(
                f"{self.config.name}: fill of {len(words)} words, "
                f"expected {self.config.words_per_line}"
            )
        tag, set_index, _ = self._decompose(line_address)
        victim_way = self._lru[set_index][0]
        line = self._sets[set_index][victim_way]
        line.tag = tag
        line.valid = True
        line.dirty = False
        line.words = [w & 0xFFFF_FFFF for w in words]
        self._touch(set_index, victim_way)
        self.stats.fills += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                EventKind.CACHE_FILL,
                core=self.telemetry_core,
                cache=self.config.name,
                address=line_address,
            )

    def invalidate_all(self) -> None:
        """Drop every line (dirty contents are discarded, not written back)."""
        for cache_set in self._sets:
            for line in cache_set:
                line.valid = False
                line.dirty = False
        self.stats.invalidations += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                EventKind.CACHE_INVALIDATE,
                core=self.telemetry_core,
                cache=self.config.name,
            )

    # ------------------------------------------------------------------
    # Soft-error injection (see repro.faults.soft_errors).
    # ------------------------------------------------------------------

    def valid_line_addresses(self) -> list[int]:
        """Base addresses of every valid line, in deterministic order.

        Ordered by (set, way) so a seeded injector picking an index is
        reproducible run to run.
        """
        addresses = []
        for set_index, cache_set in enumerate(self._sets):
            for line in cache_set:
                if line.valid:
                    addresses.append(
                        (line.tag * self.config.num_sets + set_index)
                        * self.config.line_bytes
                    )
        return addresses

    def flip_bit(self, line_address: int, word_index: int, bit: int) -> int:
        """Flip one bit of a resident line (an SEU in the cache array).

        The line's dirty/valid state is untouched — a particle strike
        corrupts the data array, not the tag RAM bookkeeping.  Returns
        the corrupted word.
        """
        location = self._find(line_address)
        if location is None:
            raise MemoryError_(
                f"{self.config.name}: flip target {line_address:#010x} "
                "is not resident"
            )
        if not 0 <= word_index < self.config.words_per_line:
            raise MemoryError_(
                f"{self.config.name}: word index {word_index} out of line"
            )
        if not 0 <= bit < 32:
            raise MemoryError_(f"{self.config.name}: bit index {bit} out of range")
        set_index, way = location
        line = self._sets[set_index][way]
        line.words[word_index] ^= 1 << bit
        self.stats.soft_error_flips += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                EventKind.CACHE_SOFT_ERROR_FLIP,
                core=self.telemetry_core,
                cache=self.config.name,
                address=line_address,
                word=word_index,
                bit=bit,
            )
        return line.words[word_index]

    # ------------------------------------------------------------------
    # Introspection helpers for tests and the Fig. 2 structural audit.
    # ------------------------------------------------------------------

    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return sum(
            1 for cache_set in self._sets for line in cache_set if line.valid
        )

    def holds_range(self, start: int, size_bytes: int) -> bool:
        """True when every byte of [start, start+size) is resident."""
        address = align_down(start, self.config.line_bytes)
        end = start + size_bytes
        while address < end:
            if not self.probe(address):
                return False
            address += self.config.line_bytes
        return True
