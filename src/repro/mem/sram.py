"""Shared on-chip system RAM."""

from __future__ import annotations

from repro.mem.device import MemoryDevice


class Sram(MemoryDevice):
    """Shared SRAM holding the STL's data buffers and scheduler state.

    A fixed pipelined access latency plus one cycle per extra burst word.
    """

    def __init__(self, base: int = 0x2000_0000, size: int = 1 << 20, latency: int = 2):
        super().__init__("sram", base, size, latency)
