"""Shared on-chip system RAM."""

from __future__ import annotations

from repro.errors import MemoryError_
from repro.mem.device import MemoryDevice
from repro.utils.rng import DeterministicRng


class Sram(MemoryDevice):
    """Shared SRAM holding the STL's data buffers and scheduler state.

    A fixed pipelined access latency plus one cycle per extra burst word.
    The array is modelled without ECC, matching the paper's case-study
    SoC where the STL itself is the error-detection mechanism — so a
    seeded soft error (:meth:`flip_random_bit`) stays resident until
    software overwrites it.
    """

    def __init__(self, base: int = 0x2000_0000, size: int = 1 << 20, latency: int = 2):
        super().__init__("sram", base, size, latency)

    def flip_random_bit(self, rng: DeterministicRng) -> tuple[int, int]:
        """Flip a seeded-random bit of an occupied word; returns (addr, bit).

        Drawing only from occupied words keeps the injection meaningful
        (the sparse store's unwritten words never feed a computation) and
        the sorted candidate list keeps it reproducible from the seed.
        """
        candidates = self.occupied_addresses()
        if not candidates:
            raise MemoryError_("sram holds no data to corrupt")
        address = rng.choice(candidates)
        bit = rng.randint(0, 31)
        self.flip_bit(address, bit)
        return address, bit
