"""Memory subsystem: caches, flash, SRAM, TCMs, shared bus, address map."""

from repro.mem.bus import BusStats, SystemBus, Transaction, TxnKind
from repro.mem.cache import Cache, CacheConfig, CacheStats, FillPlan
from repro.mem.device import MemoryDevice
from repro.mem.flash import Flash
from repro.mem.memmap import (
    DTCM_BASE,
    FLASH_BASE,
    ITCM_BASE,
    SRAM_BASE,
    MemoryMap,
    dtcm_base,
    is_cacheable,
    itcm_base,
)
from repro.mem.sram import Sram
from repro.mem.tcm import Tcm

__all__ = [
    "BusStats",
    "SystemBus",
    "Transaction",
    "TxnKind",
    "Cache",
    "CacheConfig",
    "CacheStats",
    "FillPlan",
    "MemoryDevice",
    "Flash",
    "MemoryMap",
    "Sram",
    "Tcm",
    "FLASH_BASE",
    "SRAM_BASE",
    "ITCM_BASE",
    "DTCM_BASE",
    "dtcm_base",
    "is_cacheable",
    "itcm_base",
]
