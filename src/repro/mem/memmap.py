"""SoC address map and device routing."""

from __future__ import annotations

from repro.errors import MemoryError_
from repro.mem.device import MemoryDevice

#: Default address-map constants used by the stock SoC configuration.
#: The TCM windows sit below 0x0800_0000 so the 25-bit word-address
#: ``J``/``JAL`` range covers them (the TCM strategy jumps into the
#: I-TCM).
FLASH_BASE = 0x0000_0000
SRAM_BASE = 0x2000_0000
ITCM_BASE = 0x0400_0000
DTCM_BASE = 0x0500_0000
TCM_STRIDE = 0x0010_0000  # per-core spacing of the private TCM windows


class MemoryMap:
    """Routes physical addresses to bus devices and answers cacheability."""

    def __init__(self):
        self._devices: list[MemoryDevice] = []

    def add(self, device: MemoryDevice) -> MemoryDevice:
        """Register a device; regions must not overlap."""
        for existing in self._devices:
            if (
                device.base < existing.base + existing.size
                and existing.base < device.base + device.size
            ):
                raise MemoryError_(
                    f"{device.name} overlaps {existing.name} in the address map"
                )
        self._devices.append(device)
        return device

    def route(self, address: int) -> MemoryDevice:
        """Return the device containing ``address``."""
        for device in self._devices:
            if device.contains(address):
                return device
        raise MemoryError_(f"address {address:#010x} is unmapped")

    def try_route(self, address: int) -> MemoryDevice | None:
        """Like :meth:`route` but returns None instead of raising."""
        for device in self._devices:
            if device.contains(address):
                return device
        return None

    @property
    def devices(self) -> tuple[MemoryDevice, ...]:
        return tuple(self._devices)


def is_cacheable(address: int) -> bool:
    """Flash and SRAM are cacheable; the private TCM windows are not."""
    return address < ITCM_BASE or address >= SRAM_BASE


def itcm_base(core_id: int) -> int:
    """Base address of core ``core_id``'s instruction TCM."""
    return ITCM_BASE + core_id * TCM_STRIDE


def dtcm_base(core_id: int) -> int:
    """Base address of core ``core_id``'s data TCM."""
    return DTCM_BASE + core_id * TCM_STRIDE
