"""Embedded flash with a prefetch line buffer.

The paper's SoC fetches issue packets from flash with an 8-clock-cycle
latency (Section IV-D).  Real automotive flash controllers hide part of
that latency behind a prefetch buffer holding the most recently read
flash line: sequential fetches hit the buffer and complete quickly, and
only line-boundary crossings (or discontinuous accesses) pay the full
array access.

The buffer is a property of the *flash controller*, shared by every bus
master.  When several cores execute from flash concurrently their
interleaved fetches evict each other's buffered line, so almost every
access pays the full array latency — this is the mechanism behind the
super-linear stall growth of Table I.
"""

from __future__ import annotations

from repro.errors import MemoryError_
from repro.mem.device import MemoryDevice
from repro.utils.bitops import align_down


class Flash(MemoryDevice):
    """Read-only flash with a single shared prefetch line buffer."""

    def __init__(
        self,
        base: int = 0x0000_0000,
        size: int = 32 << 20,
        array_cycles: int = 8,
        buffer_cycles: int = 2,
        buffer_bytes: int = 32,
        num_buffers: int = 2,
    ):
        super().__init__("flash", base, size, latency=array_cycles)
        if buffer_bytes & (buffer_bytes - 1):
            raise MemoryError_("flash buffer size must be a power of two")
        if num_buffers < 1:
            raise MemoryError_("flash needs at least one prefetch buffer")
        self.array_cycles = array_cycles
        self.buffer_cycles = buffer_cycles
        self.buffer_bytes = buffer_bytes
        self.num_buffers = num_buffers
        #: LRU list of buffered line addresses, most recent last.  Two
        #: buffers let a single core's code and data streams coexist;
        #: three cores' interleaved fetches still thrash them.
        self._buffered_lines: list[int] = []
        self.buffer_hits = 0
        self.buffer_misses = 0

    def write_word(self, address: int, value: int) -> None:
        raise MemoryError_(
            f"flash is read-only at run time (write to {address:#010x}); "
            "use program_word() when building the memory image"
        )

    def program_word(self, address: int, value: int) -> None:
        """Program a word at image-build time (bypasses the read-only guard)."""
        self._check(address)
        self._words[address & ~3] = value & 0xFFFF_FFFF

    def load_image(self, image: dict[int, int]) -> None:
        for address, word in image.items():
            self.program_word(address, word)

    def reset_buffer(self) -> None:
        """Invalidate the prefetch buffers (e.g. at SoC reset)."""
        self._buffered_lines.clear()

    def _touch(self, line: int) -> None:
        if line in self._buffered_lines:
            self._buffered_lines.remove(line)
        self._buffered_lines.append(line)
        while len(self._buffered_lines) > self.num_buffers:
            self._buffered_lines.pop(0)

    def access_cycles(self, address: int, is_write: bool, burst_words: int) -> int:
        """One transaction's bus occupancy.

        The flash array reads a whole line per access and the controller
        exposes it over a line-wide port, so a burst inside a buffered
        line costs only the buffer access — no per-word cycles.  That
        makes a single core's sequential fetch stream *almost* keep up
        with dual issue, which is exactly the regime the paper
        describes: the stream is marginal alone and collapses as soon
        as other masters hold the bus.
        """
        if is_write:
            raise MemoryError_("flash is read-only")
        line = align_down(address, self.buffer_bytes)
        end_line = align_down(address + 4 * burst_words - 1, self.buffer_bytes)
        if line == end_line and line in self._buffered_lines:
            self.buffer_hits += 1
            self._touch(line)
            return self.buffer_cycles
        self.buffer_misses += 1
        # A burst crossing a line boundary pays a second array access.
        extra_lines = (end_line - line) // self.buffer_bytes
        self._touch(line)
        if end_line != line:
            self._touch(end_line)
        return self.array_cycles * (1 + extra_lines)
