"""Tightly-Coupled Memories (scratchpads).

Each core owns an instruction TCM and a data TCM: single-cycle SRAM
banks on a private port, never arbitrated on the system bus.  The
TCM-based execution strategy of Table IV copies a routine into the
I-TCM and runs it from there; the copied bytes stay *reserved* for the
lifetime of the application, which is the memory-overhead drawback the
paper quantifies.
"""

from __future__ import annotations

from repro.mem.device import MemoryDevice


class Tcm(MemoryDevice):
    """A private single-cycle scratchpad memory."""

    def __init__(self, name: str, base: int, size: int = 16 << 10):
        super().__init__(name, base, size, latency=1)
        self.reserved_bytes = 0

    def reserve(self, size_bytes: int) -> None:
        """Mark ``size_bytes`` as permanently reserved (Table IV metric)."""
        if size_bytes > self.size:
            raise ValueError(
                f"{self.name}: cannot reserve {size_bytes} B of {self.size} B"
            )
        self.reserved_bytes = max(self.reserved_bytes, size_bytes)
