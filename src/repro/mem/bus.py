"""Shared system bus with round-robin arbitration.

A single transaction occupies the bus at a time (like the crossbar-less
AHB-style interconnect of small automotive SoCs); everything else queues.
Per-core wait-cycle statistics feed the Table I stall measurements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, fields, replace

from repro.errors import MemoryError_
from repro.mem.memmap import MemoryMap
from repro.telemetry.events import NULL_SINK, EventKind


class TxnKind(enum.Enum):
    """What a bus transaction is for (used for statistics only)."""

    IFETCH = "ifetch"
    DREAD = "dread"
    DWRITE = "dwrite"


@dataclass
class Transaction:
    """One bus transaction; completed in place by :meth:`SystemBus.step`."""

    core_id: int
    kind: TxnKind
    address: int
    burst_words: int = 1
    is_write: bool = False
    write_values: list[int] = field(default_factory=list)
    byte_write: bool = False
    #: Atomic test-and-set: return the old word, then write 1, all
    #: within this single (indivisible) transaction.
    atomic_set: bool = False
    submit_cycle: int = 0
    grant_cycle: int | None = None
    complete_cycle: int | None = None
    done: bool = False
    #: Completed with a (retriable) error response instead of data.
    error: bool = False
    #: How many times this logical access has been re-submitted after an
    #: error response (carried across retries by the issuing unit).
    retries: int = 0
    data: list[int] = field(default_factory=list)

    def retry_clone(self) -> "Transaction":
        """A fresh copy of this transaction for one more bus attempt."""
        return Transaction(
            core_id=self.core_id,
            kind=self.kind,
            address=self.address,
            burst_words=self.burst_words,
            is_write=self.is_write,
            write_values=list(self.write_values),
            byte_write=self.byte_write,
            atomic_set=self.atomic_set,
            retries=self.retries + 1,
        )


@dataclass
class BusStats:
    """Aggregate per-core bus statistics."""

    transactions: int = 0
    wait_cycles: int = 0
    busy_cycles: int = 0
    glitch_delay_cycles: int = 0
    error_responses: int = 0

    def snapshot(self) -> "BusStats":
        """An independent copy of the counters as they stand now."""
        return replace(self)

    def delta(self, since: "BusStats") -> "BusStats":
        """Counters accumulated strictly after ``since`` was taken."""
        return BusStats(
            **{
                f.name: getattr(self, f.name) - getattr(since, f.name)
                for f in fields(self)
            }
        )


class SystemBus:
    """Single-master-at-a-time shared bus with round-robin core priority.

    An optional *glitcher* (see :mod:`repro.faults.soft_errors`) models
    transient interconnect disturbances: it may stretch a grant by a few
    cycles (a delayed grant) or turn a completion into a retriable error
    response, which the issuing fetch/memory unit re-submits up to its
    bounded retry budget.
    """

    def __init__(self, memmap: MemoryMap, num_cores: int):
        self.memmap = memmap
        self.num_cores = num_cores
        self._queue: list[Transaction] = []
        self._current: Transaction | None = None
        self._rr_next = 0
        self.stats = {core: BusStats() for core in range(num_cores)}
        self.total_grants = 0
        #: Optional disturbance model: an object with
        #: ``grant_delay(txn, cycle) -> int`` and
        #: ``error_response(txn, cycle) -> bool``.
        self.glitcher = None
        #: Telemetry sink (no-op unless a TelemetrySession is attached).
        self.telemetry = NULL_SINK

    def submit(self, txn: Transaction, cycle: int) -> Transaction:
        """Queue a transaction; it completes when ``txn.done`` turns True."""
        if txn.core_id >= self.num_cores:
            raise MemoryError_(f"unknown bus master {txn.core_id}")
        txn.submit_cycle = cycle
        self._queue.append(txn)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                EventKind.BUS_SUBMIT,
                core=txn.core_id,
                kind=txn.kind.value,
                address=txn.address,
                burst=txn.burst_words,
                write=txn.is_write,
                retries=txn.retries,
            )
        return txn

    @property
    def idle(self) -> bool:
        """True when no transaction is in flight or waiting."""
        return self._current is None and not self._queue

    def step(self, cycle: int) -> None:
        """Advance the bus by one clock cycle.

        Completion is checked before arbitration so a transaction whose
        time has elapsed frees the bus for a new grant in the same cycle.
        """
        current = self._current
        if current is not None:
            if cycle >= current.complete_cycle:
                self._finish(current)
                self._current = None
            else:
                self.stats[current.core_id].busy_cycles += 1
        if self._current is None and self._queue:
            self._grant(cycle)
        for txn in self._queue:
            self.stats[txn.core_id].wait_cycles += 1

    def _grant(self, cycle: int) -> None:
        chosen = None
        for offset in range(self.num_cores):
            core = (self._rr_next + offset) % self.num_cores
            for txn in self._queue:
                if txn.core_id == core:
                    chosen = txn
                    break
            if chosen is not None:
                break
        if chosen is None:  # pragma: no cover - queue non-empty implies a hit
            return
        self._queue.remove(chosen)
        try:
            device = self.memmap.route(chosen.address)
        except MemoryError_ as exc:
            raise MemoryError_(f"core {chosen.core_id}: {exc}") from None
        latency = device.access_cycles(
            chosen.address, chosen.is_write, chosen.burst_words
        )
        delay = 0
        if self.glitcher is not None:
            delay = self.glitcher.grant_delay(chosen, cycle)
            if delay:
                latency += delay
                self.stats[chosen.core_id].glitch_delay_cycles += delay
        chosen.grant_cycle = cycle
        chosen.complete_cycle = cycle + latency
        self._current = chosen
        self._rr_next = (chosen.core_id + 1) % self.num_cores
        self.total_grants += 1
        self.stats[chosen.core_id].transactions += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                EventKind.BUS_GRANT,
                core=chosen.core_id,
                kind=chosen.kind.value,
                address=chosen.address,
                wait=cycle - chosen.submit_cycle,
                glitch=delay,
            )

    def _finish(self, txn: Transaction) -> None:
        if self.glitcher is not None and self.glitcher.error_response(
            txn, txn.complete_cycle
        ):
            # Retriable error response: no data transfer happened; the
            # issuing unit sees ``txn.error`` and re-submits (bounded).
            self.stats[txn.core_id].error_responses += 1
            txn.error = True
            txn.done = True
            telemetry = self.telemetry
            if telemetry.enabled:
                telemetry.emit(
                    EventKind.BUS_ERROR,
                    core=txn.core_id,
                    kind=txn.kind.value,
                    address=txn.address,
                    grant=txn.grant_cycle,
                    retries=txn.retries,
                )
            return
        device = self.memmap.route(txn.address)
        if txn.atomic_set:
            txn.data = [device.read_word(txn.address)]
            device.write_word(txn.address, 1)
        elif txn.is_write:
            if txn.byte_write:
                device.write_byte(txn.address, txn.write_values[0])
            else:
                for i, value in enumerate(txn.write_values):
                    device.write_word(txn.address + 4 * i, value)
        else:
            txn.data = device.read_burst(txn.address, txn.burst_words)
        txn.done = True
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                EventKind.BUS_COMPLETE,
                core=txn.core_id,
                kind=txn.kind.value,
                address=txn.address,
                burst=txn.burst_words,
                write=txn.is_write,
                submit=txn.submit_cycle,
                grant=txn.grant_cycle,
                busy=txn.complete_cycle - txn.grant_cycle,
            )
