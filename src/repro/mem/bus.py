"""Shared system bus with round-robin arbitration.

A single transaction occupies the bus at a time (like the crossbar-less
AHB-style interconnect of small automotive SoCs); everything else queues.
Per-core wait-cycle statistics feed the Table I stall measurements.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import MemoryError_
from repro.mem.memmap import MemoryMap


class TxnKind(enum.Enum):
    """What a bus transaction is for (used for statistics only)."""

    IFETCH = "ifetch"
    DREAD = "dread"
    DWRITE = "dwrite"


@dataclass
class Transaction:
    """One bus transaction; completed in place by :meth:`SystemBus.step`."""

    core_id: int
    kind: TxnKind
    address: int
    burst_words: int = 1
    is_write: bool = False
    write_values: list[int] = field(default_factory=list)
    byte_write: bool = False
    #: Atomic test-and-set: return the old word, then write 1, all
    #: within this single (indivisible) transaction.
    atomic_set: bool = False
    submit_cycle: int = 0
    grant_cycle: int | None = None
    complete_cycle: int | None = None
    done: bool = False
    data: list[int] = field(default_factory=list)


@dataclass
class BusStats:
    """Aggregate per-core bus statistics."""

    transactions: int = 0
    wait_cycles: int = 0
    busy_cycles: int = 0


class SystemBus:
    """Single-master-at-a-time shared bus with round-robin core priority."""

    def __init__(self, memmap: MemoryMap, num_cores: int):
        self.memmap = memmap
        self.num_cores = num_cores
        self._queue: list[Transaction] = []
        self._current: Transaction | None = None
        self._rr_next = 0
        self.stats = {core: BusStats() for core in range(num_cores)}
        self.total_grants = 0

    def submit(self, txn: Transaction, cycle: int) -> Transaction:
        """Queue a transaction; it completes when ``txn.done`` turns True."""
        if txn.core_id >= self.num_cores:
            raise MemoryError_(f"unknown bus master {txn.core_id}")
        txn.submit_cycle = cycle
        self._queue.append(txn)
        return txn

    @property
    def idle(self) -> bool:
        """True when no transaction is in flight or waiting."""
        return self._current is None and not self._queue

    def step(self, cycle: int) -> None:
        """Advance the bus by one clock cycle.

        Completion is checked before arbitration so a transaction whose
        time has elapsed frees the bus for a new grant in the same cycle.
        """
        current = self._current
        if current is not None:
            if cycle >= current.complete_cycle:
                self._finish(current)
                self._current = None
            else:
                self.stats[current.core_id].busy_cycles += 1
        if self._current is None and self._queue:
            self._grant(cycle)
        for txn in self._queue:
            self.stats[txn.core_id].wait_cycles += 1

    def _grant(self, cycle: int) -> None:
        chosen = None
        for offset in range(self.num_cores):
            core = (self._rr_next + offset) % self.num_cores
            for txn in self._queue:
                if txn.core_id == core:
                    chosen = txn
                    break
            if chosen is not None:
                break
        if chosen is None:  # pragma: no cover - queue non-empty implies a hit
            return
        self._queue.remove(chosen)
        device = self.memmap.route(chosen.address)
        latency = device.access_cycles(
            chosen.address, chosen.is_write, chosen.burst_words
        )
        chosen.grant_cycle = cycle
        chosen.complete_cycle = cycle + latency
        self._current = chosen
        self._rr_next = (chosen.core_id + 1) % self.num_cores
        self.total_grants += 1
        self.stats[chosen.core_id].transactions += 1

    def _finish(self, txn: Transaction) -> None:
        device = self.memmap.route(txn.address)
        if txn.atomic_set:
            txn.data = [device.read_word(txn.address)]
            device.write_word(txn.address, 1)
            txn.done = True
            return
        if txn.is_write:
            if txn.byte_write:
                device.write_byte(txn.address, txn.write_values[0])
            else:
                for i, value in enumerate(txn.write_values):
                    device.write_word(txn.address + 4 * i, value)
        else:
            txn.data = device.read_burst(txn.address, txn.burst_words)
        txn.done = True
