"""Base class for word-addressable memory devices.

Devices store 32-bit words sparsely (a dict keyed by word address), so a
32 MiB flash costs only as much memory as the code programmed into it.
All timing is expressed in bus-clock cycles through
:meth:`MemoryDevice.access_cycles`, which the bus calls once per granted
transaction — the flash overrides it to model its prefetch line buffer.
"""

from __future__ import annotations

from repro.errors import MemoryError_


class MemoryDevice:
    """A contiguous, word-addressable memory region on the system bus."""

    def __init__(self, name: str, base: int, size: int, latency: int = 1):
        if base % 4 or size % 4:
            raise MemoryError_(f"{name}: base/size must be word-aligned")
        self.name = name
        self.base = base
        self.size = size
        self.latency = latency
        self._words: dict[int, int] = {}
        self.reads = 0
        self.writes = 0
        self.soft_error_flips = 0

    # ------------------------------------------------------------------
    # Address handling.
    # ------------------------------------------------------------------

    def contains(self, address: int) -> bool:
        """True when ``address`` falls inside this device."""
        return self.base <= address < self.base + self.size

    def _check(self, address: int) -> int:
        if not self.contains(address):
            raise MemoryError_(
                f"address {address:#010x} outside {self.name} "
                f"[{self.base:#010x}, {self.base + self.size:#010x})"
            )
        return address

    # ------------------------------------------------------------------
    # Data access (functional, no timing).
    # ------------------------------------------------------------------

    def read_word(self, address: int) -> int:
        """Read the aligned 32-bit word containing ``address``."""
        self._check(address)
        self.reads += 1
        return self._words.get(address & ~3, 0)

    def write_word(self, address: int, value: int) -> None:
        """Write an aligned 32-bit word."""
        self._check(address)
        self.writes += 1
        self._words[address & ~3] = value & 0xFFFF_FFFF

    def read_byte(self, address: int) -> int:
        """Read one byte (little-endian within the word)."""
        word = self.read_word(address & ~3)
        return (word >> (8 * (address & 3))) & 0xFF

    def write_byte(self, address: int, value: int) -> None:
        """Write one byte (read-modify-write of the containing word)."""
        shift = 8 * (address & 3)
        word = self._words.get(address & ~3, 0)
        word = (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)
        self.write_word(address & ~3, word)

    def read_burst(self, address: int, words: int) -> list[int]:
        """Read ``words`` consecutive 32-bit words starting at ``address``."""
        return [self.read_word(address + 4 * i) for i in range(words)]

    def load_image(self, image: dict[int, int]) -> None:
        """Bulk-initialise contents from an address -> word mapping."""
        for address, word in image.items():
            self.write_word(address, word)

    # ------------------------------------------------------------------
    # Soft-error injection (see repro.faults.soft_errors).
    # ------------------------------------------------------------------

    def occupied_addresses(self) -> list[int]:
        """Word addresses holding explicitly written data, sorted.

        Injection targets are drawn from here so a seeded bit flip lands
        on state the simulation actually uses (the sparse backing store
        means unwritten words are an infinite sea of zeros).
        """
        return sorted(self._words)

    def flip_bit(self, address: int, bit: int) -> int:
        """Flip one bit of the word containing ``address`` (an SEU).

        Bypasses the functional write path on purpose: a particle strike
        in the array does not care about read-only programming guards.
        Returns the corrupted word.
        """
        self._check(address)
        if not 0 <= bit < 32:
            raise MemoryError_(f"{self.name}: bit index {bit} out of range")
        word = self._words.get(address & ~3, 0) ^ (1 << bit)
        self._words[address & ~3] = word
        self.soft_error_flips += 1
        return word

    # ------------------------------------------------------------------
    # Timing.
    # ------------------------------------------------------------------

    def access_cycles(self, address: int, is_write: bool, burst_words: int) -> int:
        """Bus-occupancy cycles for one transaction (may mutate device state
        such as a prefetch buffer; called exactly once per granted
        transaction)."""
        return self.latency + max(0, burst_words - 1)
