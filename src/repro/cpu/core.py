"""Dual-issue in-order pipelined processor core.

The pipeline is modelled with three inter-stage latches:

* ``exmem_latch`` — the packet issued one cycle ago (its ALU results sit
  on the EX/MEM boundary and feed the EX->EX forwarding paths; loads and
  stores perform their memory access from here);
* ``memwb_latch`` — the packet issued two cycles ago (MEM->EX paths);
* ``retire_latch`` — the packet writing the register file this cycle.

Issue happens after retirement within a cycle, so a consumer three or
more packets behind its producer reads the architectural register file —
no forwarding path is excited, which is the observable difference the
paper's Fig. 1 illustrates between a stall-free and a stalled stream.

ALU results are computed eagerly at issue (functionally identical to
forwarding), loads get their value when the memory system answers, and
every operand resolution is recorded in the :class:`ActivationLog` for
offline gate-level fault simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.alu import branch_taken, execute_alu, execute_alu64, execute_imm
from repro.cpu.fetch import FetchUnit
from repro.cpu.forwarding import Resolution, resolve_register
from repro.cpu.hazard import can_dual_issue, unresolved_producer
from repro.cpu.icu import Icu, IcuConfig
from repro.cpu.memunit import MemoryUnit
from repro.cpu.recording import (
    ActivationLog,
    ForwardingRecord,
    FwdSource,
    HdcuRecord,
    IcuRecord,
)
from repro.cpu.state import RegFile
from repro.cpu.uop import Uop
from repro.errors import SimulationError
from repro.isa.instructions import (
    CACHECFG_DCACHE_EN,
    CACHECFG_ICACHE_EN,
    CACHECFG_WRITE_ALLOCATE,
    Csr,
    Format,
    Instruction,
    Mnemonic,
)
from repro.mem.bus import SystemBus
from repro.mem.cache import Cache, CacheConfig
from repro.mem.memmap import MemoryMap, dtcm_base, itcm_base
from repro.mem.tcm import Tcm
from repro.telemetry.events import NULL_SINK, EventKind
from repro.utils.bitops import MASK32


@dataclass(frozen=True)
class CoreModel:
    """Static description of one processor model in the SoC.

    Cores A and B are the same 32-bit design put through different
    physical-design flows (hence different netlist seeds and fault
    lists); core C implements the 64-bit extended instruction set and a
    one-hot ICU status mapping (Section IV-A/IV-D).
    """

    name: str
    is64: bool = False
    icu_shared_status_bits: bool = True
    netlist_seed: int = 1
    frequency_hz: int = 180_000_000


CORE_MODEL_A = CoreModel(name="A", netlist_seed=0xA11CE)
CORE_MODEL_B = CoreModel(name="B", netlist_seed=0xB0B17)
CORE_MODEL_C = CoreModel(
    name="C", is64=True, icu_shared_status_bits=False, netlist_seed=0xC0DE5
)

#: Default cache geometry of the case-study SoC (Section IV-A).
ICACHE_CONFIG = CacheConfig(name="icache", size_bytes=8 << 10)
DCACHE_CONFIG = CacheConfig(name="dcache", size_bytes=4 << 10)


class Core:
    """One processor core wired to the shared bus."""

    def __init__(
        self,
        core_id: int,
        model: CoreModel,
        bus: SystemBus,
        memmap: MemoryMap,
        icache_config: CacheConfig = ICACHE_CONFIG,
        dcache_config: CacheConfig = DCACHE_CONFIG,
        tcm_size: int = 16 << 10,
    ):
        self.core_id = core_id
        self.model = model
        self.bus = bus
        self.memmap = memmap
        self.icache = Cache(icache_config)
        self.dcache = Cache(dcache_config)
        self.itcm = Tcm(f"itcm{core_id}", itcm_base(core_id), tcm_size)
        self.dtcm = Tcm(f"dtcm{core_id}", dtcm_base(core_id), tcm_size)
        self.fetch = FetchUnit(core_id, bus, memmap, self.icache, self.itcm)
        self.memunit = MemoryUnit(
            core_id, bus, memmap, self.dcache, self.itcm, self.dtcm
        )
        self.regfile = RegFile()
        self.icu = Icu(IcuConfig(shared_status_bits=model.icu_shared_status_bits))
        self.log = ActivationLog()
        self.recording = True
        self.keep_trace = False
        self.trace: list[Uop] = []
        self.stall_observable = False
        self.testwin = 0
        #: Armed behavioural fault (see repro.cpu.injection), or None.
        self.injected_fault = None
        # Pipeline latches.
        self.exmem_latch: list[Uop] = []
        self.memwb_latch: list[Uop] = []
        self.retire_latch: list[Uop] = []
        # Counters (the performance counters of the case-study cores).
        self.cycles = 0
        self.instret = 0
        self.ifstall = 0
        self.memstall = 0
        self.hazstall = 0
        self._seq = 0
        self.halted = False
        self.started = False
        #: Telemetry sink (no-op unless a TelemetrySession is attached).
        self.telemetry = NULL_SINK

    # ------------------------------------------------------------------
    # Control.
    # ------------------------------------------------------------------

    def reset(self, pc: int) -> None:
        """Point the core at ``pc`` and mark it runnable."""
        self.fetch.reset(pc)
        self.halted = False
        self.started = True
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                EventKind.CORE_START,
                core=self.core_id,
                pc=pc,
                testwin=self.testwin,
            )

    def hard_reset(self, pc: int) -> None:
        """Forcibly restart at ``pc``, abandoning all in-flight work.

        Used by the test supervisor to re-enter a routine after a
        watchdog trip: pipeline latches are flushed and the memory unit
        cancels its access, but caches, TCMs and counters keep their
        state — re-convergence is the wrapper's job (it invalidates and
        re-warms the caches itself).
        """
        self.exmem_latch = []
        self.memwb_latch = []
        self.retire_latch = []
        self.memunit.cancel()
        self._set_testwin(0)
        self.reset(pc)

    @property
    def done(self) -> bool:
        """True once HALT has issued and the pipeline has drained."""
        return (
            self.halted
            and not self.exmem_latch
            and not self.memwb_latch
            and not self.retire_latch
            and not self.memunit.busy
        )

    @property
    def active(self) -> bool:
        """True while the core has work to do."""
        return self.started and not self.done

    # ------------------------------------------------------------------
    # Per-cycle operation (called once per SoC clock, after the bus).
    # ------------------------------------------------------------------

    def step(self, cycle: int) -> None:
        if not self.started or self.done:
            return
        self.cycles += 1
        self._retire(cycle)
        self._advance_mem(cycle)
        self._advance_ex(cycle)
        self._try_issue(cycle)
        self.fetch.step(cycle, self.halted)

    def _retire(self, cycle: int) -> None:
        retired = len(self.retire_latch)
        # Recognition runs before this cycle's events are delivered, so
        # an event starts counting younger retirements from the next
        # cycle (its own packet-mates are not "beyond" it).
        count_before = self.icu.recognised_count
        recognition = self.icu.step(cycle, retired)
        if recognition is not None and self.recording:
            vector = 0
            for event in recognition.events:
                vector |= 1 << int(event)
            self.log.icu.append(
                IcuRecord(
                    event_vector=vector,
                    merged=recognition.merged,
                    imprecision=recognition.imprecision,
                    status_bits=recognition.status_bits,
                    observable=bool(self.testwin & 1),
                    count_before=count_before,
                )
            )
        for uop in self.retire_latch:
            for reg in uop.dests:
                self.regfile.write(reg, uop.dest_value(reg))
            if uop.trap_event is not None:
                self.icu.raise_event(uop.trap_event, cycle)
            self.instret += 1
        self.retire_latch = []

    def _advance_mem(self, cycle: int) -> None:
        if not self.memwb_latch:
            return
        if self.memunit.poll(cycle):
            self.retire_latch = self.memwb_latch
            self.memwb_latch = []
            for uop in self.retire_latch:
                uop.wb_cycle = cycle
        else:
            self.memstall += 1

    def _advance_ex(self, cycle: int) -> None:
        if self.memwb_latch or not self.exmem_latch:
            return
        self.memwb_latch = self.exmem_latch
        self.exmem_latch = []
        for uop in self.memwb_latch:
            uop.mem_cycle = cycle
            if uop.is_load or uop.is_store:
                self.memunit.begin(uop, cycle)

    # ------------------------------------------------------------------
    # Issue.
    # ------------------------------------------------------------------

    def _try_issue(self, cycle: int) -> None:
        if self.exmem_latch or self.halted:
            return
        queue = self.fetch.queue
        if not queue:
            # The front end starved the issue stage: an IF stall.
            self.ifstall += 1
            return
        pc0, i0 = queue[0]
        if not self._operands_available(i0, cycle):
            return
        if i0.mnemonic is Mnemonic.SYNC and not self._sync_ready():
            self.hazstall += 1
            return
        queue.pop(0)
        first = self._issue_one(i0, pc0, slot=0, cycle=cycle)
        if first is None:
            return  # Redirecting jump: the packet ends here.
        self.exmem_latch.append(first)
        if (
            queue
            and can_dual_issue(i0, queue[0][1])
            and self._second_ready(queue[0][1])
        ):
            pc1, i1 = queue.pop(0)
            second = self._issue_one(i1, pc1, slot=1, cycle=cycle)
            if second is not None:
                self.exmem_latch.append(second)

    def _operands_available(self, instr: Instruction, cycle: int) -> bool:
        if unresolved_producer(instr, self.memwb_latch):
            # Load-use (producer load in the EX/MEM latch) with the
            # access itself on its fast path: a true HDCU stall.  A load
            # still waiting on the bus shows up as MEM stall cycles via
            # _advance_mem, so avoid double counting.
            if not self.memunit.waiting_on_bus:
                self.hazstall += 1
                if self.recording:
                    self._record_hdcu_stall(instr)
            return False
        return True

    def _second_ready(self, instr: Instruction) -> bool:
        return not unresolved_producer(instr, self.memwb_latch)

    def _sync_ready(self) -> bool:
        return (
            not self.memwb_latch
            and not self.retire_latch
            and not self.memunit.busy
        )

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _issue_one(
        self, instr: Instruction, pc: int, slot: int, cycle: int
    ) -> Uop | None:
        """Execute ``instr`` eagerly and return its uop (None for taken
        jumps that produce no writeback)."""
        spec = instr.spec
        if spec.is_64bit and not self.model.is64:
            raise SimulationError(
                f"core {self.model.name} cannot execute {instr.mnemonic.value} "
                "(64-bit extension is core C only)"
            )
        uop = Uop(
            seq=self._next_seq(),
            pc=pc,
            instr=instr,
            slot=slot,
            dests=instr.dest_regs(),
            issue_cycle=cycle,
        )
        if self.keep_trace:
            self.trace.append(uop)
        fmt = spec.format
        if fmt is Format.R3:
            if spec.is_64bit:
                v1 = self._resolve_wide(instr.rs1, uop, slot, 0)
                v2 = self._resolve_wide(instr.rs2, uop, slot, 1)
                uop.result = execute_alu64(instr.mnemonic, v1, v2)
                uop.is64 = True
            else:
                v1 = self._resolve(instr.rs1, uop, slot, 0)
                v2 = self._resolve(instr.rs2, uop, slot, 1)
                uop.result, uop.trap_event = execute_alu(instr.mnemonic, v1, v2)
        elif fmt is Format.I:
            v1 = self._resolve(instr.rs1, uop, slot, 0)
            uop.result = execute_imm(instr.mnemonic, v1, instr.imm)
        elif fmt is Format.LUI:
            uop.result = (instr.imm << 12) & MASK32
        elif fmt is Format.LOAD:
            base = self._resolve(instr.rs1, uop, slot, 0)
            uop.is_load = True
            uop.result_ready = False
            uop.mem_address = (base + instr.imm) & MASK32
            uop.mem_width = 4 if instr.mnemonic is Mnemonic.LW else 1
        elif fmt is Format.STORE:
            base = self._resolve(instr.rs1, uop, slot, 0)
            data = self._resolve(instr.rs2, uop, slot, 1)
            uop.is_store = True
            uop.mem_address = (base + instr.imm) & MASK32
            uop.mem_width = 4 if instr.mnemonic is Mnemonic.SW else 1
            uop.store_value = data if uop.mem_width == 4 else data & 0xFF
        elif fmt is Format.BRANCH:
            v1 = self._resolve(instr.rs1, uop, slot, 0)
            v2 = self._resolve(instr.rs2, uop, slot, 1)
            if branch_taken(instr.mnemonic, v1, v2):
                self.fetch.redirect((pc + 4 * instr.imm) & MASK32)
        elif fmt is Format.JUMP:
            if instr.mnemonic is Mnemonic.JAL:
                uop.result = (pc + 4) & MASK32
            self.fetch.redirect(4 * instr.imm)
        elif fmt is Format.JR:
            target = self._resolve(instr.rs1, uop, slot, 0)
            self.fetch.redirect(target & ~3)
        elif instr.mnemonic is Mnemonic.CSRR:
            uop.result = self._csr_read(instr.csr)
        elif instr.mnemonic is Mnemonic.CSRW:
            v1 = self._resolve(instr.rs1, uop, slot, 0)
            self._csr_write(instr.csr, v1)
        elif instr.mnemonic is Mnemonic.HALT:
            self.halted = True
            telemetry = self.telemetry
            if telemetry.enabled:
                telemetry.emit(EventKind.CORE_HALT, core=self.core_id, pc=pc)
        elif instr.mnemonic is Mnemonic.ICINV:
            self.icache.invalidate_all()
        elif instr.mnemonic is Mnemonic.DCINV:
            self.dcache.invalidate_all()
        # NOP and SYNC have no effect at this point.
        return uop

    # ------------------------------------------------------------------
    # Operand resolution + recording.
    # ------------------------------------------------------------------

    def _resolve(self, reg: int, uop: Uop, slot: int, operand: int) -> int:
        res = resolve_register(
            reg, self.memwb_latch, self.retire_latch, self.regfile
        )
        if not res.ready:  # pragma: no cover - guarded by unresolved_producer
            raise SimulationError(f"issued {uop.instr} with unresolved r{reg}")
        uop.fwd_selects.append(res.select)
        if self.recording:
            self._record(reg, res, slot, operand, width=32, high=None)
        return self._apply_injection(slot, operand, res)

    def _resolve_wide(self, reg: int, uop: Uop, slot: int, operand: int) -> int:
        low = resolve_register(
            reg, self.memwb_latch, self.retire_latch, self.regfile
        )
        high = resolve_register(
            reg + 1, self.memwb_latch, self.retire_latch, self.regfile
        )
        if not (low.ready and high.ready):  # pragma: no cover
            raise SimulationError(f"issued {uop.instr} with unresolved pair r{reg}")
        uop.fwd_selects.append(low.select)
        if self.recording:
            self._record(reg, low, slot, operand, width=64, high=high)
        return low.value | (high.value << 32)

    def _apply_injection(self, slot: int, operand: int, res: Resolution) -> int:
        """Corrupt the resolved operand according to the armed fault.

        Only the value delivered to execution changes; the activation
        record keeps the fault-free view (fault grading always runs
        against the fault-free logic simulation, as in the paper's flow).
        """
        fault = self.injected_fault
        if fault is None:
            return res.value
        if hasattr(fault, "apply_resolution"):
            return fault.apply_resolution(slot, operand, res)
        return fault.apply(slot, operand, res.select, res.value)

    def _record(
        self,
        reg: int,
        res: Resolution,
        slot: int,
        operand: int,
        width: int,
        high: Resolution | None,
    ) -> None:
        observable = bool(self.testwin & 1)
        if width == 64 and high is not None:
            candidates = tuple(
                lo | (hi << 32)
                for lo, hi in zip(res.candidates, high.candidates)
            )
            valid_mask = res.valid_mask
        else:
            candidates = res.candidates
            valid_mask = res.valid_mask
        self.log.forwarding.append(
            ForwardingRecord(
                slot=slot,
                operand=operand,
                select=res.select,
                candidates=candidates,
                valid_mask=valid_mask,
                width=width,
                observable=observable,
                observable_high=bool(self.testwin & 2),
            )
        )
        chosen = candidates[int(res.select)]
        flip_mask = 0
        for source in range(5):
            if source != int(res.select) and candidates[source] != chosen:
                flip_mask |= 1 << source
        self.log.hdcu.append(
            HdcuRecord(
                consumer_reg=reg,
                producer_regs=self._producer_regs(),
                producer_valid=self._producer_valid(),
                select=res.select,
                stall=False,
                flip_visible_mask=flip_mask,
                observable=observable,
                stall_observable=self.stall_observable and observable,
                slot=slot,
                operand=operand,
                producer_load_mask=self._producer_load_mask(),
            )
        )

    def _record_hdcu_stall(self, instr: Instruction) -> None:
        # Record the register that is actually blocked (the one produced
        # by the unready load), so the netlist's comparators match.
        blocked = 0
        for reg in instr.source_regs():
            for latch in (self.memwb_latch, self.retire_latch):
                for uop in latch:
                    if not uop.result_ready and reg in uop.dests:
                        blocked = reg
        self.log.hdcu.append(
            HdcuRecord(
                consumer_reg=blocked,
                producer_regs=self._producer_regs(),
                producer_valid=self._producer_valid(),
                select=FwdSource.RF,
                stall=True,
                flip_visible_mask=0,
                observable=bool(self.testwin & 1),
                stall_observable=self.stall_observable and bool(self.testwin & 1),
                producer_load_mask=self._producer_load_mask(),
            )
        )

    def _producer_regs(self) -> tuple[int, int, int, int]:
        regs = []
        for latch in (self.memwb_latch, self.retire_latch):
            for slot in (0, 1):
                producer = next(
                    (u for u in latch if u.slot == slot and u.dests), None
                )
                regs.append(producer.dests[0] if producer else 0)
        return tuple(regs)

    def _producer_load_mask(self) -> int:
        mask = 0
        index = 0
        for latch in (self.memwb_latch, self.retire_latch):
            for slot in (0, 1):
                if any(
                    u.slot == slot and u.is_load and not u.result_ready
                    for u in latch
                ):
                    mask |= 1 << index
                index += 1
        return mask

    def _producer_valid(self) -> int:
        mask = 0
        index = 0
        for latch in (self.memwb_latch, self.retire_latch):
            for slot in (0, 1):
                if any(u.slot == slot and u.dests for u in latch):
                    mask |= 1 << index
                index += 1
        return mask

    # ------------------------------------------------------------------
    # CSRs.
    # ------------------------------------------------------------------

    def _csr_read(self, csr: int) -> int:
        csr = Csr(csr)
        if csr is Csr.CYCLES:
            return self.cycles & MASK32
        if csr is Csr.INSTRET:
            return self.instret & MASK32
        if csr is Csr.IFSTALL:
            return self.ifstall & MASK32
        if csr is Csr.MEMSTALL:
            return self.memstall & MASK32
        if csr is Csr.HAZSTALL:
            return self.hazstall & MASK32
        if csr is Csr.COREID:
            return self.core_id
        if csr is Csr.ICU_STATUS:
            return self.icu.read_status()
        if csr is Csr.ICU_IMPREC:
            return self.icu.read_imprecision()
        if csr is Csr.ICU_PEND:
            return self.icu.pending_vector
        if csr is Csr.ICU_COUNT:
            return self.icu.read_count()
        if csr is Csr.CACHECFG:
            value = 0
            if self.fetch.icache_enabled:
                value |= CACHECFG_ICACHE_EN
            if self.memunit.dcache_enabled:
                value |= CACHECFG_DCACHE_EN
            if self.dcache.write_allocate:
                value |= CACHECFG_WRITE_ALLOCATE
            return value
        if csr is Csr.TESTWIN:
            return self.testwin
        return 0

    def _csr_write(self, csr: int, value: int) -> None:
        csr = Csr(csr)
        if csr is Csr.CACHECFG:
            self.fetch.icache_enabled = bool(value & CACHECFG_ICACHE_EN)
            self.memunit.dcache_enabled = bool(value & CACHECFG_DCACHE_EN)
            self.dcache.write_allocate = bool(value & CACHECFG_WRITE_ALLOCATE)
        elif csr is Csr.ICU_ACK:
            self.icu.acknowledge()
        elif csr is Csr.TESTWIN:
            self._set_testwin(value & 3)
        # Other CSRs are read-only; writes are ignored like real status
        # registers.

    def _set_testwin(self, value: int) -> None:
        prev = self.testwin
        self.testwin = value
        if value != prev:
            telemetry = self.telemetry
            if telemetry.enabled:
                telemetry.emit(
                    EventKind.CORE_TESTWIN,
                    core=self.core_id,
                    value=value,
                    prev=prev,
                )
