"""Module-activation recorders.

Gate-level fault simulation in this reproduction works the way the
authors' flow does: a *logic simulation* (our pipeline run) is logged,
and the log is then fault-simulated against the module netlists.  The
recorders below capture, cycle by cycle, the input vectors actually
applied to the three targeted modules — the forwarding logic, the Hazard
Detection Control Unit and the ICU — together with per-pattern
observability information (is this activation inside the
signature-accumulating test window, and would a wrong value be
distinguishable at all).

``observable`` follows the ``TESTWIN`` CSR: the cache-based wrapper sets
it around the *execution loop* only, so loading-loop activity exists in
the record (it shapes cache state) but cannot detect faults — exactly
the paper's rule that the first iteration must not contribute to the
signature.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FwdSource(enum.IntEnum):
    """Forwarding-mux data inputs, in select order."""

    RF = 0
    EX0 = 1
    EX1 = 2
    MEM0 = 3
    MEM1 = 4


NUM_FWD_SOURCES = len(FwdSource)


@dataclass(frozen=True)
class ForwardingRecord:
    """One resolution of one EX-stage operand through the forwarding muxes.

    Attributes:
        slot: issue slot of the consuming instruction (0 or 1).
        operand: operand port index (0 = first source, 1 = second).
        select: which mux input supplied the value.
        candidates: data value present on each of the 5 mux inputs
            (RF, EX0, EX1, MEM0, MEM1); absent producers contribute 0.
        valid_mask: bit i set when source i held a matching producer
            (RF is always valid).
        width: 32, or 64 on core C's extended datapath.
        observable: inside the signature window (TESTWIN = 1).
        observable_high: for 64-bit operands, whether the high word can
            reach the 32-bit signature through this use.
    """

    slot: int
    operand: int
    select: FwdSource
    candidates: tuple[int, int, int, int, int]
    valid_mask: int
    width: int = 32
    observable: bool = True
    observable_high: bool = False


@dataclass(frozen=True)
class HdcuRecord:
    """One issue-time decision of the hazard-detection control unit.

    The comparator inputs are register indices of the consuming operand
    and of every in-flight producer; the outputs are the forwarding
    select and the stall request.  ``flip_visible_mask`` says, per
    alternative source, whether selecting it instead would have produced
    a different operand value (i.e. whether a select-line fault is
    observable through the datapath on this pattern).
    """

    consumer_reg: int
    producer_regs: tuple[int, int, int, int]
    producer_valid: int
    select: FwdSource
    stall: bool
    flip_visible_mask: int
    observable: bool = True
    stall_observable: bool = False
    #: Issue slot / operand port of the consumer (routes the pattern to
    #: the right replicated comparator block in the HDCU netlist).
    slot: int = 0
    operand: int = 0
    #: Bit i set when producer source i (EX0..MEM1) is a load whose data
    #: has not returned — the condition that forces a stall when that
    #: producer is the selected one.
    producer_load_mask: int = 0


@dataclass(frozen=True)
class IcuRecord:
    """One ICU recognition as seen by the self-test procedure."""

    event_vector: int
    merged: bool
    imprecision: int
    status_bits: int
    observable: bool = True
    #: Recognition count before this recognition (exercises the ICU's
    #: counter-increment logic, read back through ICU_COUNT).
    count_before: int = 0


@dataclass
class ActivationLog:
    """All module activations captured during one pipeline run."""

    forwarding: list[ForwardingRecord] = field(default_factory=list)
    hdcu: list[HdcuRecord] = field(default_factory=list)
    icu: list[IcuRecord] = field(default_factory=list)

    def observable_forwarding(self) -> list[ForwardingRecord]:
        return [r for r in self.forwarding if r.observable]

    def observable_hdcu(self) -> list[HdcuRecord]:
        return [r for r in self.hdcu if r.observable]

    def observable_icu(self) -> list[IcuRecord]:
        return [r for r in self.icu if r.observable]

    def forwarded_path_set(self) -> set[tuple[int, int, FwdSource]]:
        """The set of (slot, operand, source) paths actually exercised
        with a non-RF forward inside the observable window — the paper's
        notion of which forwarding paths were excited."""
        return {
            (r.slot, r.operand, r.select)
            for r in self.forwarding
            if r.observable and r.select != FwdSource.RF
        }
