"""Data memory unit (the MEM stage's load/store port).

Services one access at a time (the dual-issue front end only puts one
memory operation per packet, in pipe 0).  Routing mirrors the fetch
unit: D-TCM is a private single-cycle port; cacheable addresses go
through the write-back D-cache; everything else (or a disabled cache)
becomes a bus transaction.

Write-miss policy follows ``cache.write_allocate``: with write-allocate
a store miss fills the line first and then writes into it (two bus
bursts at most: victim write-back plus fill); with no-write-allocate the
store bypasses the cache entirely — the case where the cache-based
methodology requires a dummy load after each store (Section III.1).
"""

from __future__ import annotations

from repro.errors import BusError, SimulationError
from repro.cpu.uop import Uop
from repro.mem.bus import SystemBus, Transaction, TxnKind
from repro.mem.cache import Cache, FillPlan
from repro.mem.memmap import MemoryMap, is_cacheable
from repro.mem.tcm import Tcm
from repro.telemetry.events import NULL_SINK, EventKind


class MemoryUnit:
    """Per-core load/store sequencer."""

    #: Bounded re-submissions of an access that got a bus error response.
    BUS_RETRY_LIMIT = 3

    def __init__(
        self,
        core_id: int,
        bus: SystemBus,
        memmap: MemoryMap,
        dcache: Cache,
        itcm: Tcm,
        dtcm: Tcm,
    ):
        self.core_id = core_id
        self.bus = bus
        self.memmap = memmap
        self.dcache = dcache
        self.itcm = itcm
        self.dtcm = dtcm
        self.dcache_enabled = False
        self._uop: Uop | None = None
        self._phase: str | None = None
        self._txn: Transaction | None = None
        self._plan: FillPlan | None = None
        self._ready_cycle = 0
        #: Telemetry sink (no-op unless a TelemetrySession is attached).
        self.telemetry = NULL_SINK

    @property
    def busy(self) -> bool:
        return self._uop is not None

    @property
    def waiting_on_bus(self) -> bool:
        """True when the current access is stalled on a bus transaction
        (as opposed to the fixed one-cycle TCM / cache-hit latency)."""
        return self._uop is not None and self._phase != "wait"

    def cancel(self) -> None:
        """Abandon the in-flight access (supervisor hard reset).

        Any transaction still queued on the bus completes harmlessly;
        its result is simply never collected.
        """
        self._uop = None
        self._phase = None
        self._txn = None
        self._plan = None

    # ------------------------------------------------------------------
    # Access initiation.
    # ------------------------------------------------------------------

    def begin(self, uop: Uop, cycle: int) -> None:
        """Start the access for a load/store uop entering MEM."""
        if self._uop is not None:
            raise SimulationError("memory unit already busy")
        self._uop = uop
        address = uop.mem_address
        if uop.instr.spec.is_atomic:
            # Atomics are indivisible bus transactions; they bypass the
            # D-cache and the TCM fast path by design.
            self._txn = self.bus.submit(
                Transaction(
                    core_id=self.core_id,
                    kind=TxnKind.DREAD,
                    address=address & ~3,
                    burst_words=1,
                    atomic_set=True,
                ),
                cycle,
            )
            self._phase = "direct"
            return
        tcm = self._local_tcm(address)
        if tcm is not None:
            self._do_tcm(tcm, uop)
            self._phase = "wait"
            self._ready_cycle = cycle + 1
            return
        if self.dcache_enabled and is_cacheable(address):
            self._begin_cached(uop, cycle)
        else:
            self._begin_uncached(uop, cycle)

    def _local_tcm(self, address: int) -> Tcm | None:
        if self.dtcm.contains(address):
            return self.dtcm
        if self.itcm.contains(address):
            return self.itcm
        return None

    def _do_tcm(self, tcm: Tcm, uop: Uop) -> None:
        if uop.is_load:
            if uop.mem_width == 4:
                uop.result = tcm.read_word(uop.mem_address)
            else:
                uop.result = tcm.read_byte(uop.mem_address)
        elif uop.mem_width == 4:
            tcm.write_word(uop.mem_address, uop.store_value)
        else:
            tcm.write_byte(uop.mem_address, uop.store_value)

    def _begin_cached(self, uop: Uop, cycle: int) -> None:
        address = uop.mem_address
        if self.dcache.lookup(address):
            self._do_cache_hit(uop)
            self._phase = "wait"
            self._ready_cycle = cycle + 1
            return
        if uop.is_store and not self.dcache.write_allocate:
            self.dcache.stats.write_miss_bypasses += 1
            telemetry = self.telemetry
            if telemetry.enabled:
                telemetry.emit(
                    EventKind.CACHE_WRITE_MISS_BYPASS,
                    core=self.core_id,
                    cache=self.dcache.config.name,
                    address=address,
                )
            self._begin_uncached(uop, cycle, count_access=False)
            return
        self._plan = self.dcache.prepare_fill(address)
        if self._plan.writeback_address is not None:
            self._txn = self.bus.submit(
                Transaction(
                    core_id=self.core_id,
                    kind=TxnKind.DWRITE,
                    address=self._plan.writeback_address,
                    burst_words=len(self._plan.writeback_words),
                    is_write=True,
                    write_values=self._plan.writeback_words,
                ),
                cycle,
            )
            self._phase = "writeback"
        else:
            self._submit_fill(cycle)

    def _submit_fill(self, cycle: int) -> None:
        self._txn = self.bus.submit(
            Transaction(
                core_id=self.core_id,
                kind=TxnKind.DREAD,
                address=self._plan.line_address,
                burst_words=self.dcache.config.words_per_line,
            ),
            cycle,
        )
        self._phase = "fill"

    def _do_cache_hit(self, uop: Uop) -> None:
        if uop.is_load:
            uop.result = self.dcache.read(uop.mem_address, uop.mem_width)
        else:
            self.dcache.write(uop.mem_address, uop.store_value, uop.mem_width)

    def _begin_uncached(self, uop: Uop, cycle: int, count_access: bool = True) -> None:
        if uop.is_load:
            txn = Transaction(
                core_id=self.core_id,
                kind=TxnKind.DREAD,
                address=uop.mem_address & ~3,
                burst_words=1,
            )
        else:
            txn = Transaction(
                core_id=self.core_id,
                kind=TxnKind.DWRITE,
                address=uop.mem_address if uop.mem_width == 1 else uop.mem_address & ~3,
                burst_words=1,
                is_write=True,
                write_values=[uop.store_value],
                byte_write=uop.mem_width == 1,
            )
        self._txn = self.bus.submit(txn, cycle)
        self._phase = "direct"

    # ------------------------------------------------------------------
    # Per-cycle polling.
    # ------------------------------------------------------------------

    def poll(self, cycle: int) -> bool:
        """Advance the access; True when the uop's access has completed."""
        uop = self._uop
        if uop is None:
            return True
        if self._phase == "wait":
            if cycle < self._ready_cycle:
                return False
            self._complete(uop)
            return True
        txn = self._txn
        if txn is None or not txn.done:
            return False
        if txn.error:
            # Retriable bus error response: re-submit the same access in
            # the same phase, up to the bounded retry budget.
            if txn.retries >= self.BUS_RETRY_LIMIT:
                kind = "write" if txn.is_write else "read"
                raise BusError(
                    "data access failed",
                    core_id=self.core_id,
                    address=txn.address,
                    kind=kind,
                    retries=txn.retries,
                )
            self._txn = self.bus.submit(txn.retry_clone(), cycle)
            telemetry = self.telemetry
            if telemetry.enabled:
                telemetry.emit(
                    EventKind.BUS_RETRY,
                    core=self.core_id,
                    kind=txn.kind.value,
                    address=txn.address,
                    attempt=self._txn.retries,
                )
            return False
        if self._phase == "writeback":
            self._txn = None
            self._submit_fill(cycle)
            return False
        if self._phase == "fill":
            self.dcache.install(self._plan.line_address, txn.data)
            self._do_cache_hit(uop)
            self._txn = None
            self._plan = None
            self._complete(uop)
            return True
        # Direct (uncached) access.
        if uop.is_load:
            word = txn.data[0]
            if uop.mem_width == 1:
                word = (word >> (8 * (uop.mem_address & 3))) & 0xFF
            uop.result = word
        self._txn = None
        self._complete(uop)
        return True

    def _complete(self, uop: Uop) -> None:
        if uop.is_load:
            uop.result_ready = True
        uop.mem_done = True
        self._uop = None
        self._phase = None
