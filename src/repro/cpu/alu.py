"""Functional execution of ALU operations, including the trapping variants.

The trapping instructions are the ICU's synchronous event sources: each
returns the architectural result *and* the event it raised, if any.  The
event is delivered to the ICU when the instruction retires and is then
recognised *imprecisely* — see :mod:`repro.cpu.icu`.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.instructions import Event, Mnemonic
from repro.utils.bitops import MASK32, MASK64, to_signed, to_unsigned

INT32_MIN, INT32_MAX = -(1 << 31), (1 << 31) - 1


def execute_alu(
    mnemonic: Mnemonic, op1: int, op2: int
) -> tuple[int, Event | None]:
    """Execute a register-register or trapping ALU operation.

    ``op1``/``op2`` are 32-bit unsigned patterns (64-bit for the ``*64``
    mnemonics).  Returns ``(result, event)`` where ``event`` is the
    synchronous imprecise interrupt raised, or None.
    """
    a, b = op1 & MASK32, op2 & MASK32
    sa, sb = to_signed(a), to_signed(b)
    if mnemonic is Mnemonic.ADD:
        return (a + b) & MASK32, None
    if mnemonic is Mnemonic.SUB:
        return (a - b) & MASK32, None
    if mnemonic is Mnemonic.AND:
        return a & b, None
    if mnemonic is Mnemonic.OR:
        return a | b, None
    if mnemonic is Mnemonic.XOR:
        return a ^ b, None
    if mnemonic is Mnemonic.NOR:
        return ~(a | b) & MASK32, None
    if mnemonic is Mnemonic.SLT:
        return int(sa < sb), None
    if mnemonic is Mnemonic.SLTU:
        return int(a < b), None
    if mnemonic is Mnemonic.SLL:
        return (a << (b & 31)) & MASK32, None
    if mnemonic is Mnemonic.SRL:
        return a >> (b & 31), None
    if mnemonic is Mnemonic.SRA:
        return to_unsigned(sa >> (b & 31)), None
    if mnemonic is Mnemonic.MUL:
        return (a * b) & MASK32, None
    if mnemonic is Mnemonic.MULH:
        return to_unsigned((sa * sb) >> 32), None
    if mnemonic is Mnemonic.ADDO:
        total = sa + sb
        event = Event.OVF_ADD if not INT32_MIN <= total <= INT32_MAX else None
        return total & MASK32, event
    if mnemonic is Mnemonic.SUBO:
        total = sa - sb
        event = Event.OVF_SUB if not INT32_MIN <= total <= INT32_MAX else None
        return total & MASK32, event
    if mnemonic is Mnemonic.MULO:
        product = sa * sb
        event = Event.OVF_MUL if not INT32_MIN <= product <= INT32_MAX else None
        return product & MASK32, event
    if mnemonic is Mnemonic.SATADD:
        total = sa + sb
        if total > INT32_MAX:
            return INT32_MAX & MASK32, Event.SAT
        if total < INT32_MIN:
            return to_unsigned(INT32_MIN), Event.SAT
        return total & MASK32, None
    if mnemonic is Mnemonic.DIVT:
        if b == 0:
            return 0, Event.DIV0
        quotient = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            quotient = -quotient
        return to_unsigned(quotient), None
    if mnemonic is Mnemonic.SLLO:
        shift = b & 31
        shifted_out = (a >> (32 - shift)) if shift else 0
        return (a << shift) & MASK32, Event.SHIFTO if shifted_out else None
    raise SimulationError(f"{mnemonic.value} is not a 32-bit ALU operation")


def execute_alu64(mnemonic: Mnemonic, op1: int, op2: int) -> int:
    """Execute a 64-bit register-pair operation (core C extended ISA)."""
    a, b = op1 & MASK64, op2 & MASK64
    if mnemonic is Mnemonic.ADD64:
        return (a + b) & MASK64
    if mnemonic is Mnemonic.SUB64:
        return (a - b) & MASK64
    if mnemonic is Mnemonic.AND64:
        return a & b
    if mnemonic is Mnemonic.OR64:
        return a | b
    if mnemonic is Mnemonic.XOR64:
        return a ^ b
    raise SimulationError(f"{mnemonic.value} is not a 64-bit ALU operation")


def execute_imm(mnemonic: Mnemonic, op1: int, imm: int) -> int:
    """Execute a register-immediate operation.

    ``ADDI``/``SLTI`` treat the immediate as signed; the logical
    immediates (``ANDI``/``ORI``/``XORI``) and the shift amounts treat it
    as an unsigned 15-bit field.
    """
    a = op1 & MASK32
    if mnemonic is Mnemonic.ADDI:
        return (a + to_unsigned(imm)) & MASK32
    if mnemonic is Mnemonic.ANDI:
        return a & to_unsigned(imm, 15)
    if mnemonic is Mnemonic.ORI:
        return a | to_unsigned(imm, 15)
    if mnemonic is Mnemonic.XORI:
        return a ^ to_unsigned(imm, 15)
    if mnemonic is Mnemonic.SLTI:
        return int(to_signed(a) < imm)
    if mnemonic is Mnemonic.SLLI:
        return (a << (imm & 31)) & MASK32
    if mnemonic is Mnemonic.SRLI:
        return a >> (imm & 31)
    if mnemonic is Mnemonic.SRAI:
        return to_unsigned(to_signed(a) >> (imm & 31))
    raise SimulationError(f"{mnemonic.value} is not an immediate ALU operation")


def branch_taken(mnemonic: Mnemonic, op1: int, op2: int) -> bool:
    """Evaluate a conditional-branch comparison."""
    a, b = op1 & MASK32, op2 & MASK32
    if mnemonic is Mnemonic.BEQ:
        return a == b
    if mnemonic is Mnemonic.BNE:
        return a != b
    if mnemonic is Mnemonic.BLT:
        return to_signed(a) < to_signed(b)
    if mnemonic is Mnemonic.BGE:
        return to_signed(a) >= to_signed(b)
    if mnemonic is Mnemonic.BLTU:
        return a < b
    if mnemonic is Mnemonic.BGEU:
        return a >= b
    raise SimulationError(f"{mnemonic.value} is not a conditional branch")
