"""Interrupt Control Unit with synchronous *imprecise* interrupts.

Synchronous imprecise interrupts (Smith & Pleszkun's terminology, cited
as [20] in the paper) are raised by a particular instruction but
recognised only after a **variable number of younger instructions have
retired** — the number depends on the retirement stream, which in a
multi-core SoC depends on bus-contention stalls.  The self-test routine
of Singh et al. [21] reads the ICU's software-visible registers into the
test signature; when the imprecision varies, so does the signature.

Model
-----
A trapping instruction delivers its event to the ICU at retirement.  The
event sits in a pending queue until a *recognition slot*: the first cycle
in which the pipeline retires fewer than two instructions (a retirement
bubble), or after ``max_wait`` cycles.  All events pending at that moment
are recognised together ("merged"), each setting its mapped status bit.

Status-bit mapping is the per-core implementation detail the paper uses
to explain core C's ~10 % higher ICU fault coverage (Section IV-D): on
cores A and B two event sources share each status bit, so merged or
mis-attributed events are indistinguishable; on core C the mapping is
one-hot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import NUM_EVENTS, Event


@dataclass
class IcuRecognition:
    """One recognition: the merged event set and its imprecision."""

    cycle: int
    events: tuple[Event, ...]
    imprecision: int
    status_bits: int
    merged: bool


@dataclass
class _Pending:
    event: Event
    raise_cycle: int
    retired_after: int = 0
    wait_cycles: int = 0


@dataclass
class IcuConfig:
    """Per-core ICU implementation parameters."""

    #: True on cores A/B: event pairs share a status bit; False on core C.
    shared_status_bits: bool = True
    #: Recognition is forced after this many cycles without a retire bubble.
    max_wait: int = 6


class Icu:
    """The interrupt control unit of one core."""

    def __init__(self, config: IcuConfig):
        self.config = config
        self._pending: list[_Pending] = []
        self.status = 0
        self.imprecision = 0
        self.recognised_count = 0
        self.recognitions: list[IcuRecognition] = []

    # ------------------------------------------------------------------
    # Status-bit mapping.
    # ------------------------------------------------------------------

    def map_event(self, event: Event) -> int:
        """Status bit index for ``event`` under this core's mapping."""
        if self.config.shared_status_bits:
            return int(event) // 2
        return int(event)

    @property
    def num_status_bits(self) -> int:
        return NUM_EVENTS // 2 if self.config.shared_status_bits else NUM_EVENTS

    # ------------------------------------------------------------------
    # Pipeline interface.
    # ------------------------------------------------------------------

    def raise_event(self, event: Event, cycle: int) -> None:
        """Deliver an event from a retiring trapping instruction."""
        self._pending.append(_Pending(event, cycle))

    @property
    def pending_vector(self) -> int:
        """Bitmask of raw (unmapped) pending event lines."""
        vector = 0
        for entry in self._pending:
            vector |= 1 << int(entry.event)
        return vector

    def step(self, cycle: int, retired_this_cycle: int) -> IcuRecognition | None:
        """Advance one clock cycle given how many instructions retired.

        Returns the recognition performed this cycle, if any.
        """
        if not self._pending:
            return None
        for entry in self._pending:
            entry.retired_after += retired_this_cycle
            entry.wait_cycles += 1
        head = self._pending[0]
        bubble = retired_this_cycle < 2
        if not bubble and head.wait_cycles < self.config.max_wait:
            return None
        recognised = self._pending
        self._pending = []
        bits = 0
        for entry in recognised:
            bits |= 1 << self.map_event(entry.event)
        self.status |= bits
        self.imprecision = recognised[-1].retired_after
        self.recognised_count += len(recognised)
        recognition = IcuRecognition(
            cycle=cycle,
            events=tuple(entry.event for entry in recognised),
            imprecision=self.imprecision,
            status_bits=bits,
            merged=len(recognised) > 1,
        )
        self.recognitions.append(recognition)
        return recognition

    # ------------------------------------------------------------------
    # Software-visible register file.
    # ------------------------------------------------------------------

    def read_status(self) -> int:
        return self.status

    def read_imprecision(self) -> int:
        return self.imprecision

    def read_count(self) -> int:
        return self.recognised_count

    def acknowledge(self) -> None:
        """Software acknowledge: clears status and the imprecision latch."""
        self.status = 0
        self.imprecision = 0
