"""In-flight instruction state (micro-op) flowing down the pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Event, Instruction


@dataclass
class Uop:
    """One issued instruction travelling through EX -> MEM -> WB.

    ``result`` is computed eagerly at issue for ALU operations (the
    values forwarded to later consumers are architecturally identical to
    what the real forwarding network would deliver); loads leave
    ``result_ready`` False until their data returns from the memory
    system, which is what creates load-use stalls and bus-dependent
    forwarding behaviour.
    """

    seq: int
    pc: int
    instr: Instruction
    slot: int
    dests: tuple[int, ...] = ()
    result: int | None = None
    is64: bool = False
    result_ready: bool = True
    trap_event: Event | None = None
    # Memory access bookkeeping (loads/stores only).
    is_load: bool = False
    is_store: bool = False
    mem_address: int = 0
    mem_width: int = 4
    store_value: int = 0
    mem_started: bool = False
    mem_done: bool = False
    # Trace timestamps (cycle numbers; -1 = not reached).
    fetch_cycle: int = -1
    issue_cycle: int = -1
    mem_cycle: int = -1
    wb_cycle: int = -1
    #: Forwarding selects used per operand port, for the Fig. 1 trace.
    fwd_selects: list = field(default_factory=list)

    def dest_value(self, reg: int) -> int:
        """The 32-bit value this uop will write to architectural ``reg``."""
        if self.result is None:
            raise ValueError(f"uop {self.instr} has no result")
        if not self.is64:
            return self.result & 0xFFFF_FFFF
        if reg == self.dests[0]:
            return self.result & 0xFFFF_FFFF
        return (self.result >> 32) & 0xFFFF_FFFF
