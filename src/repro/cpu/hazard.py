"""Issue rules of the Hazard Detection Control Unit (HDCU).

The HDCU "detects dependencies among issue packets, driving the
forwarding paths and possibly stalls the pipeline if the forwarding is
not possible" (Section IV-A).  In this model it decides, every cycle:

* whether the two queue-head instructions may form a dual-issue packet
  (structural rules of the dual-issue front end), and
* whether issue must stall because a needed value cannot be forwarded
  yet (load-use hazard).

Wrongly inserted stalls are the failure mode the performance counters
are meant to catch, which is why the full forwarding test of Bernardi
et al. [19] folds the stall counters into the signature.
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.cpu.uop import Uop


def can_dual_issue(first: Instruction, second: Instruction) -> bool:
    """Structural + dependency rules for pairing two instructions.

    Slot 1 has only a plain ALU: memory, multiplier, branch and system
    instructions must occupy slot 0.  A branch or system instruction in
    slot 0 terminates the packet.  Intra-packet RAW and WAW dependencies
    split the packet (the dependent instruction issues one cycle later
    and receives its operand over the cross-pipe EX->EX path).
    """
    spec0, spec1 = first.spec, second.spec
    if spec0.is_branch or spec0.is_system:
        return False
    if spec1.is_branch or spec1.is_system:
        return False
    if spec1.is_mem or spec1.is_mul:
        return False
    dests0 = set(first.dest_regs())
    if dests0 & set(second.source_regs()):
        return False
    if dests0 & set(second.dest_regs()):
        return False
    return True


def unresolved_producer(instr: Instruction, *latches: list[Uop]) -> bool:
    """True when a needed producer has no result yet.

    This covers the classic load-use hazard (a load one packet ahead
    whose data arrives at the end of MEM) and loads still waiting on the
    bus: in both cases the HDCU must stall issue because forwarding is
    not possible yet.
    """
    sources = set(instr.source_regs())
    if not sources:
        return False
    for latch in latches:
        for uop in latch:
            if not uop.result_ready and sources & set(uop.dests):
                return True
    return False
