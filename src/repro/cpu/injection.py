"""Behavioural fault injection into the live pipeline.

"When the test is executed in field, the test signature represents the
only way to safely detect the occurrence of faults" (Section I).  This
module closes the loop on that claim: a stuck-at fault is injected into
the *running* forwarding network (not the offline netlist), the
finalised self-test procedure executes normally, and detection shows up
the only way it can in the field — as a signature mismatch and a FAIL
verdict in the mailbox.

The injectable faults correspond one-to-one to primary-input stem
faults of the generated mux netlists (data column x bit, or a forced
select), so in-field detection can be cross-checked against the PPSFP
verdict for the same fault — which the test suite does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.recording import FwdSource


@dataclass(frozen=True)
class DataBitFault:
    """Stuck-at on one bit of one mux data column of one consumer port.

    The faulty bit corrupts the operand only when the mux actually
    selects that column — unexcited paths mask the fault, exactly the
    coverage-loss mechanism of Section II.
    """

    slot: int
    operand: int
    source: FwdSource
    bit: int
    stuck_to: int  # 0 or 1

    def apply(self, slot: int, operand: int, select: FwdSource, value: int) -> int:
        if (slot, operand) != (self.slot, self.operand):
            return value
        if select != self.source:
            return value
        if self.stuck_to:
            return value | (1 << self.bit)
        return value & ~(1 << self.bit)


@dataclass(frozen=True)
class SelectFault:
    """The mux of one consumer port permanently selects ``forced``.

    Models a hard select-line failure; visible only on patterns where
    the forced column's data differs from the correct one.
    """

    slot: int
    operand: int
    forced: FwdSource

    def apply_resolution(self, slot: int, operand: int, resolution) -> int:
        if (slot, operand) != (self.slot, self.operand):
            return resolution.value
        return resolution.candidates[int(self.forced)]


def install(core, fault) -> None:
    """Arm a fault on a core (replaces any previously armed fault)."""
    core.injected_fault = fault


def clear(core) -> None:
    """Return the core to fault-free operation."""
    core.injected_fault = None
