"""Architectural register state."""

from __future__ import annotations

from repro.errors import SimulationError
from repro.isa.instructions import NUM_REGS
from repro.utils.bitops import MASK32


class RegFile:
    """32 general-purpose 32-bit registers; r0 is hard-wired to zero."""

    def __init__(self):
        self._regs = [0] * NUM_REGS

    def read(self, index: int) -> int:
        if not 0 <= index < NUM_REGS:
            raise SimulationError(f"register r{index} does not exist")
        return self._regs[index]

    def write(self, index: int, value: int) -> None:
        if not 0 <= index < NUM_REGS:
            raise SimulationError(f"register r{index} does not exist")
        if index != 0:
            self._regs[index] = value & MASK32

    def read_pair(self, index: int) -> int:
        """Read the 64-bit register pair (r[index] low, r[index+1] high)."""
        return self.read(index) | (self.read(index + 1) << 32)

    def write_pair(self, index: int, value: int) -> None:
        """Write a 64-bit value to a register pair."""
        self.write(index, value & MASK32)
        self.write(index + 1, (value >> 32) & MASK32)

    def snapshot(self) -> tuple[int, ...]:
        """Immutable copy of the whole file (for differential testing)."""
        return tuple(self._regs)
