"""Instruction fetch unit.

Fetches aligned fetch groups into a small queue.  Three paths exist,
selected per address:

* **I-TCM** — private single-cycle scratchpad, two words per cycle;
* **I-cache** (when enabled) — two words per cycle on a hit, a full
  line fill over the system bus on a miss;
* **uncached** — 16-byte aligned burst transactions on the system bus,
  with up to two bursts in flight (the flash controller streams ahead
  of execution, like a real prefetcher).

The uncached path is where the paper's Section II uncertainty lives:
with an idle bus the streamed bursts keep the issue queue fed and most
issue packets stay back-to-back, but every cycle another core holds the
bus delays the next burst and opens a fetch gap — splitting packets and
silently changing which forwarding paths get excited.  A redirect to an
unaligned target fetches a partial group first, so the code-alignment
scenarios of Table II genuinely change the fetch phase.
"""

from __future__ import annotations

from collections import deque
from functools import lru_cache

from repro.errors import BusError, MemoryError_
from repro.isa.encoding import decode
from repro.isa.instructions import Instruction
from repro.mem.bus import SystemBus, Transaction, TxnKind
from repro.mem.cache import Cache
from repro.mem.memmap import MemoryMap, is_cacheable
from repro.mem.tcm import Tcm
from repro.telemetry.events import NULL_SINK, EventKind


@lru_cache(maxsize=65536)
def _decode_word(word: int) -> Instruction:
    return decode(word)


class FetchUnit:
    """Per-core instruction fetch front end feeding the issue queue."""

    QUEUE_CAPACITY = 8
    #: Uncached fetch granule: one 16-byte (two-packet) burst.
    UNCACHED_GROUP_BYTES = 16
    #: Outstanding uncached bursts (the prefetch stream depth).
    UNCACHED_PIPELINE = 2
    #: Bounded re-submissions of a fetch that got a bus error response.
    BUS_RETRY_LIMIT = 3

    def __init__(
        self,
        core_id: int,
        bus: SystemBus,
        memmap: MemoryMap,
        icache: Cache,
        itcm: Tcm,
    ):
        self.core_id = core_id
        self.bus = bus
        self.memmap = memmap
        self.icache = icache
        self.itcm = itcm
        self.icache_enabled = False
        self.fetch_pc = 0
        self.queue: list[tuple[int, Instruction]] = []
        #: In-flight fetch transactions, oldest first.  Entries are
        #: (txn, pc, is_fill, discard).
        self._inflight: deque[list] = deque()
        #: Telemetry sink (no-op unless a TelemetrySession is attached).
        self.telemetry = NULL_SINK

    # ------------------------------------------------------------------
    # Control.
    # ------------------------------------------------------------------

    def reset(self, pc: int) -> None:
        """Point the fetch unit at ``pc`` and clear all buffered state."""
        self.redirect(pc)

    def redirect(self, pc: int) -> None:
        """Branch redirect: flush the queue, drop any in-flight fetches."""
        if pc % 4:
            raise MemoryError_(
                f"core {self.core_id}: fetch target {pc:#010x} is not "
                "word-aligned"
            )
        self.fetch_pc = pc
        self.queue.clear()
        for entry in self._inflight:
            entry[3] = True  # discard on completion

    @property
    def busy(self) -> bool:
        """True while any fetch transaction is outstanding."""
        return any(not entry[0].done for entry in self._inflight)

    # ------------------------------------------------------------------
    # Per-cycle operation.
    # ------------------------------------------------------------------

    def step(self, cycle: int, halted: bool) -> None:
        """Collect completed fetches (in order) and launch new ones."""
        self._collect(cycle)
        if halted:
            return
        pc = self.fetch_pc
        if self.itcm.contains(pc):
            if not self._inflight and len(self.queue) <= self.QUEUE_CAPACITY - 2:
                self._fetch_from_tcm(pc)
        elif self.icache_enabled and is_cacheable(pc):
            if not self._inflight and len(self.queue) <= self.QUEUE_CAPACITY - 2:
                self._fetch_from_cache(pc, cycle)
        else:
            self._fetch_uncached(cycle)

    def _collect(self, cycle: int) -> None:
        while self._inflight and self._inflight[0][0].done:
            txn, pc, is_fill, discard = self._inflight.popleft()
            if discard:
                continue
            if txn.error:
                # Retriable bus error response: re-submit the same fetch
                # at the head of the stream so program order holds, up
                # to the bounded retry budget.
                if txn.retries >= self.BUS_RETRY_LIMIT:
                    raise BusError(
                        "instruction fetch failed",
                        core_id=self.core_id,
                        address=txn.address,
                        kind="ifetch",
                        retries=txn.retries,
                    )
                retry = self.bus.submit(txn.retry_clone(), cycle)
                telemetry = self.telemetry
                if telemetry.enabled:
                    telemetry.emit(
                        EventKind.BUS_RETRY,
                        core=self.core_id,
                        kind=txn.kind.value,
                        address=txn.address,
                        attempt=retry.retries,
                    )
                self._inflight.appendleft([retry, pc, is_fill, False])
                return
            if is_fill:
                self.icache.install(txn.address, txn.data)
                # The requested words are read out of the cache on the
                # next step (fill-to-fetch turnaround).
                continue
            for i, word in enumerate(txn.data):
                self.queue.append((pc + 4 * i, _decode_word(word)))

    def _group_words(self, pc: int) -> int:
        """Words left in the 8-byte aligned fetch group containing ``pc``."""
        return 1 if (pc >> 2) & 1 else 2

    def _fetch_from_tcm(self, pc: int) -> None:
        for _ in range(self._group_words(pc)):
            word = self.itcm.read_word(pc)
            self.queue.append((pc, _decode_word(word)))
            pc += 4
        self.fetch_pc = pc

    def _fetch_from_cache(self, pc: int, cycle: int) -> None:
        if not self.icache.lookup(pc):
            plan = self.icache.prepare_fill(pc)
            # Instruction lines are never dirty; only the fill is needed.
            txn = self.bus.submit(
                Transaction(
                    core_id=self.core_id,
                    kind=TxnKind.IFETCH,
                    address=plan.line_address,
                    burst_words=self.icache.config.words_per_line,
                ),
                cycle,
            )
            self._inflight.append([txn, pc, True, False])
            return
        # An 8-byte fetch group never crosses a cache line, so once the
        # first word hits the whole group is resident.
        for _ in range(self._group_words(pc)):
            word = self.icache.read(pc)
            self.queue.append((pc, _decode_word(word)))
            pc += 4
        self.fetch_pc = pc

    def _fetch_uncached(self, cycle: int) -> None:
        pending_words = sum(
            entry[0].burst_words for entry in self._inflight if not entry[3]
        )
        while (
            len(self._inflight) < self.UNCACHED_PIPELINE
            and len(self.queue) + pending_words <= self.QUEUE_CAPACITY - 4
        ):
            pc = self.fetch_pc
            group = self.UNCACHED_GROUP_BYTES
            words = (group - (pc % group)) // 4
            txn = self.bus.submit(
                Transaction(
                    core_id=self.core_id,
                    kind=TxnKind.IFETCH,
                    address=pc,
                    burst_words=words,
                ),
                cycle,
            )
            self._inflight.append([txn, pc, False, False])
            self.fetch_pc = pc + 4 * words
            pending_words += words
