"""The forwarding network: operand resolution and activation recording.

This module mirrors the *Forwarding Logic* of the paper's case-study
processor: "the multiplexers that directly feed and collect the results
produced by the different execution units" (Section IV-A).  Each EX
operand port of each issue slot is a 5:1 mux choosing between the
register file and four in-flight producers:

======  ==============================================================
source  meaning (distance in issue packets)
======  ==============================================================
RF      register file (producer retired, i.e. >= 3 packets away)
EX0/1   EX/MEM latch of pipe 0 / pipe 1 (producer 1 packet away)
MEM0/1  MEM/WB latch of pipe 0 / pipe 1 (producer 2 packets away)
======  ==============================================================

When bus contention delays a fetch, a consumer that would have issued
one packet after its producer instead issues three or more packets
later: the mux selects RF, the EX->EX path is *not excited*, and any
stuck-at fault on that path goes undetected — Fig. 1b of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.recording import FwdSource
from repro.cpu.state import RegFile
from repro.cpu.uop import Uop


@dataclass
class Resolution:
    """Result of resolving one architectural register at issue time."""

    value: int
    select: FwdSource
    ready: bool
    #: Value on each mux input (RF, EX0, EX1, MEM0, MEM1); 0 when absent.
    candidates: tuple[int, int, int, int, int]
    #: Bit i set when source i had a matching, ready producer.
    valid_mask: int


def _producer_in(stage: list[Uop], slot: int, reg: int) -> Uop | None:
    for uop in stage:
        if uop.slot == slot and reg in uop.dests:
            return uop
    return None


def resolve_register(
    reg: int,
    ex_source_latch: list[Uop],
    mem_source_latch: list[Uop],
    regfile: RegFile,
) -> Resolution:
    """Resolve one architectural register through the forwarding muxes.

    ``ex_source_latch`` holds the packet issued one cycle before the
    consumer (its result sits on the EX/MEM boundary: the EX->EX paths);
    ``mem_source_latch`` the packet issued two cycles before (MEM/WB
    boundary: the MEM->EX paths).  A producer three or more packets
    ahead has already written the register file when issue runs, so the
    plain RF read covers it — no forwarding path is excited, which is
    the paper's Fig. 1b broken-forwarding case.  Priority is
    youngest-first.  ``ready`` is False when the youngest matching
    producer is a load whose data has not returned yet: the issue logic
    must stall (the HDCU's "forwarding not possible" case).
    """
    rf_value = regfile.read(reg)
    candidates = [rf_value, 0, 0, 0, 0]
    valid_mask = 1  # RF is always a valid source.
    chosen: tuple[FwdSource, Uop] | None = None
    sources = (
        (FwdSource.EX0, ex_source_latch, 0),
        (FwdSource.EX1, ex_source_latch, 1),
        (FwdSource.MEM0, mem_source_latch, 0),
        (FwdSource.MEM1, mem_source_latch, 1),
    )
    for source, stage, slot in sources:
        producer = _producer_in(stage, slot, reg)
        if producer is None:
            continue
        if not producer.result_ready:
            if chosen is None:
                return Resolution(0, source, False, tuple(candidates), valid_mask)
            continue
        candidates[int(source)] = producer.dest_value(reg)
        valid_mask |= 1 << int(source)
        if chosen is None:
            chosen = (source, producer)
    if reg == 0:
        return Resolution(0, FwdSource.RF, True, tuple(candidates), valid_mask)
    if chosen is None:
        return Resolution(rf_value, FwdSource.RF, True, tuple(candidates), valid_mask)
    source, producer = chosen
    return Resolution(
        producer.dest_value(reg), source, True, tuple(candidates), valid_mask
    )
