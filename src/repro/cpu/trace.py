"""Pipeline trace rendering (reproduces the paper's Fig. 1 diagrams).

With ``core.keep_trace = True`` every issued uop records the cycle it
passed each stage; :func:`render_pipeline_diagram` turns a window of the
trace into the classic instruction/cycle grid:

    add r7, r6, r5   | D  E  M  W        |
    add r9, r7, r4   |    D  E  M  W     |

Stage letters: ``D`` issue/decode, ``E`` execute, ``M`` memory,
``W`` write-back.  Gaps between ``D`` columns of dependent instructions
are exactly the stalls that break forwarding adjacency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.recording import FwdSource
from repro.cpu.uop import Uop


@dataclass(frozen=True)
class TraceRow:
    """One instruction's stage schedule extracted from a uop."""

    text: str
    issue_cycle: int
    mem_cycle: int
    wb_cycle: int
    selects: tuple[FwdSource, ...]


def trace_rows(uops: list[Uop]) -> list[TraceRow]:
    """Convert traced uops into renderable rows."""
    return [
        TraceRow(
            text=str(uop.instr),
            issue_cycle=uop.issue_cycle,
            mem_cycle=uop.mem_cycle,
            wb_cycle=uop.wb_cycle,
            selects=tuple(uop.fwd_selects),
        )
        for uop in uops
    ]


def render_pipeline_diagram(uops: list[Uop], label_width: int = 24) -> str:
    """Render a cycle-by-cycle pipeline occupancy diagram."""
    if not uops:
        return "(empty trace)"
    rows = trace_rows(uops)

    def effective_wb(row: TraceRow) -> int:
        # A uop cut off before write-back records wb_cycle = -1; render
        # it with the nominal issue+2 schedule (matching the stage
        # placement below) instead of letting -1 shrink the grid.
        return row.wb_cycle if row.wb_cycle >= 0 else row.issue_cycle + 2

    first = min(row.issue_cycle for row in rows)
    last = max(effective_wb(row) for row in rows) + 1
    span = last - first + 1
    lines = []
    header = " " * label_width + "  " + "".join(
        f"{(first + i) % 100:>3}" for i in range(span)
    )
    lines.append(header)
    for row in rows:
        cells = ["  ."] * span
        wb = effective_wb(row)
        stages = [
            (row.issue_cycle, "D"),
            (row.issue_cycle + 1, "E"),
            (wb, "M"),
            (wb + 1, "W"),
        ]
        # Decode at issue, execute the cycle after; the MEM/WB boundary
        # is the recorded wb_cycle, with retirement one cycle later.
        seen = set()
        for cycle, letter in stages:
            index = cycle - first
            if 0 <= index < span and index not in seen:
                cells[index] = f"  {letter}"
                seen.add(index)
        label = row.text[: label_width - 1].ljust(label_width)
        forwards = ",".join(s.name for s in row.selects if s != FwdSource.RF)
        suffix = f"   fwd: {forwards}" if forwards else ""
        lines.append(label + "  " + "".join(cells) + suffix)
    return "\n".join(lines)
