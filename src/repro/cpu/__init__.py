"""Dual-issue pipelined CPU model with module-activation recording."""

from repro.cpu.alu import branch_taken, execute_alu, execute_alu64, execute_imm
from repro.cpu.core import (
    CORE_MODEL_A,
    CORE_MODEL_B,
    CORE_MODEL_C,
    DCACHE_CONFIG,
    ICACHE_CONFIG,
    Core,
    CoreModel,
)
from repro.cpu.fetch import FetchUnit
from repro.cpu.forwarding import Resolution, resolve_register
from repro.cpu.hazard import can_dual_issue, unresolved_producer
from repro.cpu.icu import Icu, IcuConfig, IcuRecognition
from repro.cpu.injection import DataBitFault, SelectFault, clear, install
from repro.cpu.memunit import MemoryUnit
from repro.cpu.recording import (
    ActivationLog,
    ForwardingRecord,
    FwdSource,
    HdcuRecord,
    IcuRecord,
)
from repro.cpu.state import RegFile
from repro.cpu.trace import render_pipeline_diagram, trace_rows
from repro.cpu.uop import Uop

__all__ = [
    "branch_taken",
    "execute_alu",
    "execute_alu64",
    "execute_imm",
    "CORE_MODEL_A",
    "CORE_MODEL_B",
    "CORE_MODEL_C",
    "DCACHE_CONFIG",
    "ICACHE_CONFIG",
    "Core",
    "CoreModel",
    "FetchUnit",
    "Resolution",
    "resolve_register",
    "can_dual_issue",
    "unresolved_producer",
    "Icu",
    "IcuConfig",
    "IcuRecognition",
    "DataBitFault",
    "SelectFault",
    "clear",
    "install",
    "MemoryUnit",
    "ActivationLog",
    "ForwardingRecord",
    "FwdSource",
    "HdcuRecord",
    "IcuRecord",
    "RegFile",
    "render_pipeline_diagram",
    "trace_rows",
    "Uop",
]
