"""Test-signature accumulation (software MISR).

Every observed value is compressed into a 32-bit signature with a
rotate-and-xor step — the classic software multiple-input signature
register.  The same function exists twice: as emitted instructions (what
the routine executes) and as a Python model (used to derive golden
signatures and in unit tests to check the two agree).
"""

from __future__ import annotations

from repro.isa.builder import AsmBuilder
from repro.stl.conventions import SIG_REG, SIG_T0, SIG_T1
from repro.utils.bitops import rotl32

#: Initial signature value loaded before the test body runs.
SIGNATURE_SEED = 0x5EED_0001


def signature_update(signature: int, value: int) -> int:
    """One MISR step: ``sig = rotl(sig, 1) ^ value`` (Python model)."""
    return rotl32(signature, 1) ^ (value & 0xFFFF_FFFF)


def signature_of(values, seed: int = SIGNATURE_SEED) -> int:
    """Fold an iterable of values into a signature (Python model)."""
    signature = seed
    for value in values:
        signature = signature_update(signature, value)
    return signature


def emit_signature_update(asm: AsmBuilder, value_reg: int) -> None:
    """Emit the 4-instruction MISR step folding ``value_reg`` into SIG_REG.

    The first two instructions are independent and dual-issue as one
    packet; the OR and XOR each issue alone (they depend on the packet
    before), so the sequence has a fixed, stall-free shape of 3 packets.
    """
    asm.slli(SIG_T0, SIG_REG, 1)
    asm.srli(SIG_T1, SIG_REG, 31)
    asm.or_(SIG_REG, SIG_T0, SIG_T1)
    asm.xor(SIG_REG, SIG_REG, value_reg)


def emit_signature_init(asm: AsmBuilder, seed: int = SIGNATURE_SEED) -> None:
    """Emit the signature-seed load (block *a* of the paper's Fig. 2)."""
    asm.li(SIG_REG, seed)
