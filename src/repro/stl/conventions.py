"""Register and memory conventions shared by every STL routine.

Keeping a fixed register split between the test *body* and the
surrounding structure (signature accumulation, the cache-based wrapper's
loop control) lets any single-core routine body be embedded unmodified
into the multi-core wrapper — the property the paper highlights: "the
methodology does not require significant modifications of the
already-existing algorithms".
"""

from __future__ import annotations

#: Signature accumulator (a register, so the verdict survives cache
#: invalidation and never needs the memory subsystem).
SIG_REG = 28
#: Scratch registers used by the 4-instruction MISR update sequence.
SIG_T0 = 26
SIG_T1 = 27
#: Wrapper-owned registers: scratch, the loading/execution iteration
#: counter (0 = loading loop, 1 = execution loop; doubles as the TESTWIN
#: value) and the subroutine link register.
WRAP_TMP = 29
WRAP_ITER = 30
LINK_REG = 31
#: Base pointer for the routine's SRAM scratch data.
DATA_PTR = 21

#: Registers a routine body may clobber freely.
BODY_REGS = tuple(r for r in range(1, 26) if r != DATA_PTR)

#: Result mailbox values written to the core's D-TCM (offset 0).
RESULT_RUNNING = 0
RESULT_PASS = 0x600D
RESULT_FAIL = 0xBAD0

#: Byte offset of the result mailbox inside each core's D-TCM.
MAILBOX_OFFSET = 0

#: Default per-core SRAM scratch area layout.
SCRATCH_BASE = 0x2001_0000
SCRATCH_STRIDE = 0x1000


def scratch_base(core_index: int) -> int:
    """SRAM scratch area reserved for core ``core_index``'s routines."""
    return SCRATCH_BASE + core_index * SCRATCH_STRIDE
