"""Software Test Library: routines, signatures, packet-aware assembly."""

from repro.stl.conventions import (
    BODY_REGS,
    DATA_PTR,
    LINK_REG,
    MAILBOX_OFFSET,
    RESULT_FAIL,
    RESULT_PASS,
    RESULT_RUNNING,
    SIG_REG,
    WRAP_ITER,
    WRAP_TMP,
    scratch_base,
)
from repro.stl.library import SoftwareTestLibrary, build_library
from repro.stl.packets import PhasedBuilder
from repro.stl.routine import RoutineContext, TestRoutine, emit_epilogue, emit_testwin
from repro.stl.runtime import (
    RuntimeSession,
    build_runtime_session,
    expected_app_checksum,
    session_checksum,
    session_verdict,
)
from repro.stl.signature import (
    SIGNATURE_SEED,
    emit_signature_init,
    emit_signature_update,
    signature_of,
    signature_update,
)

__all__ = [
    "BODY_REGS",
    "DATA_PTR",
    "LINK_REG",
    "MAILBOX_OFFSET",
    "RESULT_FAIL",
    "RESULT_PASS",
    "RESULT_RUNNING",
    "SIG_REG",
    "WRAP_ITER",
    "WRAP_TMP",
    "scratch_base",
    "SoftwareTestLibrary",
    "build_library",
    "PhasedBuilder",
    "RoutineContext",
    "TestRoutine",
    "emit_epilogue",
    "emit_testwin",
    "RuntimeSession",
    "build_runtime_session",
    "session_checksum",
    "expected_app_checksum",
    "session_verdict",
    "SIGNATURE_SEED",
    "emit_signature_init",
    "emit_signature_update",
    "signature_of",
    "signature_update",
]
