"""Background boot-time STL routines.

These are the "rest of the library": ordinary SBST routines for ALU,
register file, branch unit, load/store unit and multiplier.  They are
the workload running in parallel during the Table I stall measurements
(the paper excludes the forwarding/ICU routines from that first
experiment and analyses them separately).
"""

from __future__ import annotations

from repro.stl.conventions import BODY_REGS, DATA_PTR
from repro.stl.packets import PhasedBuilder
from repro.stl.routine import RoutineContext, TestRoutine
from repro.stl.signature import emit_signature_update
from repro.utils.bitops import MASK32, rotl32

_PATTERNS = (
    0x00000000,
    0xFFFFFFFF,
    0xA5A5A5A5,
    0x5A5A5A5A,
    0x01234567,
    0x89ABCDEF,
    0x80000001,
    0x7FFFFFFE,
)


def _emit_alu_body(asm: PhasedBuilder, ctx: RoutineContext) -> None:
    """March every ALU operation over the data patterns."""
    for pattern in _PATTERNS:
        asm.li(1, pattern)
        asm.li(2, rotl32(pattern, 7))
        asm.align()
        asm.add(3, 1, 2)
        asm.sub(4, 1, 2)
        emit_signature_update(asm, 3)
        emit_signature_update(asm, 4)
        asm.and_(3, 1, 2)
        asm.or_(4, 1, 2)
        emit_signature_update(asm, 3)
        emit_signature_update(asm, 4)
        asm.xor(3, 1, 2)
        asm.nor(4, 1, 2)
        emit_signature_update(asm, 3)
        emit_signature_update(asm, 4)
        asm.slt(3, 1, 2)
        asm.sltu(4, 1, 2)
        emit_signature_update(asm, 3)
        emit_signature_update(asm, 4)
        asm.andi(5, 2, 0x1F)
        asm.sll(3, 1, 5)
        asm.srl(4, 1, 5)
        asm.sra(6, 1, 5)
        emit_signature_update(asm, 3)
        emit_signature_update(asm, 4)
        emit_signature_update(asm, 6)


def _emit_regfile_body(asm: PhasedBuilder, ctx: RoutineContext) -> None:
    """Write a distinct pattern into every body register, read all back."""
    for round_index, base in enumerate((0x13579BDF, 0xECA86420)):
        for reg in BODY_REGS:
            asm.li(reg, rotl32(base ^ (reg * 0x01010101), reg) & MASK32)
        asm.align()
        for reg in BODY_REGS:
            emit_signature_update(asm, reg)


def _emit_branch_body(asm: PhasedBuilder, ctx: RoutineContext) -> None:
    """Taken/not-taken ladder over every branch condition."""
    cases = (
        ("beq", 5, 5, True),
        ("beq", 5, 9, False),
        ("bne", 5, 9, True),
        ("bne", 5, 5, False),
        ("blt", -3, 7, True),
        ("blt", 7, -3, False),
        ("bge", 7, -3, True),
        ("bge", -3, 7, False),
        ("bltu", 3, 0xF0000000, True),
        ("bltu", 0xF0000000, 3, False),
        ("bgeu", 0xF0000000, 3, True),
        ("bgeu", 3, 0xF0000000, False),
    )
    for index, (mnemonic, a, b, _expect_taken) in enumerate(cases):
        asm.li(1, a)
        asm.li(2, b)
        asm.li(3, 0x1111 * (index + 1))
        asm.align()
        taken = f"__br_taken_{index}_{asm.instruction_count}"
        done = f"__br_done_{index}_{asm.instruction_count}"
        getattr(asm, mnemonic)(1, 2, taken)
        asm.xori(3, 3, 0x55)  # executed on the not-taken leg
        asm.j(done)
        asm.label(taken)
        asm.xori(3, 3, 0xAA)  # executed on the taken leg
        asm.label(done)
        emit_signature_update(asm, 3)


def _emit_loadstore_body(asm: PhasedBuilder, ctx: RoutineContext) -> None:
    """Walk a scratch buffer with word and byte stores and loads."""
    for i, pattern in enumerate(_PATTERNS):
        asm.li(1, pattern)
        asm.sw(1, 4 * i, DATA_PTR)
    asm.align()
    for i in range(len(_PATTERNS)):
        asm.lw(2, 4 * i, DATA_PTR)
        emit_signature_update(asm, 2)
    # Byte lane walk within one word.
    asm.li(1, 0xC3)
    for lane in range(4):
        asm.sb(1, 64 + lane, DATA_PTR)
        asm.lbu(2, 64 + lane, DATA_PTR)
        emit_signature_update(asm, 2)
    asm.lw(2, 64, DATA_PTR)
    emit_signature_update(asm, 2)


def _emit_mul_body(asm: PhasedBuilder, ctx: RoutineContext) -> None:
    """Multiplier / divider patterns (non-trapping operand sets)."""
    operand_pairs = (
        (3, 5),
        (0xFFFF, 0xFFFF),
        (0x12345678, 2),
        (0x80000000, 1),
        (0x7FFFFFFF, 2),
        (1024, 0xFFFFF),
    )
    for a, b in operand_pairs:
        asm.li(1, a)
        asm.li(2, b)
        asm.align()
        asm.mul(3, 1, 2)
        emit_signature_update(asm, 3)
        asm.mulh(4, 1, 2)
        emit_signature_update(asm, 4)
        asm.divt(5, 1, 2)
        emit_signature_update(asm, 5)
        asm.satadd(6, 1, 2)
        emit_signature_update(asm, 6)


def make_background_routines(repeat: int = 1) -> list[TestRoutine]:
    """The generic boot-time routines, optionally body-repeated.

    ``repeat`` scales the workload length for the Table I experiment
    (longer parallel execution => more bus collisions to count).
    """

    def repeated(emit):
        def body(asm: PhasedBuilder, ctx: RoutineContext) -> None:
            for _ in range(repeat):
                emit(asm, ctx)

        return body

    specs = (
        ("stl_alu", _emit_alu_body, "ALU operation march"),
        ("stl_regfile", _emit_regfile_body, "Register file walk"),
        ("stl_branch", _emit_branch_body, "Branch condition ladder"),
        ("stl_loadstore", _emit_loadstore_body, "Load/store buffer walk"),
        ("stl_muldiv", _emit_mul_body, "Multiplier/divider patterns"),
    )
    return [
        TestRoutine(name=name, module="GEN", emit_body=repeated(emit), description=desc)
        for name, emit, desc in specs
    ]
