"""STL routine generators."""

from repro.stl.routines.background import make_background_routines
from repro.stl.routines.forwarding import (
    DATA_PATTERNS,
    ForwardingPath,
    all_paths,
    make_forwarding_routine,
)
from repro.stl.routines.interrupts import (
    RECOGNITION_WINDOWS,
    make_interrupt_routine,
)

__all__ = [
    "make_background_routines",
    "DATA_PATTERNS",
    "ForwardingPath",
    "all_paths",
    "make_forwarding_routine",
    "RECOGNITION_WINDOWS",
    "make_interrupt_routine",
]
