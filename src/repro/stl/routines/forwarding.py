"""Exhaustive forwarding-logic / HDCU self-test routine.

Re-implements the structure of the dual-issue SBST algorithm of
Bernardi et al. [19] that the paper adopts (Section IV-A): it
"exhaustively tests all the possible existing forwarding paths, both
interpipeline (dependencies between instructions of the same issue
packet) and intrapipeline (dependencies between instructions of two
consecutive issue packets)", and optionally "leverages performance
counters for tracking the number of pipeline stalls".

A *path* is (producer slot, packet distance, consumer slot, consumer
operand port): 2 x 2 x 2 x 2 = 16 paths, each exercised with a rotating
subset of marching data patterns.  Every block follows the same shape::

    li   rS, V        # producer source value
    li   rP, ~V       # stale value: what the RF would wrongly supply
    <spacing packet>  # retire the stale write
    <producer packet> # OR rP, rS, r0 in the chosen slot     -> rP = V
    <mid packet>      # only for distance 2
    <consumer packet> # XOR rC, rP, rQ in the chosen slot/port
    <MISR update(rC)>

In a stall-free stream the consumer receives V over the intended
forwarding path; under fetch starvation the packet structure splits and
the consumer silently reads the register file instead — same signature,
fewer excited paths (the paper's Section II uncertain-coverage case).
The intra-packet ("interpipeline") dependency case is the distance-1
producer-slot-0 split, which the dual-issue front end creates by
breaking the dependent pair.

On core C the same blocks are emitted with the 64-bit register-pair
instructions; the 32-bit signature can only observe the upper word of a
result when the block explicitly folds it, which the original algorithm
does for only a fraction of the patterns — reproducing the signature
masking that lowers core C's forwarding coverage (Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import CoreModel
from repro.isa.instructions import Csr, Instruction, Mnemonic
from repro.stl.conventions import DATA_PTR
from repro.stl.packets import PhasedBuilder
from repro.stl.routine import RoutineContext, TestRoutine, emit_testwin
from repro.stl.signature import emit_signature_update
from repro.utils.bitops import MASK32

#: Marching data patterns; each path gets a rotating subset so the union
#: over all paths covers every pattern in both polarities per bit.
DATA_PATTERNS = (
    0x00000000,
    0xFFFFFFFF,
    0xAAAAAAAA,
    0x55555555,
    0x33333333,
    0xCCCCCCCC,
    0x0F0F0F0F,
    0xF0F0F0F0,
    0x00FF00FF,
    0xFF00FF00,
    0x0000FFFF,
    0xFFFF0000,
)

# Default register allocation (the load-use blocks use it as-is).
_RS, _RP, _RQ, _RC = 5, 6, 8, 9
_FILL = (10, 11, 12, 13)
#: Value of the consumer's second operand in every block.
_Q_VALUE = 0x0F0F3CA5

#: Register pool the pattern blocks rotate through.  Exhausting the
#: 5-bit register-index space matters as much as the data patterns: the
#: HDCU's comparators are tested by the *indices* of the producers and
#: consumers in flight, so each block draws a fresh window of this pool.
_REG_POOL = tuple(range(1, 21))


@dataclass(frozen=True)
class _BlockRegs:
    """Registers used by one pattern block."""

    rs: int  # producer source (holds the pattern value)
    rp: int  # producer destination / forwarded register
    rq: int  # consumer's second operand
    rc: int  # consumer destination
    fill: tuple[int, int, int, int]


def _regs_for_block(index: int) -> _BlockRegs:
    pool = _REG_POOL
    start = (index * 3) % len(pool)
    picks = [pool[(start + i) % len(pool)] for i in range(8)]
    return _BlockRegs(
        rs=picks[0], rp=picks[1], rq=picks[2], rc=picks[3], fill=tuple(picks[4:8])
    )


def _pair_regs_for_block(index: int) -> _BlockRegs:
    """Even register pairs for the 64-bit blocks (core C)."""
    pairs = tuple(range(2, 20, 2))  # 2,4,...,18
    start = (index * 3) % len(pairs)
    picks = [pairs[(start + i) % len(pairs)] for i in range(7)]
    return _BlockRegs(
        rs=picks[0], rp=picks[1], rq=picks[2], rc=picks[3],
        fill=(picks[4] + 1, picks[5] + 1, picks[6] + 1, picks[4]),
    )


@dataclass(frozen=True)
class ForwardingPath:
    """One of the 16 producer->consumer forwarding paths."""

    producer_slot: int
    distance: int
    consumer_slot: int
    operand: int

    @property
    def label(self) -> str:
        return (
            f"p{self.producer_slot}d{self.distance}"
            f"c{self.consumer_slot}o{self.operand}"
        )


def all_paths() -> tuple[ForwardingPath, ...]:
    """The full path enumeration of the exhaustive algorithm."""
    return tuple(
        ForwardingPath(p, d, c, o)
        for p in (0, 1)
        for d in (1, 2)
        for c in (0, 1)
        for o in (0, 1)
    )


def _filler(reg: int) -> Instruction:
    return Instruction(Mnemonic.ADD, rd=reg, rs1=0, rs2=0)


def _emit_block_32(
    asm: PhasedBuilder, path: ForwardingPath, value: int, regs: _BlockRegs
) -> None:
    """One 32-bit pattern block exercising ``path`` with ``value``."""
    stale = ~value & MASK32
    fill = regs.fill
    asm.align()
    asm.li(regs.rq, _Q_VALUE)
    asm.li(regs.rs, value)
    asm.li(regs.rp, stale)
    asm.align()
    # Spacing packet: lets the stale write of rP retire so the register
    # file really holds ~V when the consumer issues.
    asm.packet(_filler(fill[0]), _filler(fill[1]))
    producer = Instruction(Mnemonic.OR, rd=regs.rp, rs1=regs.rs, rs2=0)
    if path.producer_slot == 0:
        asm.packet(producer, _filler(fill[2]))
    else:
        asm.packet(_filler(fill[2]), producer)
    if path.distance == 2:
        asm.packet(_filler(fill[0]), _filler(fill[3]))
    if path.operand == 0:
        consumer = Instruction(Mnemonic.XOR, rd=regs.rc, rs1=regs.rp, rs2=regs.rq)
    else:
        consumer = Instruction(Mnemonic.XOR, rd=regs.rc, rs1=regs.rq, rs2=regs.rp)
    if path.consumer_slot == 0:
        asm.packet(consumer, _filler(fill[1]))
    else:
        asm.packet(_filler(fill[3]), consumer)
    asm.align()
    emit_signature_update(asm, regs.rc)


def _emit_block_64(
    asm: PhasedBuilder,
    ctx: RoutineContext,
    path: ForwardingPath,
    value: int,
    fold_high: bool,
    regs: _BlockRegs,
) -> None:
    """One 64-bit pattern block (core C extended datapath)."""
    high = (value ^ 0xFFFF0000) & MASK32
    stale_lo, stale_hi = ~value & MASK32, ~high & MASK32
    fill = regs.fill
    asm.align()
    if fold_high:
        emit_testwin(asm, ctx, high=True)
    asm.li(regs.rq, _Q_VALUE)
    asm.li(regs.rq + 1, ~_Q_VALUE & MASK32)
    asm.li(regs.rs, value)
    asm.li(regs.rs + 1, high)
    asm.li(regs.rp, stale_lo)
    asm.li(regs.rp + 1, stale_hi)
    asm.align()
    asm.packet(_filler(fill[0]), _filler(fill[1]))
    producer = Instruction(Mnemonic.OR64, rd=regs.rp, rs1=regs.rs, rs2=regs.rs)
    if path.producer_slot == 0:
        asm.packet(producer, _filler(fill[2]))
    else:
        asm.packet(_filler(fill[2]), producer)
    if path.distance == 2:
        asm.packet(_filler(fill[0]), _filler(fill[1]))
    if path.operand == 0:
        consumer = Instruction(Mnemonic.XOR64, rd=regs.rc, rs1=regs.rp, rs2=regs.rq)
    else:
        consumer = Instruction(Mnemonic.XOR64, rd=regs.rc, rs1=regs.rq, rs2=regs.rp)
    if path.consumer_slot == 0:
        asm.packet(consumer, _filler(fill[2]))
    else:
        asm.packet(_filler(fill[1]), consumer)
    asm.align()
    emit_signature_update(asm, regs.rc)
    if fold_high:
        emit_signature_update(asm, regs.rc + 1)
        emit_testwin(asm, ctx, high=False)


def _emit_load_use_blocks(asm: PhasedBuilder, count: int) -> None:
    """Load-use hazard blocks: MEM->EX load-data forwarding + HDCU stall."""
    for i in range(count):
        asm.align()
        pattern = DATA_PATTERNS[i % len(DATA_PATTERNS)]
        asm.li(_RS, pattern)
        asm.sw(_RS, 4 * i, DATA_PTR)
        asm.align()
        asm.packet(Instruction(Mnemonic.LW, rd=_RP, rs1=DATA_PTR, imm=4 * i))
        # Immediate consumer: the HDCU must insert exactly one stall and
        # then drive the MEM->EX path with the load data.
        asm.packet(Instruction(Mnemonic.XOR, rd=_RC, rs1=_RP, rs2=_RQ))
        emit_signature_update(asm, _RC)


def _emit_pc_prologue(asm: PhasedBuilder) -> None:
    """Capture performance-counter baselines (full algorithm of [19])."""
    asm.align()
    asm.csrr(22, Csr.HAZSTALL)
    asm.csrr(23, Csr.IFSTALL)
    asm.csrr(24, Csr.MEMSTALL)
    asm.align()


def _emit_pc_epilogue(asm: PhasedBuilder) -> None:
    """Fold performance-counter deltas into the signature."""
    asm.align()
    asm.csrr(25, Csr.HAZSTALL)
    asm.sub(25, 25, 22)
    emit_signature_update(asm, 25)
    asm.csrr(25, Csr.IFSTALL)
    asm.sub(25, 25, 23)
    emit_signature_update(asm, 25)
    asm.csrr(25, Csr.MEMSTALL)
    asm.sub(25, 25, 24)
    emit_signature_update(asm, 25)
    asm.align()


def forwarding_setup_emitter(model: CoreModel, with_pcs: bool):
    """Per-program setup: the consumer's second operand + PC baselines."""

    def setup(asm: PhasedBuilder, ctx: RoutineContext) -> None:
        asm.li(_RQ, _Q_VALUE)
        if with_pcs:
            _emit_pc_prologue(asm)

    return setup


def forwarding_teardown_emitter(model: CoreModel, with_pcs: bool):
    """Per-program teardown: fold the PC deltas into the signature."""

    def teardown(asm: PhasedBuilder, ctx: RoutineContext) -> None:
        if with_pcs:
            _emit_pc_epilogue(asm)

    return teardown


def forwarding_block_emitters(
    model: CoreModel,
    patterns_per_path: int | None = None,
    load_use_blocks: int = 4,
    fold_high_period: int = 3,
) -> list:
    """The routine as a list of independent block emitters.

    Each element exercises one (path, pattern) pair; the splitter of
    rule 2.2 partitions this list when the whole routine would not fit
    the instruction cache.
    """
    if patterns_per_path is None:
        patterns_per_path = 3 if model.is64 else 5
    blocks = []
    block_index = 0
    for path_index, path in enumerate(all_paths()):
        for k in range(patterns_per_path):
            value = DATA_PATTERNS[(path_index + k * 5) % len(DATA_PATTERNS)]
            if model.is64:
                fold_high = block_index % fold_high_period != fold_high_period - 1
                regs = _pair_regs_for_block(block_index)

                def block64(asm, ctx, path=path, value=value, fold=fold_high, regs=regs):
                    _emit_block_64(asm, ctx, path, value, fold, regs)

                blocks.append(block64)
            else:
                regs = _regs_for_block(block_index)

                def block32(asm, ctx, path=path, value=value, regs=regs):
                    _emit_block_32(asm, path, value, regs)

                blocks.append(block32)
            block_index += 1
    if load_use_blocks:

        def load_use(asm, ctx):
            _emit_load_use_blocks(asm, load_use_blocks)

        blocks.append(load_use)
    return blocks


def make_forwarding_routine(
    model: CoreModel,
    with_pcs: bool = True,
    patterns_per_path: int | None = None,
    load_use_blocks: int = 4,
    fold_high_period: int = 3,
) -> TestRoutine:
    """Build the forwarding/HDCU test routine for one core model.

    ``with_pcs`` selects the full algorithm (stall-counter deltas in the
    signature, Table III) or the reduced variant with PCs removed
    (Table II).  ``patterns_per_path`` defaults to 5 on the 32-bit cores
    and 3 on core C so the routine fits the 8 KiB instruction cache
    without splitting, matching the paper's setup.
    """
    setup = forwarding_setup_emitter(model, with_pcs)
    teardown = forwarding_teardown_emitter(model, with_pcs)
    blocks = forwarding_block_emitters(
        model, patterns_per_path, load_use_blocks, fold_high_period
    )

    def emit_body(asm: PhasedBuilder, ctx: RoutineContext) -> None:
        setup(asm, ctx)
        for block in blocks:
            block(asm, ctx)
        teardown(asm, ctx)

    suffix = "pc" if with_pcs else "nopc"
    return TestRoutine(
        name=f"fwd_{model.name.lower()}_{suffix}",
        module="FWD",
        emit_body=emit_body,
        uses_pcs=with_pcs,
        description=(
            "Exhaustive inter-/intra-pipeline forwarding test "
            f"({'with' if with_pcs else 'without'} performance counters)"
        ),
    )
