"""Synchronous imprecise-interrupt (ICU) self-test routine.

Follows the strategy of Singh et al. [21] the paper adopts for its
Interrupt Control Unit experiments: every interrupt source is excited by
an instruction sequence that raises it, and the ICU's software-visible
registers (status, imprecision counter, recognition count) are read
back into the test signature.

Because the interrupts are *imprecise*, the value of the imprecision
counter — and even whether the status read happens before or after
recognition — depends on how many younger instructions retire before
the recognition slot.  In a stall-free (cache-resident) stream that
number is a deterministic property of the emitted code; under bus
contention it varies run to run, destabilising the signature
(Section II / Table III).

Each event is exercised with several *recognition windows* (filler
packets between the trigger and the status read), plus paired-trigger
blocks where two events sharing a status bit on cores A/B are raised
back-to-back: their merged recognition is indistinguishable on the
shared-bit mapping, masking the event-differentiation logic — the
mechanism behind core C's ~10 % higher ICU coverage (Section IV-D).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.cpu.core import CoreModel
from repro.isa.instructions import Csr, Event, Instruction, Mnemonic
from repro.stl.packets import PhasedBuilder
from repro.stl.routine import RoutineContext, TestRoutine
from repro.stl.signature import emit_signature_update

# Registers used by trigger sequences and status reads.
_RA, _RB, _RD, _RS = 5, 6, 7, 9
_FILL = (10, 11, 12, 13)

#: Recognition windows (filler packets between trigger and status read).
RECOGNITION_WINDOWS = (0, 2, 4, 7)


def _trigger_emitters() -> dict[Event, Callable[[PhasedBuilder], None]]:
    """Per-event sequences that deterministically raise the event."""

    def ovf_add(asm: PhasedBuilder) -> None:
        asm.li(_RA, 0x7FFFFFFF)
        asm.li(_RB, 1)
        asm.align()
        asm.packet(Instruction(Mnemonic.ADDO, rd=_RD, rs1=_RA, rs2=_RB))

    def ovf_sub(asm: PhasedBuilder) -> None:
        asm.li(_RA, 0x80000000)
        asm.li(_RB, 1)
        asm.align()
        asm.packet(Instruction(Mnemonic.SUBO, rd=_RD, rs1=_RA, rs2=_RB))

    def ovf_mul(asm: PhasedBuilder) -> None:
        asm.li(_RA, 0x00010000)
        asm.li(_RB, 0x00010000)
        asm.align()
        asm.packet(Instruction(Mnemonic.MULO, rd=_RD, rs1=_RA, rs2=_RB))

    def sat(asm: PhasedBuilder) -> None:
        asm.li(_RA, 0x7FFFFFFF)
        asm.li(_RB, 0x7FFFFFFF)
        asm.align()
        asm.packet(Instruction(Mnemonic.SATADD, rd=_RD, rs1=_RA, rs2=_RB))

    def div0(asm: PhasedBuilder) -> None:
        asm.li(_RA, 1234)
        asm.li(_RB, 0)
        asm.align()
        asm.packet(Instruction(Mnemonic.DIVT, rd=_RD, rs1=_RA, rs2=_RB))

    def shifto(asm: PhasedBuilder) -> None:
        asm.li(_RA, 0xF0000001)
        asm.li(_RB, 4)
        asm.align()
        asm.packet(Instruction(Mnemonic.SLLO, rd=_RD, rs1=_RA, rs2=_RB))

    return {
        Event.OVF_ADD: ovf_add,
        Event.OVF_SUB: ovf_sub,
        Event.OVF_MUL: ovf_mul,
        Event.SAT: sat,
        Event.DIV0: div0,
        Event.SHIFTO: shifto,
    }


def _emit_window(asm: PhasedBuilder, packets: int) -> None:
    """Filler packets keeping retirement busy (no recognition bubble)."""
    for i in range(packets):
        asm.packet(
            Instruction(Mnemonic.ADD, rd=_FILL[i % 2], rs1=0, rs2=0),
            Instruction(Mnemonic.ADD, rd=_FILL[2 + i % 2], rs1=0, rs2=0),
        )


def _emit_status_reads(asm: PhasedBuilder) -> None:
    """Fold the ICU's software-visible state into the signature."""
    asm.align()
    asm.csrr(_RS, Csr.ICU_STATUS)
    emit_signature_update(asm, _RS)
    asm.csrr(_RS, Csr.ICU_IMPREC)
    emit_signature_update(asm, _RS)
    asm.csrr(_RS, Csr.ICU_COUNT)
    emit_signature_update(asm, _RS)
    asm.csrw(Csr.ICU_ACK, 0)
    asm.align()


def make_interrupt_routine(
    model: CoreModel,
    windows: tuple[int, ...] = RECOGNITION_WINDOWS,
    paired_windows: tuple[int, ...] = (0, 3),
) -> TestRoutine:
    """Build the imprecise-interrupt test routine for one core model."""
    triggers = _trigger_emitters()

    def emit_body(asm: PhasedBuilder, ctx: RoutineContext) -> None:
        # Isolated-event blocks: one trigger, one recognition window.
        for event in Event:
            trigger = triggers[event]
            for window in windows:
                asm.align()
                trigger(asm)
                _emit_window(asm, window)
                _emit_status_reads(asm)
        # Paired-trigger blocks: both members of a status-bit pair raised
        # back-to-back; on shared-bit mappings (cores A/B) their merged
        # recognition is indistinguishable.
        for first in (Event.OVF_ADD, Event.OVF_MUL, Event.DIV0):
            partner = Event(int(first) + 1)
            for window in paired_windows:
                asm.align()
                triggers[first](asm)
                triggers[partner](asm)
                _emit_window(asm, window)
                _emit_status_reads(asm)

    return TestRoutine(
        name=f"icu_{model.name.lower()}",
        module="ICU",
        emit_body=emit_body,
        uses_pcs=False,
        description="Synchronous imprecise interrupt test (after [21])",
    )
