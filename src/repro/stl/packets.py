"""Issue-packet-aware assembly builder.

SBST routines for dual-issue processors must control *which slot of
which issue packet* every producer and consumer lands in — that is the
whole point of the exhaustive forwarding test of Bernardi et al. [19].
:class:`PhasedBuilder` extends the plain assembler with a static
simulation of the front end's greedy packet formation (the exact
``can_dual_issue`` predicate the modelled core uses), so a generator can
assert packet boundaries while it emits.

The static phase is only guaranteed to match the hardware while the
fetch queue stays ahead of issue — true by construction inside the
cache-based execution loop, and *deliberately untrue* under multi-core
bus contention, where fetch starvation splits packets at arbitrary
points.  That divergence is the paper's Section II failure mechanism.
"""

from __future__ import annotations

from repro.isa.builder import AsmBuilder
from repro.isa.instructions import Instruction
from repro.cpu.hazard import can_dual_issue


class PhasedBuilder(AsmBuilder):
    """An :class:`AsmBuilder` that tracks greedy dual-issue pairing."""

    def __init__(self, base_address: int = 0, name: str = "program"):
        super().__init__(base_address, name)
        self._packet_pending: Instruction | None = None

    def emit(self, instr: Instruction) -> int:
        index = super().emit(instr)
        self._feed(instr)
        return index

    def _feed(self, instr: Instruction) -> None:
        pending = self._packet_pending
        if pending is None:
            spec = instr.spec
            if spec.is_branch or spec.is_system:
                # Issues alone; the next instruction starts a packet.
                self._packet_pending = None
            else:
                self._packet_pending = instr
            return
        if can_dual_issue(pending, instr):
            self._packet_pending = None
        else:
            # ``pending`` issues alone; ``instr`` becomes the new head.
            self._packet_pending = None
            self._feed(instr)

    @property
    def at_packet_boundary(self) -> bool:
        """True when the next emitted instruction opens a fresh packet."""
        return self._packet_pending is None

    def align(self) -> None:
        """Pad with a NOP if needed so the next instruction opens a packet."""
        if self._packet_pending is not None:
            self.nop()
            if self._packet_pending is not None:  # pragma: no cover - NOP always pairs
                self._packet_pending = None

    def packet(self, *instrs: Instruction) -> None:
        """Emit one full issue packet (1 or 2 instructions).

        A single non-branch, non-system instruction is padded with a NOP
        so the following code starts a new packet.  A two-instruction
        packet must satisfy the dual-issue rules.
        """
        if not 1 <= len(instrs) <= 2:
            raise ValueError("a packet holds 1 or 2 instructions")
        self.align()
        if len(instrs) == 2:
            if not can_dual_issue(instrs[0], instrs[1]):
                raise ValueError(
                    f"cannot dual-issue {instrs[0]} with {instrs[1]}"
                )
            self.emit(instrs[0])
            self.emit(instrs[1])
            return
        only = instrs[0]
        self.emit(only)
        spec = only.spec
        if not (spec.is_branch or spec.is_system):
            self.nop()
