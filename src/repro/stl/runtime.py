"""Run-time self-test execution (the paper's second STL category).

Section I distinguishes *boot-time* tests (the paper's subject: they
need an exact, uninterruptible stream) from *run-time* tests, which
"can be executed in parallel, usually during the processor idle times",
coexisting with the application.  This module provides that mode: an
application main loop with periodic idle windows, each hosting one
self-test routine execution.

Run-time routines must be timing-insensitive by construction (no
performance counters, no imprecise-interrupt reads), so their signature
depends only on architectural values and survives bus contention — the
reason the paper needs no special machinery for them.  The application
keeps its own state in memory across windows (the routines clobber the
body registers, exactly like a context switch would).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Csr
from repro.isa.program import Program
from repro.stl.conventions import (
    DATA_PTR,
    RESULT_FAIL,
    RESULT_PASS,
    SIG_REG,
    WRAP_TMP,
)
from repro.stl.packets import PhasedBuilder
from repro.stl.routine import RoutineContext, TestRoutine
from repro.stl.signature import emit_signature_init
from repro.utils.bitops import MASK32, rotl32

#: DTCM offsets used by a run-time session (per core).
VERDICT_OFFSET = 0  # RESULT_PASS unless any window's check failed
APP_STATE_OFFSET = 8  # the application's accumulator
APP_RESULT_OFFSET = 12  # final application checksum


@dataclass(frozen=True)
class RuntimeSession:
    """A built run-time test session for one core."""

    program: Program
    rounds: int
    routine_names: tuple[str, ...]
    expected_app_checksum: int

    @property
    def entry_point(self) -> int:
        return self.program.base_address


def expected_app_checksum(rounds: int, seed: int = 0x0BAD_F00D) -> int:
    """Python model of the application's computation."""
    value = seed
    for round_index in range(rounds):
        value = (rotl32(value, 3) + ((round_index * 0x9E37) & MASK32)) & MASK32
    return value


def build_runtime_session(
    routines: list[tuple[TestRoutine, int]],
    rounds: int,
    base_address: int,
    ctx: RoutineContext,
    app_seed: int = 0x0BAD_F00D,
) -> RuntimeSession:
    """Interleave an application with run-time self-tests.

    ``routines`` pairs each routine with its expected signature (derived
    from a golden run; timing-insensitive routines have one golden value
    regardless of contention).  Each of the ``rounds`` application
    iterations performs one compute step, then executes the next routine
    of the rotation in its idle window and checks the signature.  Any
    mismatch latches RESULT_FAIL into the core's verdict mailbox.
    """
    if not routines:
        raise ValueError("a run-time session needs at least one routine")
    for routine, _ in routines:
        if routine.uses_pcs:
            raise ValueError(
                f"{routine.name} folds performance counters into its "
                "signature; it is not timing-insensitive and cannot run "
                "as a run-time test (deploy it boot-time, cache-wrapped)"
            )
    asm = PhasedBuilder(base_address, f"runtime_core{ctx.core_index}")
    mailbox = ctx.mailbox_address
    # Initialise the verdict and the application state.
    asm.li(WRAP_TMP, RESULT_PASS)
    asm.li(DATA_PTR, mailbox)
    asm.sw(WRAP_TMP, VERDICT_OFFSET, DATA_PTR)
    asm.li(WRAP_TMP, app_seed)
    asm.sw(WRAP_TMP, APP_STATE_OFFSET, DATA_PTR)
    for round_index in range(rounds):
        # Application compute phase: state lives in the D-TCM across
        # the idle window (the routine clobbers the register file).
        asm.li(DATA_PTR, mailbox)
        asm.lw(1, APP_STATE_OFFSET, DATA_PTR)
        asm.slli(2, 1, 3)
        asm.srli(3, 1, 29)
        asm.or_(1, 2, 3)
        asm.li(4, (round_index * 0x9E37) & MASK32)
        asm.add(1, 1, 4)
        asm.sw(1, APP_STATE_OFFSET, DATA_PTR)
        # Idle window: one run-time self-test execution.
        routine, expected = routines[round_index % len(routines)]
        asm.li(WRAP_TMP, 1)
        asm.csrw(Csr.TESTWIN, WRAP_TMP)
        emit_signature_init(asm)
        asm.li(DATA_PTR, ctx.data_base)
        asm.align()
        routine.emit_body(asm, ctx.with_testwin_reg(None))
        asm.align()
        asm.li(WRAP_TMP, 0)
        asm.csrw(Csr.TESTWIN, WRAP_TMP)
        ok = f"__rt_ok_{round_index}"
        asm.li(WRAP_TMP, expected)
        asm.beq(SIG_REG, WRAP_TMP, ok)
        asm.li(WRAP_TMP, RESULT_FAIL)
        asm.li(DATA_PTR, mailbox)
        asm.sw(WRAP_TMP, VERDICT_OFFSET, DATA_PTR)
        asm.label(ok)
    # Publish the application checksum and stop.
    asm.li(DATA_PTR, mailbox)
    asm.lw(1, APP_STATE_OFFSET, DATA_PTR)
    asm.sw(1, APP_RESULT_OFFSET, DATA_PTR)
    asm.halt()
    return RuntimeSession(
        program=asm.build(),
        rounds=rounds,
        routine_names=tuple(routine.name for routine, _ in routines),
        expected_app_checksum=expected_app_checksum(rounds, app_seed),
    )


def session_verdict(
    core, session: "RuntimeSession | int"
) -> tuple[bool, bool]:
    """(all self-tests passed, application checksum correct).

    ``session`` is the :class:`RuntimeSession` the core ran (or, for
    callers that derived it themselves, the expected application
    checksum as an int); the raw published checksum is available via
    :func:`session_checksum` when the actual value is wanted.
    """
    expected = (
        session.expected_app_checksum
        if isinstance(session, RuntimeSession)
        else session
    )
    mailbox = core.dtcm.base
    verdict = core.dtcm.read_word(mailbox + VERDICT_OFFSET)
    checksum = core.dtcm.read_word(mailbox + APP_RESULT_OFFSET)
    return verdict == RESULT_PASS, checksum == expected


def session_checksum(core) -> int:
    """The raw application checksum the core published."""
    return core.dtcm.read_word(core.dtcm.base + APP_RESULT_OFFSET)
