"""The Software Test Library: routine collections per core model.

Cores A and B share one STL (same 32-bit processor model); core C gets
its own with the 64-bit forwarding routine (Section IV-B: "two STLs were
developed").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpu.core import CoreModel
from repro.stl.routine import TestRoutine
from repro.stl.routines.background import make_background_routines
from repro.stl.routines.forwarding import make_forwarding_routine
from repro.stl.routines.interrupts import make_interrupt_routine


@dataclass
class SoftwareTestLibrary:
    """A named collection of boot-time self-test routines."""

    name: str
    model: CoreModel
    routines: list[TestRoutine] = field(default_factory=list)

    def add(self, routine: TestRoutine) -> TestRoutine:
        if any(existing.name == routine.name for existing in self.routines):
            raise ValueError(f"duplicate routine name {routine.name!r}")
        self.routines.append(routine)
        return routine

    def get(self, name: str) -> TestRoutine:
        for routine in self.routines:
            if routine.name == name:
                return routine
        raise KeyError(f"no routine named {name!r} in {self.name}")

    def by_module(self, module: str) -> list[TestRoutine]:
        """All routines targeting one module ('FWD', 'ICU', 'GEN', ...)."""
        return [routine for routine in self.routines if routine.module == module]

    @property
    def generic_routines(self) -> list[TestRoutine]:
        return self.by_module("GEN")


def build_library(
    model: CoreModel,
    background_repeat: int = 1,
    include_module_tests: bool = True,
) -> SoftwareTestLibrary:
    """Assemble the full STL for one core model.

    ``include_module_tests`` adds the forwarding and imprecise-interrupt
    routines; the Table I experiment excludes them ("their behaviour was
    analyzed separately", Section IV-B).
    """
    library = SoftwareTestLibrary(name=f"stl_{model.name.lower()}", model=model)
    for routine in make_background_routines(repeat=background_repeat):
        library.add(routine)
    if include_module_tests:
        library.add(make_forwarding_routine(model, with_pcs=True))
        library.add(make_forwarding_routine(model, with_pcs=False))
        library.add(make_interrupt_routine(model))
    return library
