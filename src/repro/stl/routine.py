"""Self-test routine abstraction.

A :class:`TestRoutine` owns a *body emitter*: the instructions that
actually excite the target module and fold observations into the
signature (blocks *b*/*c* of the paper's Fig. 2a).  The same body is
embedded, unmodified, by three different builders:

* :meth:`TestRoutine.build_single_core` — the classic single-core STL
  program (Fig. 2a): signature init, body, signature check;
* :class:`repro.core.cache_wrapper.CacheWrapper` — the paper's proposed
  multi-core version (Fig. 2b): invalidate, loading loop, execution
  loop, check;
* :class:`repro.core.tcm_wrapper.TcmWrapper` — the Table IV comparison
  strategy (copy to the I-TCM, then execute from there).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, replace

from repro.cpu.core import CoreModel
from repro.isa.instructions import Csr
from repro.isa.program import Program
from repro.mem.memmap import dtcm_base
from repro.stl.conventions import (
    DATA_PTR,
    MAILBOX_OFFSET,
    RESULT_FAIL,
    RESULT_PASS,
    SIG_REG,
    WRAP_TMP,
    scratch_base,
)
from repro.stl.packets import PhasedBuilder
from repro.stl.signature import emit_signature_init


@dataclass(frozen=True)
class RoutineContext:
    """Build-time environment of one routine instance on one core.

    ``testwin_reg`` is the register holding the base TESTWIN value when
    the routine runs inside a loop-based wrapper (0 in the loading loop,
    1 in the execution loop); None means the routine is built standalone
    and TESTWIN is driven with constants.
    """

    core_index: int
    core_model: CoreModel
    data_base: int
    mailbox_address: int
    testwin_reg: int | None = None

    @classmethod
    def for_core(cls, core_index: int, core_model: CoreModel) -> "RoutineContext":
        """Standard placement: per-core SRAM scratch + D-TCM mailbox."""
        return cls(
            core_index=core_index,
            core_model=core_model,
            data_base=scratch_base(core_index),
            mailbox_address=dtcm_base(core_index) + MAILBOX_OFFSET,
        )

    def with_testwin_reg(self, reg: int) -> "RoutineContext":
        return replace(self, testwin_reg=reg)


def emit_testwin(asm: PhasedBuilder, ctx: RoutineContext, high: bool) -> None:
    """Drive the TESTWIN CSR's high-word-observability bit.

    Core C's forwarding routine folds the upper word of only some
    64-bit results into the 32-bit signature; around those blocks it
    raises TESTWIN bit 1 so the recorder knows the high half is
    observable (Section IV-C's signature-masking effect).
    """
    asm.align()
    if ctx.testwin_reg is None:
        asm.li(WRAP_TMP, 3 if high else 1)
    elif high:
        asm.ori(WRAP_TMP, ctx.testwin_reg, 2)
    else:
        asm.ori(WRAP_TMP, ctx.testwin_reg, 0)
    asm.csrw(Csr.TESTWIN, WRAP_TMP)
    asm.align()


class TestRoutine:
    """One self-test procedure of the Software Test Library."""

    def __init__(
        self,
        name: str,
        module: str,
        emit_body: Callable[[PhasedBuilder, RoutineContext], None],
        uses_pcs: bool = False,
        description: str = "",
    ):
        self.name = name
        #: Target module: 'FWD', 'HDCU', 'ICU' or 'GEN' (generic).
        self.module = module
        self.emit_body = emit_body
        #: Whether performance-counter deltas are folded into the
        #: signature (the full algorithm of [19] does; Table II uses the
        #: variant with PCs removed).
        self.uses_pcs = uses_pcs
        self.description = description

    # ------------------------------------------------------------------
    # The classic single-core STL program (Fig. 2a).
    # ------------------------------------------------------------------

    def build_single_core(
        self,
        base_address: int,
        ctx: RoutineContext,
        expected_signature: int | None = None,
    ) -> Program:
        """Build the unmodified single-core test program.

        With ``expected_signature`` the program ends with the signature
        check and writes PASS/FAIL to the core's mailbox; without it the
        program just leaves the signature in SIG_REG (used for golden
        runs that *derive* the expected signature).
        """
        asm = PhasedBuilder(base_address, self.name)
        ctx = replace(ctx, testwin_reg=None)
        # Block a: signature initialisation + test window open.
        asm.li(WRAP_TMP, 1)
        asm.csrw(Csr.TESTWIN, WRAP_TMP)
        emit_signature_init(asm)
        asm.li(DATA_PTR, ctx.data_base)
        asm.align()
        # Blocks b/c: the test program body.
        self.emit_body(asm, ctx)
        asm.align()
        # Close the test window.
        asm.li(WRAP_TMP, 0)
        asm.csrw(Csr.TESTWIN, WRAP_TMP)
        emit_epilogue(asm, ctx, expected_signature)
        asm.halt()
        return asm.build()

    def builder_for(
        self, ctx: RoutineContext, expected_signature: int | None = None
    ) -> Callable[[int], Program]:
        """A relocatable ``build(base_address)`` callable for the loader."""

        def build(base_address: int) -> Program:
            return self.build_single_core(base_address, ctx, expected_signature)

        return build


def emit_epilogue(
    asm: PhasedBuilder,
    ctx: RoutineContext,
    expected_signature: int | None,
) -> None:
    """Signature check + mailbox verdict (shared by all program shapes).

    The mailbox lives in the core-private D-TCM so the verdict is
    visible to the outside world without touching the (possibly dirty,
    about-to-be-invalidated) data cache.
    """
    asm.align()
    if expected_signature is None:
        return
    label = f"__sig_fail_{asm.instruction_count}"
    done = f"__sig_done_{asm.instruction_count}"
    asm.li(WRAP_TMP, expected_signature)
    asm.bne(SIG_REG, WRAP_TMP, label)
    asm.li(WRAP_TMP, RESULT_PASS)
    asm.li(DATA_PTR, ctx.mailbox_address)
    asm.sw(WRAP_TMP, 0, DATA_PTR)
    asm.j(done)
    asm.label(label)
    asm.li(WRAP_TMP, RESULT_FAIL)
    asm.li(DATA_PTR, ctx.mailbox_address)
    asm.sw(WRAP_TMP, 0, DATA_PTR)
    asm.label(done)
    asm.align()
