"""Campaign summaries: signature stability and verdict reports."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.determinism import ScenarioResult
from repro.stl.conventions import RESULT_FAIL, RESULT_PASS


@dataclass(frozen=True)
class SignatureStability:
    """Signature behaviour of one core across a campaign.

    ``stable`` is the paper's determinism criterion: every scenario
    produced bit-identical signatures.  ``pass_rate`` is the fraction of
    runs whose self-check verdict was PASS (meaningful only when the
    programs embed an expected signature).
    """

    core_id: int
    model: str
    signatures: tuple[int, ...]
    verdicts: tuple[int, ...]

    @property
    def stable(self) -> bool:
        return len(set(self.signatures)) == 1

    @property
    def distinct_signatures(self) -> int:
        return len(set(self.signatures))

    @property
    def pass_count(self) -> int:
        return sum(1 for v in self.verdicts if v == RESULT_PASS)

    @property
    def fail_count(self) -> int:
        return sum(1 for v in self.verdicts if v == RESULT_FAIL)

    @property
    def pass_rate(self) -> float:
        if not self.verdicts:
            return 0.0
        return self.pass_count / len(self.verdicts)


def signature_stability(
    results: list[ScenarioResult], core_id: int
) -> SignatureStability:
    """Summarise one core's signatures over a campaign."""
    signatures = []
    verdicts = []
    model = "?"
    for result in results:
        run = result.per_core.get(core_id)
        if run is None:
            continue
        model = run.model
        signatures.append(run.signature)
        verdicts.append(run.mailbox)
    return SignatureStability(
        core_id=core_id,
        model=model,
        signatures=tuple(signatures),
        verdicts=tuple(verdicts),
    )
