"""Golden (fault-free reference) runs.

The expected test signature is obtained "in a fault-free scenario"
(Section I): the program is run alone on a reference SoC and the final
value of the signature register is captured.  The two-phase build —
build without a check, golden-run, rebuild with the expected value —
mirrors how STL vendors generate the reference signatures shipped with
the library.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.isa.program import Program
from repro.soc.config import DEFAULT_SOC_CONFIG, SocConfig
from repro.soc.soc import Soc
from repro.stl.conventions import SIG_REG

#: Generous default budget: the slowest routine variant (uncached,
#: multi-core) stays well below this.
DEFAULT_MAX_CYCLES = 4_000_000


def run_alone(
    program: Program,
    core_index: int,
    soc_config: SocConfig = DEFAULT_SOC_CONFIG,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> Soc:
    """Run ``program`` on core ``core_index`` with all other cores off."""
    soc = Soc(soc_config)
    soc.load(program)
    soc.start_core(core_index, program.base_address)
    soc.run(max_cycles=max_cycles)
    return soc


def golden_signature(
    program: Program,
    core_index: int,
    soc_config: SocConfig = DEFAULT_SOC_CONFIG,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> int:
    """The fault-free signature left in SIG_REG by a single-core run."""
    soc = run_alone(program, core_index, soc_config, max_cycles)
    return soc.cores[core_index].regfile.read(SIG_REG)


def finalise_with_expected(
    build: Callable[[int | None], Program],
    core_index: int,
    soc_config: SocConfig = DEFAULT_SOC_CONFIG,
) -> tuple[Program, int]:
    """Two-phase build: derive the golden signature, then rebuild with
    the signature check enabled.

    ``build(expected)`` must return the same program modulo the check
    epilogue (the check sits after the test window closes, so it cannot
    change the signature itself — asserted here).
    """
    unchecked = build(None)
    expected = golden_signature(unchecked, core_index, soc_config)
    final = build(expected)
    confirm = golden_signature(final, core_index, soc_config)
    if confirm != expected:
        raise AssertionError(
            f"{final.name}: signature changed when the check was added "
            f"({expected:#010x} -> {confirm:#010x}); the epilogue must not "
            "affect the test window"
        )
    return final, expected
