"""Determinism campaign: run a routine across the Section IV-C scenario
matrix and collect signatures + module-activation logs.

A *scenario* is (set of active cores, code position, code alignment).
The campaign runs every active core's own program simultaneously on a
fresh SoC and captures, per core: the final signature, the mailbox
verdict, the activation log (for offline fault simulation) and the
stall counters.  Signature stability across scenarios is the paper's
first-order deliverable; fault-coverage stability is computed from the
logs by :mod:`repro.faults.campaign`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.cpu.recording import ActivationLog
from repro.isa.program import Program
from repro.soc.config import DEFAULT_SOC_CONFIG, SocConfig
from repro.soc.loader import CodeAlignment, CodePosition, placement_address
from repro.soc.soc import Soc
from repro.stl.conventions import SIG_REG

#: Builder signature: base_address -> Program.
ProgramBuilder = Callable[[int], Program]

DEFAULT_MAX_CYCLES = 4_000_000


@dataclass(frozen=True)
class Scenario:
    """One point of the Section IV-C experiment matrix."""

    active_cores: tuple[int, ...]
    position: CodePosition
    alignment: CodeAlignment

    @property
    def label(self) -> str:
        cores = "".join(str(c) for c in self.active_cores)
        return f"cores{cores}_{self.position.name.lower()}_{self.alignment.name.lower()}"

    def start_delay(self, core_id: int) -> int:
        """Deterministic per-core release delay, in cycles.

        The paper notes the stall figures "vary depending on the initial
        SoC configuration": boot firmware releases the cores a few
        cycles apart and the offset differs run to run.  Each scenario
        fixes a distinct but reproducible stagger derived from its
        placement parameters.
        """
        seed = (self.position.value >> 4) * 3 + self.alignment.value // 4 * 5
        return (seed + core_id * 7) % 11


def default_scenarios(
    two_core: tuple[int, ...] = (0, 1),
    three_core: tuple[int, ...] = (0, 1, 2),
) -> tuple[Scenario, ...]:
    """The paper's matrix: {2,3 active cores} x {3 positions} x {3 alignments}."""
    scenarios = []
    for active in (two_core, three_core):
        for position in CodePosition:
            for alignment in CodeAlignment:
                scenarios.append(Scenario(active, position, alignment))
    return tuple(scenarios)


def single_core_scenarios(core: int) -> tuple[Scenario, ...]:
    """Single-core reference runs over all placements."""
    return tuple(
        Scenario((core,), position, alignment)
        for position in CodePosition
        for alignment in CodeAlignment
    )


@dataclass
class CoreRunResult:
    """What one core produced in one scenario."""

    core_id: int
    model: str
    signature: int
    mailbox: int
    cycles: int
    if_stalls: int
    mem_stalls: int
    hazard_stalls: int
    log: ActivationLog


@dataclass
class ScenarioResult:
    """All per-core results of one scenario run."""

    scenario: Scenario
    total_cycles: int
    per_core: dict[int, CoreRunResult] = field(default_factory=dict)
    #: Determinism-audit verdict (``run_scenario(..., audit=True)``).
    audit: dict | None = None


def run_scenario(
    builders: dict[int, ProgramBuilder],
    scenario: Scenario,
    soc_config: SocConfig = DEFAULT_SOC_CONFIG,
    pcs_observable: bool = False,
    max_cycles: int = DEFAULT_MAX_CYCLES,
    audit: bool = False,
) -> ScenarioResult:
    """Run one scenario: each active core executes its own program copy.

    ``builders`` maps core id to a relocatable program builder; inactive
    cores stay switched off ("with the other cores completely turned
    off", Section IV-B).  ``audit=True`` attaches a telemetry session in
    metrics-only mode and reports the determinism auditor's verdict in
    ``ScenarioResult.audit``.
    """
    soc = Soc(soc_config)
    session = None
    if audit:
        # Function-level import: repro.telemetry.session must stay
        # importable from the models this module builds on.
        from repro.telemetry.session import TelemetrySession

        session = TelemetrySession.attach(soc, keep_events=False)
    entry_points: dict[int, int] = {}
    for core_id in scenario.active_cores:
        builder = builders[core_id]
        base = placement_address(scenario.position, scenario.alignment, core_id)
        program = builder(base)
        soc.load(program)
        entry_points[core_id] = program.base_address
        soc.cores[core_id].stall_observable = pcs_observable
    for core_id, entry in sorted(
        entry_points.items(), key=lambda item: scenario.start_delay(item[0])
    ):
        soc.run_cycles(
            max(0, scenario.start_delay(core_id) - soc.cycle)
        )
        soc.start_core(core_id, entry)
    total = soc.run(max_cycles=max_cycles)
    result = ScenarioResult(scenario=scenario, total_cycles=total)
    if session is not None:
        result.audit = session.audit_summary()
        session.detach()
    for core_id in scenario.active_cores:
        core = soc.cores[core_id]
        result.per_core[core_id] = CoreRunResult(
            core_id=core_id,
            model=core.model.name,
            signature=core.regfile.read(SIG_REG),
            mailbox=core.dtcm.read_word(core.dtcm.base),
            cycles=core.cycles,
            if_stalls=core.ifstall,
            mem_stalls=core.memstall,
            hazard_stalls=core.hazstall,
            log=core.log,
        )
    return result


def run_campaign(
    builders: dict[int, ProgramBuilder],
    scenarios: tuple[Scenario, ...],
    soc_config: SocConfig = DEFAULT_SOC_CONFIG,
    pcs_observable: bool = False,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> list[ScenarioResult]:
    """Run every scenario; each starts from a cold, freshly-built SoC."""
    return [
        run_scenario(builders, scenario, soc_config, pcs_observable, max_cycles)
        for scenario in scenarios
    ]
