"""Static validation of the methodology's code rules (Section III.2).

Rule 2.1 — no conditional branch may yield a different execution flow
between the loading and the execution loop, except branches that fire
*because of a fault* (the signature check) and the wrapper's own loop
back-edge.  Rule 2.2 — the whole multi-core version must fit the
instruction cache; otherwise it must be split.

The validator works on the built program, so it sees exactly what will
be fetched: branch targets, jump targets, code footprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instructions import Format, Mnemonic
from repro.isa.program import Program
from repro.mem.cache import CacheConfig

#: Label prefixes of branches that are allowed to diverge: the wrapper
#: loop back-edge and fault-intentional checks.
ALLOWED_BRANCH_PREFIXES = ("wrapper_loop", "copy_loop", "__sig_", "__far_")


@dataclass
class ValidationReport:
    """Outcome of validating one program against one cache geometry."""

    program_name: str
    code_bytes: int
    cache_bytes: int
    violations: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "OK" if self.ok else "VIOLATIONS"
        lines = [
            f"{self.program_name}: {status} "
            f"({self.code_bytes} B of {self.cache_bytes} B I-cache)"
        ]
        lines.extend(f"  violation: {v}" for v in self.violations)
        lines.extend(f"  warning:   {w}" for w in self.warnings)
        return "\n".join(lines)


def validate_cache_residency(
    program: Program, icache: CacheConfig
) -> ValidationReport:
    """Check rules 2.1 and 2.2 for a cache-wrapped program."""
    report = ValidationReport(
        program_name=program.name,
        code_bytes=program.size_bytes,
        cache_bytes=icache.size_bytes,
    )
    if program.size_bytes > icache.size_bytes:
        report.violations.append(
            f"code ({program.size_bytes} B) exceeds the instruction cache "
            f"({icache.size_bytes} B); split the routine (rule 2.2)"
        )
    _check_branches(program, report)
    _check_jump_targets(program, report)
    return report


def _check_branches(program: Program, report: ValidationReport) -> None:
    for index, instr in enumerate(program.code):
        if instr.spec.format is not Format.BRANCH:
            continue
        label = instr.label or ""
        if any(label.startswith(prefix) for prefix in ALLOWED_BRANCH_PREFIXES):
            continue
        report.warnings.append(
            f"conditional branch at {program.address_of(index):#010x} "
            f"({instr}) may alter the execution flow between iterations "
            "(rule 2.1); acceptable only if both legs stay cache-resident "
            "and the condition is iteration-invariant"
        )


def _check_jump_targets(program: Program, report: ValidationReport) -> None:
    lo, hi = program.base_address, program.end_address
    for index, instr in enumerate(program.code):
        if instr.mnemonic in (Mnemonic.J, Mnemonic.JAL):
            target = 4 * instr.imm
            if not lo <= target < hi:
                report.violations.append(
                    f"jump at {program.address_of(index):#010x} leaves the "
                    f"routine (target {target:#010x}); the execution loop "
                    "would miss in the instruction cache"
                )
        elif instr.mnemonic is Mnemonic.JR:
            report.warnings.append(
                f"register-indirect jump at {program.address_of(index):#010x}; "
                "residency cannot be checked statically"
            )
