"""The paper's contribution: deterministic cache-based SBST execution.

Public surface of the methodology:

* :func:`build_cache_wrapped` / :class:`CacheWrapperOptions` — the
  Fig. 2b transformation (loading loop + execution loop + invalidation,
  dummy loads under no-write-allocate);
* :func:`build_tcm_wrapped` — the TCM/scratchpad strategy compared in
  Table IV;
* :func:`split_routine` — rule 2.2 splitting;
* :func:`validate_cache_residency` — rules 2.1/2.2 static checks;
* :func:`finalise_with_expected` / :func:`golden_signature` — reference
  signature derivation;
* :func:`run_campaign` + :func:`signature_stability` — the Section IV-C
  determinism experiments.
"""

from repro.core.cache_wrapper import (
    CacheWrapperOptions,
    DummyLoadBuilder,
    build_cache_wrapped,
    cache_wrapped_builder,
    memory_overhead_bytes,
)
from repro.core.determinism import (
    CoreRunResult,
    Scenario,
    ScenarioResult,
    default_scenarios,
    run_campaign,
    run_scenario,
    single_core_scenarios,
)
from repro.core.golden import (
    finalise_with_expected,
    golden_signature,
    run_alone,
)
from repro.core.report import SignatureStability, signature_stability
from repro.core.splitter import split_routine
from repro.core.tcm_wrapper import TcmDeployment, build_tcm_body, build_tcm_wrapped
from repro.core.validator import ValidationReport, validate_cache_residency

__all__ = [
    "CacheWrapperOptions",
    "DummyLoadBuilder",
    "build_cache_wrapped",
    "cache_wrapped_builder",
    "memory_overhead_bytes",
    "CoreRunResult",
    "Scenario",
    "ScenarioResult",
    "default_scenarios",
    "run_campaign",
    "run_scenario",
    "single_core_scenarios",
    "finalise_with_expected",
    "golden_signature",
    "run_alone",
    "SignatureStability",
    "signature_stability",
    "split_routine",
    "TcmDeployment",
    "build_tcm_body",
    "build_tcm_wrapped",
    "ValidationReport",
    "validate_cache_residency",
]
