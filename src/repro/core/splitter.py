"""Routine splitting — rule 2.2 of the methodology.

"If the resulting test program is larger than the available cache size,
it must be split into two or more smaller self-test procedures"
(Section III).  The splitter partitions a routine's block emitters
greedily: blocks are appended to the current part until the *wrapped*
program (loading/execution loop included) would exceed the instruction
cache, then a new part starts.  Splitting never drops a block, so the
union of the parts applies exactly the original pattern set — "it does
not compromise the fault coverage of the original single-core test
procedure".
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.core.cache_wrapper import CacheWrapperOptions, build_cache_wrapped
from repro.errors import RoutineTooLargeError
from repro.mem.cache import CacheConfig
from repro.stl.packets import PhasedBuilder
from repro.stl.routine import RoutineContext, TestRoutine

Emitter = Callable[[PhasedBuilder, RoutineContext], None]


def _compose(
    name: str,
    module: str,
    setup: Emitter | None,
    blocks: Sequence[Emitter],
    teardown: Emitter | None,
    uses_pcs: bool,
) -> TestRoutine:
    def emit_body(asm: PhasedBuilder, ctx: RoutineContext) -> None:
        if setup is not None:
            setup(asm, ctx)
        for block in blocks:
            block(asm, ctx)
        if teardown is not None:
            teardown(asm, ctx)

    return TestRoutine(name=name, module=module, emit_body=emit_body, uses_pcs=uses_pcs)


def _wrapped_size(
    routine: TestRoutine, ctx: RoutineContext, options: CacheWrapperOptions
) -> int:
    # The wrapped size is position-independent, so probing at any base
    # is representative (constant materialisation uses fixed-width
    # sequences for the addresses involved).
    return build_cache_wrapped(routine, 0x1000, ctx, None, options).size_bytes


def split_routine(
    name: str,
    module: str,
    blocks: Sequence[Emitter],
    ctx: RoutineContext,
    icache: CacheConfig,
    setup: Emitter | None = None,
    teardown: Emitter | None = None,
    uses_pcs: bool = False,
    options: CacheWrapperOptions = CacheWrapperOptions(),
) -> list[TestRoutine]:
    """Partition ``blocks`` into cache-sized self-test procedures.

    Returns a single-element list when no split is needed.  Every part
    repeats the ``setup``/``teardown`` emitters (e.g. operand constants
    and performance-counter deltas), exactly like manually splitting an
    STL routine would.
    """
    if not blocks:
        raise ValueError("cannot split an empty block list")
    parts: list[TestRoutine] = []
    current: list[Emitter] = []
    index = 0

    def close_part() -> None:
        nonlocal current
        part_name = f"{name}_part{len(parts)}"
        parts.append(
            _compose(part_name, module, setup, tuple(current), teardown, uses_pcs)
        )
        current = []

    for block in blocks:
        candidate = _compose(
            f"{name}_probe", module, setup, tuple(current) + (block,), teardown, uses_pcs
        )
        if _wrapped_size(candidate, ctx, options) > icache.size_bytes:
            if not current:
                raise RoutineTooLargeError(
                    f"{name}: block {index} alone exceeds the "
                    f"{icache.size_bytes} B instruction cache"
                )
            close_part()
        current.append(block)
        index += 1
    if current:
        close_part()
    if len(parts) == 1:
        parts[0].name = name
    return parts
