"""The TCM (scratchpad) execution strategy — Table IV's comparison point.

"Such programs are copied (during the system boot) and then executed
from the instruction TCM" (Section IV-E).  The deployment consists of:

* a **body program** linked at an I-TCM address: test-window open,
  signature init, the unmodified body, and a ``JR`` return;
* the body's encoded words stored in flash as *data*;
* a **driver program** in flash: an unrolled copy loop moving the image
  into the I-TCM, a ``JAL`` into the TCM, then the signature check.

The body bytes stay resident in the I-TCM for the lifetime of the
application — the permanently *reserved* memory that is the strategy's
fundamental drawback, quantified in Table IV against the cache-based
strategy's zero overhead.  Caches stay disabled throughout: avoiding
cache dependence is this strategy's premise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.isa.instructions import Csr, Instruction, Mnemonic
from repro.isa.program import Program
from repro.mem.memmap import itcm_base
from repro.soc.soc import Soc
from repro.stl.conventions import DATA_PTR, LINK_REG, WRAP_TMP
from repro.stl.packets import PhasedBuilder
from repro.stl.routine import RoutineContext, TestRoutine, emit_epilogue
from repro.stl.signature import emit_signature_init

#: Registers used by the copy loop (disjoint from the body's register
#: needs because the body only runs after the copy completes).
_SRC, _DST, _COUNT, _TMP0, _TMP1, _TMP2, _TMP3 = 1, 2, 3, 4, 5, 6, 7
_UNROLL = 4


@dataclass(frozen=True)
class TcmDeployment:
    """Everything needed to run one TCM-based self-test."""

    driver: Program
    body: Program
    #: I-TCM bytes permanently reserved for the test (Table IV metric).
    reserved_tcm_bytes: int
    #: Flash address where the body image is stored as data.
    image_address: int

    def load(self, soc: Soc, core_index: int) -> None:
        """Program the flash image and mark the TCM reservation."""
        soc.load(self.driver)
        soc.cores[core_index].itcm.reserve(self.reserved_tcm_bytes)

    @property
    def entry_point(self) -> int:
        return self.driver.base_address


def build_tcm_body(
    routine: TestRoutine, tcm_address: int, ctx: RoutineContext
) -> Program:
    """The TCM-resident part: prologue + body + return."""
    asm = PhasedBuilder(tcm_address, f"{routine.name}_tcmbody")
    asm.li(WRAP_TMP, 1)
    asm.csrw(Csr.TESTWIN, WRAP_TMP)
    emit_signature_init(asm)
    asm.li(DATA_PTR, ctx.data_base)
    asm.align()
    routine.emit_body(asm, ctx.with_testwin_reg(None))
    asm.align()
    asm.li(WRAP_TMP, 0)
    asm.csrw(Csr.TESTWIN, WRAP_TMP)
    asm.jr(LINK_REG)
    return asm.build()


def build_tcm_wrapped(
    routine: TestRoutine,
    base_address: int,
    ctx: RoutineContext,
    expected_signature: int | None = None,
    tcm_offset: int = 0x100,
    image_offset: int = 0x2000,
) -> TcmDeployment:
    """Build the full TCM deployment of ``routine`` for one core."""
    tcm_address = itcm_base(ctx.core_index) + tcm_offset
    body = build_tcm_body(routine, tcm_address, ctx)
    core_tcm_size = 16 << 10
    if tcm_offset + body.size_bytes > core_tcm_size:
        raise ValidationError(
            f"{routine.name}: body of {body.size_bytes} B does not fit the "
            f"I-TCM at offset {tcm_offset:#x}"
        )
    image_address = base_address + image_offset
    words = body.encoded_words()
    padded = len(words) + (-len(words)) % _UNROLL

    asm = PhasedBuilder(base_address, f"{routine.name}_tcm")
    asm.li(_SRC, image_address)
    asm.li(_DST, tcm_address)
    asm.li(_COUNT, padded // _UNROLL)
    asm.label("copy_loop")
    for k, tmp in enumerate((_TMP0, _TMP1, _TMP2, _TMP3)):
        asm.lw(tmp, 4 * k, _SRC)
        asm.sw(tmp, 4 * k, _DST)
    asm.addi(_SRC, _SRC, 4 * _UNROLL)
    asm.addi(_DST, _DST, 4 * _UNROLL)
    asm.addi(_COUNT, _COUNT, -1)
    asm.bne(_COUNT, 0, "copy_loop")
    asm.sync()
    # Call into the TCM-resident body; it returns through LINK_REG.
    asm.emit(Instruction(Mnemonic.JAL, imm=tcm_address // 4))
    emit_epilogue(asm, ctx, expected_signature)
    asm.halt()
    driver = asm.build()
    if driver.end_address > image_address:
        raise ValidationError(
            f"{routine.name}: driver code ({driver.size_bytes} B) overruns "
            f"the body image at {image_address:#x}; increase image_offset"
        )
    for i, word in enumerate(words):
        driver.data[image_address + 4 * i] = word
    for i in range(len(words), padded):
        driver.data[image_address + 4 * i] = 0
    return TcmDeployment(
        driver=driver,
        body=body,
        reserved_tcm_bytes=body.size_bytes,
        image_address=image_address,
    )
