"""The cache-based deterministic execution wrapper (the paper's Fig. 2b).

Transforms an unmodified single-core self-test body into the multi-core
deterministic version by applying the three rules of Section III:

1. **Two-iteration loop.**  The body executes twice: the *loading loop*
   (iteration 0) streams the code — and, with a write-allocate D-cache,
   the referenced data — into the core-private caches; the *execution
   loop* (iteration 1) then runs entirely cache-resident, isolated from
   bus contention.  The signature is re-seeded at the top of every
   iteration and the TESTWIN CSR carries the iteration number, so the
   loading loop performs **no signature computation that is ever
   checked** and none of its module activations count as observable.
2. **Whole-routine cache residency.**  Enforced statically by
   :mod:`repro.core.validator` / :mod:`repro.core.splitter` (rules 2.1
   and 2.2 of the paper).
3. **Cache invalidation first** (block *b* of Fig. 2b).

With a no-write-allocate D-cache the emitted body is "lightly modified"
exactly as the paper prescribes: every store is followed by a dummy load
from the same address, whose read miss pulls the line in during the
loading loop so the execution loop's stores hit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import (
    CACHECFG_DCACHE_EN,
    CACHECFG_ICACHE_EN,
    CACHECFG_WRITE_ALLOCATE,
    Csr,
    Instruction,
    Mnemonic,
)
from repro.isa.program import Program
from repro.stl.conventions import DATA_PTR, SIG_T1, WRAP_ITER, WRAP_TMP
from repro.stl.packets import PhasedBuilder
from repro.stl.routine import RoutineContext, TestRoutine, emit_epilogue
from repro.stl.signature import emit_signature_init


@dataclass(frozen=True)
class CacheWrapperOptions:
    """Build-time knobs; the non-default settings are ablations.

    ``dummy_loads=None`` applies the paper's rule automatically (dummy
    loads if and only if the D-cache is no-write-allocate); forcing it
    False under no-write-allocate reproduces the write-miss traffic the
    rule exists to avoid.
    """

    write_allocate: bool = True
    invalidate: bool = True
    loading_loop: bool = True
    dummy_loads: bool | None = None

    @property
    def effective_dummy_loads(self) -> bool:
        if self.dummy_loads is None:
            return not self.write_allocate
        return self.dummy_loads


class DummyLoadBuilder(PhasedBuilder):
    """A builder that appends a dummy load after every store it emits."""

    def __init__(self, base_address: int, name: str, dummy_loads: bool):
        super().__init__(base_address, name)
        self.dummy_loads = dummy_loads

    def emit(self, instr: Instruction) -> int:
        index = super().emit(instr)
        if self.dummy_loads and instr.spec.is_store:
            load = Mnemonic.LW if instr.mnemonic is Mnemonic.SW else Mnemonic.LBU
            super().emit(
                Instruction(load, rd=SIG_T1, rs1=instr.rs1, imm=instr.imm)
            )
        return index


def build_cache_wrapped(
    routine: TestRoutine,
    base_address: int,
    ctx: RoutineContext,
    expected_signature: int | None = None,
    options: CacheWrapperOptions = CacheWrapperOptions(),
) -> Program:
    """Build the multi-core, cache-based version of ``routine``."""
    asm = DummyLoadBuilder(
        base_address, f"{routine.name}_cache", options.effective_dummy_loads
    )
    # Block b: configure and invalidate both private caches.
    cachecfg = CACHECFG_ICACHE_EN | CACHECFG_DCACHE_EN
    if options.write_allocate:
        cachecfg |= CACHECFG_WRITE_ALLOCATE
    asm.li(WRAP_TMP, cachecfg)
    asm.csrw(Csr.CACHECFG, WRAP_TMP)
    if options.invalidate:
        asm.icinv()
        asm.dcinv()
    asm.li(WRAP_ITER, 0 if options.loading_loop else 1)
    asm.label("wrapper_loop")
    # Iteration prologue: TESTWIN <- iteration (0 = loading, 1 = execution)
    # and a fresh signature seed, discarding loading-loop accumulation.
    asm.csrw(Csr.TESTWIN, WRAP_ITER)
    emit_signature_init(asm)
    asm.li(DATA_PTR, ctx.data_base)
    asm.align()
    # Blocks c/d: the unmodified single-core test program body.
    routine.emit_body(asm, ctx.with_testwin_reg(WRAP_ITER))
    # Close the observation window at the end of the body, *inside* the
    # loop: this code executes during the loading loop too, so its cache
    # line is warm when the execution loop reaches it.  Closing after
    # the loop instead would put the window-clearing instruction on a
    # line the loading loop never committed (its speculative fill is
    # discarded by the loop-back redirect), and fetching it would be a
    # bus transaction inside the still-open window.
    asm.li(WRAP_TMP, 0)
    asm.csrw(Csr.TESTWIN, WRAP_TMP)
    # Fetch-skid guard band: the front end runs up to a full issue queue
    # (8 words) ahead of the issue stage, so without padding it would
    # cross into the cold post-loop line — and miss onto the bus — a
    # cycle before the closing CSR write issues.  Eight warm NOPs (plus
    # the loop tail) keep the first cold fetch strictly after the close.
    asm.nop(8)
    asm.align()
    asm.addi(WRAP_ITER, WRAP_ITER, 1)
    asm.li(WRAP_TMP, 2)
    asm.branch_far(Mnemonic.BNE, WRAP_ITER, WRAP_TMP, "wrapper_loop")
    # Block e: signature check (only the execution loop's signature
    # survives, since each iteration re-seeded SIG_REG).
    emit_epilogue(asm, ctx, expected_signature)
    asm.halt()
    return asm.build()


def cache_wrapped_builder(
    routine: TestRoutine,
    ctx: RoutineContext,
    expected_signature: int | None = None,
    options: CacheWrapperOptions = CacheWrapperOptions(),
):
    """Relocatable ``build(base_address)`` callable for the loader."""

    def build(base_address: int) -> Program:
        return build_cache_wrapped(
            routine, base_address, ctx, expected_signature, options
        )

    return build


def memory_overhead_bytes(routine: TestRoutine, ctx: RoutineContext) -> int:
    """Overall (RAM/TCM) memory overhead of the cache-based strategy.

    The wrapper adds a handful of flash instructions (which the paper
    calls negligible) but reserves **zero** bytes of RAM, TCM or cache:
    the routine is allocated in the caches at run time without enlarging
    its memory footprint.  Returned for symmetry with the TCM strategy's
    reservation; always 0.
    """
    return 0
