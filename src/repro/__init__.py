"""repro — deterministic cache-based execution of on-line self-test
routines in multi-core automotive SoCs.

A faithful, simulator-based reproduction of Floridia et al., DATE 2020:
a cycle-level triple-core automotive SoC (dual-issue pipelines, private
caches/TCMs, shared flash bus), a software test library with the
paper's forwarding and imprecise-interrupt SBST routines, a gate-level
stuck-at fault-simulation flow, and — the paper's contribution — the
cache-based wrapper that makes boot-time self-test execution
deterministic in a multi-core system.

Quick start::

    from repro import (
        CORE_MODEL_A, RoutineContext, Soc,
        make_forwarding_routine, build_cache_wrapped, golden_signature,
    )

    routine = make_forwarding_routine(CORE_MODEL_A, with_pcs=False)
    ctx = RoutineContext.for_core(0, CORE_MODEL_A)
    program = build_cache_wrapped(routine, 0x1000, ctx)
    print(hex(golden_signature(program, core_index=0)))

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
reproduction of every table and figure in the paper's evaluation.
"""

from repro.core import (
    CacheWrapperOptions,
    Scenario,
    build_cache_wrapped,
    build_tcm_wrapped,
    cache_wrapped_builder,
    default_scenarios,
    finalise_with_expected,
    golden_signature,
    run_alone,
    run_campaign,
    run_scenario,
    signature_stability,
    single_core_scenarios,
    split_routine,
    validate_cache_residency,
)
from repro.cpu import (
    CORE_MODEL_A,
    CORE_MODEL_B,
    CORE_MODEL_C,
    Core,
    CoreModel,
)
from repro.faults import (
    forwarding_coverage,
    get_modules,
    hdcu_coverage,
    icu_coverage,
)
from repro.soc import (
    CodeAlignment,
    CodePosition,
    Soc,
    SocConfig,
    StallMonitor,
    placement_address,
)
from repro.stl import (
    RoutineContext,
    SoftwareTestLibrary,
    TestRoutine,
    build_library,
)
from repro.stl.routines import (
    make_background_routines,
    make_forwarding_routine,
    make_interrupt_routine,
)

__version__ = "1.0.0"

__all__ = [
    "CacheWrapperOptions",
    "Scenario",
    "build_cache_wrapped",
    "build_tcm_wrapped",
    "cache_wrapped_builder",
    "default_scenarios",
    "finalise_with_expected",
    "golden_signature",
    "run_alone",
    "run_campaign",
    "run_scenario",
    "signature_stability",
    "single_core_scenarios",
    "split_routine",
    "validate_cache_residency",
    "CORE_MODEL_A",
    "CORE_MODEL_B",
    "CORE_MODEL_C",
    "Core",
    "CoreModel",
    "forwarding_coverage",
    "get_modules",
    "hdcu_coverage",
    "icu_coverage",
    "CodeAlignment",
    "CodePosition",
    "Soc",
    "SocConfig",
    "StallMonitor",
    "placement_address",
    "RoutineContext",
    "SoftwareTestLibrary",
    "TestRoutine",
    "build_library",
    "make_background_routines",
    "make_forwarding_routine",
    "make_interrupt_routine",
    "__version__",
]
