"""Command-line interface: ``python -m repro <experiment>``.

Runs one (or all) of the paper's experiments and prints the rendered
table next to the paper's reference numbers.  For programmatic access
use :mod:`repro.analysis` directly.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import (
    fig1_pipeline_traces,
    fig2_structure_audit,
    table1_stalls,
    table2_forwarding,
    table3_icu_hdcu,
    table4_tcm_vs_cache,
)

#: Exit status of ``faultsim`` when a supervised campaign completes
#: partially (quarantined shards under ``--allow-partial``) — distinct
#: from 1 (failed scenarios) so scripts can tell "coverage is a lower
#: bound" from "the campaign found failures".
EXIT_PARTIAL_CAMPAIGN = 3

EXPERIMENTS = {
    "table1": ("Table I  - multi-core STL stalls", table1_stalls),
    "table2": ("Table II - forwarding FC, no PCs", table2_forwarding),
    "table3": ("Table III - ICU/HDCU FC + verdicts", table3_icu_hdcu),
    "table4": ("Table IV - TCM vs cache strategy", table4_tcm_vs_cache),
    "fig1": ("Fig. 1   - forwarding pipeline traces", fig1_pipeline_traces),
    "fig2": ("Fig. 2   - wrapper structural audit", fig2_structure_audit),
}


def _run_trace(argv: list[str]) -> int:
    """``python -m repro trace <scenario>`` — run a canned scenario with
    telemetry attached and export the Chrome trace + metrics report.

    Lives outside ``EXPERIMENTS`` on purpose: those regenerate paper
    tables/figures, while ``trace`` produces artifacts (a
    Perfetto-loadable trace, a phase-split metrics JSON) and an audit
    verdict for one scenario run.
    """
    # Function-level import: the telemetry scenarios build SoCs and
    # programs, none of which the table/figure experiments need.
    from repro.telemetry.scenarios import TRACE_SCENARIOS, run_trace_scenario

    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Run one canned telemetry scenario, print its phase-split "
            "metrics and determinism-audit verdict, and export a Chrome "
            "trace-event JSON loadable in Perfetto (ui.perfetto.dev)."
        ),
    )
    parser.add_argument(
        "scenario",
        choices=sorted(TRACE_SCENARIOS),
        help="; ".join(
            f"{name}: {desc}" for name, (desc, _) in sorted(TRACE_SCENARIOS.items())
        ),
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="Chrome trace-event JSON path (default: trace_<scenario>.json)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="metrics JSON path (default: metrics_<scenario>.json)",
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="tiny routine bodies (fast smoke runs, e.g. in CI)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero unless the audit verdict matches the scenario's",
    )
    args = parser.parse_args(argv)
    start = time.time()
    run = run_trace_scenario(args.scenario, small=args.small)
    print(f"== trace scenario: {run.name} ({run.cycles:,} cycles) ==")
    print(f"   {run.narrative}\n")
    print(run.session.metrics.render())
    print()
    print(run.session.auditor.render())
    if run.report is not None:
        report = run.report
        print()
        print(
            f"supervisor: all_passed={report.all_passed} "
            f"recovered={report.recovered_names} "
            f"injections={len(report.injections)} "
            f"audit_attached={report.audit is not None}"
        )
    trace_path = args.trace_out or f"trace_{run.name}.json"
    metrics_path = args.metrics_out or f"metrics_{run.name}.json"
    events = run.session.export_chrome_trace(trace_path)
    run.session.metrics.snapshot().save(metrics_path)
    print(
        f"\nwrote {trace_path} ({len(events)} trace events; load in "
        f"ui.perfetto.dev) and {metrics_path} "
        f"({time.time() - start:.1f}s)"
    )
    if args.strict and not run.audit_as_expected:
        expected = "PASS" if run.expect_audit_pass else "FAIL"
        print(f"audit verdict does not match the scenario (expected {expected})")
        return 1
    return 0


def _run_faultsim(argv: list[str]) -> int:
    """``python -m repro faultsim`` — the parallel sharded coverage
    campaign over the paper's scenario matrix.

    Fault-grades every scenario run against the per-core fault lists
    like the Table II/III experiments, but sharded over a process pool
    (``--workers``) with per-shard checkpoints, so the full campaign
    runs at host speed and a killed run resumes where it left off.
    ``--workers 1`` is the exact serial path; any worker/shard geometry
    produces bit-identical coverage (the differential test suite's
    invariant).
    """
    # Function-level imports: the table experiments don't need any of
    # the campaign machinery (and vice versa).
    import json as json_module
    import tempfile

    from repro.core.determinism import default_scenarios
    from repro.faults.campaign import COVERAGE_GRADERS, ModuleCoverage, coverage_range
    from repro.faults.parallel import (
        resolve_workers,
        run_parallel_checkpointed_campaign,
    )
    from repro.faults.ppsfp import ENGINES
    from repro.faults.workload import (
        DEFAULT_CAMPAIGN_MODELS,
        small_provider,
        standard_provider,
    )
    from repro.telemetry.metrics import MetricsCollector
    from repro.utils.tables import format_table

    parser = argparse.ArgumentParser(
        prog="python -m repro faultsim",
        description=(
            "Sharded multi-process fault-simulation campaign: run the "
            "Section IV-C scenario matrix, fault-grade every run, and "
            "report per-module coverage ranges plus per-shard throughput."
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "process-pool size (1 = exact serial path, the default); "
            "requests beyond the host's CPU count are clamped"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=ENGINES,
        default="compiled",
        help=(
            "fault-simulation engine: the levelized compiled kernel "
            "(default) or the interpreted reference path — bit-identical "
            "coverage either way"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="scenario shard count (default: min(#scenarios, 4*workers))",
    )
    parser.add_argument(
        "--modules",
        default="FWD,HDCU,ICU",
        help=(
            "comma-separated fault lists to grade; choices: "
            + ",".join(sorted(COVERAGE_GRADERS))
        ),
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="smoke-sized routine bodies (fast CI runs)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help=(
            "campaign checkpoint directory (resumable); default: a "
            "throwaway temp directory"
        ),
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help=(
            "run under the supervised orchestrator: retry each failed "
            "shard up to N times (deterministic backoff) before "
            "quarantining it"
        ),
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help=(
            "supervised-orchestrator shard deadline in seconds of running "
            "time; a shard past it is killed and re-dispatched "
            "(implies the orchestrator; default retry budget applies "
            "unless --max-retries is given)"
        ),
    )
    parser.add_argument(
        "--allow-partial",
        action="store_true",
        help=(
            "accept a partial campaign when shards end quarantined: "
            "print the quarantine roster, report coverage over the "
            "completed scenarios only, and exit with status "
            f"{EXIT_PARTIAL_CAMPAIGN} instead of failing"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write the telemetry metrics (incl. per-shard timing) as JSON",
    )
    parser.add_argument(
        "--json",
        dest="json_out",
        default=None,
        help="write a machine-readable campaign summary as JSON",
    )
    args = parser.parse_args(argv)
    modules = tuple(m.strip() for m in args.modules.split(",") if m.strip())
    unknown = [m for m in modules if m not in COVERAGE_GRADERS]
    if unknown:
        parser.error(f"unknown modules {unknown}; choices: {sorted(COVERAGE_GRADERS)}")
    provider = small_provider() if args.small else standard_provider()
    scenarios = default_scenarios()
    metrics = MetricsCollector()
    workers = resolve_workers(args.workers)
    if workers != args.workers:
        print(
            f"note: clamped --workers {args.workers} to {workers} "
            f"(host CPU count)"
        )
    supervised = (
        args.max_retries is not None
        or args.shard_timeout is not None
        or args.allow_partial
    )
    policy = None
    if supervised:
        from repro.faults.orchestrator import RetryPolicy

        policy = RetryPolicy(
            max_retries=2 if args.max_retries is None else args.max_retries,
            shard_timeout=args.shard_timeout,
            allow_partial=args.allow_partial,
        )
    start = time.time()
    with tempfile.TemporaryDirectory() as tmp:
        result = run_parallel_checkpointed_campaign(
            provider,
            scenarios,
            DEFAULT_CAMPAIGN_MODELS,
            args.checkpoint_dir or tmp,
            modules=modules,
            workers=workers,
            num_shards=args.shards,
            engine=args.engine,
            metrics=metrics,
            policy=policy,
        )
    elapsed = time.time() - start
    report = getattr(result, "report", None)
    quarantined_shards = list(getattr(result, "quarantined_shards", ()))
    quarantined_labels = list(getattr(result, "quarantined_labels", ()))
    failed = sorted(
        label for label, o in result.outcomes.items() if o.failed
    )

    # Coverage ranges per (module, core) across the scenario matrix —
    # the Table II/III shape, computed from the merged shard outcomes.
    per_key: dict[tuple[str, int], list[ModuleCoverage]] = {}
    for outcome in result.outcomes.values():
        for entry in outcome.coverages:
            coverage = ModuleCoverage.from_dict(entry)
            per_key.setdefault(
                (entry["module"], entry["core_id"]), []
            ).append(coverage)
    rows = []
    summary = []
    for (module, core_id), coverages in sorted(per_key.items()):
        spread = coverage_range(coverages)
        rows.append(
            (
                module,
                str(core_id),
                spread.core_model,
                f"{spread.minimum_percent:.2f}",
                f"{spread.maximum_percent:.2f}",
                "yes" if spread.stable else "NO",
            )
        )
        summary.append(
            {
                "module": module,
                "core_id": core_id,
                "core_model": spread.core_model,
                "min_percent": spread.minimum_percent,
                "max_percent": spread.maximum_percent,
                "stable": spread.stable,
            }
        )
    print(
        format_table(
            ("module", "core", "model", "min FC%", "max FC%", "stable"),
            rows,
            title=(
                f"Coverage ranges over {len(result.outcomes)} scenarios "
                f"({workers} workers, {result.num_shards} shards, "
                f"{args.engine} engine)"
            ),
        )
    )
    if result.shard_timings:
        print()
        print(
            format_table(
                ("shard", "scenarios", "seconds", "scen/s"),
                [
                    (
                        str(t.index),
                        str(t.items),
                        f"{t.seconds:.2f}",
                        f"{t.throughput:.2f}",
                    )
                    for t in result.shard_timings
                ],
                title="Executed shards (resume skips completed ones)",
            )
        )
    if failed:
        print(f"\nquarantined scenarios: {', '.join(failed)}")
    if report is not None:
        retried = report.retried_shards
        print(
            f"\norchestrator: {len(report.attempts)} shard attempt(s), "
            f"{len(retried)} shard(s) retried, "
            f"{report.pool_rebuilds} pool rebuild(s), "
            f"{report.stragglers} straggler(s)"
            + (" [degraded to serial]" if report.degraded_serial else "")
        )
    if quarantined_shards:
        print(
            f"quarantined shards: {quarantined_shards} covering "
            f"scenario(s): {', '.join(quarantined_labels)}"
        )
        print(
            "coverage below is a LOWER BOUND over the completed "
            "scenarios only"
        )
    print(
        f"\n{len(result.outcomes)} scenarios, {len(result.scheduled)} shard(s) "
        f"executed in {elapsed:.1f}s wall-clock"
    )
    if args.metrics_out:
        metrics.snapshot().save(args.metrics_out)
        print(f"wrote {args.metrics_out}")
    if args.json_out:
        payload = {
            "workers": workers,
            "engine": args.engine,
            "num_shards": result.num_shards,
            "scenarios": len(result.outcomes),
            "modules": list(modules),
            "elapsed_seconds": elapsed,
            "failed": failed,
            "coverage_ranges": summary,
        }
        if report is not None:
            payload["orchestration"] = report.to_dict()
            payload["quarantined_shards"] = quarantined_shards
            payload["quarantined_scenarios"] = quarantined_labels
        with open(args.json_out, "w") as handle:
            json_module.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json_out}")
    if quarantined_shards:
        return EXIT_PARTIAL_CAMPAIGN
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    # The trace/faultsim subcommands take their own flags, so dispatch
    # them before the experiment parser (whose choices are the paper's
    # tables).
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return _run_trace(argv[1:])
    if argv and argv[0] == "faultsim":
        return _run_faultsim(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Reproduce the evaluation of 'Deterministic Cache-based "
            "Execution of On-line Self-Test Routines in Multi-core "
            "Automotive System-on-Chips' (DATE 2020)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "report"],
        help=(
            "which table/figure to regenerate; 'all' runs everything, "
            "'report' additionally writes a Markdown report"
        ),
    )
    parser.add_argument(
        "--output",
        default="REPORT.md",
        help="report file path (only with the 'report' subcommand)",
    )
    args = parser.parse_args(argv)
    if args.experiment == "report":
        return _write_report(args.output)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        title, runner = EXPERIMENTS[name]
        print(f"== {title} ==")
        start = time.time()
        result = runner()
        print(result.render())
        print(f"({time.time() - start:.1f}s)\n")
    return 0


def _write_report(path: str) -> int:
    """Run every experiment and write a self-contained Markdown report."""
    sections = []
    for name in sorted(EXPERIMENTS):
        title, runner = EXPERIMENTS[name]
        print(f"running {name} ...", flush=True)
        start = time.time()
        rendered = runner().render()
        sections.append(
            f"## {title}\n\n```\n{rendered}\n```\n\n"
            f"_regenerated in {time.time() - start:.1f}s_\n"
        )
    with open(path, "w") as handle:
        handle.write(
            "# Reproduction report — Deterministic Cache-based Execution "
            "of On-line Self-Test Routines (DATE 2020)\n\n"
            "Generated by `python -m repro report`; every value is "
            "deterministic and re-running reproduces it bit-for-bit.\n\n"
            + "\n".join(sections)
        )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
