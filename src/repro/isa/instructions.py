"""Instruction set of the modelled automotive cores.

The target SoC of the paper embeds three dual-issue in-order cores (two
32-bit, one with a 64-bit extended datapath).  This module defines the
ISA the simulator executes: a small RISC instruction set with

* the usual ALU / memory / branch instructions,
* *trapping* arithmetic instructions that raise synchronous **imprecise**
  interrupts through the Interrupt Control Unit (``ADDO``, ``SUBO``,
  ``MULO``, ``SATADD``, ``DIVT``, ``SLLO``),
* 64-bit register-pair instructions available only on core C
  (``ADD64`` ...), and
* system instructions for the self-test flow: CSR access (performance
  counters, ICU registers, cache configuration), cache invalidation and
  pipeline synchronisation.

Each mnemonic is described by an :class:`InstrSpec` (format, register
reads/writes, structural class, trap event) so the decoder, assembler,
encoder and test-program generators all share one source of truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

NUM_REGS = 32
LINK_REG = 31

#: Number of synchronous imprecise interrupt event lines entering the ICU.
NUM_EVENTS = 6


class Event(enum.IntEnum):
    """Synchronous imprecise interrupt sources (Section II / IV-D)."""

    OVF_ADD = 0
    OVF_SUB = 1
    OVF_MUL = 2
    SAT = 3
    DIV0 = 4
    SHIFTO = 5


class Csr(enum.IntEnum):
    """Control/status registers readable with ``CSRR`` (written with ``CSRW``)."""

    CYCLES = 0
    INSTRET = 1
    IFSTALL = 2
    MEMSTALL = 3
    HAZSTALL = 4
    COREID = 5
    ICU_STATUS = 6
    ICU_IMPREC = 7
    ICU_PEND = 8
    CACHECFG = 9
    ICU_ACK = 10
    ICU_COUNT = 11
    #: Test-window marker: routines write 1 while their signature is being
    #: accumulated (the *execution loop*) and 0 elsewhere (the *loading
    #: loop*).  Module-activation recorders use it as the observability
    #: window for fault simulation.
    TESTWIN = 12


#: CACHECFG bit assignments (written via ``CSRW CACHECFG``).
CACHECFG_ICACHE_EN = 1 << 0
CACHECFG_DCACHE_EN = 1 << 1
CACHECFG_WRITE_ALLOCATE = 1 << 2


class Format(enum.Enum):
    """Operand/encoding format of a mnemonic."""

    R3 = "r3"  # rd, rs1, rs2
    I = "i"  # rd, rs1, imm15  # noqa: E741 - conventional format name
    LUI = "lui"  # rd, imm20
    LOAD = "load"  # rd, imm15(rs1)
    STORE = "store"  # rs2, imm10(rs1)
    BRANCH = "branch"  # rs1, rs2, imm10 (word offset)
    JUMP = "jump"  # imm25 (absolute word address)
    JR = "jr"  # rs1
    CSRR = "csrr"  # rd, csr
    CSRW = "csrw"  # csr, rs1
    SYS = "sys"  # no operands


class Mnemonic(enum.Enum):
    """All instruction mnemonics; the value doubles as assembly syntax."""

    # 32-bit ALU, register-register.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SLT = "slt"
    SLTU = "sltu"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    MUL = "mul"
    MULH = "mulh"
    # Trapping ALU (raise synchronous imprecise events).
    ADDO = "addo"
    SUBO = "subo"
    MULO = "mulo"
    SATADD = "satadd"
    DIVT = "divt"
    SLLO = "sllo"
    # 64-bit register-pair ALU (core C only).
    ADD64 = "add64"
    SUB64 = "sub64"
    AND64 = "and64"
    OR64 = "or64"
    XOR64 = "xor64"
    # ALU, register-immediate.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    LUI = "lui"
    # Memory.
    LW = "lw"
    LBU = "lbu"
    SW = "sw"
    SB = "sb"
    # Control flow.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BLTU = "bltu"
    BGEU = "bgeu"
    J = "j"
    JAL = "jal"
    JR = "jr"
    # System.
    CSRR = "csrr"
    CSRW = "csrw"
    NOP = "nop"
    HALT = "halt"
    ICINV = "icinv"
    DCINV = "dcinv"
    SYNC = "sync"
    #: Atomic test-and-set (reads the word, writes 1, in one bus
    #: transaction; always uncached).  The substrate for the
    #: decentralised run-once claiming of the [13]-style scheduler.
    TAS = "tas"


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one mnemonic.

    Attributes:
        format: operand/encoding format.
        is_load / is_store: memory-class instruction (executes in pipe 0).
        is_mul: uses the multiplier unit (executes in pipe 0).
        is_branch: conditional branch or jump (must issue in slot 0).
        is_trap: may raise a synchronous imprecise interrupt event.
        event: the :class:`Event` raised when the trap condition holds.
        is_64bit: operates on register pairs; only legal on core C.
        is_system: CSR / cache-control / barrier class (issues alone).
        writes_rd: architecturally writes the ``rd`` field.
        is_atomic: indivisible read-modify-write (bypasses the D-cache).
    """

    format: Format
    is_load: bool = False
    is_store: bool = False
    is_mul: bool = False
    is_branch: bool = False
    is_trap: bool = False
    event: Event | None = None
    is_64bit: bool = False
    is_system: bool = False
    writes_rd: bool = False
    is_atomic: bool = False

    @property
    def is_mem(self) -> bool:
        """True for loads and stores."""
        return self.is_load or self.is_store


def _r3(**kw) -> InstrSpec:
    return InstrSpec(format=Format.R3, writes_rd=True, **kw)


def _imm(**kw) -> InstrSpec:
    return InstrSpec(format=Format.I, writes_rd=True, **kw)


SPECS: dict[Mnemonic, InstrSpec] = {
    Mnemonic.ADD: _r3(),
    Mnemonic.SUB: _r3(),
    Mnemonic.AND: _r3(),
    Mnemonic.OR: _r3(),
    Mnemonic.XOR: _r3(),
    Mnemonic.NOR: _r3(),
    Mnemonic.SLT: _r3(),
    Mnemonic.SLTU: _r3(),
    Mnemonic.SLL: _r3(),
    Mnemonic.SRL: _r3(),
    Mnemonic.SRA: _r3(),
    Mnemonic.MUL: _r3(is_mul=True),
    Mnemonic.MULH: _r3(is_mul=True),
    Mnemonic.ADDO: _r3(is_trap=True, event=Event.OVF_ADD),
    Mnemonic.SUBO: _r3(is_trap=True, event=Event.OVF_SUB),
    Mnemonic.MULO: _r3(is_mul=True, is_trap=True, event=Event.OVF_MUL),
    Mnemonic.SATADD: _r3(is_trap=True, event=Event.SAT),
    Mnemonic.DIVT: _r3(is_mul=True, is_trap=True, event=Event.DIV0),
    Mnemonic.SLLO: _r3(is_trap=True, event=Event.SHIFTO),
    Mnemonic.ADD64: _r3(is_64bit=True),
    Mnemonic.SUB64: _r3(is_64bit=True),
    Mnemonic.AND64: _r3(is_64bit=True),
    Mnemonic.OR64: _r3(is_64bit=True),
    Mnemonic.XOR64: _r3(is_64bit=True),
    Mnemonic.ADDI: _imm(),
    Mnemonic.ANDI: _imm(),
    Mnemonic.ORI: _imm(),
    Mnemonic.XORI: _imm(),
    Mnemonic.SLTI: _imm(),
    Mnemonic.SLLI: _imm(),
    Mnemonic.SRLI: _imm(),
    Mnemonic.SRAI: _imm(),
    Mnemonic.LUI: InstrSpec(format=Format.LUI, writes_rd=True),
    Mnemonic.LW: InstrSpec(format=Format.LOAD, is_load=True, writes_rd=True),
    Mnemonic.LBU: InstrSpec(format=Format.LOAD, is_load=True, writes_rd=True),
    Mnemonic.SW: InstrSpec(format=Format.STORE, is_store=True),
    Mnemonic.SB: InstrSpec(format=Format.STORE, is_store=True),
    Mnemonic.BEQ: InstrSpec(format=Format.BRANCH, is_branch=True),
    Mnemonic.BNE: InstrSpec(format=Format.BRANCH, is_branch=True),
    Mnemonic.BLT: InstrSpec(format=Format.BRANCH, is_branch=True),
    Mnemonic.BGE: InstrSpec(format=Format.BRANCH, is_branch=True),
    Mnemonic.BLTU: InstrSpec(format=Format.BRANCH, is_branch=True),
    Mnemonic.BGEU: InstrSpec(format=Format.BRANCH, is_branch=True),
    Mnemonic.J: InstrSpec(format=Format.JUMP, is_branch=True),
    Mnemonic.JAL: InstrSpec(format=Format.JUMP, is_branch=True, writes_rd=True),
    Mnemonic.JR: InstrSpec(format=Format.JR, is_branch=True),
    Mnemonic.CSRR: InstrSpec(format=Format.CSRR, is_system=True, writes_rd=True),
    Mnemonic.CSRW: InstrSpec(format=Format.CSRW, is_system=True),
    Mnemonic.NOP: InstrSpec(format=Format.SYS),
    Mnemonic.HALT: InstrSpec(format=Format.SYS, is_system=True),
    Mnemonic.ICINV: InstrSpec(format=Format.SYS, is_system=True),
    Mnemonic.DCINV: InstrSpec(format=Format.SYS, is_system=True),
    Mnemonic.SYNC: InstrSpec(format=Format.SYS, is_system=True),
    Mnemonic.TAS: InstrSpec(
        format=Format.LOAD, is_load=True, writes_rd=True, is_atomic=True
    ),
}


@dataclass(frozen=True)
class Instruction:
    """One decoded (or about-to-be-encoded) instruction.

    ``imm`` is the signed immediate / branch word-offset / absolute jump
    word-address depending on format.  ``label`` is an optional symbolic
    target kept for assembly listings; the encoder only uses ``imm``.
    """

    mnemonic: Mnemonic
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    csr: int = 0
    label: str | None = field(default=None, compare=False)

    @property
    def spec(self) -> InstrSpec:
        """The static :class:`InstrSpec` of this mnemonic."""
        return SPECS[self.mnemonic]

    def source_regs(self) -> tuple[int, ...]:
        """Architectural registers read, in operand order (with 64-bit pairs)."""
        spec = self.spec
        fmt = spec.format
        if fmt is Format.R3:
            if spec.is_64bit:
                return (self.rs1, self.rs1 + 1, self.rs2, self.rs2 + 1)
            return (self.rs1, self.rs2)
        if fmt is Format.I:
            return (self.rs1,)
        if fmt is Format.LOAD:
            return (self.rs1,)
        if fmt is Format.STORE:
            return (self.rs1, self.rs2)
        if fmt is Format.BRANCH:
            return (self.rs1, self.rs2)
        if fmt is Format.JR:
            return (self.rs1,)
        if fmt is Format.CSRW:
            return (self.rs1,)
        return ()

    def dest_regs(self) -> tuple[int, ...]:
        """Architectural registers written (register pair on 64-bit ops)."""
        spec = self.spec
        if not spec.writes_rd:
            return ()
        rd = LINK_REG if self.mnemonic is Mnemonic.JAL else self.rd
        if rd == 0:
            return ()
        if spec.is_64bit:
            return (rd, rd + 1)
        return (rd,)

    def forwarding_operands(self) -> tuple[int, ...]:
        """Registers whose values feed the EX-stage operand muxes.

        These are the consumers of the forwarding network: ALU operands,
        the load/store base register and the store data register.  Branch
        comparisons resolve in EX too.  64-bit operations consume the low
        word through operand port 1/2 and the high word through the same
        port one "lane" wider; the recorder treats the pair as one wide
        operand.
        """
        spec = self.spec
        fmt = spec.format
        if fmt is Format.R3:
            return (self.rs1, self.rs2)
        if fmt in (Format.I, Format.LOAD, Format.JR, Format.CSRW):
            return (self.rs1,)
        if fmt in (Format.STORE, Format.BRANCH):
            return (self.rs1, self.rs2)
        return ()

    def __str__(self) -> str:
        return format_instruction(self)


def format_instruction(instr: Instruction) -> str:
    """Render an instruction in the assembler's text syntax."""
    m = instr.mnemonic
    fmt = instr.spec.format
    name = m.value
    if fmt is Format.R3:
        return f"{name} r{instr.rd}, r{instr.rs1}, r{instr.rs2}"
    if fmt is Format.I:
        return f"{name} r{instr.rd}, r{instr.rs1}, {instr.imm}"
    if fmt is Format.LUI:
        return f"{name} r{instr.rd}, {instr.imm}"
    if fmt is Format.LOAD:
        return f"{name} r{instr.rd}, {instr.imm}(r{instr.rs1})"
    if fmt is Format.STORE:
        return f"{name} r{instr.rs2}, {instr.imm}(r{instr.rs1})"
    if fmt is Format.BRANCH:
        target = instr.label if instr.label else str(instr.imm)
        return f"{name} r{instr.rs1}, r{instr.rs2}, {target}"
    if fmt is Format.JUMP:
        target = instr.label if instr.label else hex(instr.imm * 4)
        return f"{name} {target}"
    if fmt is Format.JR:
        return f"{name} r{instr.rs1}"
    if fmt is Format.CSRR:
        return f"{name} r{instr.rd}, {Csr(instr.csr).name.lower()}"
    if fmt is Format.CSRW:
        return f"{name} {Csr(instr.csr).name.lower()}, r{instr.rs1}"
    return name


def nop() -> Instruction:
    """Convenience constructor for a NOP."""
    return Instruction(Mnemonic.NOP)
