"""Instruction set, encoder/decoder, assembler and program container."""

from repro.isa.assembler import assemble
from repro.isa.builder import AsmBuilder
from repro.isa.encoding import decode, encode
from repro.isa.instructions import (
    NUM_EVENTS,
    NUM_REGS,
    SPECS,
    Csr,
    Event,
    Format,
    Instruction,
    InstrSpec,
    Mnemonic,
)
from repro.isa.program import Program

__all__ = [
    "assemble",
    "AsmBuilder",
    "decode",
    "encode",
    "NUM_EVENTS",
    "NUM_REGS",
    "SPECS",
    "Csr",
    "Event",
    "Format",
    "Instruction",
    "InstrSpec",
    "Mnemonic",
    "Program",
]
