"""Programmatic assembly builder.

Self-test routine generators construct their instruction streams through
:class:`AsmBuilder`, which handles label resolution, long-range branch
expansion and constant materialisation.  Branch immediates are *word*
offsets relative to the branch instruction itself; ``J``/``JAL`` carry
absolute word addresses, so a program built at one base address must be
re-built (not byte-copied) to move it — which is exactly what the SoC
loader does when sweeping code-position scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssemblyError
from repro.isa.encoding import IMM10_MAX, IMM10_MIN, IMM15_MAX, IMM15_MIN
from repro.isa.instructions import Csr, Format, Instruction, Mnemonic
from repro.isa.program import Program
from repro.utils.bitops import to_signed, to_unsigned

#: Condition inversion used when a short branch must be expanded to a
#: branch-over-jump pair.
_INVERTED: dict[Mnemonic, Mnemonic] = {
    Mnemonic.BEQ: Mnemonic.BNE,
    Mnemonic.BNE: Mnemonic.BEQ,
    Mnemonic.BLT: Mnemonic.BGE,
    Mnemonic.BGE: Mnemonic.BLT,
    Mnemonic.BLTU: Mnemonic.BGEU,
    Mnemonic.BGEU: Mnemonic.BLTU,
}


@dataclass
class _Pending:
    """An emitted instruction whose label operand is not yet resolved."""

    index: int
    label: str


class AsmBuilder:
    """Accumulates instructions and resolves labels into a :class:`Program`."""

    def __init__(self, base_address: int = 0, name: str = "program"):
        if base_address % 4:
            raise AssemblyError(
                f"base address {base_address:#x} is not word-aligned"
            )
        self.base_address = base_address
        self.name = name
        self._code: list[Instruction] = []
        self._labels: dict[str, int] = {}
        self._pending: list[_Pending] = []
        self._address_li: list[tuple[int, int, str]] = []
        self._data: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Core emission primitives.
    # ------------------------------------------------------------------

    def emit(self, instr: Instruction) -> int:
        """Append an instruction; return its index in the code stream."""
        self._code.append(instr)
        return len(self._code) - 1

    def label(self, name: str) -> None:
        """Bind ``name`` to the address of the next emitted instruction."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._code)

    def here(self) -> int:
        """Byte address of the next instruction to be emitted."""
        return self.base_address + 4 * len(self._code)

    def data_word(self, address: int, value: int) -> None:
        """Declare an initialised 32-bit data word at an absolute address."""
        if address % 4:
            raise AssemblyError(f"data address {address:#x} not word-aligned")
        self._data[address] = value & 0xFFFF_FFFF

    @property
    def instruction_count(self) -> int:
        """Number of instructions emitted so far."""
        return len(self._code)

    # ------------------------------------------------------------------
    # Register-register ALU.
    # ------------------------------------------------------------------

    def _r3(self, m: Mnemonic, rd: int, rs1: int, rs2: int) -> None:
        self.emit(Instruction(m, rd=rd, rs1=rs1, rs2=rs2))

    def add(self, rd, rs1, rs2):
        self._r3(Mnemonic.ADD, rd, rs1, rs2)

    def sub(self, rd, rs1, rs2):
        self._r3(Mnemonic.SUB, rd, rs1, rs2)

    def and_(self, rd, rs1, rs2):
        self._r3(Mnemonic.AND, rd, rs1, rs2)

    def or_(self, rd, rs1, rs2):
        self._r3(Mnemonic.OR, rd, rs1, rs2)

    def xor(self, rd, rs1, rs2):
        self._r3(Mnemonic.XOR, rd, rs1, rs2)

    def nor(self, rd, rs1, rs2):
        self._r3(Mnemonic.NOR, rd, rs1, rs2)

    def slt(self, rd, rs1, rs2):
        self._r3(Mnemonic.SLT, rd, rs1, rs2)

    def sltu(self, rd, rs1, rs2):
        self._r3(Mnemonic.SLTU, rd, rs1, rs2)

    def sll(self, rd, rs1, rs2):
        self._r3(Mnemonic.SLL, rd, rs1, rs2)

    def srl(self, rd, rs1, rs2):
        self._r3(Mnemonic.SRL, rd, rs1, rs2)

    def sra(self, rd, rs1, rs2):
        self._r3(Mnemonic.SRA, rd, rs1, rs2)

    def mul(self, rd, rs1, rs2):
        self._r3(Mnemonic.MUL, rd, rs1, rs2)

    def mulh(self, rd, rs1, rs2):
        self._r3(Mnemonic.MULH, rd, rs1, rs2)

    def addo(self, rd, rs1, rs2):
        self._r3(Mnemonic.ADDO, rd, rs1, rs2)

    def subo(self, rd, rs1, rs2):
        self._r3(Mnemonic.SUBO, rd, rs1, rs2)

    def mulo(self, rd, rs1, rs2):
        self._r3(Mnemonic.MULO, rd, rs1, rs2)

    def satadd(self, rd, rs1, rs2):
        self._r3(Mnemonic.SATADD, rd, rs1, rs2)

    def divt(self, rd, rs1, rs2):
        self._r3(Mnemonic.DIVT, rd, rs1, rs2)

    def sllo(self, rd, rs1, rs2):
        self._r3(Mnemonic.SLLO, rd, rs1, rs2)

    def add64(self, rd, rs1, rs2):
        self._r3(Mnemonic.ADD64, rd, rs1, rs2)

    def sub64(self, rd, rs1, rs2):
        self._r3(Mnemonic.SUB64, rd, rs1, rs2)

    def and64(self, rd, rs1, rs2):
        self._r3(Mnemonic.AND64, rd, rs1, rs2)

    def or64(self, rd, rs1, rs2):
        self._r3(Mnemonic.OR64, rd, rs1, rs2)

    def xor64(self, rd, rs1, rs2):
        self._r3(Mnemonic.XOR64, rd, rs1, rs2)

    # ------------------------------------------------------------------
    # Immediates and constants.
    # ------------------------------------------------------------------

    def _imm(self, m: Mnemonic, rd: int, rs1: int, imm: int) -> None:
        if not IMM15_MIN <= imm <= IMM15_MAX:
            raise AssemblyError(f"{m.value} immediate {imm} out of range")
        self.emit(Instruction(m, rd=rd, rs1=rs1, imm=imm))

    def addi(self, rd, rs1, imm):
        self._imm(Mnemonic.ADDI, rd, rs1, imm)

    def andi(self, rd, rs1, imm):
        self._imm(Mnemonic.ANDI, rd, rs1, imm)

    def ori(self, rd, rs1, imm):
        self._imm(Mnemonic.ORI, rd, rs1, imm)

    def xori(self, rd, rs1, imm):
        self._imm(Mnemonic.XORI, rd, rs1, imm)

    def slti(self, rd, rs1, imm):
        self._imm(Mnemonic.SLTI, rd, rs1, imm)

    def slli(self, rd, rs1, imm):
        self._imm(Mnemonic.SLLI, rd, rs1, imm)

    def srli(self, rd, rs1, imm):
        self._imm(Mnemonic.SRLI, rd, rs1, imm)

    def srai(self, rd, rs1, imm):
        self._imm(Mnemonic.SRAI, rd, rs1, imm)

    def lui(self, rd: int, imm20: int) -> None:
        self.emit(Instruction(Mnemonic.LUI, rd=rd, imm=imm20))

    def li(self, rd: int, value: int) -> None:
        """Materialise an arbitrary 32-bit constant (1 or 2 instructions)."""
        value = to_unsigned(value, 32)
        signed = to_signed(value, 32)
        if IMM15_MIN <= signed <= IMM15_MAX:
            self.addi(rd, 0, signed)
            return
        self.lui(rd, value >> 12)
        low = value & 0xFFF
        if low:
            self.ori(rd, rd, low)

    def li_address(self, rd: int, label: str) -> None:
        """Materialise the absolute byte address of ``label``.

        Always expands to the two-instruction LUI+ORI form (the value is
        unknown until build time), e.g. for loading a return address or
        a jump-table entry.
        """
        index = self.emit(Instruction(Mnemonic.LUI, rd=rd, imm=0))
        self.emit(Instruction(Mnemonic.ORI, rd=rd, rs1=rd, imm=0))
        self._address_li.append((index, rd, label))

    # ------------------------------------------------------------------
    # Memory.
    # ------------------------------------------------------------------

    def lw(self, rd: int, offset: int, base: int) -> None:
        self.emit(Instruction(Mnemonic.LW, rd=rd, rs1=base, imm=offset))

    def lbu(self, rd: int, offset: int, base: int) -> None:
        self.emit(Instruction(Mnemonic.LBU, rd=rd, rs1=base, imm=offset))

    def tas(self, rd: int, offset: int, base: int) -> None:
        """Atomic test-and-set: rd <- M[base+offset]; M[base+offset] <- 1."""
        self.emit(Instruction(Mnemonic.TAS, rd=rd, rs1=base, imm=offset))

    def sw(self, rs2: int, offset: int, base: int) -> None:
        if not IMM10_MIN <= offset <= IMM10_MAX:
            raise AssemblyError(f"store offset {offset} out of range")
        self.emit(Instruction(Mnemonic.SW, rs1=base, rs2=rs2, imm=offset))

    def sb(self, rs2: int, offset: int, base: int) -> None:
        if not IMM10_MIN <= offset <= IMM10_MAX:
            raise AssemblyError(f"store offset {offset} out of range")
        self.emit(Instruction(Mnemonic.SB, rs1=base, rs2=rs2, imm=offset))

    # ------------------------------------------------------------------
    # Control flow.
    # ------------------------------------------------------------------

    def _branch(self, m: Mnemonic, rs1: int, rs2: int, label: str) -> None:
        index = self.emit(Instruction(m, rs1=rs1, rs2=rs2, label=label))
        self._pending.append(_Pending(index, label))

    def beq(self, rs1, rs2, label):
        self._branch(Mnemonic.BEQ, rs1, rs2, label)

    def bne(self, rs1, rs2, label):
        self._branch(Mnemonic.BNE, rs1, rs2, label)

    def blt(self, rs1, rs2, label):
        self._branch(Mnemonic.BLT, rs1, rs2, label)

    def bge(self, rs1, rs2, label):
        self._branch(Mnemonic.BGE, rs1, rs2, label)

    def bltu(self, rs1, rs2, label):
        self._branch(Mnemonic.BLTU, rs1, rs2, label)

    def bgeu(self, rs1, rs2, label):
        self._branch(Mnemonic.BGEU, rs1, rs2, label)

    def branch_far(self, m: Mnemonic, rs1: int, rs2: int, label: str) -> None:
        """Branch with unlimited range: inverted short branch over a jump."""
        inverted = _INVERTED.get(m)
        if inverted is None:
            raise AssemblyError(f"{m.value} is not a conditional branch")
        skip = f"__far_{len(self._code)}"
        self._branch(inverted, rs1, rs2, skip)
        self.j(label)
        self.label(skip)

    def j(self, label: str) -> None:
        index = self.emit(Instruction(Mnemonic.J, label=label))
        self._pending.append(_Pending(index, label))

    def jal(self, label: str) -> None:
        index = self.emit(Instruction(Mnemonic.JAL, label=label))
        self._pending.append(_Pending(index, label))

    def jr(self, rs1: int) -> None:
        self.emit(Instruction(Mnemonic.JR, rs1=rs1))

    # ------------------------------------------------------------------
    # System.
    # ------------------------------------------------------------------

    def csrr(self, rd: int, csr: Csr) -> None:
        self.emit(Instruction(Mnemonic.CSRR, rd=rd, csr=int(csr)))

    def csrw(self, csr: Csr, rs1: int) -> None:
        self.emit(Instruction(Mnemonic.CSRW, csr=int(csr), rs1=rs1))

    def nop(self, count: int = 1) -> None:
        for _ in range(count):
            self.emit(Instruction(Mnemonic.NOP))

    def halt(self):
        self.emit(Instruction(Mnemonic.HALT))

    def icinv(self):
        self.emit(Instruction(Mnemonic.ICINV))

    def dcinv(self):
        self.emit(Instruction(Mnemonic.DCINV))

    def sync(self):
        self.emit(Instruction(Mnemonic.SYNC))

    # ------------------------------------------------------------------
    # Finalisation.
    # ------------------------------------------------------------------

    def build(self) -> Program:
        """Resolve all labels and return the finished :class:`Program`."""
        code = list(self._code)
        for pending in self._pending:
            target = self._labels.get(pending.label)
            if target is None:
                raise AssemblyError(f"undefined label {pending.label!r}")
            instr = code[pending.index]
            if instr.spec.format is Format.BRANCH:
                offset = target - pending.index
                if not IMM10_MIN <= offset <= IMM10_MAX:
                    raise AssemblyError(
                        f"branch to {pending.label!r} spans {offset} words; "
                        "use branch_far for long-range branches"
                    )
                code[pending.index] = Instruction(
                    instr.mnemonic,
                    rs1=instr.rs1,
                    rs2=instr.rs2,
                    imm=offset,
                    label=pending.label,
                )
            else:  # JUMP
                address = self.base_address + 4 * target
                code[pending.index] = Instruction(
                    instr.mnemonic, imm=address // 4, label=pending.label
                )
        for index, rd, label in self._address_li:
            target = self._labels.get(label)
            if target is None:
                raise AssemblyError(f"undefined label {label!r}")
            address = self.base_address + 4 * target
            code[index] = Instruction(Mnemonic.LUI, rd=rd, imm=address >> 12)
            code[index + 1] = Instruction(
                Mnemonic.ORI, rd=rd, rs1=rd, imm=address & 0xFFF
            )
        symbols = {
            name: self.base_address + 4 * index
            for name, index in self._labels.items()
        }
        return Program(
            code=code,
            base_address=self.base_address,
            data=dict(self._data),
            symbols=symbols,
            name=self.name,
        )
