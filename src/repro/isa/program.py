"""Container for an assembled self-test program.

A :class:`Program` is position-dependent only through its jump targets;
the builder and assembler produce programs with a chosen base address and
the SoC loader (``repro.soc.loader``) can relocate them by re-assembling
at a different origin when exploring code-position scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.encoding import encode
from repro.isa.instructions import Instruction


@dataclass
class Program:
    """An assembled program: code, initialised data, and symbols.

    Attributes:
        code: the instruction sequence, in address order.
        base_address: byte address of ``code[0]`` (must be word-aligned).
        data: mapping of byte address -> initialised 32-bit data word.
        symbols: label -> byte address.
        name: human-readable identifier used in reports.
    """

    code: list[Instruction]
    base_address: int = 0
    data: dict[int, int] = field(default_factory=dict)
    symbols: dict[str, int] = field(default_factory=dict)
    name: str = "program"

    def __post_init__(self):
        if self.base_address % 4:
            raise ValueError(
                f"base address {self.base_address:#x} is not word-aligned"
            )

    @property
    def size_bytes(self) -> int:
        """Code footprint in bytes (the paper's memory-overhead metric)."""
        return len(self.code) * 4

    @property
    def end_address(self) -> int:
        """First byte address past the last instruction."""
        return self.base_address + self.size_bytes

    def address_of(self, index: int) -> int:
        """Byte address of ``code[index]``."""
        return self.base_address + 4 * index

    def index_of(self, address: int) -> int:
        """Index into ``code`` of the instruction at byte ``address``."""
        offset = address - self.base_address
        if offset % 4 or not 0 <= offset < self.size_bytes:
            raise IndexError(f"address {address:#x} not inside program")
        return offset // 4

    def encoded_words(self) -> list[int]:
        """The code as encoded 32-bit words, in address order."""
        return [encode(instr) for instr in self.code]

    def image(self) -> dict[int, int]:
        """Full memory image: code and data words keyed by byte address."""
        memory = {
            self.address_of(i): word for i, word in enumerate(self.encoded_words())
        }
        for address, word in self.data.items():
            if address in memory:
                raise ValueError(
                    f"data word at {address:#x} overlaps program code"
                )
            memory[address] = word & 0xFFFF_FFFF
        return memory

    def listing(self) -> str:
        """Disassembly listing (re-assemblable: addresses are comments)."""
        labels_at: dict[int, list[str]] = {}
        for label, address in self.symbols.items():
            labels_at.setdefault(address, []).append(label)
        lines = [f".org {self.base_address:#x}", f".name {self.name}"]
        for address, word in sorted(self.data.items()):
            lines.append(f".word {address:#x}, {word:#x}")
        for i, instr in enumerate(self.code):
            address = self.address_of(i)
            for label in labels_at.get(address, ()):
                lines.append(f"{label}:")
            lines.append(f"  {instr}  # {address:#010x}")
        return "\n".join(lines)
