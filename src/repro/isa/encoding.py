"""Binary encoding of the ISA (32-bit fixed-width instructions).

Field layout (bit 31 is the MSB)::

    [31:25] opcode (7 bits, one per mnemonic)
    R3:     [24:20] rd   [19:15] rs1  [14:10] rs2
    I/LOAD: [24:20] rd   [19:15] rs1  [14:0]  imm15 (signed)
    LUI:    [24:20] rd   [19:0]  imm20 (unsigned, result = imm20 << 12)
    STORE:  [19:15] rs1  [14:10] rs2  [9:0]   imm10 (signed)
    BRANCH: [19:15] rs1  [14:10] rs2  [9:0]   imm10 (signed word offset)
    JUMP:   [24:0]  imm25 (absolute word address)
    JR:     [19:15] rs1
    CSRR:   [24:20] rd   [19:15] csr
    CSRW:   [24:20] csr  [19:15] rs1

Stores and branches trade immediate range for the second source-register
field, exactly like the S/B formats of mainstream RISC ISAs; test-program
generators use ``J`` (25-bit absolute word address) for long-range jumps
such as the loading/execution loop back-edge of the cache-based wrapper.
"""

from __future__ import annotations

from repro.errors import EncodingError
from repro.isa.instructions import NUM_REGS, Format, Instruction, Mnemonic
from repro.utils.bitops import to_signed, to_unsigned

#: Stable opcode assignment: enumeration order of :class:`Mnemonic`.
OPCODE_OF: dict[Mnemonic, int] = {m: i for i, m in enumerate(Mnemonic)}
MNEMONIC_OF: dict[int, Mnemonic] = {i: m for m, i in OPCODE_OF.items()}

IMM15_MIN, IMM15_MAX = -(1 << 14), (1 << 14) - 1
IMM10_MIN, IMM10_MAX = -(1 << 9), (1 << 9) - 1
IMM20_MAX = (1 << 20) - 1
IMM25_MAX = (1 << 25) - 1


def _check_reg(value: int, name: str) -> int:
    if not 0 <= value < NUM_REGS:
        raise EncodingError(f"{name} out of range: r{value}")
    return value


def _check_range(value: int, low: int, high: int, name: str) -> int:
    if not low <= value <= high:
        raise EncodingError(f"{name}={value} outside [{low}, {high}]")
    return value


def encode(instr: Instruction) -> int:
    """Encode one instruction to its 32-bit word."""
    opcode = OPCODE_OF[instr.mnemonic] << 25
    fmt = instr.spec.format
    if fmt is Format.R3:
        return (
            opcode
            | _check_reg(instr.rd, "rd") << 20
            | _check_reg(instr.rs1, "rs1") << 15
            | _check_reg(instr.rs2, "rs2") << 10
        )
    if fmt in (Format.I, Format.LOAD):
        imm = _check_range(instr.imm, IMM15_MIN, IMM15_MAX, "imm15")
        return (
            opcode
            | _check_reg(instr.rd, "rd") << 20
            | _check_reg(instr.rs1, "rs1") << 15
            | to_unsigned(imm, 15)
        )
    if fmt is Format.LUI:
        imm = _check_range(instr.imm, 0, IMM20_MAX, "imm20")
        return opcode | _check_reg(instr.rd, "rd") << 20 | imm
    if fmt in (Format.STORE, Format.BRANCH):
        imm = _check_range(instr.imm, IMM10_MIN, IMM10_MAX, "imm10")
        return (
            opcode
            | _check_reg(instr.rs1, "rs1") << 15
            | _check_reg(instr.rs2, "rs2") << 10
            | to_unsigned(imm, 10)
        )
    if fmt is Format.JUMP:
        imm = _check_range(instr.imm, 0, IMM25_MAX, "imm25")
        return opcode | imm
    if fmt is Format.JR:
        return opcode | _check_reg(instr.rs1, "rs1") << 15
    if fmt is Format.CSRR:
        csr = _check_range(instr.csr, 0, 31, "csr")
        return opcode | _check_reg(instr.rd, "rd") << 20 | csr << 15
    if fmt is Format.CSRW:
        csr = _check_range(instr.csr, 0, 31, "csr")
        return opcode | csr << 20 | _check_reg(instr.rs1, "rs1") << 15
    if fmt is Format.SYS:
        return opcode
    raise EncodingError(f"unhandled format {fmt}")  # pragma: no cover


def decode(word: int) -> Instruction:
    """Decode a 32-bit word back to an :class:`Instruction`."""
    if not 0 <= word <= 0xFFFF_FFFF:
        raise EncodingError(f"instruction word out of range: {word:#x}")
    opcode = word >> 25
    mnemonic = MNEMONIC_OF.get(opcode)
    if mnemonic is None:
        raise EncodingError(f"unknown opcode {opcode} in word {word:#010x}")
    fmt = Instruction(mnemonic).spec.format
    rd = (word >> 20) & 0x1F
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 10) & 0x1F
    if fmt is Format.R3:
        return Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
    if fmt in (Format.I, Format.LOAD):
        return Instruction(mnemonic, rd=rd, rs1=rs1, imm=to_signed(word & 0x7FFF, 15))
    if fmt is Format.LUI:
        return Instruction(mnemonic, rd=rd, imm=word & 0xF_FFFF)
    if fmt in (Format.STORE, Format.BRANCH):
        return Instruction(
            mnemonic, rs1=rs1, rs2=rs2, imm=to_signed(word & 0x3FF, 10)
        )
    if fmt is Format.JUMP:
        return Instruction(mnemonic, imm=word & 0x1FF_FFFF)
    if fmt is Format.JR:
        return Instruction(mnemonic, rs1=rs1)
    if fmt is Format.CSRR:
        return Instruction(mnemonic, rd=rd, csr=rs1)
    if fmt is Format.CSRW:
        return Instruction(mnemonic, csr=rd, rs1=rs1)
    return Instruction(mnemonic)
