"""Two-pass text assembler.

The text syntax matches what :func:`repro.isa.instructions.format_instruction`
prints, so ``assemble(program.listing())`` round-trips.  Supported syntax::

    # comment, ; comment
    .org 0x1000          set the base address (before any instruction)
    .name my_routine     set the program name
    .word ADDR, VALUE    declare an initialised data word
    label:               bind a label
    add r1, r2, r3
    lw  r4, 8(r5)
    beq r1, r0, label
    j   label            (or an absolute hex/decimal byte address)
    csrr r1, cycles

Register operands are ``r0`` ... ``r31`` (``zero`` aliases ``r0``).
"""

from __future__ import annotations

from repro.errors import AssemblyError
from repro.isa.builder import AsmBuilder
from repro.isa.instructions import Csr, Format, Instruction, Mnemonic
from repro.isa.program import Program

_MNEMONICS = {m.value: m for m in Mnemonic}
_CSRS = {c.name.lower(): c for c in Csr}


def assemble(source: str, base_address: int | None = None) -> Program:
    """Assemble assembly-language ``source`` into a :class:`Program`."""
    lines = source.splitlines()
    statements = []
    org = 0
    name = "program"
    for lineno, raw in enumerate(lines, start=1):
        text = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not text:
            continue
        if text.startswith(".org"):
            if statements:
                raise AssemblyError(".org must precede all instructions", lineno)
            org = _parse_int(text.split(None, 1)[1], lineno)
            continue
        if text.startswith(".name"):
            name = text.split(None, 1)[1].strip()
            continue
        statements.append((lineno, text))
    if base_address is not None:
        org = base_address

    builder = AsmBuilder(base_address=org, name=name)
    for lineno, text in statements:
        _assemble_statement(builder, text, lineno)
    try:
        return builder.build()
    except AssemblyError as exc:
        raise AssemblyError(str(exc)) from exc


def _assemble_statement(builder: AsmBuilder, text: str, lineno: int) -> None:
    while ":" in text.split()[0] if text else False:
        label, _, rest = text.partition(":")
        label = label.strip()
        if not label.isidentifier():
            raise AssemblyError(f"bad label {label!r}", lineno)
        builder.label(label)
        text = rest.strip()
        if not text:
            return
    if text.startswith(".word"):
        args = text[len(".word"):].split(",")
        if len(args) != 2:
            raise AssemblyError(".word needs ADDRESS, VALUE", lineno)
        builder.data_word(_parse_int(args[0], lineno), _parse_int(args[1], lineno))
        return
    parts = text.split(None, 1)
    name = parts[0].lower()
    operands = [op.strip() for op in parts[1].split(",")] if len(parts) > 1 else []
    if name == "li":
        # Pseudo-instruction: expands to ADDI or LUI+ORI.
        if len(operands) != 2:
            raise AssemblyError("li expects REGISTER, VALUE", lineno)
        builder.li(_reg(operands[0], lineno), _parse_int(operands[1], lineno))
        return
    mnemonic = _MNEMONICS.get(name)
    if mnemonic is None:
        raise AssemblyError(f"unknown mnemonic {parts[0]!r}", lineno)
    _emit(builder, mnemonic, operands, lineno)


def _emit(
    builder: AsmBuilder, mnemonic: Mnemonic, operands: list[str], lineno: int
) -> None:
    fmt = Instruction(mnemonic).spec.format
    need = {
        Format.R3: 3,
        Format.I: 3,
        Format.LUI: 2,
        Format.LOAD: 2,
        Format.STORE: 2,
        Format.BRANCH: 3,
        Format.JUMP: 1,
        Format.JR: 1,
        Format.CSRR: 2,
        Format.CSRW: 2,
        Format.SYS: 0,
    }[fmt]
    if len(operands) != need:
        raise AssemblyError(
            f"{mnemonic.value} expects {need} operand(s), got {len(operands)}",
            lineno,
        )
    if fmt is Format.R3:
        builder.emit(
            Instruction(
                mnemonic,
                rd=_reg(operands[0], lineno),
                rs1=_reg(operands[1], lineno),
                rs2=_reg(operands[2], lineno),
            )
        )
    elif fmt is Format.I:
        builder.emit(
            Instruction(
                mnemonic,
                rd=_reg(operands[0], lineno),
                rs1=_reg(operands[1], lineno),
                imm=_parse_int(operands[2], lineno),
            )
        )
    elif fmt is Format.LUI:
        builder.emit(
            Instruction(
                mnemonic,
                rd=_reg(operands[0], lineno),
                imm=_parse_int(operands[1], lineno),
            )
        )
    elif fmt is Format.LOAD:
        offset, base = _mem_operand(operands[1], lineno)
        builder.emit(
            Instruction(mnemonic, rd=_reg(operands[0], lineno), rs1=base, imm=offset)
        )
    elif fmt is Format.STORE:
        offset, base = _mem_operand(operands[1], lineno)
        builder.emit(
            Instruction(mnemonic, rs2=_reg(operands[0], lineno), rs1=base, imm=offset)
        )
    elif fmt is Format.BRANCH:
        target = operands[2]
        rs1 = _reg(operands[0], lineno)
        rs2 = _reg(operands[1], lineno)
        if _looks_numeric(target):
            builder.emit(
                Instruction(mnemonic, rs1=rs1, rs2=rs2, imm=_parse_int(target, lineno))
            )
        else:
            getattr(builder, mnemonic.value)(rs1, rs2, target)
    elif fmt is Format.JUMP:
        target = operands[0]
        if _looks_numeric(target):
            builder.emit(
                Instruction(mnemonic, imm=_parse_int(target, lineno) // 4)
            )
        elif mnemonic is Mnemonic.J:
            builder.j(target)
        else:
            builder.jal(target)
    elif fmt is Format.JR:
        builder.jr(_reg(operands[0], lineno))
    elif fmt is Format.CSRR:
        builder.csrr(_reg(operands[0], lineno), _csr(operands[1], lineno))
    elif fmt is Format.CSRW:
        builder.csrw(_csr(operands[0], lineno), _reg(operands[1], lineno))
    else:
        builder.emit(Instruction(mnemonic))


def _reg(text: str, lineno: int) -> int:
    text = text.strip().lower()
    if text == "zero":
        return 0
    if text.startswith("r") and text[1:].isdigit():
        number = int(text[1:])
        if 0 <= number <= 31:
            return number
    raise AssemblyError(f"bad register {text!r}", lineno)


def _csr(text: str, lineno: int) -> Csr:
    csr = _CSRS.get(text.strip().lower())
    if csr is None:
        raise AssemblyError(f"unknown CSR {text!r}", lineno)
    return csr


def _mem_operand(text: str, lineno: int) -> tuple[int, int]:
    text = text.strip()
    if not text.endswith(")") or "(" not in text:
        raise AssemblyError(f"bad memory operand {text!r}", lineno)
    offset_text, _, base_text = text[:-1].partition("(")
    offset = _parse_int(offset_text, lineno) if offset_text.strip() else 0
    return offset, _reg(base_text, lineno)


def _parse_int(text: str, lineno: int) -> int:
    try:
        return int(text.strip(), 0)
    except ValueError as exc:
        raise AssemblyError(f"bad integer {text!r}", lineno) from exc


def _looks_numeric(text: str) -> bool:
    text = text.strip()
    if text.startswith(("-", "+")):
        text = text[1:]
    return text[:2].lower() == "0x" or text.isdigit()
