"""Seeded soft-error injection across the memory hierarchy.

The determinism paper argues that cache-wrapped STL routines survive
*benign* interference (bus contention delays).  This module models the
disturbances an automotive SoC actually meets in the field — single-bit
upsets in SRAM/flash arrays and cache data RAMs, plus transient glitches
on the shared interconnect — so the test infrastructure can demonstrate
the stronger claim: after a transient corrupts state, one supervised
re-entry of the loading loop re-warms the private caches and the routine
re-converges to its golden signature (see :mod:`repro.soc.supervisor`).

Everything here is driven by :class:`repro.utils.rng.DeterministicRng`,
so a whole disturbance campaign is reproducible from a single seed: two
runs with the same seed corrupt the same bits on the same cycles and
produce identical recovery reports.

Injection mechanisms live on the memory models themselves
(``MemoryDevice.flip_bit``, ``Cache.flip_bit``, ``SystemBus.glitcher``);
this module supplies the seeded *policies* and the structured log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaultModelError
from repro.mem.bus import Transaction, TxnKind
from repro.mem.cache import Cache
from repro.mem.device import MemoryDevice
from repro.telemetry.events import NULL_SINK, EventKind
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class InjectionRecord:
    """One injected disturbance, as it will appear in the report."""

    kind: str  # "sram-flip" | "flash-flip" | "cache-flip" | ...
    target: str  # device or cache name
    address: int
    bit: int
    word_index: int = 0
    cycle: int | None = None
    core_id: int | None = None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "address": self.address,
            "bit": self.bit,
            "word_index": self.word_index,
            "cycle": self.cycle,
            "core_id": self.core_id,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InjectionRecord":
        return cls(**data)


class SoftErrorInjector:
    """Seeded single-event-upset source for memories and caches.

    One injector owns one :class:`DeterministicRng` stream and a log of
    every flip it performed; replaying a campaign with the same seed
    reproduces the log bit for bit.
    """

    def __init__(self, seed: int):
        self.seed = seed
        self.rng = DeterministicRng(seed)
        self.log: list[InjectionRecord] = []
        #: Telemetry sink (wired by TelemetrySession.attach_injector).
        self.telemetry = NULL_SINK

    def _record(self, record: InjectionRecord) -> InjectionRecord:
        self.log.append(record)
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.emit(
                EventKind.FAULT_INJECTION,
                core=record.core_id,
                kind=record.kind,
                target=record.target,
                address=record.address,
                bit=record.bit,
                word=record.word_index,
            )
        return record

    def flip_memory_bit(
        self, device: MemoryDevice, cycle: int | None = None
    ) -> InjectionRecord:
        """Flip a random bit of a random occupied word of ``device``."""
        candidates = device.occupied_addresses()
        if not candidates:
            raise FaultModelError(f"{device.name} holds no data to corrupt")
        address = self.rng.choice(candidates)
        bit = self.rng.randint(0, 31)
        device.flip_bit(address, bit)
        kind = f"{device.name.rstrip('0123456789')}-flip"
        return self._record(
            InjectionRecord(
                kind=kind, target=device.name, address=address, bit=bit, cycle=cycle
            )
        )

    def flip_cache_bit(
        self, cache: Cache, cycle: int | None = None, core_id: int | None = None
    ) -> InjectionRecord | None:
        """Flip a random bit of a random valid line of ``cache``.

        Returns None (and logs nothing) when the cache holds no valid
        lines — there is nothing for a particle to corrupt.
        """
        lines = cache.valid_line_addresses()
        if not lines:
            return None
        line_address = self.rng.choice(lines)
        word_index = self.rng.randint(0, cache.config.words_per_line - 1)
        bit = self.rng.randint(0, 31)
        cache.flip_bit(line_address, word_index, bit)
        return self._record(
            InjectionRecord(
                kind="cache-flip",
                target=cache.config.name,
                address=line_address,
                word_index=word_index,
                bit=bit,
                cycle=cycle,
                core_id=core_id,
            )
        )

    def log_dicts(self) -> list[dict]:
        """The full injection log in JSON-ready form."""
        return [record.to_dict() for record in self.log]


@dataclass
class GlitchStats:
    """What a :class:`BusGlitcher` actually did during a run."""

    grants_delayed: int = 0
    delay_cycles: int = 0
    errors_injected: int = 0


class BusGlitcher:
    """Seeded transient disturbances on the shared system bus.

    Installed as ``soc.bus.glitcher``; consulted once per grant (an
    extra arbitration delay models a glitched grant line) and once per
    completion (a retriable error response models a parity hiccup on the
    data phase).  Both draws come from one deterministic stream, so the
    glitch pattern of a run is a pure function of the seed and the
    transaction sequence.
    """

    def __init__(
        self,
        seed: int,
        delay_rate: float = 0.0,
        error_rate: float = 0.0,
        max_delay: int = 8,
        target_core: int | None = None,
        kinds: tuple[TxnKind, ...] | None = None,
    ):
        if not 0.0 <= delay_rate <= 1.0 or not 0.0 <= error_rate <= 1.0:
            raise FaultModelError("glitch rates must be within [0, 1]")
        if max_delay < 1:
            raise FaultModelError("max_delay must be at least one cycle")
        self.seed = seed
        self.rng = DeterministicRng(seed)
        self.delay_rate = delay_rate
        self.error_rate = error_rate
        self.max_delay = max_delay
        self.target_core = target_core
        self.kinds = kinds
        self.stats = GlitchStats()

    def _targets(self, txn: Transaction) -> bool:
        if self.target_core is not None and txn.core_id != self.target_core:
            return False
        if self.kinds is not None and txn.kind not in self.kinds:
            return False
        return True

    def _draw(self, rate: float) -> bool:
        # One u32 per decision keeps the stream aligned across runs.
        return self.rng.next_u32() < int(rate * 0x1_0000_0000)

    def grant_delay(self, txn: Transaction, cycle: int) -> int:
        """Extra cycles to stretch this grant by (0 = no glitch)."""
        if not self._targets(txn) or not self._draw(self.delay_rate):
            return 0
        delay = self.rng.randint(1, self.max_delay)
        self.stats.grants_delayed += 1
        self.stats.delay_cycles += delay
        return delay

    def error_response(self, txn: Transaction, cycle: int) -> bool:
        """True to turn this completion into a retriable error response.

        A re-submitted transaction is never re-glitched (the transient
        has passed), which keeps retry storms bounded by construction.
        """
        if txn.retries or not self._targets(txn) or not self._draw(self.error_rate):
            return False
        self.stats.errors_injected += 1
        return True


class AlwaysGlitch:
    """A worst-case glitcher: every matching completion errors out.

    Used to exercise the retry-exhaustion path: the issuing unit burns
    its whole retry budget and raises :class:`repro.errors.BusError`.
    """

    def __init__(self, target_core: int | None = None):
        self.target_core = target_core

    def grant_delay(self, txn: Transaction, cycle: int) -> int:
        return 0

    def error_response(self, txn: Transaction, cycle: int) -> bool:
        return self.target_core is None or txn.core_id == self.target_core


# ----------------------------------------------------------------------
# SoC fault hooks (installed into ``soc.fault_hooks``).
# ----------------------------------------------------------------------


@dataclass
class CycleTrigger:
    """Run ``action(soc)`` once when the SoC clock reaches ``cycle``."""

    cycle: int
    action: "callable"
    fired: bool = field(default=False, init=False)

    def __call__(self, soc) -> bool:
        if soc.cycle < self.cycle:
            return False
        self.action(soc)
        self.fired = True
        return True


class ExecutionEntryCorruption:
    """Corrupt a private cache exactly between the two wrapper loops.

    The cache-based wrapper (Fig. 2b) runs the routine body twice:
    TESTWIN carries 0 during the *loading* loop and 1 during the
    *execution* loop.  This hook watches the target core's TESTWIN and,
    on the first 0 -> 1 transition — i.e. after the caches are warm but
    before the checked signature is computed — flips one seeded bit in a
    valid line of the chosen cache.  It is the sharpest possible attack
    on the paper's determinism claim, and the one a supervised retry
    must repair.
    """

    def __init__(self, core_id: int, injector: SoftErrorInjector, which: str = "dcache"):
        if which not in ("icache", "dcache"):
            raise FaultModelError(f"unknown cache {which!r}")
        self.core_id = core_id
        self.injector = injector
        self.which = which
        self._prev_testwin = 0
        self.record: InjectionRecord | None = None

    def __call__(self, soc) -> bool:
        core = soc.cores[self.core_id]
        testwin = core.testwin & 1
        entered_execution = self._prev_testwin == 0 and testwin == 1
        self._prev_testwin = testwin
        if not entered_execution:
            return False
        cache = core.icache if self.which == "icache" else core.dcache
        self.record = self.injector.flip_cache_bit(
            cache, cycle=soc.cycle, core_id=self.core_id
        )
        return self.record is not None
