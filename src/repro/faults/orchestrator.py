"""Supervised, fault-tolerant orchestration of sharded fault campaigns.

PR 1 gave the *simulated SoC* a supervised test manager: retry a failed
routine, quarantine a persistent failure, report instead of aborting.
This module applies the identical discipline one layer up, to the
campaign infrastructure itself — because on a real shared machine the
process pool is exactly as failure-prone as the silicon the paper
worries about.  The orchestrator wraps the sharded engines of
:mod:`repro.faults.parallel` with:

* **Bounded, deterministic retry.**  A failed shard is re-dispatched up
  to ``max_retries`` times behind an exponential-backoff delay whose
  jitter is *seeded* (blake2b of ``(seed, shard, failure)``) — the
  schedule is a pure function, reproducible run to run, and backoff
  affects only wall-clock, never results.
* **Pool-death recovery with attribution.**  A
  :class:`~concurrent.futures.process.BrokenProcessPool` condemns every
  in-flight future, so the guilty shard is unknowable.  The orchestrator
  rebuilds the pool and re-dispatches the suspects **in isolation** (one
  at a time): an innocent shard completes and is exonerated without a
  counted failure; a shard that breaks the pool again while alone is the
  culprit and its retry budget is charged.  No innocent shard can be
  quarantined by a neighbour's crash.
* **Straggler re-dispatch.**  With a ``shard_timeout``, a shard running
  past its deadline is declared hung: the pool is torn down (a running
  future cannot be cancelled), the straggler is charged one failure, and
  every other in-flight shard is re-dispatched uncharged.  Shard
  checkpoints make the re-run cheap; determinism makes it invisible.
* **Graceful degradation.**  More than ``max_pool_rebuilds`` rebuilds
  means the host cannot sustain a pool at all — the orchestrator
  finishes the remaining shards serially in-process (where chaos-style
  process failures downgrade to ordinary exceptions) rather than
  flailing.
* **Quarantine, not abort.**  A shard that exhausts its budget is
  quarantined; the campaign completes and returns a
  :class:`PartialCampaignResult` that *enumerates* the loss — coverage
  becomes an explicit lower bound — or raises
  :class:`~repro.errors.OrchestrationError` when the caller did not opt
  into partial completion.

Every decision emits a typed telemetry event (``shard.retry``,
``shard.straggler``, ``shard.quarantine``, ``pool.rebuild``) through the
:class:`~repro.telemetry.events.EventSink` contract, and a structured
:class:`OrchestrationReport` lands next to the checkpoint manifest.

The headline invariant, enforced by the chaos suite
(``tests/test_orchestrator_chaos.py`` with
:mod:`repro.faults.chaos`): whenever no shard ends quarantined, merged
results and campaign signatures are **bit-identical** to a clean run —
retries, rebuilds and straggler kills are invisible in the numbers.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path

from repro.errors import FaultModelError, OrchestrationError
from repro.faults.campaign import ScenarioOutcome
from repro.faults.parallel import (
    ParallelCampaignResult,
    ShardTiming,
    _campaign_shard_worker,
    _merge_campaign_outcomes,
    _pool_context,
    _prepare_campaign,
    _record_shard_metrics,
    _shard_spec,
    _simulate_shard,
    check_partition,
    reduce_results,
    shard_faults,
)
from repro.faults.ppsfp import DropSet, FaultSimResult
from repro.telemetry.events import NULL_SINK, EventKind

__all__ = [
    "ORCHESTRATION_REPORT_NAME",
    "OrchestratedSimResult",
    "OrchestrationReport",
    "PartialCampaignResult",
    "RetryPolicy",
    "ShardAttempt",
    "orchestrated_fault_simulate",
    "orchestrated_transition_fault_simulate",
    "run_supervised_campaign",
]

#: Report filename, written next to the campaign's ``manifest.json``.
ORCHESTRATION_REPORT_NAME = "orchestration_report.json"


# ----------------------------------------------------------------------
# Policy: how hard to try, and for exactly how long.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """Retry/backoff/deadline budget of one supervised run.

    ``max_retries`` is per shard: a shard may run ``max_retries + 1``
    times before quarantine.  The backoff before failure *k*'s re-run is
    ``min(base * factor**(k-1) * (1 + jitter), backoff_max)`` with
    ``jitter`` in [0, 1) derived from blake2b of ``(seed, shard, k)`` —
    fully deterministic, de-synchronised across shards, and free of
    wall-clock randomness in anything a result depends on.

    ``shard_timeout`` (seconds of *running* time, None = no deadline)
    arms straggler detection; ``max_pool_rebuilds`` bounds pool
    resurrection before degrading to in-process serial execution;
    ``allow_partial`` turns quarantine from an
    :class:`~repro.errors.OrchestrationError` into an explicit
    :class:`PartialCampaignResult`.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    seed: int = 0
    shard_timeout: float | None = None
    poll_interval: float = 0.05
    max_pool_rebuilds: int = 3
    allow_partial: bool = False

    def __post_init__(self):
        if self.max_retries < 0:
            raise FaultModelError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise FaultModelError(
                f"shard_timeout must be positive, got {self.shard_timeout}"
            )

    def backoff_delay(self, shard_index: int, failure: int) -> float:
        """Deterministic delay before re-running after failure ``failure``."""
        if failure < 1 or self.backoff_base <= 0.0:
            return 0.0
        digest = blake2b(
            f"{self.seed}:{shard_index}:{failure}".encode("utf-8"),
            digest_size=8,
        ).digest()
        jitter = int.from_bytes(digest, "big") / 2**64
        raw = self.backoff_base * self.backoff_factor ** (failure - 1)
        return min(raw * (1.0 + jitter), self.backoff_max)

    def backoff_schedule(self, shard_index: int) -> list[float]:
        """The full per-shard delay schedule (one entry per retry)."""
        return [
            self.backoff_delay(shard_index, failure)
            for failure in range(1, self.max_retries + 1)
        ]

    def to_dict(self) -> dict:
        return {
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_max": self.backoff_max,
            "seed": self.seed,
            "shard_timeout": self.shard_timeout,
            "max_pool_rebuilds": self.max_pool_rebuilds,
            "allow_partial": self.allow_partial,
        }


# ----------------------------------------------------------------------
# Reporting: every decision the orchestrator made, machine-readable.
# ----------------------------------------------------------------------

@dataclass
class ShardAttempt:
    """One dispatch of one shard and how it ended."""

    shard: int
    attempt: int
    #: "ok" | "error" | "pool-broken" | "timeout"
    status: str
    error: str | None = None
    seconds: float = 0.0
    #: Backoff scheduled before the *next* attempt (0.0 if none).
    backoff: float = 0.0
    in_process: bool = False

    def to_dict(self) -> dict:
        return {
            "shard": self.shard,
            "attempt": self.attempt,
            "status": self.status,
            "error": self.error,
            "seconds": self.seconds,
            "backoff": self.backoff,
            "in_process": self.in_process,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardAttempt":
        return cls(**data)


@dataclass
class OrchestrationReport:
    """Structured record of a supervised run's control decisions.

    Saved as JSON next to the checkpoint manifest.  ``stable_dict``
    strips the wall-clock fields so chaos tests can assert that the
    *decision sequence* (attempts, statuses, backoff schedule,
    quarantine roster) is deterministic even though timings are not.
    """

    num_shards: int
    workers: int
    attempts: list[ShardAttempt] = field(default_factory=list)
    quarantined: list[int] = field(default_factory=list)
    pool_rebuilds: int = 0
    stragglers: int = 0
    degraded_serial: bool = False
    policy: dict = field(default_factory=dict)
    #: shard index -> the deterministic backoff schedule it drew from.
    backoff: dict[int, list[float]] = field(default_factory=dict)

    @property
    def retried_shards(self) -> list[int]:
        return sorted({a.shard for a in self.attempts if a.status != "ok"})

    def to_dict(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "workers": self.workers,
            "attempts": [a.to_dict() for a in self.attempts],
            "quarantined": list(self.quarantined),
            "pool_rebuilds": self.pool_rebuilds,
            "stragglers": self.stragglers,
            "degraded_serial": self.degraded_serial,
            "policy": dict(self.policy),
            "backoff": {str(k): v for k, v in sorted(self.backoff.items())},
        }

    def stable_dict(self) -> dict:
        """The deterministic projection of the decision sequence.

        Drops wall-clock fields and sorts attempts by (shard, attempt):
        pool scheduling perturbs *completion order* (hence append
        order), but each shard's own attempt sequence — how many times
        it ran, with what status, behind what backoff — is a pure
        function of the chaos policy and the retry policy.  Two runs
        under the same policies must produce equal stable dicts.
        """
        data = self.to_dict()
        for attempt in data["attempts"]:
            attempt.pop("seconds", None)
        data["attempts"].sort(key=lambda a: (a["shard"], a["attempt"]))
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "OrchestrationReport":
        return cls(
            num_shards=data["num_shards"],
            workers=data["workers"],
            attempts=[ShardAttempt.from_dict(a) for a in data["attempts"]],
            quarantined=list(data["quarantined"]),
            pool_rebuilds=data["pool_rebuilds"],
            stragglers=data["stragglers"],
            degraded_serial=data["degraded_serial"],
            policy=dict(data["policy"]),
            backoff={int(k): list(v) for k, v in data.get("backoff", {}).items()},
        )

    def save(self, path: str | Path) -> None:
        path = Path(path)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        os.replace(tmp, path)


@dataclass
class PartialCampaignResult(ParallelCampaignResult):
    """A supervised campaign's outcome, quarantine roster included.

    ``outcomes`` covers exactly the scenarios whose shards completed;
    ``quarantined_labels`` enumerates the rest, so any coverage computed
    from this result is an explicit *lower bound* over an explicit
    denominator — never a silently shrunken campaign.
    """

    quarantined_shards: tuple[int, ...] = ()
    quarantined_labels: tuple[str, ...] = ()
    report: OrchestrationReport | None = None

    @property
    def complete(self) -> bool:
        return not self.quarantined_shards


@dataclass(frozen=True)
class OrchestratedSimResult:
    """Supervised fault-simulation outcome.

    With quarantined shards, ``result`` counts their faults in
    ``total_faults`` with zero detections — coverage is a true lower
    bound (the real coverage can only be higher).
    """

    result: FaultSimResult
    report: OrchestrationReport
    quarantined_shards: tuple[int, ...] = ()
    #: Weighted fault population of the quarantined shards.
    quarantined_faults: int = 0

    @property
    def complete(self) -> bool:
        return not self.quarantined_shards


# ----------------------------------------------------------------------
# The supervised scheduler itself.
# ----------------------------------------------------------------------

class _ShardState:
    __slots__ = ("index", "failures", "done", "quarantined", "ready_at", "suspect")

    def __init__(self, index: int):
        self.index = index
        self.failures = 0
        self.done = False
        self.quarantined = False
        #: monotonic() before which this shard must not be dispatched.
        self.ready_at = 0.0
        #: True after an unattributed pool break: run isolated next.
        self.suspect = False


def _supervise(
    indices,
    submit,
    run_inline,
    workers: int,
    policy: RetryPolicy,
    telemetry,
    report: OrchestrationReport,
    on_complete,
) -> None:
    """Run every shard in ``indices`` to done-or-quarantined.

    ``submit(pool, index, attempt)`` dispatches one shard attempt into
    the pool; ``run_inline(index, attempt)`` is the in-process fallback
    for degraded mode; ``on_complete(index, raw)`` receives each shard's
    raw worker return exactly once.  The caller merges results in shard
    order afterwards, so completion order — the one thing chaos *does*
    perturb — never reaches a result.
    """
    states = {index: _ShardState(index) for index in indices}
    if not states:
        return
    sink = telemetry if telemetry is not None else NULL_SINK
    pool: ProcessPoolExecutor | None = None
    #: Future -> (state, attempt, submitted_at, isolated)
    in_flight: dict = {}
    #: Future -> monotonic() when first observed running (deadline base).
    running_since: dict = {}
    degraded = False

    def incomplete():
        return [
            s for s in states.values() if not s.done and not s.quarantined
        ]

    def new_pool():
        nonlocal pool
        pool = ProcessPoolExecutor(
            max_workers=min(workers, max(1, len(states))),
            mp_context=_pool_context(),
        )

    def kill_pool():
        nonlocal pool
        if pool is None:
            return
        # Running futures cannot be cancelled and a hung worker never
        # returns, so reclamation is forcible: drop queued work, then
        # terminate the worker processes outright.  Shard checkpoints
        # commit via fsync+rename *before* a future resolves, so a
        # terminated worker can lose at most in-progress (re-runnable)
        # work, never recorded work.
        processes = list((getattr(pool, "_processes", None) or {}).values())
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass
        for process in processes:
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already dead
                pass
        pool = None

    def rebuild_pool(reason: str):
        nonlocal degraded
        kill_pool()
        report.pool_rebuilds += 1
        if sink.enabled:
            sink.emit(
                EventKind.POOL_REBUILD,
                reason=reason,
                rebuilds=report.pool_rebuilds,
            )
        if report.pool_rebuilds > policy.max_pool_rebuilds:
            degraded = True
            report.degraded_serial = True
        else:
            new_pool()

    def record_success(state, attempt, seconds, raw, in_process=False):
        report.attempts.append(
            ShardAttempt(
                shard=state.index,
                attempt=attempt,
                status="ok",
                seconds=seconds,
                in_process=in_process,
            )
        )
        state.done = True
        state.suspect = False
        on_complete(state.index, raw)

    def record_failure(state, status, error, seconds, in_process=False):
        state.failures += 1
        failure = state.failures
        report.backoff.setdefault(
            state.index, policy.backoff_schedule(state.index)
        )
        if failure > policy.max_retries:
            state.quarantined = True
            report.attempts.append(
                ShardAttempt(
                    shard=state.index,
                    attempt=failure,
                    status=status,
                    error=error,
                    seconds=seconds,
                    in_process=in_process,
                )
            )
            report.quarantined.append(state.index)
            if sink.enabled:
                sink.emit(
                    EventKind.SHARD_QUARANTINE,
                    shard=state.index,
                    attempts=failure,
                    error=error,
                )
            return
        delay = policy.backoff_delay(state.index, failure)
        state.ready_at = time.monotonic() + delay
        report.attempts.append(
            ShardAttempt(
                shard=state.index,
                attempt=failure,
                status=status,
                error=error,
                seconds=seconds,
                backoff=delay,
                in_process=in_process,
            )
        )
        if sink.enabled:
            sink.emit(
                EventKind.SHARD_RETRY,
                shard=state.index,
                attempt=failure,
                delay=delay,
                error=error,
            )

    def try_submit(state, isolated: bool) -> bool:
        attempt = state.failures + 1
        try:
            future = submit(pool, state.index, attempt)
        except Exception:
            # The pool died between our last look and this submit; the
            # guilty party is someone already in flight, not this shard.
            for flying_state, _, _, _ in in_flight.values():
                flying_state.suspect = True
            state.suspect = True
            in_flight.clear()
            running_since.clear()
            rebuild_pool("submit-failed")
            return False
        in_flight[future] = (state, attempt, time.monotonic(), isolated)
        return True

    def run_degraded():
        # In-process serial endgame: no pool to break, no deadline to
        # enforce (a blocking call cannot be preempted from within);
        # retry/backoff/quarantine semantics are unchanged and chaos
        # downgrades process misbehaviour to raised exceptions.
        for state in sorted(incomplete(), key=lambda s: s.index):
            while not state.done and not state.quarantined:
                delay = state.ready_at - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
                attempt = state.failures + 1
                start = time.perf_counter()
                try:
                    raw = run_inline(state.index, attempt)
                except Exception as exc:
                    record_failure(
                        state,
                        "error",
                        f"{type(exc).__name__}: {exc}",
                        time.perf_counter() - start,
                        in_process=True,
                    )
                else:
                    record_success(
                        state, attempt, time.perf_counter() - start, raw,
                        in_process=True,
                    )

    new_pool()
    try:
        while True:
            remaining = incomplete()
            if not remaining:
                break
            if degraded:
                run_degraded()
                break
            now = time.monotonic()
            flying = {state.index for state, _, _, _ in in_flight.values()}
            idle = [s for s in remaining if s.index not in flying]
            if any(s.suspect for s in remaining):
                # Isolation mode: one suspect at a time, nothing else in
                # flight, so the next pool break is attributable.
                if not in_flight:
                    ready = sorted(
                        (s for s in idle if s.suspect and s.ready_at <= now),
                        key=lambda s: s.index,
                    )
                    if ready:
                        if not try_submit(ready[0], isolated=True):
                            continue
                    else:
                        wake = min(
                            s.ready_at for s in idle if s.suspect
                        )
                        time.sleep(
                            min(
                                max(0.0, wake - now),
                                max(policy.poll_interval, 0.01),
                            )
                        )
                        continue
            else:
                dispatched_ok = True
                for state in sorted(
                    (s for s in idle if s.ready_at <= now),
                    key=lambda s: s.index,
                ):
                    if not try_submit(state, isolated=False):
                        dispatched_ok = False
                        break
                if not dispatched_ok:
                    continue
            if not in_flight:
                # Everything alive is waiting out a backoff window.
                waiting = [s for s in incomplete() if s.ready_at > now]
                if waiting:
                    wake = min(s.ready_at for s in waiting)
                    time.sleep(
                        min(
                            max(0.0, wake - now),
                            max(policy.poll_interval, 0.01),
                        )
                    )
                continue
            done, _ = wait(
                set(in_flight),
                timeout=policy.poll_interval,
                return_when=FIRST_COMPLETED,
            )
            now = time.monotonic()
            broken = False
            for future in done:
                state, attempt, submitted, isolated = in_flight.pop(future)
                seconds = now - running_since.pop(future, submitted)
                try:
                    raw = future.result()
                except BrokenProcessPool as exc:
                    if isolated:
                        # Alone in the pool: the break is this shard's.
                        record_failure(
                            state,
                            "pool-broken",
                            f"{type(exc).__name__}: {exc}" or "pool broke",
                            seconds,
                        )
                        rebuild_pool("isolated-break")
                    else:
                        state.suspect = True
                        broken = True
                except Exception as exc:
                    # Ordinary failure: the pool survived, so the blame
                    # is precise and the shard is no longer a suspect
                    # for *pool* crimes — but it burned an attempt.
                    record_failure(
                        state,
                        "error",
                        f"{type(exc).__name__}: {exc}",
                        seconds,
                    )
                else:
                    record_success(state, attempt, seconds, raw)
            if broken:
                # The pool is condemned: everyone still in flight is a
                # suspect (uncharged) and will re-run in isolation.
                for state, _, _, _ in in_flight.values():
                    state.suspect = True
                in_flight.clear()
                running_since.clear()
                rebuild_pool("broken")
                continue
            # Straggler detection: deadlines accrue only while the
            # future is actually *running* — a shard queued behind a
            # busy pool is patient, not hung.
            if policy.shard_timeout is not None and in_flight:
                for future in in_flight:
                    if future not in running_since and future.running():
                        running_since[future] = now
                overdue = [
                    (future, state)
                    for future, (state, _, _, _) in in_flight.items()
                    if future in running_since
                    and now - running_since[future] > policy.shard_timeout
                ]
                if overdue:
                    report.stragglers += len(overdue)
                    overdue_states = {state.index for _, state in overdue}
                    for future, state in overdue:
                        if sink.enabled:
                            sink.emit(
                                EventKind.SHARD_STRAGGLER,
                                shard=state.index,
                                seconds=now - running_since[future],
                                deadline=policy.shard_timeout,
                            )
                        record_failure(
                            state,
                            "timeout",
                            f"exceeded {policy.shard_timeout}s shard deadline",
                            now - running_since[future],
                        )
                    # The only way to stop a running future is to kill
                    # its pool; innocents re-dispatch uncharged and
                    # unsuspected (the cause is known: not them).
                    in_flight.clear()
                    running_since.clear()
                    rebuild_pool("straggler")
    finally:
        kill_pool()
    report.quarantined.sort()


def _record_orchestrator_metrics(metrics, report: OrchestrationReport) -> None:
    if metrics is None:
        return
    failures = sum(1 for a in report.attempts if a.status != "ok")
    metrics.record_host("faultsim.orchestrator.attempts", len(report.attempts))
    metrics.record_host("faultsim.orchestrator.failures", failures)
    metrics.record_host(
        "faultsim.orchestrator.quarantined", len(report.quarantined)
    )
    metrics.record_host(
        "faultsim.orchestrator.pool_rebuilds", report.pool_rebuilds
    )
    metrics.record_host("faultsim.orchestrator.stragglers", report.stragglers)
    metrics.record_host(
        "faultsim.orchestrator.degraded_serial", int(report.degraded_serial)
    )


# ----------------------------------------------------------------------
# Supervised sharded fault simulation (stuck-at / transition models).
# ----------------------------------------------------------------------

def _weighted_count(shard) -> int:
    """Weighted fault population of one shard (weights default to 1)."""
    return sum(
        item[1] if isinstance(item, tuple) else 1 for item in shard
    )


def _orchestrated_simulate(
    kind: str,
    netlist,
    patterns,
    faults: list,
    workers: int,
    num_shards: int | None,
    policy: RetryPolicy,
    chaos,
    telemetry,
    metrics,
    engine: str,
    dropped: DropSet | None,
) -> OrchestratedSimResult:
    shards = shard_faults(faults, num_shards or max(1, workers))
    check_partition(faults, shards)
    dropped_ids = dropped.sorted_ids() if dropped is not None else None
    report = OrchestrationReport(
        num_shards=len(shards), workers=workers, policy=policy.to_dict()
    )
    raw_results: dict[int, tuple] = {}

    def submit(pool, index, attempt):
        return pool.submit(
            _simulate_shard, kind, netlist, patterns, shards[index],
            engine, dropped_ids, chaos, index, attempt, False,
        )

    def run_inline(index, attempt):
        return _simulate_shard(
            kind, netlist, patterns, shards[index], engine, dropped_ids,
            chaos, index, attempt, True,
        )

    def on_complete(index, raw):
        raw_results[index] = raw

    _supervise(
        range(len(shards)), submit, run_inline, workers, policy,
        telemetry, report, on_complete,
    )

    quarantined = tuple(report.quarantined)
    if quarantined and not policy.allow_partial:
        _record_orchestrator_metrics(metrics, report)
        raise OrchestrationError(
            f"{kind} fault simulation quarantined shards "
            f"{list(quarantined)} after exhausting "
            f"{policy.max_retries + 1} attempts each "
            "(pass allow_partial=True for a lower-bound result)"
        )
    if not raw_results:
        raise OrchestrationError(
            f"{kind} fault simulation completed no shard at all; "
            "a fully-quarantined run carries no information to return"
        )
    results = []
    timings = []
    for index in sorted(raw_results):
        result_dict, seconds, new_ids = raw_results[index]
        results.append(FaultSimResult.from_dict(result_dict))
        if dropped is not None:
            dropped.update(new_ids)
        timings.append(
            ShardTiming(
                index=index, items=len(shards[index]), seconds=seconds
            )
        )
    merged = reduce_results(results)
    quarantined_faults = sum(_weighted_count(shards[i]) for i in quarantined)
    if quarantined_faults:
        # Fold the lost shards in as undetected: the reported coverage
        # is a floor over the full fault population, not a rosy figure
        # over a quietly shrunken one.
        merged = merged.merge(
            FaultSimResult(
                module=merged.module,
                total_faults=quarantined_faults,
                detected_faults=0,
                num_patterns=merged.num_patterns,
            )
        )
    _record_shard_metrics(metrics, f"faultsim.{kind}", timings)
    _record_orchestrator_metrics(metrics, report)
    return OrchestratedSimResult(
        result=merged,
        report=report,
        quarantined_shards=quarantined,
        quarantined_faults=quarantined_faults,
    )


def orchestrated_fault_simulate(
    netlist,
    patterns,
    faults=None,
    *,
    workers: int = 1,
    num_shards: int | None = None,
    policy: RetryPolicy | None = None,
    chaos=None,
    telemetry=None,
    metrics=None,
    engine: str = "compiled",
    dropped: DropSet | None = None,
) -> OrchestratedSimResult:
    """Supervised :func:`repro.faults.parallel.parallel_fault_simulate`.

    Same sharding, same merge, same bit-identical totals — plus the
    retry/rebuild/straggler/quarantine supervision documented on this
    module.  ``workers=1`` still runs through a (single-worker) pool so
    a crashing shard is recoverable rather than fatal.
    """
    from repro.faults.stuckat import collapse_with_weights

    if faults is None:
        faults = collapse_with_weights(netlist)
    return _orchestrated_simulate(
        "stuckat", netlist, patterns, list(faults), workers, num_shards,
        policy or RetryPolicy(), chaos, telemetry, metrics, engine, dropped,
    )


def orchestrated_transition_fault_simulate(
    netlist,
    patterns,
    faults=None,
    *,
    workers: int = 1,
    num_shards: int | None = None,
    policy: RetryPolicy | None = None,
    chaos=None,
    telemetry=None,
    metrics=None,
    engine: str = "compiled",
    dropped: DropSet | None = None,
) -> OrchestratedSimResult:
    """Supervised transition-delay variant (ordered pattern sets)."""
    from repro.faults.transition import enumerate_transition_faults

    if faults is None:
        faults = enumerate_transition_faults(netlist)
    return _orchestrated_simulate(
        "transition", netlist, patterns, list(faults), workers, num_shards,
        policy or RetryPolicy(), chaos, telemetry, metrics, engine, dropped,
    )


# ----------------------------------------------------------------------
# Supervised checkpointed campaigns.
# ----------------------------------------------------------------------

def run_supervised_campaign(
    builders_provider,
    scenarios,
    models,
    checkpoint_dir: str | Path,
    modules: tuple[str, ...] = ("FWD",),
    *,
    workers: int = 1,
    num_shards: int | None = None,
    max_cycles: int = 4_000_000,
    retries: int = 1,
    audit: bool = False,
    metrics=None,
    on_shard=None,
    engine: str = "compiled",
    policy: RetryPolicy | None = None,
    chaos=None,
    telemetry=None,
) -> PartialCampaignResult:
    """Supervised :func:`repro.faults.parallel.run_parallel_checkpointed_campaign`.

    Rides the same manifest/per-shard-checkpoint machinery (and the same
    resume semantics, any worker count), but every shard runs under the
    :class:`RetryPolicy` budget: failures retry with deterministic
    backoff, a broken pool is rebuilt with isolation-mode blame
    attribution, a hung shard is re-dispatched after ``shard_timeout``,
    and persistent failure quarantines the shard.  Because shard
    checkpoints commit scenario-by-scenario, a retried shard resumes
    mid-shard and never re-grades (or double-counts) a recorded
    scenario — which is why a chaos run merges bit-identically to a
    clean one.

    The :class:`OrchestrationReport` is written to
    ``<checkpoint_dir>/orchestration_report.json`` in every case,
    including the failure path.  With quarantined shards the function
    raises :class:`~repro.errors.OrchestrationError` unless
    ``policy.allow_partial``; with ``allow_partial`` it returns a
    :class:`PartialCampaignResult` whose quarantine roster makes the
    campaign's loss explicit.
    """
    policy = policy or RetryPolicy()
    scenarios = tuple(scenarios)
    directory, plan, labels, shard_scenarios, completed, scheduled = (
        _prepare_campaign(scenarios, modules, checkpoint_dir, workers, num_shards)
    )
    report = OrchestrationReport(
        num_shards=plan.num_shards, workers=workers, policy=policy.to_dict()
    )
    timings: list[ShardTiming] = []

    def spec_for(index: int, attempt: int, in_process: bool) -> dict:
        spec = _shard_spec(
            index, directory, plan, builders_provider, shard_scenarios,
            models, modules, max_cycles, retries, audit, engine,
        )
        spec["attempt"] = attempt
        spec["in_process"] = in_process
        if chaos is not None:
            spec["chaos"] = chaos
        return spec

    def submit(pool, index, attempt):
        return pool.submit(
            _campaign_shard_worker, spec_for(index, attempt, False)
        )

    def run_inline(index, attempt):
        return _campaign_shard_worker(spec_for(index, attempt, True))

    def on_complete(index, raw):
        _, outcomes, seconds = raw
        completed[index] = {
            label: ScenarioOutcome.from_dict(data)
            for label, data in outcomes.items()
        }
        timings.append(
            ShardTiming(
                index=index,
                items=len(shard_scenarios[index]),
                seconds=seconds,
            )
        )
        if on_shard is not None:
            on_shard(index, completed[index])

    _supervise(
        scheduled, submit, run_inline, workers, policy, telemetry,
        report, on_complete,
    )

    quarantined_shards = tuple(report.quarantined)
    quarantined_labels = tuple(
        label
        for index in quarantined_shards
        for label in plan.labels[index]
    )
    timings.sort(key=lambda t: t.index)
    _record_shard_metrics(metrics, "faultsim.campaign", timings)
    _record_orchestrator_metrics(metrics, report)
    if metrics is not None:
        metrics.record_host("faultsim.campaign.scenarios", len(scenarios))
        metrics.record_host("faultsim.campaign.workers", workers)
    report.save(directory / ORCHESTRATION_REPORT_NAME)
    if quarantined_shards and not policy.allow_partial:
        raise OrchestrationError(
            f"campaign quarantined shard(s) {list(quarantined_shards)} "
            f"covering scenarios {list(quarantined_labels)}; report at "
            f"{directory / ORCHESTRATION_REPORT_NAME} "
            "(pass allow_partial=True to accept a partial campaign)"
        )
    ordered = _merge_campaign_outcomes(
        labels, completed, missing_ok=quarantined_labels
    )
    return PartialCampaignResult(
        outcomes=ordered,
        shard_timings=timings,
        num_shards=plan.num_shards,
        workers=workers,
        scheduled=tuple(scheduled),
        quarantined_shards=quarantined_shards,
        quarantined_labels=quarantined_labels,
        report=report,
    )
