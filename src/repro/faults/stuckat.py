"""Stuck-at fault enumeration and structural equivalence collapsing.

Faults are stem stuck-at-0/1 faults on every net (primary inputs and
gate outputs).  A light structural collapsing pass removes faults that
are provably equivalent to a fault on the driving gate's output through
a fanout-free unary gate (BUF keeps polarity, NOT swaps it) — the
classic rule subset that never merges observable classes incorrectly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.gates import GateKind
from repro.faults.netlist import Netlist


@dataclass(frozen=True)
class StuckAtFault:
    """One stuck-at fault: ``net`` forced to ``value`` (0 or 1)."""

    net: int
    value: int

    @property
    def stable_id(self) -> str:
        """Process-stable identity used for deterministic sharding.

        The parallel engine assigns shards by a stable hash of this
        string (never Python's salted ``hash``), so it must identify
        the fault uniquely and never change format silently.
        """
        return f"net{self.net}/SA{self.value}"

    def __str__(self) -> str:
        return self.stable_id


def enumerate_faults(netlist: Netlist) -> list[StuckAtFault]:
    """The uncollapsed stem fault list (2 faults per net)."""
    return [
        StuckAtFault(net, value)
        for net in range(netlist.num_nets)
        for value in (0, 1)
    ]


def collapse_faults(netlist: Netlist) -> list[StuckAtFault]:
    """Collapse through fanout-free BUF/NOT gates.

    A fault on the input of a fanout-free buffer is equivalent to the
    same-polarity fault on its output (inverted polarity for NOT), so
    only the output-side fault is kept.
    """
    return [fault for fault, _ in collapse_with_weights(netlist)]


def collapse_with_weights(netlist: Netlist) -> list[tuple[StuckAtFault, int]]:
    """Equivalence classes with their uncollapsed population size.

    Each returned (representative, weight) pair stands for ``weight``
    faults of the full uncollapsed list (2 per net).  Simulating the
    representative and crediting its weight reproduces the coverage the
    commercial flow reports over the complete fault universe, at the
    cost of one simulation per class.
    """
    fanout = netlist.fanout
    output_nets = set(netlist.output_nets)
    # Forward mapping through fanout-free unary gates, polarity-aware.
    forward: dict[tuple[int, int], tuple[int, int]] = {}
    for gate in netlist.gates:
        if gate.kind not in (GateKind.BUF, GateKind.NOT):
            continue
        if len(fanout.get(gate.a, ())) != 1 or gate.a in output_nets:
            continue
        flip = 1 if gate.kind is GateKind.NOT else 0
        forward[(gate.a, 0)] = (gate.out, flip)
        forward[(gate.a, 1)] = (gate.out, 1 - flip)

    def representative(net: int, value: int) -> tuple[int, int]:
        while (net, value) in forward:
            net, value = forward[(net, value)]
        return net, value

    weights: dict[tuple[int, int], int] = {}
    for fault in enumerate_faults(netlist):
        rep = representative(fault.net, fault.value)
        weights[rep] = weights.get(rep, 0) + 1
    return [
        (StuckAtFault(net, value), weight)
        for (net, value), weight in sorted(weights.items())
    ]
