"""Gate-level stuck-at fault model and PPSFP fault simulator."""

from repro.faults.atpg import (
    AtpgResult,
    forwarding_ceiling,
    forwarding_select_constraint,
    random_pattern_atpg,
)
from repro.faults.campaign import (
    COVERAGE_GRADERS,
    CampaignCheckpoint,
    CoverageRange,
    ModuleCoverage,
    ScenarioOutcome,
    coverage_range,
    forwarding_coverage,
    forwarding_transition_coverage,
    hdcu_coverage,
    icu_coverage,
    run_checkpointed_campaign,
)
from repro.faults.soft_errors import (
    AlwaysGlitch,
    BusGlitcher,
    CycleTrigger,
    ExecutionEntryCorruption,
    GlitchStats,
    InjectionRecord,
    SoftErrorInjector,
)
from repro.faults.transition import (
    TransitionFault,
    enumerate_transition_faults,
    transition_fault_simulate,
)
from repro.faults.gates import GateKind, eval_gate
from repro.faults.generators import (
    CoreModules,
    generate_forwarding_port,
    generate_hdcu_port,
    generate_icu,
    get_modules,
)
from repro.faults.netlist import Gate, Netlist
from repro.faults.observability import (
    forwarding_pattern_sets,
    hdcu_pattern_sets,
    icu_pattern_set,
)
from repro.faults.ppsfp import (
    FaultSimResult,
    PatternSet,
    fault_simulate,
    good_simulation,
)
from repro.faults.stuckat import StuckAtFault, collapse_faults, enumerate_faults

__all__ = [
    "AtpgResult",
    "forwarding_ceiling",
    "forwarding_select_constraint",
    "random_pattern_atpg",
    "COVERAGE_GRADERS",
    "CampaignCheckpoint",
    "CoverageRange",
    "ModuleCoverage",
    "ScenarioOutcome",
    "coverage_range",
    "run_checkpointed_campaign",
    "AlwaysGlitch",
    "BusGlitcher",
    "CycleTrigger",
    "ExecutionEntryCorruption",
    "GlitchStats",
    "InjectionRecord",
    "SoftErrorInjector",
    "forwarding_coverage",
    "forwarding_transition_coverage",
    "TransitionFault",
    "enumerate_transition_faults",
    "transition_fault_simulate",
    "hdcu_coverage",
    "icu_coverage",
    "GateKind",
    "eval_gate",
    "CoreModules",
    "generate_forwarding_port",
    "generate_hdcu_port",
    "generate_icu",
    "get_modules",
    "Gate",
    "Netlist",
    "forwarding_pattern_sets",
    "hdcu_pattern_sets",
    "icu_pattern_set",
    "FaultSimResult",
    "PatternSet",
    "fault_simulate",
    "good_simulation",
    "StuckAtFault",
    "collapse_faults",
    "enumerate_faults",
]
