"""Per-core-model netlist generators for the fault-targeted modules.

The paper fault-grades three modules of each core: the *forwarding
logic* (the 5:1 operand multiplexers of each issue slot), the *Hazard
Detection Control Unit* (the comparators and priority logic that drive
the mux selects and the stall request) and the *Interrupt Control Unit*.
This module builds structural gate-level equivalents whose good-value
behaviour matches the behavioural pipeline model bit for bit (asserted
by the consistency tests), with three per-model touches from
Section IV:

* cores A and B share the RTL but went through **different physical
  design** flows — modelled as seeded buffer-chain insertion, giving
  them different fault lists and counts;
* core C has a **64-bit datapath** (double-width muxes, roughly twice
  the forwarding fault population);
* core C's ICU decodes the recognised event to **one-hot status bits**,
  while A and B OR event pairs into shared bits — faults in the
  event-encode/decode chain that swap a pair's members are structurally
  undetectable through a shared bit, which is why core C's ICU coverage
  runs ~10 % higher.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import CoreModel
from repro.faults.gates import GateKind
from repro.faults.netlist import Netlist
from repro.faults.stuckat import StuckAtFault, collapse_with_weights
from repro.isa.instructions import NUM_EVENTS
from repro.utils.rng import DeterministicRng

#: Number of forwarding sources (RF, EX0, EX1, MEM0, MEM1).
NUM_SOURCES = 5
#: Consumer ports: (issue slot, operand index).
PORTS = ((0, 0), (0, 1), (1, 0), (1, 1))
#: Width of the imprecision / recognition-count fields in the ICU model.
ICU_FIELD_BITS = 4


def _chain(nl: Netlist, net: int, rng: DeterministicRng, lo: int, hi: int) -> int:
    return nl.buffer_chain(net, rng.randint(lo, hi))


# ----------------------------------------------------------------------
# Forwarding logic.
# ----------------------------------------------------------------------

def generate_forwarding_port(
    model: CoreModel,
    slot: int,
    operand: int,
    depth: int | None = None,
    extra_sources: int = 2,
) -> Netlist:
    """One consumer-operand forwarding mux (width 32, or 64 on core C).

    Besides the five sources the register-to-register test can steer
    (RF, EX0/1, MEM0/1), the physical mux has ``extra_sources`` more
    data columns — late multiplier-bypass and link/CSR write paths —
    that the forwarding algorithm of [19] never selects.  Their faults
    are at best half-detectable (a stuck-at-1 may disturb the OR tree;
    a stuck-at-0 on an already-silent column never propagates), which
    is the structural reason the algorithm tops out around 80 % even
    with every steerable path excited.
    """
    width = 64 if model.is64 else 32
    if depth is None:
        depth = 3 if model.name == "B" else 2
    rng = DeterministicRng(model.netlist_seed ^ (slot * 97 + operand * 31 + 7))
    nl = Netlist(f"fwd_{model.name}_s{slot}o{operand}")
    sel = nl.add_input_bus("sel", NUM_SOURCES)
    data = [nl.add_input_bus(f"d{i}", width) for i in range(NUM_SOURCES)]
    # Dead columns last, so pattern stimuli can leave them implicit 0.
    sel_x = nl.add_input_bus("sel_x", extra_sources)
    data_x = [
        nl.add_input_bus(f"dx{i}", width) for i in range(extra_sources)
    ]
    # Select lines fan out to every bit slice through buffer trees.
    sel_buf = [_chain(nl, s, rng, 1, depth) for s in sel]
    sel_x_buf = [_chain(nl, s, rng, 1, depth) for s in sel_x]
    out = []
    for j in range(width):
        terms = []
        for i in range(NUM_SOURCES):
            dij = _chain(nl, data[i][j], rng, 0, depth)
            terms.append(nl.add_gate(GateKind.AND, sel_buf[i], dij))
        for i in range(extra_sources):
            dij = _chain(nl, data_x[i][j], rng, 0, depth)
            terms.append(nl.add_gate(GateKind.AND, sel_x_buf[i], dij))
        merged = nl.or_tree(terms)
        out.append(_chain(nl, merged, rng, 0, 2))
    nl.mark_output_bus("out", out)
    return nl


# ----------------------------------------------------------------------
# Hazard Detection Control Unit.
# ----------------------------------------------------------------------

def generate_hdcu_port(
    model: CoreModel, slot: int, operand: int, depth: int | None = None
) -> Netlist:
    """The comparator/priority block serving one consumer operand.

    Inputs: the consumer's register index, the four in-flight producers'
    destination indices with valid bits, and per-producer
    "unready load" flags.  Outputs: the one-hot forwarding select
    (RF, EX0, EX1, MEM0, MEM1 — matching :class:`FwdSource` order) and
    the stall request ("forwarding not possible yet").
    """
    if depth is None:
        depth = 3 if model.name == "B" else 2
    rng = DeterministicRng(model.netlist_seed ^ (slot * 53 + operand * 17 + 3))
    nl = Netlist(f"hdcu_{model.name}_s{slot}o{operand}")
    consumer = nl.add_input_bus("c", 5)
    producers = [nl.add_input_bus(f"p{i}", 5) for i in range(4)]
    valid = nl.add_input_bus("valid", 4)
    load = nl.add_input_bus("load", 4)
    consumer_buf = [_chain(nl, bit, rng, 1, depth) for bit in consumer]
    matches = []
    for i in range(4):
        p_buf = [_chain(nl, bit, rng, 0, depth) for bit in producers[i]]
        eq = nl.equality(consumer_buf, p_buf)
        matches.append(nl.add_gate(GateKind.AND, eq, valid[i]))
    # Youngest-first priority (EX0, EX1, MEM0, MEM1).
    m0, m1, m2, m3 = matches
    none01 = nl.add_gate(GateKind.NOR, m0, m1)
    or01 = nl.add_gate(GateKind.OR, m0, m1)
    or012 = nl.add_gate(GateKind.OR, or01, m2)
    s_ex0 = _chain(nl, m0, rng, 1, depth)
    s_ex1 = nl.add_gate(GateKind.AND, m1, nl.add_gate(GateKind.NOT, m0))
    s_mem0 = nl.add_gate(GateKind.AND, m2, none01)
    s_mem1 = nl.add_gate(GateKind.AND, m3, nl.add_gate(GateKind.NOT, or012))
    or23 = nl.add_gate(GateKind.OR, m2, m3)
    s_rf = nl.add_gate(GateKind.NOR, or01, or23)
    selects = [
        _chain(nl, s_rf, rng, 0, depth),
        s_ex0,
        _chain(nl, s_ex1, rng, 0, depth),
        _chain(nl, s_mem0, rng, 0, depth),
        _chain(nl, s_mem1, rng, 0, depth),
    ]
    nl.mark_output_bus("sel", selects)
    # Stall: the selected producer is a load whose data is not back yet.
    stall_terms = [
        nl.add_gate(GateKind.AND, selects[1 + i], _chain(nl, load[i], rng, 0, depth))
        for i in range(4)
    ]
    stall = _chain(nl, nl.or_tree(stall_terms), rng, 1, depth)
    nl.mark_output_bus("stall", [stall])
    # Unobserved slice: the WAW/structural scheduler that cross-compares
    # the same-latch producer destinations.  Its result feeds the issue
    # scheduler, not anything the self-test signature can see, so its
    # faults are untestable by this algorithm (part of the HDCU's
    # coverage gap below ~70 %).
    waw_terms = []
    for i, j in ((0, 1), (2, 3)):
        pi = [_chain(nl, bit, rng, 0, depth) for bit in producers[i]]
        pj = [_chain(nl, bit, rng, 0, depth) for bit in producers[j]]
        both = nl.add_gate(GateKind.AND, valid[i], valid[j])
        waw_terms.append(nl.add_gate(GateKind.AND, nl.equality(pi, pj), both))
    nl.buffer_chain(nl.or_tree(waw_terms), 2)
    return nl


# ----------------------------------------------------------------------
# Interrupt Control Unit.
# ----------------------------------------------------------------------

def generate_icu(model: CoreModel, depth: int | None = None) -> Netlist:
    """The recognition-side ICU: event encode/decode, status mapping,
    imprecision latch path and recognition counter."""
    if depth is None:
        depth = 4 if model.name == "B" else 3
    rng = DeterministicRng(model.netlist_seed ^ 0x1C0)
    nl = Netlist(f"icu_{model.name}")
    events = nl.add_input_bus("e", NUM_EVENTS)
    imp = nl.add_input_bus("imp", ICU_FIELD_BITS)
    count = nl.add_input_bus("count", ICU_FIELD_BITS)
    pend = [_chain(nl, e, rng, 2, depth + 1) for e in events]
    # Priority one-hot (lowest event index wins), then encode to 3 bits.
    blocked = None
    onehot = []
    for i, p in enumerate(pend):
        if blocked is None:
            onehot.append(_chain(nl, p, rng, 0, depth))
            blocked = p
        else:
            onehot.append(
                nl.add_gate(GateKind.AND, p, nl.add_gate(GateKind.NOT, blocked))
            )
            blocked = nl.add_gate(GateKind.OR, blocked, p)
    enc0 = nl.or_tree([onehot[1], onehot[3], onehot[5]])
    enc1 = nl.or_tree([onehot[2], onehot[3]])
    enc2 = nl.or_tree([onehot[4], onehot[5]])
    enc = [
        _chain(nl, enc0, rng, 1, depth),
        _chain(nl, enc1, rng, 1, depth),
        _chain(nl, enc2, rng, 1, depth),
    ]
    any_event = _chain(nl, blocked, rng, 1, depth)
    nl.annotations["enc"] = list(enc)
    # Decode the recognised event id back to one line per event.
    inv = [nl.add_gate(GateKind.NOT, bit) for bit in enc]
    decoded = []
    for i in range(NUM_EVENTS):
        bits = [
            enc[k] if (i >> k) & 1 else inv[k] for k in range(3)
        ]
        term = nl.and_tree(bits)
        decoded.append(nl.add_gate(GateKind.AND, term, any_event))
    # Status mapping: the per-model software-visible register.
    if model.icu_shared_status_bits:
        status = [
            _chain(
                nl,
                nl.add_gate(GateKind.OR, decoded[2 * j], decoded[2 * j + 1]),
                rng,
                1,
                depth,
            )
            for j in range(NUM_EVENTS // 2)
        ]
    else:
        status = [_chain(nl, d, rng, 1, depth) for d in decoded]
    nl.mark_output_bus("status", status)
    # Imprecision latch path: what ICU_IMPREC returns.
    nl.mark_output_bus(
        "imp_out", [_chain(nl, bit, rng, 2, depth + 1) for bit in imp]
    )
    # Recognition counter: count + 1 (ripple incrementer).
    carry = any_event
    count_out = []
    for bit in count:
        b = _chain(nl, bit, rng, 0, depth)
        count_out.append(nl.add_gate(GateKind.XOR, b, carry))
        carry = nl.add_gate(GateKind.AND, b, carry)
    nl.mark_output_bus("count_out", count_out)
    # Unobserved slice: the vectored-IRQ forwarding path.  The polling
    # self-test of [21] never enables vectored delivery, so everything
    # from the per-source IRQ gating to the vector encode is invisible
    # to the signature — the bulk of the ICU's sub-60 % coverage.
    reserved = nl.add_input_bus("rsv", 2)
    irq_lines = []
    for source in list(events) + list(reserved):
        gated = _chain(nl, source, rng, depth, depth + 3)
        enable = _chain(nl, any_event, rng, 0, depth)
        irq_lines.append(nl.add_gate(GateKind.AND, gated, enable))
    vec_parity = irq_lines[0]
    for line in irq_lines[1:]:
        vec_parity = nl.add_gate(GateKind.XOR, vec_parity, line)
    nl.buffer_chain(vec_parity, depth + 2)
    for k in range(3):
        nl.buffer_chain(nl.or_tree(irq_lines[k::3]), depth + 1)
    return nl


# ----------------------------------------------------------------------
# Per-model module set (built once, cached).
# ----------------------------------------------------------------------

@dataclass
class CoreModules:
    """All fault-target netlists + collapsed fault lists of one core."""

    model: CoreModel
    forwarding: dict[tuple[int, int], Netlist]
    hdcu: dict[tuple[int, int], Netlist]
    icu: Netlist
    #: Weighted equivalence classes: (representative, uncollapsed size).
    forwarding_faults: dict[tuple[int, int], list[tuple[StuckAtFault, int]]]
    hdcu_faults: dict[tuple[int, int], list[tuple[StuckAtFault, int]]]
    icu_faults: list[tuple[StuckAtFault, int]]

    @property
    def forwarding_fault_count(self) -> int:
        return sum(
            w for faults in self.forwarding_faults.values() for _, w in faults
        )

    @property
    def hdcu_fault_count(self) -> int:
        return sum(w for faults in self.hdcu_faults.values() for _, w in faults)

    @property
    def icu_fault_count(self) -> int:
        return sum(w for _, w in self.icu_faults)


#: Descriptor kinds accepted by :func:`netlist_for` / :func:`fault_list_for`.
MODULE_KINDS = ("fwd", "hdcu", "icu")


def netlist_for(
    model: CoreModel, kind: str, port: tuple[int, int] | None = None
) -> Netlist:
    """Resolve a (model, kind, port) descriptor to its netlist.

    The descriptor form is what crosses process boundaries in the
    parallel engine: each worker rebuilds (and process-locally caches)
    the netlists from the model seed, so shard tasks ship a few ints
    instead of a pickled gate network.
    """
    modules = get_modules(model)
    if kind == "fwd":
        return modules.forwarding[_require_port(kind, port)]
    if kind == "hdcu":
        return modules.hdcu[_require_port(kind, port)]
    if kind == "icu":
        return modules.icu
    raise ValueError(f"unknown module kind {kind!r} (want one of {MODULE_KINDS})")


def compiled_netlist_for(
    model: CoreModel, kind: str, port: tuple[int, int] | None = None
):
    """The compiled artifact of one descriptor's netlist.

    Compiled artifacts are cached on the netlist instances held by the
    process-wide module cache below, so each worker process lowers each
    module exactly once however many shards or scenarios it grades —
    the shard tasks keep shipping descriptors (a few ints), never gate
    arrays.
    """
    from repro.faults.compiled import compiled_for

    return compiled_for(netlist_for(model, kind, port))


def fault_list_for(
    model: CoreModel, kind: str, port: tuple[int, int] | None = None
) -> list[tuple[StuckAtFault, int]]:
    """The weighted collapsed stuck-at fault list of one descriptor."""
    modules = get_modules(model)
    if kind == "fwd":
        return modules.forwarding_faults[_require_port(kind, port)]
    if kind == "hdcu":
        return modules.hdcu_faults[_require_port(kind, port)]
    if kind == "icu":
        return modules.icu_faults
    raise ValueError(f"unknown module kind {kind!r} (want one of {MODULE_KINDS})")


def _require_port(kind: str, port: tuple[int, int] | None) -> tuple[int, int]:
    if port is None:
        raise ValueError(f"module kind {kind!r} needs a (slot, operand) port")
    return port


_MODULE_CACHE: dict[str, CoreModules] = {}


def get_modules(model: CoreModel) -> CoreModules:
    """Build (or fetch the cached) netlists for one core model."""
    cached = _MODULE_CACHE.get(model.name)
    if cached is not None:
        return cached
    forwarding = {
        port: generate_forwarding_port(model, *port) for port in PORTS
    }
    hdcu = {port: generate_hdcu_port(model, *port) for port in PORTS}
    icu = generate_icu(model)
    modules = CoreModules(
        model=model,
        forwarding=forwarding,
        hdcu=hdcu,
        icu=icu,
        forwarding_faults={
            port: collapse_with_weights(nl) for port, nl in forwarding.items()
        },
        hdcu_faults={port: collapse_with_weights(nl) for port, nl in hdcu.items()},
        icu_faults=collapse_with_weights(icu),
    )
    _MODULE_CACHE[model.name] = modules
    return modules
