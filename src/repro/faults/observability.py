"""Build fault-simulation pattern sets from pipeline activation logs.

This is the bridge between the logic simulation (the cycle-level
pipeline run) and the gate-level fault simulation: every recorded module
activation becomes one stimulus pattern, and its observability mask says
on which output bits a fault effect would actually reach the 32-bit
test signature.  Patterns outside the test window (the cache-based
strategy's loading loop) carry no observability and are skipped
entirely — the loading loop can excite faults but never detect them,
exactly as the methodology prescribes.

Identical patterns are merged (their observability masks OR together),
which keeps the packed bigints short without changing coverage.
"""

from __future__ import annotations

from repro.cpu.core import CoreModel
from repro.cpu.recording import ActivationLog, ForwardingRecord, HdcuRecord, IcuRecord
from repro.faults.generators import ICU_FIELD_BITS, NUM_SOURCES, PORTS, CoreModules
from repro.faults.ppsfp import PatternSet
from repro.isa.instructions import NUM_EVENTS
from repro.utils.bitops import bit as get_bit


class _Accumulator:
    """Merges identical (stimulus, per-output-observability) patterns.

    With ``ordered=True`` no merging happens and the patterns keep the
    run's temporal order — required for transition-delay grading, where
    the launch/capture adjacency of consecutive vectors is the test.
    """

    def __init__(self, ordered: bool = False):
        self.ordered = ordered
        self._patterns: dict[tuple, int] = {}
        self._sequence: list[tuple] = []
        self._obs: list[dict] = []

    def add(self, stimulus: tuple, obs: dict[int, bool]) -> None:
        if self.ordered:
            self._sequence.append(stimulus)
            self._obs.append(dict(obs))
            return
        index = self._patterns.get(stimulus)
        if index is None:
            index = len(self._obs)
            self._patterns[stimulus] = index
            self._obs.append(dict(obs))
        else:
            merged = self._obs[index]
            for net, flag in obs.items():
                merged[net] = merged.get(net, False) or flag

    def _stimuli(self):
        if self.ordered:
            return enumerate(self._sequence)
        return ((index, stimulus) for stimulus, index in self._patterns.items())

    def build(self, input_nets: list[int]) -> PatternSet:
        num = len(self._obs)
        patterns = PatternSet(num_patterns=num)
        inputs = {net: 0 for net in input_nets}
        for index, stimulus in self._stimuli():
            for net, value in zip(input_nets, stimulus):
                if value:
                    inputs[net] |= 1 << index
        patterns.inputs = inputs
        obs_packed: dict[int, int] = {}
        for index, obs in enumerate(self._obs):
            for net, flag in obs.items():
                if flag:
                    obs_packed[net] = obs_packed.get(net, 0) | (1 << index)
        patterns.output_observability = obs_packed
        return patterns

    @property
    def empty(self) -> bool:
        return not self._obs


def _bits(value: int, width: int) -> tuple[int, ...]:
    return tuple((value >> i) & 1 for i in range(width))


# ----------------------------------------------------------------------
# Forwarding logic.
# ----------------------------------------------------------------------

def forwarding_pattern_sets(
    log: ActivationLog, modules: CoreModules, ordered: bool = False
) -> dict[tuple[int, int], PatternSet]:
    """One pattern set per consumer port from the forwarding records.

    ``ordered=True`` preserves temporal order without deduplication
    (needed for transition-delay grading)."""
    width = 64 if modules.model.is64 else 32
    accumulators = {port: _Accumulator(ordered) for port in PORTS}
    for record in log.forwarding:
        if not record.observable:
            continue
        port = (record.slot, record.operand)
        acc = accumulators.get(port)
        if acc is None:
            continue
        stimulus = _forwarding_stimulus(record, width)
        netlist = modules.forwarding[port]
        out = netlist.outputs["out"]
        obs: dict[int, bool] = {}
        high_ok = record.width == 64 and record.observable_high
        for j in range(width):
            observable = j < 32 or high_ok
            if observable:
                obs[out[j]] = True
        acc.add(stimulus, obs)
    return {
        port: acc.build(modules.forwarding[port].input_nets)
        for port, acc in accumulators.items()
        if not acc.empty
    }


def _forwarding_stimulus(record: ForwardingRecord, width: int) -> tuple:
    sel = tuple(1 if i == int(record.select) else 0 for i in range(NUM_SOURCES))
    data: list[int] = []
    for i in range(NUM_SOURCES):
        data.extend(_bits(record.candidates[i], width))
    return sel + tuple(data)


# ----------------------------------------------------------------------
# HDCU.
# ----------------------------------------------------------------------

def hdcu_pattern_sets(
    log: ActivationLog, modules: CoreModules
) -> dict[tuple[int, int], PatternSet]:
    """One pattern set per consumer port from the HDCU records."""
    accumulators = {port: _Accumulator() for port in PORTS}
    for record in log.hdcu:
        if not record.observable:
            continue
        port = (record.slot, record.operand)
        acc = accumulators.get(port)
        if acc is None:
            continue
        netlist = modules.hdcu[port]
        stimulus = (
            _bits(record.consumer_reg, 5)
            + _bits(record.producer_regs[0], 5)
            + _bits(record.producer_regs[1], 5)
            + _bits(record.producer_regs[2], 5)
            + _bits(record.producer_regs[3], 5)
            + _bits(record.producer_valid, 4)
            + _bits(record.producer_load_mask, 4)
        )
        obs = _hdcu_observability(record, netlist)
        acc.add(stimulus, obs)
    return {
        port: acc.build(modules.hdcu[port].input_nets)
        for port, acc in accumulators.items()
        if not acc.empty
    }


def _hdcu_observability(record: HdcuRecord, netlist) -> dict[int, bool]:
    sel_nets = netlist.outputs["sel"]
    stall_net = netlist.outputs["stall"][0]
    obs: dict[int, bool] = {}
    if not record.stall:
        # A wrong select is visible through the datapath only when the
        # alternative source carried different data on this pattern.
        for i in range(NUM_SOURCES):
            if get_bit(record.flip_visible_mask, i):
                obs[sel_nets[i]] = True
        if record.flip_visible_mask:
            obs[sel_nets[int(record.select)]] = True
    # A wrong stall decision is visible only when the performance
    # counters contribute to the signature (the full algorithm of [19]).
    obs[stall_net] = record.stall_observable
    return obs


# ----------------------------------------------------------------------
# ICU.
# ----------------------------------------------------------------------

def icu_pattern_set(log: ActivationLog, modules: CoreModules) -> PatternSet:
    """Patterns from the ICU recognitions (merged ones split per event,
    mirroring the sequential recognition of each pending source)."""
    acc = _Accumulator()
    for record in log.icu:
        if not record.observable:
            continue
        events = [
            e for e in range(NUM_EVENTS) if get_bit(record.event_vector, e)
        ]
        for index, event in enumerate(events):
            stimulus = (
                tuple(1 if e == event else 0 for e in range(NUM_EVENTS))
                + _bits(record.imprecision, ICU_FIELD_BITS)
                + _bits(record.count_before + index, ICU_FIELD_BITS)
            )
            obs = {
                net: True
                for bus in ("status", "imp_out", "count_out")
                for net in modules.icu.outputs[bus]
            }
            acc.add(stimulus, obs)
    return acc.build(modules.icu.input_nets)
