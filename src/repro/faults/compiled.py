"""Compiled fault-simulation kernel: one-time netlist lowering.

The interpreted engine walks ``list[Gate]`` calling ``eval_gate`` per
gate and re-heapifies a fanout frontier per fault — pure dispatch
overhead on a hot path that every Table II/III run, the resilience
campaigns and the parallel engine sit on.  This module lowers a
:class:`~repro.faults.netlist.Netlist` **once** into flat parallel
arrays and evaluates against those:

* **Flat gate arrays.**  ``kinds``/``gate_a``/``gate_b``/``gate_out``
  are plain-int lists (no :class:`Gate` attribute lookups, no
  ``GateKind`` enum dispatch) plus precomputed static ``levels`` and a
  CSR fanout table (``fanout_index``/``fanout_gates``).
* **Levelized per-kind good simulation.**  Gates are grouped into
  (level, kind) batches at compile time; :meth:`CompiledNetlist.evaluate`
  sweeps each batch with a specialised tight loop instead of calling
  ``eval_gate`` per gate.  Values are bit-for-bit those of
  ``Netlist.evaluate``.
* **Cone-cached propagation.**  Each fault site's fanout cone — the
  topologically-sorted slice of gates it can possibly disturb — is
  computed once and cached (:meth:`CompiledNetlist.cone`).  Propagating
  a fault walks that slice with epoch-stamped preallocated value
  buffers, so per-fault allocation is near zero: no heap, no ``seen``
  set, no faulty-value dict.  Cones are additionally *truncated* to
  gates that can structurally reach an observable output whenever the
  pattern set's observability lives on output nets (always true for the
  pattern sets built by :mod:`repro.faults.observability`) — the
  deliberately-unobservable slices of the generated modules (WAW
  scheduler, vectored-IRQ path) are then never walked at all.

Compiling **freezes** the netlist: late structural mutation raises
instead of leaving a silently stale artifact.  The artifact itself is
cached on the netlist instance (:func:`compiled_for`), and since the
per-model module netlists are process-cached in
:mod:`repro.faults.generators`, every worker process compiles each
netlist exactly once.

The compiled engine is selected with ``engine="compiled"`` (the
default) on :func:`repro.faults.ppsfp.fault_simulate` and friends; its
results are bit-identical to ``engine="interpreted"`` — same detected
fault sets, same coverage, same signatures — which the differential
suite ``tests/test_compiled_equivalence.py`` pins across fault models,
shard geometries and checkpoint resume.
"""

from __future__ import annotations

from repro.errors import FaultModelError
from repro.faults.netlist import Netlist

__all__ = ["CompiledNetlist", "compile_netlist", "compiled_for"]

#: Plain-int mirror of :class:`repro.faults.gates.GateKind` (the kernels
#: compare against ints, never enum members).
_BUF, _NOT, _AND, _OR, _NAND, _NOR, _XOR, _XNOR = range(8)


class CompiledNetlist:
    """A netlist lowered to flat arrays plus reusable kernel buffers.

    Build through :func:`compile_netlist` (or the caching
    :func:`compiled_for`); the constructor does the full lowering pass
    and freezes the source netlist.
    """

    __slots__ = (
        "netlist",
        "num_nets",
        "num_gates",
        "kinds",
        "gate_a",
        "gate_b",
        "gate_out",
        "levels",
        "fanout_index",
        "fanout_gates",
        "schedule",
        "observable",
        "_cones",
        "_full_cones",
        "_faulty",
        "_stamp",
        "_epoch",
    )

    def __init__(self, netlist: Netlist):
        netlist.freeze()
        self.netlist = netlist
        self.num_nets = netlist.num_nets
        self.num_gates = len(netlist.gates)
        self.kinds = [int(g.kind) for g in netlist.gates]
        self.gate_a = [g.a for g in netlist.gates]
        self.gate_b = [g.b for g in netlist.gates]
        self.gate_out = [g.out for g in netlist.gates]
        self.levels = self._compute_levels()
        self.fanout_index, self.fanout_gates = self._compute_fanout_csr()
        self.schedule = self._compute_schedule()
        self.observable = self._compute_observable()
        # Cone caches: site -> tuple of (kind, a, b, out) quads in
        # topological order.  Filled lazily, kept for the artifact's
        # lifetime — every stuck-at/transition fault on the same net
        # reuses the slice.
        self._cones: dict[int, tuple] = {}
        self._full_cones: dict[int, tuple] = {}
        # Preallocated propagation buffers: faulty values + epoch
        # stamps.  A net's faulty value is valid only when its stamp
        # equals the current epoch, so "resetting" between faults is a
        # single integer increment.
        self._faulty = [0] * self.num_nets
        self._stamp = [0] * self.num_nets
        self._epoch = 0

    # ------------------------------------------------------------------
    # Compile passes.
    # ------------------------------------------------------------------

    def _compute_levels(self) -> list[int]:
        """Static level per gate (inputs are level 0)."""
        net_level = [0] * self.num_nets
        levels = []
        for a, b, out in zip(self.gate_a, self.gate_b, self.gate_out):
            level = net_level[a]
            if b >= 0 and net_level[b] > level:
                level = net_level[b]
            level += 1
            net_level[out] = level
            levels.append(level)
        return levels

    def _compute_fanout_csr(self) -> tuple[list[int], list[int]]:
        """Net -> reading gates as a CSR pair (index array + flat list)."""
        counts = [0] * (self.num_nets + 1)
        for a, b in zip(self.gate_a, self.gate_b):
            counts[a + 1] += 1
            if b >= 0:
                counts[b + 1] += 1
        for net in range(self.num_nets):
            counts[net + 1] += counts[net]
        index = list(counts)
        flat = [0] * index[self.num_nets]
        cursor = list(index)
        for gi, (a, b) in enumerate(zip(self.gate_a, self.gate_b)):
            flat[cursor[a]] = gi
            cursor[a] += 1
            if b >= 0:
                flat[cursor[b]] = gi
                cursor[b] += 1
        return index, flat

    def _compute_schedule(self) -> list[tuple]:
        """(level, kind)-batched gate groups for the good-sim sweeps.

        Gates inside one level are independent by construction, so
        grouping them by kind lets :meth:`evaluate` run one specialised
        loop per batch instead of dispatching per gate.
        """
        buckets: dict[tuple[int, int], list[int]] = {}
        for gi, (level, kind) in enumerate(zip(self.levels, self.kinds)):
            buckets.setdefault((level, kind), []).append(gi)
        schedule = []
        for (_, kind), indices in sorted(buckets.items()):
            schedule.append(
                (
                    kind,
                    tuple(self.gate_a[gi] for gi in indices),
                    tuple(self.gate_b[gi] for gi in indices),
                    tuple(self.gate_out[gi] for gi in indices),
                )
            )
        return schedule

    def _compute_observable(self) -> list[bool]:
        """Per net: can a change here structurally reach an output net?

        One reverse topological pass (a gate's output net id is always
        greater than its inputs', so iterating gates backwards settles
        every net in a single sweep).
        """
        observable = [False] * self.num_nets
        for net in self.netlist.output_nets:
            observable[net] = True
        for gi in range(self.num_gates - 1, -1, -1):
            if observable[self.gate_out[gi]]:
                observable[self.gate_a[gi]] = True
                b = self.gate_b[gi]
                if b >= 0:
                    observable[b] = True
        return observable

    # ------------------------------------------------------------------
    # Cone cache.
    # ------------------------------------------------------------------

    def cone(self, site: int, truncated: bool = True) -> tuple:
        """The site's fanout-cone slice, computed once and cached.

        Returns (kind, a, b, out) quads for every gate reachable from
        ``site``, in ascending gate order (= topological order).  With
        ``truncated=True`` gates whose output cannot structurally reach
        an output net are excluded — valid whenever observability is
        confined to output nets, which :meth:`can_truncate` checks.
        """
        cache = self._cones if truncated else self._full_cones
        cached = cache.get(site)
        if cached is not None:
            return cached
        index, flat = self.fanout_index, self.fanout_gates
        out_nets = self.gate_out
        observable = self.observable
        reached: set[int] = set()
        pending = [site]
        seen_nets = {site}
        while pending:
            net = pending.pop()
            for slot in range(index[net], index[net + 1]):
                gi = flat[slot]
                if gi in reached:
                    continue
                out = out_nets[gi]
                if truncated and not observable[out]:
                    continue
                reached.add(gi)
                if out not in seen_nets:
                    seen_nets.add(out)
                    pending.append(out)
        kinds, gate_a, gate_b = self.kinds, self.gate_a, self.gate_b
        cone = tuple(
            (kinds[gi], gate_a[gi], gate_b[gi], out_nets[gi])
            for gi in sorted(reached)
        )
        cache[site] = cone
        return cone

    # ------------------------------------------------------------------
    # Kernels.
    # ------------------------------------------------------------------

    def evaluate(self, input_values: dict[int, int], mask: int) -> list[int]:
        """Good simulation over the levelized per-kind schedule.

        Bit-identical to ``Netlist.evaluate`` — same packed value for
        every net — at a fraction of the dispatch cost.
        """
        values = [0] * self.num_nets
        for net, value in input_values.items():
            values[net] = value & mask
        for kind, aa, bb, oo in self.schedule:
            if kind == _AND:
                for ai, bi, oi in zip(aa, bb, oo):
                    values[oi] = values[ai] & values[bi]
            elif kind == _OR:
                for ai, bi, oi in zip(aa, bb, oo):
                    values[oi] = values[ai] | values[bi]
            elif kind == _BUF:
                for ai, oi in zip(aa, oo):
                    values[oi] = values[ai]
            elif kind == _XNOR:
                for ai, bi, oi in zip(aa, bb, oo):
                    values[oi] = ~(values[ai] ^ values[bi]) & mask
            elif kind == _XOR:
                for ai, bi, oi in zip(aa, bb, oo):
                    values[oi] = values[ai] ^ values[bi]
            elif kind == _NOT:
                for ai, oi in zip(aa, oo):
                    values[oi] = ~values[ai] & mask
            elif kind == _NAND:
                for ai, bi, oi in zip(aa, bb, oo):
                    values[oi] = ~(values[ai] & values[bi]) & mask
            elif kind == _NOR:
                for ai, bi, oi in zip(aa, bb, oo):
                    values[oi] = ~(values[ai] | values[bi]) & mask
            else:  # pragma: no cover - compile lowers known kinds only
                raise FaultModelError(f"unknown compiled gate kind {kind}")
        return values

    def observability_vector(self, observability: dict[int, int]) -> list:
        """Dense per-net observability masks (``None`` = unobserved)."""
        vector: list = [None] * self.num_nets
        for net, obs_mask in observability.items():
            vector[net] = obs_mask
        return vector

    def can_truncate(self, observability: dict[int, int]) -> bool:
        """True when every observability mask sits on a net the
        truncated cones keep (a net that structurally reaches an output
        net).  False falls back to full cones — never wrong, just
        slower."""
        observable = self.observable
        return all(observable[net] for net in observability)

    def propagate(
        self,
        good: list[int],
        site: int,
        faulty_site_value: int,
        mask: int,
        obs: list,
        truncated: bool = True,
    ) -> bool:
        """Cone-restricted single-fault propagation (one-shot form).

        Same decision as the interpreted ``_propagate`` — True iff a
        faulty/good difference reaches a net with an observability mask
        on an observable pattern.  Loops over many faults of one pattern
        set should use :meth:`propagator` instead, which binds the
        per-call-invariant state once.
        """
        return self.propagator(good, mask, obs, truncated)(
            site, faulty_site_value
        )

    def propagator(
        self, good: list[int], mask: int, obs: list, truncated: bool = True
    ):
        """A ``(site, faulty_site_value) -> bool`` propagation closure.

        Cones here average a handful of gates, so per-fault *overhead*
        — attribute lookups, cone-cache probes, argument shuffling —
        rivals the propagation work itself.  This factory hoists
        everything invariant across one pattern set (good values, mask,
        observability vector, cone cache, stamp buffers) into closure
        cells, leaving the per-fault call with nothing but the walk.
        """
        cones = self._cones if truncated else self._full_cones
        cones_get = cones.get
        build = self.cone
        faulty = self._faulty
        stamp = self._stamp
        observable = self.observable
        # Structurally dead sites (cannot reach any output net) can be
        # rejected with one list probe — but only under truncation,
        # where every observability mask provably sits on a live net.
        check_dead = truncated

        def propagate(site: int, faulty_site_value: int) -> bool:
            if check_dead and not observable[site]:
                return False
            diff = (good[site] ^ faulty_site_value) & mask
            if not diff:
                return False
            site_obs = obs[site]
            if site_obs is not None and diff & site_obs:
                return True
            cone = cones_get(site)
            if cone is None:
                cone = build(site, truncated)
            if not cone:
                return False
            epoch = self._epoch + 1
            self._epoch = epoch
            faulty[site] = faulty_site_value
            stamp[site] = epoch
            for kind, a, b, out in cone:
                if b < 0:
                    if stamp[a] != epoch:
                        continue
                    value = faulty[a] if kind == _BUF else ~faulty[a] & mask
                else:
                    stamped_a = stamp[a] == epoch
                    stamped_b = stamp[b] == epoch
                    if not stamped_a and not stamped_b:
                        continue
                    av = faulty[a] if stamped_a else good[a]
                    bv = faulty[b] if stamped_b else good[b]
                    if kind == _AND:
                        value = av & bv
                    elif kind == _OR:
                        value = av | bv
                    elif kind == _XNOR:
                        value = ~(av ^ bv) & mask
                    elif kind == _XOR:
                        value = av ^ bv
                    elif kind == _NAND:
                        value = ~(av & bv) & mask
                    else:  # NOR
                        value = ~(av | bv) & mask
                good_value = good[out]
                if value == good_value:
                    continue
                faulty[out] = value
                stamp[out] = epoch
                out_obs = obs[out]
                if out_obs is not None and (value ^ good_value) & out_obs:
                    return True
            return False

        return propagate

    def stats(self) -> str:
        cones = len(self._cones) + len(self._full_cones)
        return (
            f"{self.netlist.name}: {self.num_gates} gates in "
            f"{len(self.schedule)} level/kind batches, "
            f"{sum(self.observable)}/{self.num_nets} observable nets, "
            f"{cones} cached cones"
        )


def compile_netlist(netlist: Netlist) -> CompiledNetlist:
    """Lower ``netlist`` to a fresh :class:`CompiledNetlist` (freezes it)."""
    return CompiledNetlist(netlist)


def compiled_for(netlist: Netlist) -> CompiledNetlist:
    """The netlist's cached compiled artifact (compiled on first use).

    The artifact rides on the netlist instance, so anything holding the
    netlist — the process-wide module cache in
    :mod:`repro.faults.generators`, a worker that unpickled one shard's
    netlist — compiles at most once and every subsequent fault-sim call
    reuses the arrays, cones and buffers.
    """
    cached = getattr(netlist, "_compiled_artifact", None)
    if cached is None:
        cached = CompiledNetlist(netlist)
        netlist._compiled_artifact = cached
    return cached
