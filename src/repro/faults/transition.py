"""Transition-delay fault model (the paper's future-work direction).

The conclusion of the paper notes that the multi-core determinism
problem "might be further emphasized with delay faults which require
test patterns applied in a timed sequence".  This module implements
that extension: transition faults (slow-to-rise / slow-to-fall) on
every net, graded against the *temporally ordered* activation patterns
of a run.

A slow-to-rise fault on net ``n`` is detected by a pattern pair
(t-1, t) where the good value of ``n`` rises at *t* (launch) and the
stale value — the fault holds the previous cycle's value — propagates
to an observable output at *t* (capture).  With packed patterns the
launch set is one bigint expression::

    rise  =  good & ~(good << 1)      (bit t set: 0 -> 1 at t)
    fall  = ~good &  (good << 1)      (bit t set: 1 -> 0 at t)

and the faulty site value is simply ``good ^ launch`` (only the
launched bits are late), so the stuck-at cone propagation is reused
unchanged.

Consecutive activations of a module port are treated as consecutive
applied vectors; pattern 0 has no predecessor and can only capture.
This is exactly why ordered (non-deduplicated) pattern sets are
required: a fault-coverage figure for delay faults is only meaningful
if the launch/capture adjacency of the run is preserved — which is the
property multi-core bus contention destroys.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.compiled import compiled_for
from repro.faults.netlist import Netlist
from repro.faults.ppsfp import (
    DropSet,
    FaultSimResult,
    PatternSet,
    _check_engine,
    _propagate,
    good_simulation,
)


@dataclass(frozen=True)
class TransitionFault:
    """A slow-to-rise (``rising=True``) or slow-to-fall fault on a net."""

    net: int
    rising: bool

    @property
    def stable_id(self) -> str:
        """Process-stable identity used for deterministic sharding
        (same contract as :attr:`StuckAtFault.stable_id`)."""
        kind = "STR" if self.rising else "STF"
        return f"net{self.net}/{kind}"

    def __str__(self) -> str:
        return self.stable_id


def enumerate_transition_faults(netlist: Netlist) -> list[TransitionFault]:
    """Two transition faults per net (uncollapsed)."""
    return [
        TransitionFault(net, rising)
        for net in range(netlist.num_nets)
        for rising in (True, False)
    ]


def transition_fault_simulate(
    netlist: Netlist,
    patterns: PatternSet,
    faults: list[TransitionFault] | None = None,
    *,
    engine: str = "compiled",
    dropped: DropSet | None = None,
) -> FaultSimResult:
    """Grade transition faults against an *ordered* pattern set.

    The pattern set must preserve the run's temporal order (build it
    with ``ordered=True``); a deduplicated set would invent adjacencies
    that never happened on the hardware.

    ``engine``/``dropped`` behave exactly as on
    :func:`repro.faults.ppsfp.fault_simulate`: the compiled kernel is
    bit-identical to the interpreted path, and a :class:`DropSet`
    credits already-detected faults without re-simulating them.
    """
    _check_engine(engine)
    if faults is None:
        faults = enumerate_transition_faults(netlist)
    mask = patterns.mask
    if engine == "compiled":
        compiled = compiled_for(netlist)
        good = compiled.evaluate(patterns.inputs, mask)
        obs = compiled.observability_vector(patterns.output_observability)
        truncated = compiled.can_truncate(patterns.output_observability)
        propagate = compiled.propagator(good, mask, obs, truncated)
    else:
        good = good_simulation(netlist, patterns)
        propagate = None
    detected = 0
    for fault in faults:
        if dropped is not None and fault.stable_id in dropped:
            detected += 1
            continue
        value = good[fault.net]
        previous = (value << 1) & mask
        if fault.rising:
            launch = value & ~previous & mask & ~1
        else:
            launch = ~value & previous & mask
        if not launch:
            continue
        faulty_value = value ^ launch
        if propagate is not None:
            hit = propagate(fault.net, faulty_value)
        else:
            hit = _propagate(
                netlist, good, fault.net, faulty_value, mask,
                patterns.output_observability,
            )
        if hit:
            detected += 1
            if dropped is not None:
                dropped.add(fault.stable_id)
    return FaultSimResult(
        module=f"{netlist.name}:transition",
        total_faults=len(faults),
        detected_faults=detected,
        num_patterns=patterns.num_patterns,
    )
