"""Standard, picklable campaign workloads for the parallel engine.

A :func:`repro.faults.parallel.run_parallel_checkpointed_campaign`
worker reconstructs its program builders inside the worker process, so
the *provider* must be picklable — a module-level function or a
:func:`functools.partial` of one, never a closure.  This module hosts
the canonical providers used by ``python -m repro faultsim``, the
parallel-fault-sim benchmark and the differential test suite: the
paper's three-core SoC (models A, B, C) each running its own
cache-wrapped forwarding routine.
"""

from __future__ import annotations

from functools import partial

from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_B, CORE_MODEL_C, CoreModel

#: The case-study SoC: core id -> processor model (Section IV-A).
DEFAULT_CAMPAIGN_MODELS: dict[int, CoreModel] = {
    0: CORE_MODEL_A,
    1: CORE_MODEL_B,
    2: CORE_MODEL_C,
}


def forwarding_builders(
    patterns_per_path: int | None = None,
    load_use_blocks: int | None = None,
    models: dict[int, CoreModel] | None = None,
):
    """Cache-wrapped forwarding-routine builders for each core.

    ``patterns_per_path``/``load_use_blocks`` default to the routine
    generator's full-size defaults; pass 1/1 for the smoke-sized bodies
    the differential tests use.  Module-level on purpose: a
    ``partial`` of this function pickles by reference into workers.
    """
    # Imported here so unpickling this module in a worker stays cheap.
    from repro.core import cache_wrapped_builder
    from repro.stl import RoutineContext
    from repro.stl.routines import make_forwarding_routine

    kwargs: dict = {"with_pcs": False}
    if patterns_per_path is not None:
        kwargs["patterns_per_path"] = patterns_per_path
    if load_use_blocks is not None:
        kwargs["load_use_blocks"] = load_use_blocks
    builders = {}
    for core_id, model in (models or DEFAULT_CAMPAIGN_MODELS).items():
        ctx = RoutineContext.for_core(core_id, model)
        routine = make_forwarding_routine(model, **kwargs)
        builders[core_id] = cache_wrapped_builder(routine, ctx)
    return builders


def standard_provider():
    """Zero-arg picklable provider: the full-size forwarding workload."""
    return partial(forwarding_builders)


def small_provider():
    """Zero-arg picklable provider: smoke-sized bodies (CI, tests)."""
    return partial(forwarding_builders, 1, 1)
