"""Fault-coverage campaigns: activation logs in, coverage figures out.

Mirrors the authors' flow (Section IV-C): "Each of these logic
simulations was then fault simulated" — every scenario run is graded
independently against the same per-core fault list, and the spread of
the resulting coverages across scenarios is the paper's
deterministic-vs-fluctuating evidence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.core import CoreModel
from repro.cpu.recording import ActivationLog
from repro.faults.generators import CoreModules, get_modules
from repro.faults.observability import (
    forwarding_pattern_sets,
    hdcu_pattern_sets,
    icu_pattern_set,
)
from repro.faults.ppsfp import fault_simulate
from repro.faults.transition import (
    enumerate_transition_faults,
    transition_fault_simulate,
)


@dataclass(frozen=True)
class ModuleCoverage:
    """Fault coverage of one module for one run."""

    module: str
    core_model: str
    total_faults: int
    detected_faults: int

    @property
    def coverage_percent(self) -> float:
        if self.total_faults == 0:
            return 0.0
        return 100.0 * self.detected_faults / self.total_faults


def forwarding_coverage(log: ActivationLog, model: CoreModel) -> ModuleCoverage:
    """Grade the forwarding-logic fault list against one run's log."""
    modules = get_modules(model)
    pattern_sets = forwarding_pattern_sets(log, modules)
    detected = 0
    for port, faults in modules.forwarding_faults.items():
        patterns = pattern_sets.get(port)
        if patterns is None or patterns.num_patterns == 0:
            continue
        result = fault_simulate(modules.forwarding[port], patterns, faults)
        detected += result.detected_faults
    return ModuleCoverage(
        module="FWD",
        core_model=model.name,
        total_faults=modules.forwarding_fault_count,
        detected_faults=detected,
    )


def hdcu_coverage(log: ActivationLog, model: CoreModel) -> ModuleCoverage:
    """Grade the HDCU fault list against one run's log."""
    modules = get_modules(model)
    pattern_sets = hdcu_pattern_sets(log, modules)
    detected = 0
    for port, faults in modules.hdcu_faults.items():
        patterns = pattern_sets.get(port)
        if patterns is None or patterns.num_patterns == 0:
            continue
        result = fault_simulate(modules.hdcu[port], patterns, faults)
        detected += result.detected_faults
    return ModuleCoverage(
        module="HDCU",
        core_model=model.name,
        total_faults=modules.hdcu_fault_count,
        detected_faults=detected,
    )


def icu_coverage(log: ActivationLog, model: CoreModel) -> ModuleCoverage:
    """Grade the ICU fault list against one run's log."""
    modules = get_modules(model)
    patterns = icu_pattern_set(log, modules)
    if patterns.num_patterns == 0:
        detected = 0
    else:
        detected = fault_simulate(
            modules.icu, patterns, modules.icu_faults
        ).detected_faults
    return ModuleCoverage(
        module="ICU",
        core_model=model.name,
        total_faults=modules.icu_fault_count,
        detected_faults=detected,
    )


def forwarding_transition_coverage(
    log: ActivationLog, model: CoreModel
) -> ModuleCoverage:
    """Grade transition-delay faults on the forwarding logic.

    Uses *ordered* pattern sets: a delay fault needs its launch
    transition and capture to be consecutive applied vectors, which is
    exactly what multi-core fetch gaps destroy — the paper's conclusion
    expects the determinism problem to be "further emphasized with
    delay faults".
    """
    modules = get_modules(model)
    pattern_sets = forwarding_pattern_sets(log, modules, ordered=True)
    detected = 0
    total = 0
    for port, netlist in modules.forwarding.items():
        faults = enumerate_transition_faults(netlist)
        total += len(faults)
        patterns = pattern_sets.get(port)
        if patterns is None or patterns.num_patterns < 2:
            continue
        result = transition_fault_simulate(netlist, patterns, faults)
        detected += result.detected_faults
    return ModuleCoverage(
        module="FWD-TDF",
        core_model=model.name,
        total_faults=total,
        detected_faults=detected,
    )


@dataclass(frozen=True)
class CoverageRange:
    """Min/max coverage across a set of runs (Table II's third column)."""

    module: str
    core_model: str
    minimum_percent: float
    maximum_percent: float

    @property
    def spread(self) -> float:
        return self.maximum_percent - self.minimum_percent

    @property
    def stable(self) -> bool:
        return self.spread < 1e-9


def coverage_range(coverages: list[ModuleCoverage]) -> CoverageRange:
    """Summarise per-scenario coverages as a min-max range."""
    if not coverages:
        raise ValueError("no coverages to summarise")
    values = [c.coverage_percent for c in coverages]
    return CoverageRange(
        module=coverages[0].module,
        core_model=coverages[0].core_model,
        minimum_percent=min(values),
        maximum_percent=max(values),
    )
