"""Fault-coverage campaigns: activation logs in, coverage figures out.

Mirrors the authors' flow (Section IV-C): "Each of these logic
simulations was then fault simulated" — every scenario run is graded
independently against the same per-core fault list, and the spread of
the resulting coverages across scenarios is the paper's
deterministic-vs-fluctuating evidence.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path

from repro.cpu.core import CoreModel
from repro.cpu.recording import ActivationLog
from repro.errors import CheckpointCorruptionWarning, CheckpointError, ReproError
from repro.faults.generators import CoreModules, get_modules
from repro.faults.observability import (
    forwarding_pattern_sets,
    hdcu_pattern_sets,
    icu_pattern_set,
)
from repro.faults.ppsfp import _check_engine, fault_simulate
from repro.faults.transition import (
    enumerate_transition_faults,
    transition_fault_simulate,
)


@dataclass(frozen=True)
class ModuleCoverage:
    """Fault coverage of one module for one run."""

    module: str
    core_model: str
    total_faults: int
    detected_faults: int

    @property
    def coverage_percent(self) -> float:
        if self.total_faults == 0:
            return 0.0
        return 100.0 * self.detected_faults / self.total_faults

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "core_model": self.core_model,
            "total_faults": self.total_faults,
            "detected_faults": self.detected_faults,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleCoverage":
        return cls(
            module=data["module"],
            core_model=data["core_model"],
            total_faults=data["total_faults"],
            detected_faults=data["detected_faults"],
        )


def forwarding_coverage(
    log: ActivationLog, model: CoreModel, *, engine: str = "compiled"
) -> ModuleCoverage:
    """Grade the forwarding-logic fault list against one run's log."""
    modules = get_modules(model)
    pattern_sets = forwarding_pattern_sets(log, modules)
    detected = 0
    for port, faults in modules.forwarding_faults.items():
        patterns = pattern_sets.get(port)
        if patterns is None or patterns.num_patterns == 0:
            continue
        result = fault_simulate(
            modules.forwarding[port], patterns, faults, engine=engine
        )
        detected += result.detected_faults
    return ModuleCoverage(
        module="FWD",
        core_model=model.name,
        total_faults=modules.forwarding_fault_count,
        detected_faults=detected,
    )


def hdcu_coverage(
    log: ActivationLog, model: CoreModel, *, engine: str = "compiled"
) -> ModuleCoverage:
    """Grade the HDCU fault list against one run's log."""
    modules = get_modules(model)
    pattern_sets = hdcu_pattern_sets(log, modules)
    detected = 0
    for port, faults in modules.hdcu_faults.items():
        patterns = pattern_sets.get(port)
        if patterns is None or patterns.num_patterns == 0:
            continue
        result = fault_simulate(
            modules.hdcu[port], patterns, faults, engine=engine
        )
        detected += result.detected_faults
    return ModuleCoverage(
        module="HDCU",
        core_model=model.name,
        total_faults=modules.hdcu_fault_count,
        detected_faults=detected,
    )


def icu_coverage(
    log: ActivationLog, model: CoreModel, *, engine: str = "compiled"
) -> ModuleCoverage:
    """Grade the ICU fault list against one run's log."""
    modules = get_modules(model)
    patterns = icu_pattern_set(log, modules)
    if patterns.num_patterns == 0:
        detected = 0
    else:
        detected = fault_simulate(
            modules.icu, patterns, modules.icu_faults, engine=engine
        ).detected_faults
    return ModuleCoverage(
        module="ICU",
        core_model=model.name,
        total_faults=modules.icu_fault_count,
        detected_faults=detected,
    )


def forwarding_transition_coverage(
    log: ActivationLog, model: CoreModel, *, engine: str = "compiled"
) -> ModuleCoverage:
    """Grade transition-delay faults on the forwarding logic.

    Uses *ordered* pattern sets: a delay fault needs its launch
    transition and capture to be consecutive applied vectors, which is
    exactly what multi-core fetch gaps destroy — the paper's conclusion
    expects the determinism problem to be "further emphasized with
    delay faults".
    """
    modules = get_modules(model)
    pattern_sets = forwarding_pattern_sets(log, modules, ordered=True)
    detected = 0
    total = 0
    for port, netlist in modules.forwarding.items():
        faults = enumerate_transition_faults(netlist)
        total += len(faults)
        patterns = pattern_sets.get(port)
        if patterns is None or patterns.num_patterns < 2:
            continue
        result = transition_fault_simulate(
            netlist, patterns, faults, engine=engine
        )
        detected += result.detected_faults
    return ModuleCoverage(
        module="FWD-TDF",
        core_model=model.name,
        total_faults=total,
        detected_faults=detected,
    )


@dataclass(frozen=True)
class CoverageRange:
    """Min/max coverage across a set of runs (Table II's third column)."""

    module: str
    core_model: str
    minimum_percent: float
    maximum_percent: float

    @property
    def spread(self) -> float:
        return self.maximum_percent - self.minimum_percent

    @property
    def stable(self) -> bool:
        return self.spread < 1e-9


def coverage_range(coverages: list[ModuleCoverage]) -> CoverageRange:
    """Summarise per-scenario coverages as a min-max range."""
    if not coverages:
        raise ValueError("no coverages to summarise")
    values = [c.coverage_percent for c in coverages]
    return CoverageRange(
        module=coverages[0].module,
        core_model=coverages[0].core_model,
        minimum_percent=min(values),
        maximum_percent=max(values),
    )


# ----------------------------------------------------------------------
# Supervised, checkpointed coverage campaigns.
#
# A long in-field campaign must survive a crashed or hung scenario run:
# each scenario executes under a cycle deadline with bounded retries
# (the supervisor discipline of repro.soc.supervisor applied at campaign
# granularity), a scenario that keeps failing is quarantined as a
# recorded error instead of aborting the sweep, and every finished
# scenario is checkpointed to JSON so a killed campaign resumes where it
# left off and produces coverage identical to an uninterrupted run.
# ----------------------------------------------------------------------

#: Module label -> grading function over one core's activation log.
COVERAGE_GRADERS = {
    "FWD": forwarding_coverage,
    "HDCU": hdcu_coverage,
    "ICU": icu_coverage,
    "FWD-TDF": forwarding_transition_coverage,
}

CHECKPOINT_VERSION = 1

#: Sidecar suffix appended to quarantined (corrupt) checkpoint files.
CORRUPT_SUFFIX = ".corrupt"


def content_digest(data: dict) -> str:
    """Content digest of a checkpoint/manifest payload.

    Computed over the canonical JSON of the payload *without* its
    ``digest`` field, so the digest can be embedded in the same file it
    protects.  blake2b/128-bit: collision-resistance against silent
    disk/fs corruption, not an adversary.
    """
    payload = {key: value for key, value in data.items() if key != "digest"}
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def quarantine_corrupt_file(path: Path, reason: str) -> Path:
    """Move a corrupt file to a ``.corrupt`` sidecar and warn.

    The bytes are preserved for post-mortem (never silently deleted),
    the original path is freed so the owning shard can start fresh, and
    the warning makes the silent-restart failure mode impossible: a
    resume that lost state always says why.  Returns the sidecar path.
    """
    sidecar = path.with_name(path.name + CORRUPT_SUFFIX)
    os.replace(path, sidecar)
    warnings.warn(
        f"{path} failed its integrity check ({reason}); moved to "
        f"{sidecar.name} and restarting that shard from scratch",
        CheckpointCorruptionWarning,
        stacklevel=3,
    )
    return sidecar


def verify_payload(path: Path, data: dict) -> str | None:
    """Return a corruption reason for a loaded payload, or None if OK.

    A missing digest is accepted (pre-checksum files remain loadable);
    a present-but-wrong digest is corruption — the valid-JSON tamper
    case that no parse error can catch.
    """
    recorded = data.get("digest")
    if recorded is None:
        return None
    expected = content_digest(data)
    if recorded != expected:
        return f"digest mismatch (recorded {recorded}, computed {expected})"
    return None


@dataclass
class ScenarioOutcome:
    """One scenario's graded coverages — or its recorded failure."""

    label: str
    coverages: list[dict] = field(default_factory=list)
    error: str | None = None
    attempts: int = 1
    #: Determinism-audit verdict of the graded run (``audit=True``).
    audit: dict | None = None
    #: Final test signature per active core (JSON keys are strings).
    signatures: dict[str, int] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.error is not None

    def module_coverages(self) -> list[ModuleCoverage]:
        return [ModuleCoverage.from_dict(c) for c in self.coverages]

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "coverages": self.coverages,
            "error": self.error,
            "attempts": self.attempts,
            "audit": self.audit,
            "signatures": self.signatures,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioOutcome":
        return cls(
            label=data["label"],
            coverages=list(data["coverages"]),
            error=data["error"],
            attempts=data["attempts"],
            audit=data.get("audit"),
            signatures=dict(data.get("signatures", {})),
        )


class CampaignCheckpoint:
    """JSON checkpoint of a partially-run coverage campaign.

    The file is rewritten atomically (tmp + rename) after every
    scenario, so a kill at any instant leaves either the previous or the
    new consistent state — never a torn file.
    """

    def __init__(self, path: str | Path, modules: tuple[str, ...]):
        self.path = Path(path)
        self.modules = tuple(modules)
        self.outcomes: dict[str, ScenarioOutcome] = {}
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        """Load and verify the checkpoint file.

        Unreadable bytes, invalid JSON or a content-digest mismatch are
        *corruption*: the file is quarantined to a ``.corrupt`` sidecar
        with a :class:`CheckpointCorruptionWarning` and this checkpoint
        starts empty — the shard recomputes, the evidence survives.
        Version or module mismatches are *caller errors* and still
        raise :class:`CheckpointError`: mixing incompatible campaigns
        must never be papered over by a silent restart.
        """
        try:
            data = json.loads(self.path.read_text())
        # ValueError covers JSONDecodeError and the UnicodeDecodeError
        # that non-UTF-8 garbage raises before the parser even runs.
        except (OSError, ValueError) as exc:
            quarantine_corrupt_file(self.path, f"unreadable: {exc}")
            return
        reason = verify_payload(self.path, data)
        if reason is not None:
            quarantine_corrupt_file(self.path, reason)
            return
        if data.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has version {data.get('version')!r}, "
                f"expected {CHECKPOINT_VERSION}"
            )
        if tuple(data.get("modules", ())) != self.modules:
            raise CheckpointError(
                f"checkpoint {self.path} graded modules "
                f"{data.get('modules')}, this campaign grades "
                f"{list(self.modules)}; refusing to mix them"
            )
        for entry in data.get("scenarios", []):
            outcome = ScenarioOutcome.from_dict(entry)
            self.outcomes[outcome.label] = outcome

    def done(self, label: str) -> bool:
        return label in self.outcomes

    def record(self, outcome: ScenarioOutcome) -> None:
        """Persist one outcome, keeping memory and disk in lock-step.

        If the write fails (disk full, a kill simulated by the crash
        tests) the in-memory map is rolled back, so this checkpoint
        never *claims* a scenario it did not durably record — the
        invariant that stops a resumed campaign from double-counting a
        scenario that both a dead worker and its replacement graded.
        """
        previous = self.outcomes.get(outcome.label)
        self.outcomes[outcome.label] = outcome
        try:
            self.save()
        except BaseException:
            if previous is None:
                self.outcomes.pop(outcome.label, None)
            else:
                self.outcomes[outcome.label] = previous
            raise

    def save(self) -> None:
        data = {
            "version": CHECKPOINT_VERSION,
            "modules": list(self.modules),
            "scenarios": [o.to_dict() for o in self.outcomes.values()],
        }
        data["digest"] = content_digest(data)
        # The temp name carries the pid so two processes pointed at the
        # same checkpoint path can never tear each other's staging file;
        # fsync-before-rename makes the rename a real commit point even
        # if the host dies right after.
        tmp = self.path.with_suffix(f"{self.path.suffix}.tmp.{os.getpid()}")
        try:
            with open(tmp, "w") as handle:
                handle.write(json.dumps(data, indent=2) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        finally:
            if tmp.exists():
                tmp.unlink()


def merge_outcome_maps(maps) -> dict[str, ScenarioOutcome]:
    """Merge per-shard outcome maps, refusing duplicate scenarios.

    The parallel campaign's reducer: outcome maps from disjoint shards
    merge by key, and a label appearing in more than one shard (a
    corrupted manifest, or two campaigns sharing a directory) raises
    :class:`~repro.errors.CheckpointError` instead of silently keeping
    one grading and discarding — or double-counting — the other.
    """
    merged: dict[str, ScenarioOutcome] = {}
    for outcome_map in maps:
        for label, outcome in outcome_map.items():
            if label in merged:
                raise CheckpointError(
                    f"scenario {label!r} appears in multiple shards; "
                    "shard checkpoints must be disjoint"
                )
            merged[label] = outcome
    return merged


def run_checkpointed_campaign(
    builders,
    scenarios,
    models: dict[int, CoreModel],
    checkpoint_path: str | Path,
    modules: tuple[str, ...] = ("FWD",),
    soc_config=None,
    max_cycles: int = 4_000_000,
    retries: int = 1,
    on_scenario=None,
    audit: bool = False,
    engine: str = "compiled",
) -> dict[str, ScenarioOutcome]:
    """Run a coverage campaign with supervision and JSON checkpointing.

    ``builders``/``scenarios`` are as for
    :func:`repro.core.determinism.run_campaign`; ``models`` maps core id
    to its :class:`CoreModel` for grading, and ``modules`` names the
    fault lists to grade (keys of :data:`COVERAGE_GRADERS`).

    Per scenario: the run executes under ``max_cycles`` (the per-module
    watchdog), a :class:`repro.errors.ReproError` triggers up to
    ``retries`` clean re-runs (a fresh SoC each time), and persistent
    failure quarantines the scenario as an ``error`` outcome rather than
    aborting the campaign.  Completed scenarios found in the checkpoint
    are skipped, so a killed campaign resumes where it left off.

    ``on_scenario(outcome)``, when given, is called after each scenario
    is checkpointed — the test hook used to simulate mid-run kills.
    ``audit=True`` runs every scenario under the determinism auditor and
    records its verdict in each :class:`ScenarioOutcome`.  ``engine``
    selects the fault-simulation kernel the graders use ("compiled" by
    default, "interpreted" for the reference path — bit-identical
    outcomes either way).
    """
    # Imported here: repro.core builds on repro.faults results in the
    # analysis layer, so the module-level direction stays faults <- core.
    from repro.core.determinism import run_scenario
    from repro.soc.config import DEFAULT_SOC_CONFIG

    unknown = [m for m in modules if m not in COVERAGE_GRADERS]
    if unknown:
        raise ValueError(f"unknown coverage modules {unknown}")
    _check_engine(engine)
    config = soc_config or DEFAULT_SOC_CONFIG
    checkpoint = CampaignCheckpoint(checkpoint_path, modules)
    for scenario in scenarios:
        if checkpoint.done(scenario.label):
            continue
        outcome = ScenarioOutcome(label=scenario.label)
        for attempt in range(1 + retries):
            outcome.attempts = attempt + 1
            try:
                result = run_scenario(
                    builders, scenario, config, max_cycles=max_cycles,
                    audit=audit,
                )
            except ReproError as exc:
                outcome.error = f"{type(exc).__name__}: {exc}"
                continue
            outcome.error = None
            outcome.audit = result.audit
            outcome.signatures = {
                str(core_id): result.per_core[core_id].signature
                for core_id in scenario.active_cores
            }
            outcome.coverages = [
                {
                    "core_id": core_id,
                    **COVERAGE_GRADERS[module](
                        result.per_core[core_id].log, models[core_id],
                        engine=engine,
                    ).to_dict(),
                }
                for module in modules
                for core_id in scenario.active_cores
            ]
            break
        checkpoint.record(outcome)
        if on_scenario is not None:
            on_scenario(outcome)
    return dict(checkpoint.outcomes)
