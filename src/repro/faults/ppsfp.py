"""Parallel-pattern single-fault-propagation stuck-at simulator.

The substitute for the commercial fault simulator of Section IV-C: it
fault-grades the module activation patterns logged during a pipeline
run.  One good simulation packs every pattern into bigints; each fault
then re-evaluates only its downstream cone, and a fault is *detected*
when a faulty output bit differs from the good value on a pattern where
that output is observable (reaches the 32-bit test signature).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import FaultModelError
from repro.faults.netlist import Netlist
from repro.faults.stuckat import StuckAtFault, collapse_with_weights
from repro.utils.bitops import mask as bitmask


@dataclass
class PatternSet:
    """Packed stimulus + observability for one fault-simulation run.

    ``inputs`` maps primary-input net -> packed values (bit *t* =
    pattern *t*).  ``output_observability`` maps output net -> packed
    mask of the patterns in which that output is compared against the
    reference signature.
    """

    num_patterns: int
    inputs: dict[int, int] = field(default_factory=dict)
    output_observability: dict[int, int] = field(default_factory=dict)

    @property
    def mask(self) -> int:
        return bitmask(self.num_patterns)


@dataclass
class FaultSimResult:
    """Outcome of fault-simulating one netlist against one pattern set."""

    module: str
    total_faults: int
    detected_faults: int
    num_patterns: int

    @property
    def coverage_percent(self) -> float:
        if self.total_faults == 0:
            return 0.0
        return 100.0 * self.detected_faults / self.total_faults

    def merge(self, other: "FaultSimResult") -> "FaultSimResult":
        """Combine results of two disjoint fault shards.

        Under the single-fault assumption each fault's detection is
        independent of every other fault in the list, so the counts of
        disjoint shards add exactly.  Both shards must have been graded
        against the same module and pattern set.
        """
        if other.module != self.module or other.num_patterns != self.num_patterns:
            raise FaultModelError(
                f"cannot merge {self.module}@{self.num_patterns} patterns "
                f"with {other.module}@{other.num_patterns} patterns"
            )
        return FaultSimResult(
            module=self.module,
            total_faults=self.total_faults + other.total_faults,
            detected_faults=self.detected_faults + other.detected_faults,
            num_patterns=self.num_patterns,
        )

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "total_faults": self.total_faults,
            "detected_faults": self.detected_faults,
            "num_patterns": self.num_patterns,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSimResult":
        return cls(
            module=data["module"],
            total_faults=data["total_faults"],
            detected_faults=data["detected_faults"],
            num_patterns=data["num_patterns"],
        )


def good_simulation(netlist: Netlist, patterns: PatternSet) -> list[int]:
    """Fault-free packed values of every net."""
    return netlist.evaluate(patterns.inputs, patterns.mask)


def _propagate(
    netlist: Netlist,
    good: list[int],
    site: int,
    faulty_site_value: int,
    mask: int,
    observability: dict[int, int],
) -> bool:
    """Propagate one fault's effect through its fanout cone.

    Returns True as soon as a difference reaches an observable output on
    an observable pattern.
    """
    from repro.faults.gates import eval_gate

    diff_at_site = (good[site] ^ faulty_site_value) & mask
    if not diff_at_site:
        return False
    faulty: dict[int, int] = {site: faulty_site_value}
    obs = observability.get(site)
    if obs is not None and diff_at_site & obs:
        return True
    heap = list(netlist.fanout.get(site, ()))
    heapq.heapify(heap)
    seen: set[int] = set(heap)
    gates = netlist.gates
    while heap:
        index = heapq.heappop(heap)
        gate = gates[index]
        a = faulty.get(gate.a, good[gate.a])
        b = faulty.get(gate.b, good[gate.b]) if gate.b >= 0 else 0
        out_value = eval_gate(gate.kind, a, b, mask)
        if out_value == good[gate.out]:
            continue
        faulty[gate.out] = out_value
        obs = observability.get(gate.out)
        if obs is not None and (out_value ^ good[gate.out]) & obs:
            return True
        for consumer in netlist.fanout.get(gate.out, ()):
            if consumer not in seen:
                seen.add(consumer)
                heapq.heappush(heap, consumer)
    return False


def fault_simulate(
    netlist: Netlist,
    patterns: PatternSet,
    faults: list[StuckAtFault] | list[tuple[StuckAtFault, int]] | None = None,
) -> FaultSimResult:
    """Simulate every fault against the pattern set.

    ``faults`` may be a plain fault list or a weighted
    (fault, class-size) list from :func:`collapse_with_weights`; in the
    weighted form the totals count the full uncollapsed population
    while only one representative per equivalence class is simulated.
    """
    if faults is None:
        faults = collapse_with_weights(netlist)
    weighted: list[tuple[StuckAtFault, int]] = [
        item if isinstance(item, tuple) else (item, 1) for item in faults
    ]
    for net in patterns.output_observability:
        if net >= netlist.num_nets:
            raise FaultModelError(f"observability on unknown net {net}")
    mask = patterns.mask
    good = good_simulation(netlist, patterns)
    detected = 0
    total = 0
    for fault, weight in weighted:
        total += weight
        faulty_value = 0 if fault.value == 0 else mask
        if _propagate(
            netlist, good, fault.net, faulty_value, mask,
            patterns.output_observability,
        ):
            detected += weight
    return FaultSimResult(
        module=netlist.name,
        total_faults=total,
        detected_faults=detected,
        num_patterns=patterns.num_patterns,
    )
