"""Parallel-pattern single-fault-propagation stuck-at simulator.

The substitute for the commercial fault simulator of Section IV-C: it
fault-grades the module activation patterns logged during a pipeline
run.  One good simulation packs every pattern into bigints; each fault
then re-evaluates only its downstream cone, and a fault is *detected*
when a faulty output bit differs from the good value on a pattern where
that output is observable (reaches the 32-bit test signature).

Two engines share this contract and produce bit-identical results:

* ``engine="compiled"`` (default) — the levelized array kernel of
  :mod:`repro.faults.compiled`: per-kind batched good simulation,
  cone-cached propagation, preallocated buffers.
* ``engine="interpreted"`` — the original per-gate reference path,
  kept selectable (and continuously differential-tested) both as the
  correctness oracle and for netlists that are still under
  construction, since compiling freezes the structure.

Both engines support **fault dropping** through a :class:`DropSet`:
a registry of detected ``stable_id``s shared across calls (pattern
blocks, scenarios) of one cumulative grading campaign.  A fault whose
id is already in the set is credited as detected without simulating —
the classic fault-dropping optimisation — and because drop decisions
are keyed by the same ``stable_id`` the deterministic sharder hashes,
a fault's drop state is confined to the one shard that owns it: serial
and sharded runs drop identically.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import FaultModelError
from repro.faults.compiled import compiled_for
from repro.faults.netlist import Netlist
from repro.faults.stuckat import StuckAtFault, collapse_with_weights
from repro.utils.bitops import mask as bitmask

#: Selectable fault-simulation engines.
ENGINES = ("compiled", "interpreted")


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise FaultModelError(
            f"unknown engine {engine!r} (choices: {', '.join(ENGINES)})"
        )


class DropSet:
    """Detected-fault registry for cross-call fault dropping.

    Pass one instance through consecutive :func:`fault_simulate` /
    :func:`~repro.faults.transition.transition_fault_simulate` calls of
    a cumulative campaign: every newly detected fault's ``stable_id``
    is recorded, and faults already present are *dropped* — credited as
    detected without re-simulating.  Within a single call over a
    duplicate-free fault list the set never changes the result (each id
    is seen once), so per-call results stay bit-identical with or
    without dropping; across calls it implements union semantics
    ("which faults has the campaign detected so far") at a fraction of
    the cost.

    Determinism rule: drop decisions are keyed by ``stable_id`` — the
    exact key :func:`repro.faults.parallel.stable_shard_index` hashes —
    so a fault's drop state lives entirely in the one shard that owns
    the fault, and any (workers, num_shards) geometry drops the same
    faults on the same calls as the serial path.
    """

    __slots__ = ("_ids",)

    def __init__(self, ids=()):
        self._ids: set[str] = set(ids)

    def __contains__(self, stable_id: str) -> bool:
        return stable_id in self._ids

    def __len__(self) -> int:
        return len(self._ids)

    def add(self, stable_id: str) -> None:
        self._ids.add(stable_id)

    def update(self, ids) -> None:
        self._ids.update(ids)

    @property
    def detected(self) -> frozenset:
        """The detected ``stable_id``s recorded so far."""
        return frozenset(self._ids)

    def sorted_ids(self) -> list[str]:
        """Deterministically ordered ids (for manifests and pickles)."""
        return sorted(self._ids)


@dataclass
class PatternSet:
    """Packed stimulus + observability for one fault-simulation run.

    ``inputs`` maps primary-input net -> packed values (bit *t* =
    pattern *t*).  ``output_observability`` maps output net -> packed
    mask of the patterns in which that output is compared against the
    reference signature.
    """

    num_patterns: int
    inputs: dict[int, int] = field(default_factory=dict)
    output_observability: dict[int, int] = field(default_factory=dict)

    @property
    def mask(self) -> int:
        return bitmask(self.num_patterns)


@dataclass
class FaultSimResult:
    """Outcome of fault-simulating one netlist against one pattern set."""

    module: str
    total_faults: int
    detected_faults: int
    num_patterns: int

    @property
    def coverage_percent(self) -> float:
        if self.total_faults == 0:
            return 0.0
        return 100.0 * self.detected_faults / self.total_faults

    def merge(self, other: "FaultSimResult") -> "FaultSimResult":
        """Combine results of two disjoint fault shards.

        Under the single-fault assumption each fault's detection is
        independent of every other fault in the list, so the counts of
        disjoint shards add exactly.  Both shards must have been graded
        against the same module and pattern set.
        """
        if other.module != self.module or other.num_patterns != self.num_patterns:
            raise FaultModelError(
                f"cannot merge {self.module}@{self.num_patterns} patterns "
                f"with {other.module}@{other.num_patterns} patterns"
            )
        return FaultSimResult(
            module=self.module,
            total_faults=self.total_faults + other.total_faults,
            detected_faults=self.detected_faults + other.detected_faults,
            num_patterns=self.num_patterns,
        )

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "total_faults": self.total_faults,
            "detected_faults": self.detected_faults,
            "num_patterns": self.num_patterns,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSimResult":
        return cls(
            module=data["module"],
            total_faults=data["total_faults"],
            detected_faults=data["detected_faults"],
            num_patterns=data["num_patterns"],
        )


def good_simulation(netlist: Netlist, patterns: PatternSet) -> list[int]:
    """Fault-free packed values of every net."""
    return netlist.evaluate(patterns.inputs, patterns.mask)


def _propagate(
    netlist: Netlist,
    good: list[int],
    site: int,
    faulty_site_value: int,
    mask: int,
    observability: dict[int, int],
) -> bool:
    """Propagate one fault's effect through its fanout cone.

    Returns True as soon as a difference reaches an observable output on
    an observable pattern.
    """
    from repro.faults.gates import eval_gate

    diff_at_site = (good[site] ^ faulty_site_value) & mask
    if not diff_at_site:
        return False
    faulty: dict[int, int] = {site: faulty_site_value}
    obs = observability.get(site)
    if obs is not None and diff_at_site & obs:
        return True
    heap = list(netlist.fanout.get(site, ()))
    heapq.heapify(heap)
    seen: set[int] = set(heap)
    gates = netlist.gates
    while heap:
        index = heapq.heappop(heap)
        gate = gates[index]
        a = faulty.get(gate.a, good[gate.a])
        b = faulty.get(gate.b, good[gate.b]) if gate.b >= 0 else 0
        out_value = eval_gate(gate.kind, a, b, mask)
        if out_value == good[gate.out]:
            continue
        faulty[gate.out] = out_value
        obs = observability.get(gate.out)
        if obs is not None and (out_value ^ good[gate.out]) & obs:
            return True
        for consumer in netlist.fanout.get(gate.out, ()):
            if consumer not in seen:
                seen.add(consumer)
                heapq.heappush(heap, consumer)
    return False


def fault_simulate(
    netlist: Netlist,
    patterns: PatternSet,
    faults: list[StuckAtFault] | list[tuple[StuckAtFault, int]] | None = None,
    *,
    engine: str = "compiled",
    dropped: DropSet | None = None,
) -> FaultSimResult:
    """Simulate every fault against the pattern set.

    ``faults`` may be a plain fault list or a weighted
    (fault, class-size) list from :func:`collapse_with_weights`; in the
    weighted form the totals count the full uncollapsed population
    while only one representative per equivalence class is simulated.

    ``engine`` selects the compiled array kernel (default) or the
    interpreted per-gate reference path — bit-identical results either
    way.  ``dropped``, when given, enables fault dropping: faults whose
    ``stable_id`` is already recorded are credited as detected without
    simulation, and new detections are added to the set.
    """
    _check_engine(engine)
    if faults is None:
        faults = collapse_with_weights(netlist)
    weighted: list[tuple[StuckAtFault, int]] = [
        item if isinstance(item, tuple) else (item, 1) for item in faults
    ]
    for net in patterns.output_observability:
        if net >= netlist.num_nets:
            raise FaultModelError(f"observability on unknown net {net}")
    mask = patterns.mask
    detected = 0
    total = 0
    if engine == "compiled":
        compiled = compiled_for(netlist)
        good = compiled.evaluate(patterns.inputs, mask)
        obs = compiled.observability_vector(patterns.output_observability)
        truncated = compiled.can_truncate(patterns.output_observability)
        propagate = compiled.propagator(good, mask, obs, truncated)
        for fault, weight in weighted:
            total += weight
            if dropped is not None and fault.stable_id in dropped:
                detected += weight
                continue
            faulty_value = 0 if fault.value == 0 else mask
            if propagate(fault.net, faulty_value):
                detected += weight
                if dropped is not None:
                    dropped.add(fault.stable_id)
    else:
        good = good_simulation(netlist, patterns)
        observability = patterns.output_observability
        for fault, weight in weighted:
            total += weight
            if dropped is not None and fault.stable_id in dropped:
                detected += weight
                continue
            faulty_value = 0 if fault.value == 0 else mask
            if _propagate(
                netlist, good, fault.net, faulty_value, mask, observability
            ):
                detected += weight
                if dropped is not None:
                    dropped.add(fault.stable_id)
    return FaultSimResult(
        module=netlist.name,
        total_faults=total,
        detected_faults=detected,
        num_patterns=patterns.num_patterns,
    )
