"""Deterministic chaos injection for the campaign orchestrator.

The orchestrator's contract (``repro.faults.orchestrator``) is proved
differentially: a campaign run under injected infrastructure failures
must merge to results bit-identical to a clean run whenever no shard
ends quarantined.  This module is the failure injector — a picklable
:class:`ChaosPolicy` that rides into worker processes inside the shard
spec and misbehaves *deterministically*:

* the decision to fail is a pure function of (shard index, attempt
  number) — no wall clock, no RNG — so a chaos run is reproducible;
* ``kill`` terminates the worker process abruptly (``os._exit``), the
  way an OOM kill or a segfaulting native extension would, breaking the
  whole :class:`~concurrent.futures.ProcessPoolExecutor`;
* ``hang`` sleeps through the shard deadline, exercising straggler
  detection and re-dispatch;
* ``transient`` raises :class:`ChaosError` — an infrastructure-style
  failure that is deliberately *not* a :class:`~repro.errors.ReproError`
  so it escapes the scenario-level supervision inside a shard and hits
  the orchestrator;
* a *poison* shard is any directive with ``failures=None``: it fails on
  every attempt and can only end quarantined.

File-corruption helpers (:func:`corrupt_file`) complete the harness:
truncated, garbage and valid-JSON-but-tampered checkpoint bytes are the
inputs the checksum layer in :mod:`repro.faults.campaign` must catch.

Everything here is inert unless a policy is explicitly passed in —
production campaigns never import a code path that can fire.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import FaultModelError

__all__ = [
    "ChaosError",
    "ChaosPolicy",
    "ShardChaos",
    "corrupt_file",
]

#: Distinctive exit status for chaos-killed workers (grep-able in CI logs).
KILL_EXIT_CODE = 113

CHAOS_KINDS = ("transient", "kill", "hang")


class ChaosError(RuntimeError):
    """An injected infrastructure failure.

    Subclasses :class:`RuntimeError`, *not* :class:`ReproError`: the
    scenario-level supervisor inside a shard contains ``ReproError``
    and would neutralise the injection before the orchestrator ever saw
    it.  A chaos failure models the layer below — a dying container, a
    corrupted interpreter — which no in-shard handler should catch.
    """


@dataclass(frozen=True)
class ShardChaos:
    """One shard's misbehaviour directive.

    ``failures`` is the number of leading attempts that fail; attempt
    numbers above it succeed, and ``None`` means *every* attempt fails
    (a poison shard).  ``after_items`` delays the failure until that
    many work items (campaign scenarios) have completed inside the
    attempt, so kills land mid-shard with partial checkpoint state on
    disk.  ``hang_seconds`` bounds a ``hang`` so an un-reaped worker
    cannot outlive the test session.
    """

    kind: str = "transient"
    failures: int | None = 1
    after_items: int = 0
    hang_seconds: float = 30.0

    def __post_init__(self):
        if self.kind not in CHAOS_KINDS:
            raise FaultModelError(
                f"unknown chaos kind {self.kind!r} (choices: {CHAOS_KINDS})"
            )
        if self.failures is not None and self.failures < 0:
            raise FaultModelError(
                f"chaos failures must be >= 0 or None, got {self.failures}"
            )

    @property
    def poison(self) -> bool:
        return self.failures is None

    def fires_on(self, attempt: int) -> bool:
        """Deterministic fail/pass decision for one attempt (1-based)."""
        return self.failures is None or attempt <= self.failures


@dataclass(frozen=True)
class ChaosPolicy:
    """Shard index -> directive.  Picklable; rides inside shard specs.

    ``fire``/``progress_hook`` are invoked *inside the worker process*
    by the shard entry points; the orchestrator itself never calls
    them, it only forwards the policy and the attempt number.  When the
    orchestrator has degraded to in-process serial execution it passes
    ``in_process=True`` and process-level misbehaviour (kill, hang) is
    downgraded to a raised :class:`ChaosError` — the failure is still
    counted and retried, but a chaos test can never kill or stall the
    host process itself.
    """

    shards: dict[int, ShardChaos] = field(default_factory=dict)

    def directive_for(self, shard_index: int) -> ShardChaos | None:
        return self.shards.get(shard_index)

    def fire(
        self, shard_index: int, attempt: int, *, in_process: bool = False
    ) -> None:
        """Misbehave at shard entry if the directive says so.

        A directive with ``after_items > 0`` does not fire here — it
        fires through :meth:`progress_hook` once enough items finished.
        """
        directive = self.directive_for(shard_index)
        if directive is None or directive.after_items > 0:
            return
        if directive.fires_on(attempt):
            self._misbehave(directive, shard_index, attempt, in_process)

    def progress_hook(
        self, shard_index: int, attempt: int, *, in_process: bool = False
    ):
        """Per-item callback that fires mid-shard chaos, or None.

        The campaign shard worker threads this through
        ``on_scenario`` so a kill lands *after* some scenarios are
        durably checkpointed — the resume-without-double-count case.
        """
        directive = self.directive_for(shard_index)
        if (
            directive is None
            or directive.after_items <= 0
            or not directive.fires_on(attempt)
        ):
            return None
        completed = {"count": 0}

        def hook(_outcome) -> None:
            completed["count"] += 1
            if completed["count"] >= directive.after_items:
                self._misbehave(directive, shard_index, attempt, in_process)

        return hook

    def _misbehave(
        self,
        directive: ShardChaos,
        shard_index: int,
        attempt: int,
        in_process: bool,
    ) -> None:
        tag = (
            f"chaos[{directive.kind}] shard {shard_index} attempt {attempt}"
        )
        if directive.kind == "kill" and not in_process:
            # Bypass every finally/atexit, exactly like SIGKILL/OOM.
            os._exit(KILL_EXIT_CODE)
        if directive.kind == "hang" and not in_process:
            # A bounded stall: long enough to blow any sane shard
            # deadline, short enough that an un-reaped worker drains
            # from the host eventually.  If nobody enforces a deadline
            # the shard then completes normally (a pure straggler).
            time.sleep(directive.hang_seconds)
            return
        # transient — and the in-process downgrade of kill/hang.
        raise ChaosError(tag)


def corrupt_file(path: str | Path, mode: str = "truncate") -> None:
    """Corrupt a checkpoint/manifest file in place (test harness).

    ``truncate`` chops the file mid-byte-stream (a crash during a
    non-atomic write), ``garbage`` replaces it with non-JSON bytes, and
    ``tamper`` performs the nastiest variant: a digit substitution that
    keeps the file perfectly valid JSON — undetectable without the
    embedded content digest.
    """
    path = Path(path)
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[: max(1, len(data) // 2)])
    elif mode == "garbage":
        path.write_bytes(b"\x00\xffnot json {" + data[:7])
    elif mode == "tamper":
        swapped = data.replace(b"7", b"8", 1)
        if swapped == data:
            swapped = data.replace(b"0", b"9", 1)
        if swapped == data:  # pragma: no cover - digit-free JSON
            raise FaultModelError(f"nothing to tamper with in {path}")
        path.write_bytes(swapped)
    else:
        raise FaultModelError(
            f"unknown corruption mode {mode!r} "
            "(choices: truncate, garbage, tamper)"
        )
