"""Random-pattern ATPG: the achievable coverage ceiling of a netlist.

Section IV-C closes with "improvements of the already existing algorithm
for the forwarding logic would have been outside the scope of this
work" — i.e. the ~80 % cached coverage is a property of the *algorithm*,
not of the methodology.  This module quantifies that: it drives a
netlist with unconstrained random patterns (full observability) until
coverage saturates, yielding the ceiling an ideal software algorithm
could approach.  The gap between a routine's cache-based coverage and
this ceiling is the algorithm's headroom; the gap between the ceiling
and 100 % is structurally untestable logic (unobserved blocks, constant
inputs).

This is plain random-pattern ATPG with fault dropping — no structural
backtracking — which is entirely adequate for the shallow mux/compare
netlists modelled here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.netlist import Netlist
from repro.faults.ppsfp import PatternSet, _propagate, good_simulation
from repro.faults.stuckat import StuckAtFault, collapse_with_weights
from repro.utils.bitops import mask as bitmask
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class AtpgResult:
    """Outcome of a random-pattern ATPG run on one netlist."""

    module: str
    total_faults: int
    detected_faults: int
    patterns_applied: int
    rounds: int

    @property
    def ceiling_percent(self) -> float:
        if self.total_faults == 0:
            return 0.0
        return 100.0 * self.detected_faults / self.total_faults


def random_pattern_atpg(
    netlist: Netlist,
    seed: int = 0xA1B2,
    patterns_per_round: int = 256,
    max_rounds: int = 24,
    dry_rounds: int = 3,
    constrain=None,
) -> AtpgResult:
    """Estimate the netlist's random-pattern coverage ceiling.

    Applies rounds of random patterns with every output fully observable
    and drops detected faults; stops after ``dry_rounds`` consecutive
    rounds detect nothing new (or ``max_rounds``).

    ``constrain(inputs, rng, num_patterns)`` may rewrite the random
    input dict to keep patterns *functionally reachable* — e.g. the
    forwarding mux's select lines are one-hot over the steerable
    sources in any real execution, so an honest ceiling must not let
    random multi-hot selects light up the structurally dead columns.
    """
    rng = DeterministicRng(seed)
    weighted = collapse_with_weights(netlist)
    remaining: list[tuple[StuckAtFault, int]] = list(weighted)
    total = sum(weight for _, weight in weighted)
    detected = 0
    applied = 0
    dry = 0
    rounds = 0
    mask = bitmask(patterns_per_round)
    while remaining and rounds < max_rounds and dry < dry_rounds:
        rounds += 1
        applied += patterns_per_round
        inputs = {
            net: _random_bits(rng, patterns_per_round)
            for net in netlist.input_nets
        }
        if constrain is not None:
            inputs = constrain(inputs, rng, patterns_per_round)
        patterns = PatternSet(
            num_patterns=patterns_per_round,
            inputs=inputs,
            output_observability={net: mask for net in netlist.output_nets},
        )
        good = good_simulation(netlist, patterns)
        survivors = []
        newly = 0
        for fault, weight in remaining:
            faulty_value = 0 if fault.value == 0 else mask
            if _propagate(
                netlist, good, fault.net, faulty_value, mask,
                patterns.output_observability,
            ):
                detected += weight
                newly += weight
            else:
                survivors.append((fault, weight))
        remaining = survivors
        dry = dry + 1 if newly == 0 else 0
    return AtpgResult(
        module=netlist.name,
        total_faults=total,
        detected_faults=detected,
        patterns_applied=applied,
        rounds=rounds,
    )


def _random_bits(rng: DeterministicRng, count: int) -> int:
    value = 0
    produced = 0
    while produced < count:
        value |= rng.next_u64() << produced
        produced += 64
    return value & bitmask(count)


def forwarding_select_constraint(netlist: Netlist):
    """Functional constraint for a forwarding-mux port: the select is
    one-hot over the five steerable sources and the extra (bypass)
    columns are never selected."""
    sel_nets = netlist.inputs["sel"]
    dead_nets = netlist.inputs.get("sel_x", [])

    def constrain(inputs: dict[int, int], rng: DeterministicRng, count: int):
        packed = [0] * len(sel_nets)
        for t in range(count):
            packed[rng.randint(0, len(sel_nets) - 1)] |= 1 << t
        for net, value in zip(sel_nets, packed):
            inputs[net] = value
        for net in dead_nets:
            inputs[net] = 0
        return inputs

    return constrain


def forwarding_ceiling(model, port=(0, 0), **kwargs) -> AtpgResult:
    """Functionally-constrained random-pattern ceiling of one
    forwarding-mux port."""
    from repro.faults.generators import get_modules

    modules = get_modules(model)
    netlist = modules.forwarding[port]
    kwargs.setdefault("constrain", forwarding_select_constraint(netlist))
    return random_pattern_atpg(netlist, **kwargs)
