"""Sharded, multi-process fault simulation with deterministic merging.

The serial graders in :mod:`repro.faults.ppsfp` /
:mod:`repro.faults.transition` simulate one fault at a time against a
fixed pattern set, and :func:`repro.faults.campaign.run_checkpointed_campaign`
runs one scenario at a time — both embarrassingly parallel, and both on
the critical path of every Table II/III reproduction.  This module
fans the work out over a process pool without changing a single
reported number:

* **Deterministic sharding.**  Faults are assigned to shards by a
  *stable* hash of their identity (:func:`stable_shard_index`, CRC-32 of
  ``str(fault)`` — never Python's salted ``hash``), scenarios by the
  same hash of their label.  The shard layout depends only on the work
  items and the shard count, never on the worker count, host, or
  process — so any pool geometry reproduces the same partition.
* **Explicit per-shard seeds.**  :func:`shard_seed` derives a stable
  64-bit seed per (base seed, shard index) for any stochastic component
  a shard may host (randomised property tests, sampled campaigns); the
  built-in fault models are deterministic and ignore it.
* **Order-independent merging.**  Shard results are combined with an
  associativity-checked reducer (:func:`reduce_results`): detection of
  each fault is independent under single-fault assumption, so per-shard
  ``detected``/``total`` counts add exactly, and the reducer verifies
  that a left fold and a balanced tree fold agree before trusting the
  sum.  ``workers=1`` bypasses the pool entirely and is the exact
  serial code path.

The campaign variant writes one :class:`~repro.faults.campaign.CampaignCheckpoint`
per shard plus a manifest pinning the shard layout, so a killed
campaign resumes by re-scheduling only incomplete shards — with any
worker count, not just the one it started with.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path

from repro.errors import CheckpointError, FaultModelError
from repro.faults.campaign import (
    CHECKPOINT_VERSION,
    CampaignCheckpoint,
    ScenarioOutcome,
    content_digest,
    merge_outcome_maps,
    quarantine_corrupt_file,
    run_checkpointed_campaign,
    verify_payload,
)
from repro.faults.netlist import Netlist
from repro.faults.ppsfp import DropSet, FaultSimResult, PatternSet, fault_simulate
from repro.faults.transition import transition_fault_simulate

__all__ = [
    "CampaignShardPlan",
    "ParallelCampaignResult",
    "ShardTiming",
    "check_partition",
    "parallel_fault_simulate",
    "parallel_transition_fault_simulate",
    "plan_campaign_shards",
    "reduce_results",
    "resolve_workers",
    "run_parallel_checkpointed_campaign",
    "shard_faults",
    "shard_seed",
    "stable_shard_index",
]

MANIFEST_NAME = "manifest.json"


def resolve_workers(requested: int | None) -> int:
    """Clamp a worker count to the host's CPUs (None = all of them).

    A process pool wider than ``os.cpu_count()`` cannot run faster —
    the extra processes only time-slice the same cores and add fork,
    pickle and scheduler overhead, which is how a 2-worker run on a
    single-CPU container ends up *slower* than serial.  The CLI and the
    benchmarks resolve their worker counts through this helper so
    oversubscription never happens by default; callers that really want
    it can still pass an explicit ``workers`` to the engine functions,
    which do not clamp.
    """
    cpus = max(1, os.cpu_count() or 1)
    if requested is None:
        return cpus
    if requested < 1:
        raise FaultModelError(f"workers must be >= 1, got {requested}")
    return min(requested, cpus)


# ----------------------------------------------------------------------
# Deterministic sharding primitives.
# ----------------------------------------------------------------------

def fault_identity(item) -> str:
    """Stable identity string of a fault-list item.

    Accepts both plain faults and the weighted ``(fault, class_size)``
    pairs of :func:`repro.faults.stuckat.collapse_with_weights`; the
    weight is not part of the identity (it rides along with its
    representative).
    """
    fault = item[0] if isinstance(item, tuple) else item
    return str(fault)


def stable_shard_index(identity: str, num_shards: int) -> int:
    """Shard assignment by CRC-32 of the identity string.

    Deliberately *not* Python's ``hash``: that one is salted per
    process (PYTHONHASHSEED), which would scatter faults differently in
    every worker and make serial-vs-parallel equivalence meaningless.
    """
    if num_shards < 1:
        raise FaultModelError(f"num_shards must be >= 1, got {num_shards}")
    return zlib.crc32(identity.encode("utf-8")) % num_shards


def shard_seed(base_seed: int, shard_index: int) -> int:
    """Explicit per-shard RNG seed (stable 64-bit blake2b derivation)."""
    digest = blake2b(
        f"{base_seed}:{shard_index}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def shard_faults(faults: list, num_shards: int) -> list[list]:
    """Partition a fault list into ``num_shards`` deterministic shards.

    Every fault lands in exactly one shard (stable hash of its
    identity) and keeps its original relative order inside the shard.
    Shards may be empty — a 3-fault list sharded 16 ways is legal and
    merges to the same totals.
    """
    shards: list[list] = [[] for _ in range(num_shards)]
    for item in faults:
        shards[stable_shard_index(fault_identity(item), num_shards)].append(item)
    return shards


def check_partition(faults: list, shards: list[list]) -> None:
    """Verify a shard set is a true partition of the fault list.

    Completeness (every fault present) and disjointness (no fault in
    two shards) are checked as identity multisets; a violation raises
    :class:`~repro.errors.FaultModelError` rather than silently
    over- or under-counting coverage.
    """
    want: dict[str, int] = {}
    for item in faults:
        key = fault_identity(item)
        want[key] = want.get(key, 0) + 1
    got: dict[str, int] = {}
    for shard in shards:
        for item in shard:
            key = fault_identity(item)
            got[key] = got.get(key, 0) + 1
    if want != got:
        missing = {k for k in want if want[k] > got.get(k, 0)}
        extra = {k for k in got if got[k] > want.get(k, 0)}
        raise FaultModelError(
            f"shard set is not a partition: missing={sorted(missing)[:5]} "
            f"duplicated_or_foreign={sorted(extra)[:5]}"
        )


# ----------------------------------------------------------------------
# Order-independent, associativity-checked result reduction.
# ----------------------------------------------------------------------

def reduce_results(results: list[FaultSimResult]) -> FaultSimResult:
    """Merge per-shard results into one, checking associativity.

    The merge itself is integer addition over ``total``/``detected``
    (commutative and associative by construction); the check folds the
    list both left-to-right and as a balanced tree and insists the two
    agree, so a future non-associative "merge" cannot slip in silently.
    """
    if not results:
        raise FaultModelError("reduce_results of an empty shard list")
    left = results[0]
    for result in results[1:]:
        left = left.merge(result)
    tree = _tree_reduce(results)
    if (left.total_faults, left.detected_faults) != (
        tree.total_faults,
        tree.detected_faults,
    ):
        raise FaultModelError(
            f"merge is not associative: fold={left} tree={tree}"
        )
    return left


def _tree_reduce(results: list[FaultSimResult]) -> FaultSimResult:
    level = list(results)
    while len(level) > 1:
        nxt = [
            level[i].merge(level[i + 1])
            for i in range(0, len(level) - 1, 2)
        ]
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


# ----------------------------------------------------------------------
# Parallel fault simulation (stuck-at / PPSFP and transition models).
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ShardTiming:
    """Wall-clock and volume of one completed shard."""

    index: int
    items: int
    seconds: float

    @property
    def throughput(self) -> float:
        """Work items per second (0.0 for an instantaneous shard)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.items / self.seconds


def _simulate_shard(
    kind: str,
    netlist: Netlist,
    patterns: PatternSet,
    shard: list,
    engine: str = "compiled",
    dropped_ids: list[str] | None = None,
    chaos=None,
    shard_index: int = 0,
    attempt: int = 1,
    in_process: bool = False,
):
    """Process-pool entry point: grade one fault shard serially.

    ``dropped_ids`` carries the caller's :class:`DropSet` content into
    the worker; the returned third element lists the shard's *new*
    detections (sorted) so the parent can merge them back.  Because
    faults are sharded by the same ``stable_id`` the drop set is keyed
    on, a fault's drop state never crosses shards — any geometry drops
    exactly like the serial path.

    ``chaos``/``shard_index``/``attempt`` belong to the supervised
    orchestrator: the :class:`~repro.faults.chaos.ChaosPolicy` fires a
    deterministic injected failure at shard entry when its directive
    matches this (shard, attempt) pair, and ``in_process`` downgrades
    process-level misbehaviour when the orchestrator has degraded to
    serial execution.
    """
    if chaos is not None:
        chaos.fire(shard_index, attempt, in_process=in_process)
    start = time.perf_counter()
    dropped = DropSet(dropped_ids) if dropped_ids is not None else None
    if kind == "stuckat":
        result = fault_simulate(
            netlist, patterns, shard, engine=engine, dropped=dropped
        )
    elif kind == "transition":
        result = transition_fault_simulate(
            netlist, patterns, shard, engine=engine, dropped=dropped
        )
    else:  # pragma: no cover - guarded by the public wrappers
        raise FaultModelError(f"unknown fault model kind {kind!r}")
    new_ids = (
        sorted(dropped.detected.difference(dropped_ids))
        if dropped is not None
        else []
    )
    return result.to_dict(), time.perf_counter() - start, new_ids


def _parallel_simulate(
    kind: str,
    serial,
    netlist: Netlist,
    patterns: PatternSet,
    faults: list,
    workers: int,
    num_shards: int | None,
    metrics=None,
    engine: str = "compiled",
    dropped: DropSet | None = None,
) -> FaultSimResult:
    if workers < 1:
        raise FaultModelError(f"workers must be >= 1, got {workers}")
    if workers == 1 and num_shards is None:
        # The exact serial path: same function, same iteration order.
        return serial(netlist, patterns, faults, engine=engine, dropped=dropped)
    shards = shard_faults(faults, num_shards or workers)
    check_partition(faults, shards)
    dropped_ids = dropped.sorted_ids() if dropped is not None else None
    timings: list[ShardTiming] = []
    if workers == 1:
        raw = [
            _simulate_shard(kind, netlist, patterns, shard, engine, dropped_ids)
            for shard in shards
        ]
    else:
        pool = ProcessPoolExecutor(
            max_workers=min(workers, len(shards)), mp_context=_pool_context()
        )
        try:
            futures = [
                pool.submit(
                    _simulate_shard, kind, netlist, patterns, shard,
                    engine, dropped_ids,
                )
                for shard in shards
            ]
            raw = [future.result() for future in futures]
        except BaseException:
            # A failing shard must not leave the rest of the pool
            # grinding through compiled-netlist shards nobody will
            # read: drop queued work and return without waiting for
            # in-flight shards (their processes exit once the queue is
            # drained).
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)
    results = []
    for index, (result_dict, seconds, new_ids) in enumerate(raw):
        results.append(FaultSimResult.from_dict(result_dict))
        if dropped is not None:
            dropped.update(new_ids)
        timings.append(
            ShardTiming(index=index, items=len(shards[index]), seconds=seconds)
        )
    _record_shard_metrics(metrics, f"faultsim.{kind}", timings)
    merged = reduce_results(results)
    # Empty shards contribute (0, 0); totals must match the serial sum.
    return merged


def parallel_fault_simulate(
    netlist: Netlist,
    patterns: PatternSet,
    faults=None,
    *,
    workers: int = 1,
    num_shards: int | None = None,
    metrics=None,
    engine: str = "compiled",
    dropped: DropSet | None = None,
) -> FaultSimResult:
    """Sharded :func:`repro.faults.ppsfp.fault_simulate`.

    Accepts plain or weighted fault lists exactly like the serial
    engine.  ``workers=1`` with the default shard count IS the serial
    engine; any other geometry shards the list deterministically, fans
    shards over a process pool and merges with
    :func:`reduce_results` — the totals are bit-identical either way.
    ``metrics`` (a :class:`repro.telemetry.MetricsCollector`) receives
    per-shard timing/throughput host counters when given.  ``engine``
    and ``dropped`` pass through to the serial grader in every shard;
    new drop-set detections are merged back after the pool completes.
    """
    from repro.faults.stuckat import collapse_with_weights

    if faults is None:
        faults = collapse_with_weights(netlist)
    return _parallel_simulate(
        "stuckat", fault_simulate, netlist, patterns, list(faults),
        workers, num_shards, metrics, engine, dropped,
    )


def parallel_transition_fault_simulate(
    netlist: Netlist,
    patterns: PatternSet,
    faults=None,
    *,
    workers: int = 1,
    num_shards: int | None = None,
    metrics=None,
    engine: str = "compiled",
    dropped: DropSet | None = None,
) -> FaultSimResult:
    """Sharded :func:`repro.faults.transition.transition_fault_simulate`.

    The pattern set must be *ordered* (see the serial engine); sharding
    happens over faults, never over patterns, so launch/capture
    adjacency is preserved inside every shard.
    """
    from repro.faults.transition import enumerate_transition_faults

    if faults is None:
        faults = enumerate_transition_faults(netlist)
    return _parallel_simulate(
        "transition", transition_fault_simulate, netlist, patterns,
        list(faults), workers, num_shards, metrics, engine, dropped,
    )


def _pool_context():
    """Prefer fork (cheap, inherits loaded modules) where available."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        return multiprocessing.get_context()


def _record_shard_metrics(metrics, prefix: str, timings: list[ShardTiming]) -> None:
    if metrics is None:
        return
    for timing in timings:
        metrics.record_host(f"{prefix}.shard{timing.index}.items", timing.items)
        metrics.record_host(
            f"{prefix}.shard{timing.index}.us", int(timing.seconds * 1e6)
        )
    metrics.record_host(f"{prefix}.shards", len(timings))
    metrics.record_host(f"{prefix}.items", sum(t.items for t in timings))
    metrics.record_host(
        f"{prefix}.us", int(sum(t.seconds for t in timings) * 1e6)
    )


# ----------------------------------------------------------------------
# Parallel checkpointed coverage campaigns.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignShardPlan:
    """The pinned shard layout of one parallel campaign."""

    num_shards: int
    modules: tuple[str, ...]
    #: shard index -> scenario labels, in campaign order.
    labels: tuple[tuple[str, ...], ...]

    def checkpoint_name(self, index: int) -> str:
        return f"shard_{index:03d}.json"

    def to_dict(self) -> dict:
        return {
            "version": CHECKPOINT_VERSION,
            "modules": list(self.modules),
            "num_shards": self.num_shards,
            "labels": [list(shard) for shard in self.labels],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignShardPlan":
        return cls(
            num_shards=data["num_shards"],
            modules=tuple(data["modules"]),
            labels=tuple(tuple(shard) for shard in data["labels"]),
        )


def plan_campaign_shards(
    scenarios, modules: tuple[str, ...], num_shards: int
) -> CampaignShardPlan:
    """Assign scenarios to shards by stable hash of their labels."""
    if num_shards < 1:
        raise CheckpointError(f"num_shards must be >= 1, got {num_shards}")
    labels: list[list[str]] = [[] for _ in range(num_shards)]
    for scenario in scenarios:
        labels[stable_shard_index(scenario.label, num_shards)].append(
            scenario.label
        )
    return CampaignShardPlan(
        num_shards=num_shards,
        modules=tuple(modules),
        labels=tuple(tuple(shard) for shard in labels),
    )


@dataclass
class ParallelCampaignResult:
    """Merged outcomes plus the run's shard-level accounting."""

    outcomes: dict[str, ScenarioOutcome]
    shard_timings: list[ShardTiming] = field(default_factory=list)
    num_shards: int = 1
    workers: int = 1
    #: Shard indices actually executed this run (resume skips the rest).
    scheduled: tuple[int, ...] = ()

    def coverage_dicts(self) -> dict[str, list[dict]]:
        """Scenario label -> coverage dict list (comparison helper)."""
        return {
            label: outcome.coverages
            for label, outcome in sorted(self.outcomes.items())
        }


def _campaign_shard_worker(spec: dict):
    """Process-pool entry point: run one scenario shard to completion.

    Rebuilds the program builders from the picklable provider, then
    delegates to the serial supervised campaign with the shard's own
    checkpoint file — the same code path, the same checkpoint format,
    just a smaller scenario list.
    """
    start = time.perf_counter()
    chaos = spec.get("chaos")
    attempt = spec.get("attempt", 1)
    in_process = spec.get("in_process", False)
    on_scenario = None
    if chaos is not None:
        chaos.fire(spec["index"], attempt, in_process=in_process)
        on_scenario = chaos.progress_hook(
            spec["index"], attempt, in_process=in_process
        )
    builders = spec["provider"]()
    outcomes = run_checkpointed_campaign(
        builders,
        spec["scenarios"],
        spec["models"],
        spec["checkpoint_path"],
        modules=spec["modules"],
        max_cycles=spec["max_cycles"],
        retries=spec["retries"],
        audit=spec["audit"],
        on_scenario=on_scenario,
        engine=spec.get("engine", "compiled"),
    )
    return (
        spec["index"],
        {label: outcome.to_dict() for label, outcome in outcomes.items()},
        time.perf_counter() - start,
    )


def _load_manifest(path: Path) -> CampaignShardPlan | None:
    """Load + verify the shard-layout manifest.

    Corruption (unreadable bytes, bad JSON, digest mismatch) quarantines
    the file to a ``.corrupt`` sidecar with a warning and returns None —
    the campaign re-plans, and because :func:`plan_campaign_shards` is a
    pure function of (scenarios, num_shards) a re-planned layout with
    the same shard count re-adopts every existing shard checkpoint.
    Version mismatches still raise: that is an incompatibility, not rot.
    """
    if not path.exists():
        return None
    try:
        data = json.loads(path.read_text())
    # ValueError covers JSONDecodeError and the UnicodeDecodeError that
    # non-UTF-8 garbage raises before the parser even runs.
    except (OSError, ValueError) as exc:
        quarantine_corrupt_file(path, f"unreadable: {exc}")
        return None
    reason = verify_payload(path, data)
    if reason is not None:
        quarantine_corrupt_file(path, reason)
        return None
    if data.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"campaign manifest {path} has version {data.get('version')!r}, "
            f"expected {CHECKPOINT_VERSION}"
        )
    return CampaignShardPlan.from_dict(data)


def _save_manifest(path: Path, plan: CampaignShardPlan) -> None:
    data = plan.to_dict()
    data["digest"] = content_digest(data)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    tmp.write_text(json.dumps(data, indent=2) + "\n")
    os.replace(tmp, path)


def _prepare_campaign(
    scenarios,
    modules: tuple[str, ...],
    checkpoint_dir: str | Path,
    workers: int,
    num_shards: int | None,
):
    """Validate, pin/load the manifest, and scan shard checkpoints.

    Shared between the plain parallel campaign and the supervised
    orchestrator so both resume from exactly the same on-disk state.
    Returns ``(directory, plan, labels, shard_scenarios, completed,
    scheduled)`` where ``completed`` maps already-finished shard indices
    to their outcome maps and ``scheduled`` lists the shard indices
    still owing work.
    """
    scenarios = tuple(scenarios)
    labels = [scenario.label for scenario in scenarios]
    if len(set(labels)) != len(labels):
        raise CheckpointError("duplicate scenario labels in campaign")
    if workers < 1:
        raise CheckpointError(f"workers must be >= 1, got {workers}")
    directory = Path(checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    manifest_path = directory / MANIFEST_NAME
    plan = _load_manifest(manifest_path)
    if plan is None:
        plan = plan_campaign_shards(
            scenarios, modules,
            num_shards or max(1, min(len(scenarios), 4 * workers)),
        )
        _save_manifest(manifest_path, plan)
    else:
        if plan.modules != tuple(modules):
            raise CheckpointError(
                f"campaign at {directory} grades modules {list(plan.modules)}, "
                f"this run grades {list(modules)}; refusing to mix them"
            )
        if num_shards is not None and num_shards != plan.num_shards:
            raise CheckpointError(
                f"campaign at {directory} is sharded {plan.num_shards} ways; "
                f"cannot resume with num_shards={num_shards}"
            )
        manifest_labels = sorted(
            label for shard in plan.labels for label in shard
        )
        if manifest_labels != sorted(labels):
            raise CheckpointError(
                f"campaign at {directory} covers a different scenario set; "
                "refusing to resume"
            )
    by_label = {scenario.label: scenario for scenario in scenarios}
    shard_scenarios = [
        tuple(by_label[label] for label in shard_labels)
        for shard_labels in plan.labels
    ]

    # Resume: a shard is complete when its checkpoint holds every label.
    completed: dict[int, dict[str, ScenarioOutcome]] = {}
    scheduled: list[int] = []
    for index, shard_labels in enumerate(plan.labels):
        path = directory / plan.checkpoint_name(index)
        existing = (
            CampaignCheckpoint(path, tuple(modules)).outcomes
            if path.exists()
            else {}
        )
        if shard_labels and all(label in existing for label in shard_labels):
            completed[index] = {
                label: existing[label] for label in shard_labels
            }
        elif shard_labels:
            scheduled.append(index)
        else:
            completed[index] = {}
    return directory, plan, labels, shard_scenarios, completed, scheduled


def _shard_spec(
    index: int,
    directory: Path,
    plan: CampaignShardPlan,
    builders_provider,
    shard_scenarios,
    models,
    modules: tuple[str, ...],
    max_cycles: int,
    retries: int,
    audit: bool,
    engine: str,
) -> dict:
    """The picklable work order for one campaign shard."""
    return {
        "index": index,
        "provider": builders_provider,
        "scenarios": shard_scenarios[index],
        "models": models,
        "checkpoint_path": str(directory / plan.checkpoint_name(index)),
        "modules": tuple(modules),
        "max_cycles": max_cycles,
        "retries": retries,
        "audit": audit,
        "engine": engine,
    }


def _merge_campaign_outcomes(
    labels, completed, *, missing_ok=()
) -> dict[str, ScenarioOutcome]:
    """Merge per-shard outcome maps into caller scenario order.

    ``missing_ok`` names labels allowed to be absent (the quarantined
    shards of a partial supervised campaign); any other gap is a bug
    and raises.
    """
    merged = merge_outcome_maps(completed.values())
    allowed = set(missing_ok)
    missing = [
        label for label in labels
        if label not in merged and label not in allowed
    ]
    if missing:
        raise CheckpointError(
            f"campaign finished with unaccounted scenarios {missing[:5]}"
        )
    return {label: merged[label] for label in labels if label in merged}


def run_parallel_checkpointed_campaign(
    builders_provider,
    scenarios,
    models,
    checkpoint_dir: str | Path,
    modules: tuple[str, ...] = ("FWD",),
    *,
    workers: int = 1,
    num_shards: int | None = None,
    max_cycles: int = 4_000_000,
    retries: int = 1,
    audit: bool = False,
    metrics=None,
    on_shard=None,
    engine: str = "compiled",
    policy=None,
    chaos=None,
    telemetry=None,
) -> ParallelCampaignResult:
    """Sharded, multi-process :func:`run_checkpointed_campaign`.

    ``builders_provider`` is a zero-argument *picklable* callable (a
    module-level function or :func:`functools.partial` of one) returning
    the core-id -> program-builder dict; it is invoked inside each
    worker so closures never cross the process boundary.  Scenarios are
    partitioned into ``num_shards`` deterministic shards (stable hash
    of the scenario label; default ``min(len(scenarios), 4 * workers)``)
    and each shard runs the ordinary serial supervised campaign against
    its own checkpoint file under ``checkpoint_dir``.

    The shard layout is pinned in ``manifest.json`` on first run;
    resuming re-validates the manifest (modules, scenario set), loads
    every shard checkpoint, and re-schedules **only incomplete
    shards** — with any worker count, which is why a campaign started
    with N workers can be finished with M.  Scenario outcomes are
    deterministic per scenario (fresh SoC, no cross-scenario state), so
    the merged result is bit-identical for every (workers, num_shards)
    geometry, including the exact-serial ``workers=1`` path.

    ``on_shard(index, outcomes)`` fires in the parent as each shard
    completes (kill-injection hook); ``metrics`` receives per-shard
    timing/throughput host counters.  ``engine`` selects the
    fault-simulation kernel inside every worker (compiled by default;
    results are bit-identical across engines, so resuming a campaign
    with a different engine than it started with is legal).

    ``policy`` (a :class:`repro.faults.orchestrator.RetryPolicy`)
    switches the run onto the supervised orchestrator: shard failures
    are retried with deterministic backoff, a broken pool is rebuilt,
    stragglers are re-dispatched, and persistent failures quarantine the
    shard instead of aborting — the result is then a
    :class:`~repro.faults.orchestrator.PartialCampaignResult` (a
    ``ParallelCampaignResult`` subtype).  ``chaos`` and ``telemetry``
    ride along to the orchestrator (failure injection for tests, event
    sink for ``shard.retry``/``pool.rebuild``/... events).
    """
    if policy is not None:
        # The supervised path owns the whole run, including the pool.
        from repro.faults.orchestrator import run_supervised_campaign

        return run_supervised_campaign(
            builders_provider,
            scenarios,
            models,
            checkpoint_dir,
            modules=modules,
            workers=workers,
            num_shards=num_shards,
            max_cycles=max_cycles,
            retries=retries,
            audit=audit,
            metrics=metrics,
            on_shard=on_shard,
            engine=engine,
            policy=policy,
            chaos=chaos,
            telemetry=telemetry,
        )
    if chaos is not None or telemetry is not None:
        raise CheckpointError(
            "chaos/telemetry require a RetryPolicy (the supervised path); "
            "the plain parallel campaign has no failure handling to observe"
        )
    scenarios = tuple(scenarios)
    directory, plan, labels, shard_scenarios, completed, scheduled = (
        _prepare_campaign(scenarios, modules, checkpoint_dir, workers, num_shards)
    )
    specs = [
        _shard_spec(
            index, directory, plan, builders_provider, shard_scenarios,
            models, modules, max_cycles, retries, audit, engine,
        )
        for index in scheduled
    ]
    timings: list[ShardTiming] = []
    if workers == 1:
        for spec in specs:
            index, outcomes, seconds = _campaign_shard_worker(spec)
            completed[index] = {
                label: ScenarioOutcome.from_dict(data)
                for label, data in outcomes.items()
            }
            timings.append(
                ShardTiming(
                    index=index, items=len(spec["scenarios"]), seconds=seconds
                )
            )
            if on_shard is not None:
                on_shard(index, completed[index])
    elif specs:
        pool = ProcessPoolExecutor(
            max_workers=min(workers, len(specs)), mp_context=_pool_context()
        )
        try:
            futures = {
                pool.submit(_campaign_shard_worker, spec): spec for spec in specs
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_EXCEPTION)
                for future in done:
                    index, outcomes, seconds = future.result()
                    completed[index] = {
                        label: ScenarioOutcome.from_dict(data)
                        for label, data in outcomes.items()
                    }
                    timings.append(
                        ShardTiming(
                            index=index,
                            items=len(futures[future]["scenarios"]),
                            seconds=seconds,
                        )
                    )
                    if on_shard is not None:
                        on_shard(index, completed[index])
        except BaseException:
            # Unwind without waiting: queued shards are cancelled and
            # the pool is released immediately so a failing campaign
            # does not keep workers (and their compiled netlists) alive
            # behind the raised error.
            pool.shutdown(wait=False, cancel_futures=True)
            raise
        else:
            pool.shutdown(wait=True)
    timings.sort(key=lambda t: t.index)
    _record_shard_metrics(metrics, "faultsim.campaign", timings)
    if metrics is not None:
        metrics.record_host("faultsim.campaign.scenarios", len(scenarios))
        metrics.record_host("faultsim.campaign.workers", workers)
    # Present outcomes in the caller's scenario order, like the serial
    # campaign's insertion-ordered checkpoint dict.
    ordered = _merge_campaign_outcomes(labels, completed)
    return ParallelCampaignResult(
        outcomes=ordered,
        shard_timings=timings,
        num_shards=plan.num_shards,
        workers=workers,
        scheduled=tuple(scheduled),
    )
