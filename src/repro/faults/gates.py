"""Gate primitives evaluated bit-parallel over pattern sets.

Every net's value across all P patterns of a fault-simulation run is one
arbitrary-precision Python integer (bit *t* = the net's logic value in
pattern *t*), so evaluating a gate applies it to every pattern at once —
the classic parallel-pattern technique (PPSFP) with the word width set
by Python's bigints instead of the machine word.
"""

from __future__ import annotations

import enum


class GateKind(enum.IntEnum):
    """Supported primitives (one- and two-input)."""

    BUF = 0
    NOT = 1
    AND = 2
    OR = 3
    NAND = 4
    NOR = 5
    XOR = 6
    XNOR = 7


#: Gates with a single input.
UNARY = frozenset((GateKind.BUF, GateKind.NOT))


def eval_gate(kind: GateKind, a: int, b: int, mask: int) -> int:
    """Evaluate one gate over packed pattern values.

    ``mask`` has one bit per pattern; inverting gates AND with it so the
    result never grows beyond the pattern width.
    """
    if kind == GateKind.BUF:
        return a
    if kind == GateKind.NOT:
        return ~a & mask
    if kind == GateKind.AND:
        return a & b
    if kind == GateKind.OR:
        return a | b
    if kind == GateKind.NAND:
        return ~(a & b) & mask
    if kind == GateKind.NOR:
        return ~(a | b) & mask
    if kind == GateKind.XOR:
        return a ^ b
    if kind == GateKind.XNOR:
        return ~(a ^ b) & mask
    raise ValueError(f"unknown gate kind {kind}")
