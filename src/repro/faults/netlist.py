"""Structural netlists for module-level stuck-at fault simulation.

A :class:`Netlist` is built feed-forward (every gate's inputs must
already exist when the gate is added), so gate order is a topological
order by construction — no separate levelisation pass is needed for
either good simulation or cone propagation.

Once simulation starts a netlist should be :meth:`~Netlist.freeze`-d:
the compiled engine (:mod:`repro.faults.compiled`) lowers the gate list
into flat arrays whose validity depends on the structure never changing,
so freezing turns any late mutation into a loud
:class:`~repro.errors.FaultModelError` instead of a silently stale
compile artifact.  The fanout table is maintained incrementally by
``add_gate`` (it used to be invalidated on every call, forcing a full
O(gates) rebuild after any post-simulation construction).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FaultModelError
from repro.faults.gates import UNARY, GateKind, eval_gate


@dataclass(frozen=True)
class Gate:
    """One gate instance: output net and input nets."""

    kind: GateKind
    out: int
    a: int
    b: int = -1


@dataclass
class Netlist:
    """A combinational gate network with named input/output buses."""

    name: str
    num_nets: int = 0
    gates: list[Gate] = field(default_factory=list)
    input_nets: list[int] = field(default_factory=list)
    output_nets: list[int] = field(default_factory=list)
    #: Named buses: field name -> net ids, LSB first.
    inputs: dict[str, list[int]] = field(default_factory=dict)
    outputs: dict[str, list[int]] = field(default_factory=dict)
    #: Named internal nets of interest (e.g. the ICU's event-id encode
    #: lines), for structural tests and diagnostics.
    annotations: dict[str, list[int]] = field(default_factory=dict)
    _fanout: dict[int, list[int]] | None = field(default=None, repr=False)
    _frozen: bool = field(default=False, repr=False)

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> "Netlist":
        """Seal the structure; all later mutation raises.

        Compiling a netlist freezes it, so a compiled artifact can never
        silently go stale — ``add_gate`` after simulation is a bug, and
        it now fails at the mutation site instead of corrupting results.
        Freezing is idempotent and returns the netlist for chaining.
        """
        self._frozen = True
        return self

    def _check_mutable(self) -> None:
        if self._frozen:
            raise FaultModelError(
                f"netlist {self.name!r} is frozen (already compiled or "
                "simulated); late structural mutation is not allowed"
            )

    def new_net(self) -> int:
        self._check_mutable()
        net = self.num_nets
        self.num_nets += 1
        return net

    def add_input_bus(self, name: str, width: int) -> list[int]:
        """Declare a primary-input bus of ``width`` nets (LSB first)."""
        if name in self.inputs:
            raise FaultModelError(f"duplicate input bus {name!r}")
        nets = [self.new_net() for _ in range(width)]
        self.inputs[name] = nets
        self.input_nets.extend(nets)
        return nets

    def add_gate(self, kind: GateKind, a: int, b: int = -1) -> int:
        """Add a gate; returns its (new) output net."""
        self._check_mutable()
        if a >= self.num_nets or (kind not in UNARY and b >= self.num_nets):
            raise FaultModelError("gate input net does not exist yet")
        if kind in UNARY:
            b = -1
        out = self.new_net()
        index = len(self.gates)
        self.gates.append(Gate(kind, out, a, b))
        # Keep the fanout table in lock-step instead of invalidating it:
        # interleaved build/simulate no longer pays an O(gates) rebuild
        # per mutation.  The incremental update appends exactly what the
        # lazy rebuild would (reader indices in gate order, ``a`` first).
        table = self._fanout
        if table is not None:
            table.setdefault(a, []).append(index)
            if b >= 0:
                table.setdefault(b, []).append(index)
        return out

    def buffer_chain(self, net: int, depth: int) -> int:
        """Append ``depth`` buffers (physical-design fault sites)."""
        for _ in range(depth):
            net = self.add_gate(GateKind.BUF, net)
        return net

    def mark_output_bus(self, name: str, nets: list[int]) -> None:
        self._check_mutable()
        if name in self.outputs:
            raise FaultModelError(f"duplicate output bus {name!r}")
        self.outputs[name] = list(nets)
        self.output_nets.extend(nets)

    # ------------------------------------------------------------------
    # Convenience composite builders.
    # ------------------------------------------------------------------

    def or_tree(self, nets: list[int]) -> int:
        """Balanced OR reduction of one or more nets."""
        if not nets:
            raise FaultModelError("or_tree of nothing")
        level = list(nets)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self.add_gate(GateKind.OR, level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def and_tree(self, nets: list[int]) -> int:
        """Balanced AND reduction of one or more nets."""
        if not nets:
            raise FaultModelError("and_tree of nothing")
        level = list(nets)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self.add_gate(GateKind.AND, level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def equality(self, bus_a: list[int], bus_b: list[int]) -> int:
        """Bitwise equality comparator (AND of XNORs)."""
        if len(bus_a) != len(bus_b):
            raise FaultModelError("equality of unequal widths")
        bits = [
            self.add_gate(GateKind.XNOR, a, b) for a, b in zip(bus_a, bus_b)
        ]
        return self.and_tree(bits)

    # ------------------------------------------------------------------
    # Simulation.
    # ------------------------------------------------------------------

    @property
    def fanout(self) -> dict[int, list[int]]:
        """Net -> indices of gates reading it (built lazily)."""
        if self._fanout is None:
            table: dict[int, list[int]] = {}
            for index, gate in enumerate(self.gates):
                table.setdefault(gate.a, []).append(index)
                if gate.b >= 0:
                    table.setdefault(gate.b, []).append(index)
            self._fanout = table
        return self._fanout

    def evaluate(self, input_values: dict[int, int], mask: int) -> list[int]:
        """Good simulation: packed values for every net.

        ``input_values`` maps primary-input nets to packed patterns;
        unlisted inputs default to all-zero.
        """
        values = [0] * self.num_nets
        for net, value in input_values.items():
            values[net] = value & mask
        for gate in self.gates:
            b = values[gate.b] if gate.b >= 0 else 0
            values[gate.out] = eval_gate(gate.kind, values[gate.a], b, mask)
        return values

    def stats(self) -> str:
        return (
            f"{self.name}: {self.num_nets} nets, {len(self.gates)} gates, "
            f"{len(self.input_nets)} inputs, {len(self.output_nets)} outputs"
        )

    def __getstate__(self):
        """Drop the cached compile artifact from pickles.

        Shard tasks ship netlists to worker processes; the receiving
        side recompiles (and instance-caches) on first use, which is
        cheaper than serialising the flat arrays, cones and buffers."""
        state = dict(self.__dict__)
        state.pop("_compiled_artifact", None)
        return state
