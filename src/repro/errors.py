"""Exception hierarchy for the ``repro`` library.

Every error raised on purpose by this package derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to distinguish assembly problems
from simulation problems.
"""

from __future__ import annotations

from dataclasses import dataclass


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AssemblyError(ReproError):
    """An assembly-language source could not be assembled.

    Carries the offending source line number (1-based) when known.
    """

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class EncodingError(ReproError):
    """An instruction could not be encoded to, or decoded from, 32 bits."""


class MemoryError_(ReproError):
    """A memory access fell outside every mapped device or was misaligned.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class SimulationError(ReproError):
    """The CPU or SoC simulation reached an inconsistent state."""


class BusError(SimulationError):
    """A bus transaction completed with an error response.

    Raised by the fetch/memory units once the bounded retry budget for a
    retriable error response (a transient glitch on the interconnect) is
    exhausted.  Carries enough context to localise the failing master.
    """

    def __init__(
        self,
        message: str,
        core_id: int | None = None,
        address: int | None = None,
        kind: str | None = None,
        retries: int = 0,
    ):
        parts = []
        if core_id is not None:
            parts.append(f"core {core_id}")
        if kind is not None:
            parts.append(kind)
        if address is not None:
            parts.append(f"address {address:#010x}")
        if retries:
            parts.append(f"after {retries} retries")
        if parts:
            message = f"{message} ({', '.join(parts)})"
        super().__init__(message)
        self.core_id = core_id
        self.address = address
        self.kind = kind
        self.retries = retries


@dataclass(frozen=True)
class CoreDiagnostic:
    """Snapshot of one core's state when a watchdog/limit trips."""

    core_id: int
    model: str
    pc: int
    started: bool
    halted: bool
    active: bool
    cycles: int
    bus_wait_cycles: int

    def describe(self) -> str:
        if not self.started:
            state = "off"
        elif self.halted:
            state = "halted"
        elif self.active:
            state = "running"
        else:
            state = "done"
        return (
            f"core {self.core_id} ({self.model}): {state}, pc={self.pc:#010x}, "
            f"{self.cycles} cycles, {self.bus_wait_cycles} bus-wait cycles"
        )


class ExecutionLimitExceeded(SimulationError):
    """A simulation ran longer than its configured cycle budget.

    When raised by :meth:`repro.soc.soc.Soc.run` it carries a
    per-core :class:`CoreDiagnostic` tuple so a watchdog trip is
    debuggable: which core hung, where its PC was pointing and how long
    it sat waiting for the bus.
    """

    def __init__(self, message: str, diagnostics: tuple[CoreDiagnostic, ...] = ()):
        if diagnostics:
            details = "; ".join(d.describe() for d in diagnostics)
            message = f"{message} [{details}]"
        super().__init__(message)
        self.diagnostics = diagnostics


class ValidationError(ReproError):
    """A self-test routine violates the cache-based methodology rules."""


class RoutineTooLargeError(ValidationError):
    """A routine does not fit the instruction cache and was not split."""


class FaultModelError(ReproError):
    """A netlist or fault list is malformed."""


class CheckpointError(ReproError):
    """A campaign checkpoint file is malformed or incompatible."""


class CheckpointCorruptionWarning(UserWarning):
    """A checkpoint/manifest file failed its integrity check.

    The offending file is preserved as a ``.corrupt`` sidecar and the
    affected shard restarts from scratch — corruption costs recomputation
    and a warning, never silent double-counting and never a lost file.
    """


class OrchestrationError(ReproError):
    """A supervised campaign could not be completed.

    Raised when one or more shards exhausted their retry budget and the
    caller did not opt into partial completion (``allow_partial``).  The
    message enumerates the quarantine roster; the
    :class:`repro.faults.orchestrator.OrchestrationReport` written next
    to the checkpoint manifest holds the full attempt history.
    """
