"""Exception hierarchy for the ``repro`` library.

Every error raised on purpose by this package derives from
:class:`ReproError`, so callers can catch the whole family with a single
``except`` clause while still being able to distinguish assembly problems
from simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AssemblyError(ReproError):
    """An assembly-language source could not be assembled.

    Carries the offending source line number (1-based) when known.
    """

    def __init__(self, message: str, line: int | None = None):
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


class EncodingError(ReproError):
    """An instruction could not be encoded to, or decoded from, 32 bits."""


class MemoryError_(ReproError):
    """A memory access fell outside every mapped device or was misaligned.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class SimulationError(ReproError):
    """The CPU or SoC simulation reached an inconsistent state."""


class ExecutionLimitExceeded(SimulationError):
    """A simulation ran longer than its configured cycle budget."""


class ValidationError(ReproError):
    """A self-test routine violates the cache-based methodology rules."""


class RoutineTooLargeError(ValidationError):
    """A routine does not fit the instruction cache and was not split."""


class FaultModelError(ReproError):
    """A netlist or fault list is malformed."""
