"""Experiment drivers reproducing every table and figure of the paper."""

from repro.analysis.excitation import (
    PathExcitation,
    compare_excitation,
    excitation_summary,
    path_excitation,
)
from repro.analysis.experiments import (
    MODELS,
    Fig1Result,
    Fig2Result,
    Table1Result,
    Table2Result,
    Table3Result,
    Table4Result,
    fig1_pipeline_traces,
    fig2_structure_audit,
    table1_stalls,
    table2_forwarding,
    table3_icu_hdcu,
    table4_tcm_vs_cache,
)

__all__ = [
    "PathExcitation",
    "compare_excitation",
    "excitation_summary",
    "path_excitation",
    "MODELS",
    "Fig1Result",
    "Fig2Result",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "Table4Result",
    "fig1_pipeline_traces",
    "fig2_structure_audit",
    "table1_stalls",
    "table2_forwarding",
    "table3_icu_hdcu",
    "table4_tcm_vs_cache",
]
