"""One driver per table/figure of the paper's evaluation (Section IV).

Every function reproduces the corresponding experiment end to end on
the simulated SoC and returns a result object whose ``render()`` prints
the same rows the paper reports, next to the paper's own numbers.
Absolute values differ (the substrate is a simulator and the fault
universe is generated, not the authors' silicon netlist); the shapes —
who wins, what is stable, where the gaps lie — are the reproduction
target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cache_wrapper import cache_wrapped_builder
from repro.core.determinism import (
    Scenario,
    default_scenarios,
    run_scenario,
    single_core_scenarios,
)
from repro.core.golden import finalise_with_expected, run_alone
from repro.core.tcm_wrapper import build_tcm_wrapped
from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_B, CORE_MODEL_C, CoreModel
from repro.cpu.trace import render_pipeline_diagram
from repro.faults.campaign import (
    CoverageRange,
    ModuleCoverage,
    coverage_range,
    forwarding_coverage,
    hdcu_coverage,
    icu_coverage,
)
from repro.isa.instructions import Csr, Instruction, Mnemonic
from repro.soc.config import DEFAULT_SOC_CONFIG, SocConfig
from repro.soc.debugger import StallMonitor, StallReport
from repro.soc.loader import CodeAlignment, CodePosition, placement_address
from repro.soc.scheduler import ParallelSchedule, load_parallel_session
from repro.soc.soc import Soc
from repro.stl.conventions import RESULT_FAIL, RESULT_PASS
from repro.stl.library import build_library
from repro.stl.packets import PhasedBuilder
from repro.stl.routine import RoutineContext
from repro.stl.routines.forwarding import make_forwarding_routine
from repro.stl.routines.interrupts import make_interrupt_routine
from repro.utils.tables import format_table

MODELS: dict[int, CoreModel] = {0: CORE_MODEL_A, 1: CORE_MODEL_B, 2: CORE_MODEL_C}

#: Paper reference values (for side-by-side rendering only).
PAPER_TABLE1 = {1: (200_679, 117_965), 2: (717_538, 305_801), 3: (1_878_336, 663_386)}
PAPER_TABLE2 = {
    "A": (53_298, 64.14, 75.19, 79.61),
    "B": (57_506, 63.61, 79.59, 82.08),
    "C": (113_212, 56.24, 66.48, 68.79),
}
PAPER_TABLE3 = {
    ("A", "ICU"): (14_230, 46.57, 51.36),
    ("A", "HDCU"): (16_096, 62.53, 70.37),
    ("B", "ICU"): (13_149, 46.39, 50.97),
    ("B", "HDCU"): (15_783, 63.84, 70.12),
    ("C", "ICU"): (13_888, 54.94, 60.91),
    ("C", "HDCU"): (19_931, 65.66, 68.09),
}
PAPER_TABLE4 = {"TCM-based": (2_874, 16_463), "Cache-based": (0, 18_043)}


# ----------------------------------------------------------------------
# Table I — multi-core STL execution: stalls due to the memory subsystem.
# ----------------------------------------------------------------------

@dataclass
class Table1Result:
    """Stall totals per number of active cores."""

    rows: list[StallReport] = field(default_factory=list)

    def render(self) -> str:
        table_rows = []
        for report in self.rows:
            paper = PAPER_TABLE1.get(report.active_cores, ("-", "-"))
            table_rows.append(
                (
                    report.active_cores,
                    f"{report.total_if_stalls:,}",
                    f"{report.total_mem_stalls:,}",
                    f"{report.total_bus_wait_cycles:,}",
                    f"{paper[0]:,}" if paper[0] != "-" else "-",
                    f"{paper[1]:,}" if paper[1] != "-" else "-",
                )
            )
        return format_table(
            ("# Active Cores", "IF stalls", "MEM stalls", "bus wait",
             "paper IF", "paper MEM"),
            table_rows,
            title="Table I - multi-core STL execution: memory-subsystem stalls",
        )


def table1_stalls(
    repeat: int = 4,
    executions: int = 3,
    soc_config: SocConfig = DEFAULT_SOC_CONFIG,
) -> Table1Result:
    """Run the background STL in parallel on 1, 2 and 3 cores.

    The forwarding/interrupt routines are excluded, as in Section IV-B
    ("their behavior was analyzed separately").  Following the paper,
    each row averages ``executions`` runs with different initial-release
    staggers ("average values gathered across several executions ...
    varies depending on the initial SoC configuration").  Module
    recording is disabled: this experiment only reads stall counters.
    """
    result = Table1Result()
    monitor = StallMonitor()
    for active in (1, 2, 3):
        samples = []
        for execution in range(executions):
            soc = Soc(soc_config)
            libraries = {
                core_id: build_library(
                    MODELS[core_id], background_repeat=repeat,
                    include_module_tests=False,
                )
                for core_id in range(active)
            }
            schedule = ParallelSchedule.round_robin(libraries)
            entries = load_parallel_session(soc, libraries, schedule)
            for core_id, entry in sorted(entries.items()):
                soc.cores[core_id].recording = False
                soc.run_cycles((execution * 5 + core_id * 7) % 11)
                soc.start_core(core_id, entry)
            soc.run(max_cycles=30_000_000)
            samples.append(monitor.snapshot(soc))
        result.rows.append(_average_reports(samples))
    return result


def _average_reports(samples: list[StallReport]) -> StallReport:
    """Average several executions' per-core stall figures."""
    from repro.soc.debugger import CoreStallReport

    count = len(samples)
    per_core = []
    for index in range(len(samples[0].per_core)):
        cores = [sample.per_core[index] for sample in samples]
        per_core.append(
            CoreStallReport(
                core_id=cores[0].core_id,
                model=cores[0].model,
                cycles=sum(c.cycles for c in cores) // count,
                instret=sum(c.instret for c in cores) // count,
                if_stalls=sum(c.if_stalls for c in cores) // count,
                mem_stalls=sum(c.mem_stalls for c in cores) // count,
                hazard_stalls=sum(c.hazard_stalls for c in cores) // count,
                bus_wait_cycles=sum(c.bus_wait_cycles for c in cores) // count,
            )
        )
    return StallReport(
        active_cores=samples[0].active_cores, per_core=tuple(per_core)
    )


# ----------------------------------------------------------------------
# Table II — forwarding-logic fault coverage (no performance counters).
# ----------------------------------------------------------------------

@dataclass
class Table2Row:
    core: str
    num_faults: int
    no_cache: CoverageRange
    cached: CoverageRange


@dataclass
class Table2Result:
    rows: list[Table2Row] = field(default_factory=list)

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            paper = PAPER_TABLE2[row.core]
            cached = (
                f"{row.cached.minimum_percent:.2f}"
                if row.cached.stable
                else f"{row.cached.minimum_percent:.2f}-"
                f"{row.cached.maximum_percent:.2f} (UNSTABLE)"
            )
            table_rows.append(
                (
                    row.core,
                    f"{row.num_faults:,}",
                    f"{row.no_cache.minimum_percent:.2f} - "
                    f"{row.no_cache.maximum_percent:.2f}",
                    cached,
                    f"{paper[0]:,}",
                    f"{paper[1]:.2f} - {paper[2]:.2f}",
                    f"{paper[3]:.2f}",
                )
            )
        return format_table(
            ("Core", "# faults", "min-max FC% (no caches)", "FC% (caches)",
             "paper #", "paper min-max", "paper cached"),
            table_rows,
            title="Table II - forwarding logic fault simulation (no PCs)",
        )


def table2_forwarding(
    scenarios: tuple[Scenario, ...] | None = None,
    soc_config: SocConfig = DEFAULT_SOC_CONFIG,
) -> Table2Result:
    """FC oscillation without caches vs. stable FC with the wrapper."""
    if scenarios is None:
        scenarios = default_scenarios()
    contexts = {i: RoutineContext.for_core(i, m) for i, m in MODELS.items()}
    plain = {
        i: make_forwarding_routine(m, with_pcs=False).builder_for(contexts[i])
        for i, m in MODELS.items()
    }
    wrapped = {
        i: cache_wrapped_builder(
            make_forwarding_routine(m, with_pcs=False), contexts[i]
        )
        for i, m in MODELS.items()
    }
    plain_results = [run_scenario(plain, s, soc_config) for s in scenarios]
    wrapped_results = [run_scenario(wrapped, s, soc_config) for s in scenarios]
    result = Table2Result()
    for core_id, model in MODELS.items():
        no_cache = [
            forwarding_coverage(r.per_core[core_id].log, model)
            for r in plain_results
            if core_id in r.per_core
        ]
        cached = [
            forwarding_coverage(r.per_core[core_id].log, model)
            for r in wrapped_results
            if core_id in r.per_core
        ]
        result.rows.append(
            Table2Row(
                core=model.name,
                num_faults=no_cache[0].total_faults,
                no_cache=coverage_range(no_cache),
                cached=coverage_range(cached),
            )
        )
    return result


# ----------------------------------------------------------------------
# Table III — ICU and HDCU fault coverage + signature stability.
# ----------------------------------------------------------------------

@dataclass
class Table3Row:
    core: str
    module: str
    num_faults: int
    single_core_no_cache: float
    multicore_cached: float
    #: Multi-core *without* caches: verdict counts (the paper: "the test
    #: procedures inevitably failed in any configuration").
    no_cache_multicore_pass: int
    no_cache_multicore_fail: int


@dataclass
class Table3Result:
    rows: list[Table3Row] = field(default_factory=list)

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            paper = PAPER_TABLE3[(row.core, row.module)]
            table_rows.append(
                (
                    row.core,
                    row.module,
                    f"{row.num_faults:,}",
                    f"{row.single_core_no_cache:.2f}",
                    f"{row.multicore_cached:.2f}",
                    f"{row.no_cache_multicore_fail}/"
                    f"{row.no_cache_multicore_fail + row.no_cache_multicore_pass}",
                    f"{paper[0]:,}",
                    f"{paper[1]:.2f}",
                    f"{paper[2]:.2f}",
                )
            )
        return format_table(
            ("Core", "Module", "# faults", "FC% single, no caches",
             "FC% multi, caches", "multi no-cache FAILs",
             "paper #", "paper single", "paper cached"),
            table_rows,
            title="Table III - ICU and HDCU fault simulation results",
        )


def _module_routine(module: str, model: CoreModel):
    if module == "ICU":
        return make_interrupt_routine(model)
    return make_forwarding_routine(model, with_pcs=True)


def _module_coverage(module: str, log, model: CoreModel) -> ModuleCoverage:
    if module == "ICU":
        return icu_coverage(log, model)
    return hdcu_coverage(log, model)


def table3_icu_hdcu(
    multicore_scenarios: tuple[Scenario, ...] | None = None,
    soc_config: SocConfig = DEFAULT_SOC_CONFIG,
) -> Table3Result:
    """Single-core-no-cache FC vs. multi-core cache-based FC, plus the
    no-cache multi-core signature failures."""
    if multicore_scenarios is None:
        multicore_scenarios = default_scenarios()[::3]
    result = Table3Result()
    contexts = {i: RoutineContext.for_core(i, m) for i, m in MODELS.items()}
    for module in ("ICU", "HDCU"):
        pcs = module == "HDCU"
        # Finalised (expected-signature-bearing) program variants.
        plain_builders = {}
        wrapped_builders = {}
        for core_id, model in MODELS.items():
            routine = _module_routine(module, model)
            ctx = contexts[core_id]
            base = placement_address(CodePosition.LOW, CodeAlignment.QWORD, core_id)

            def build_plain(expected, routine=routine, ctx=ctx, base=base):
                return routine.build_single_core(base, ctx, expected)

            plain_program, plain_expected = finalise_with_expected(
                build_plain, core_id, soc_config
            )

            def plain_builder(
                addr, routine=routine, ctx=ctx, expected=plain_expected
            ):
                return routine.build_single_core(addr, ctx, expected)

            plain_builders[core_id] = plain_builder

            def build_wrapped(expected, routine=routine, ctx=ctx, base=base):
                return cache_wrapped_builder(routine, ctx, expected)(base)

            _, wrapped_expected = finalise_with_expected(
                build_wrapped, core_id, soc_config
            )
            wrapped_builders[core_id] = cache_wrapped_builder(
                routine, ctx, wrapped_expected
            )
        # Single-core, no caches (reference FC and stable signature).
        single_runs = {
            core_id: run_scenario(
                plain_builders,
                single_core_scenarios(core_id)[0],
                soc_config,
                pcs_observable=pcs,
            )
            for core_id in MODELS
        }
        # Multi-core without caches: the failing configuration.
        plain_multi = [
            run_scenario(plain_builders, s, soc_config, pcs_observable=pcs)
            for s in multicore_scenarios
        ]
        # Multi-core with the cache-based wrapper.
        wrapped_multi = [
            run_scenario(wrapped_builders, s, soc_config, pcs_observable=pcs)
            for s in multicore_scenarios
        ]
        for core_id, model in MODELS.items():
            single_cov = _module_coverage(
                module, single_runs[core_id].per_core[core_id].log, model
            )
            cached_covs = [
                _module_coverage(module, r.per_core[core_id].log, model)
                for r in wrapped_multi
                if core_id in r.per_core
            ]
            cached = coverage_range(cached_covs)
            passes = sum(
                1
                for r in plain_multi
                if core_id in r.per_core
                and r.per_core[core_id].mailbox == RESULT_PASS
            )
            fails = sum(
                1
                for r in plain_multi
                if core_id in r.per_core
                and r.per_core[core_id].mailbox == RESULT_FAIL
            )
            result.rows.append(
                Table3Row(
                    core=model.name,
                    module=module,
                    num_faults=single_cov.total_faults,
                    single_core_no_cache=single_cov.coverage_percent,
                    multicore_cached=cached.maximum_percent,
                    no_cache_multicore_pass=passes,
                    no_cache_multicore_fail=fails,
                )
            )
    return result


# ----------------------------------------------------------------------
# Table IV — TCM-based versus cache-based strategy.
# ----------------------------------------------------------------------

@dataclass
class Table4Row:
    approach: str
    memory_overhead_bytes: int
    execution_cycles: int

    def microseconds(self, frequency_hz: int) -> float:
        return 1e6 * self.execution_cycles / frequency_hz


@dataclass
class Table4Result:
    rows: list[Table4Row] = field(default_factory=list)
    frequency_hz: int = 180_000_000

    def render(self) -> str:
        table_rows = []
        for row in self.rows:
            paper = PAPER_TABLE4[row.approach]
            table_rows.append(
                (
                    row.approach,
                    row.memory_overhead_bytes,
                    f"{row.execution_cycles:,}",
                    f"{row.microseconds(self.frequency_hz):.2f}",
                    f"{paper[0]:,}",
                    f"{paper[1]:,}",
                )
            )
        return format_table(
            ("Approach", "Memory overhead [B]", "Execution [cycles]",
             "at 180 MHz [us]", "paper overhead", "paper cycles"),
            table_rows,
            title="Table IV - TCM-based vs cache-based (imprecise interrupts)",
        )


def table4_tcm_vs_cache(
    core_id: int = 0, soc_config: SocConfig = DEFAULT_SOC_CONFIG
) -> Table4Result:
    """Memory/time trade-off of the two strategies on one core."""
    model = MODELS[core_id]
    ctx = RoutineContext.for_core(core_id, model)
    routine = make_interrupt_routine(model)
    base = placement_address(CodePosition.LOW, CodeAlignment.QWORD, core_id)
    result = Table4Result(frequency_hz=soc_config.frequency_hz)

    deployment = build_tcm_wrapped(routine, base, ctx)
    soc = Soc(soc_config)
    deployment.load(soc, core_id)
    soc.start_core(core_id, deployment.entry_point)
    soc.run(max_cycles=4_000_000)
    result.rows.append(
        Table4Row(
            approach="TCM-based",
            memory_overhead_bytes=deployment.reserved_tcm_bytes,
            execution_cycles=soc.cores[core_id].cycles,
        )
    )

    wrapped = cache_wrapped_builder(routine, ctx)(base)
    soc = run_alone(wrapped, core_id, soc_config)
    result.rows.append(
        Table4Row(
            approach="Cache-based",
            memory_overhead_bytes=0,
            execution_cycles=soc.cores[core_id].cycles,
        )
    )
    return result


# ----------------------------------------------------------------------
# Fig. 1 — forwarding path vs. broken forwarding path.
# ----------------------------------------------------------------------

@dataclass
class Fig1Result:
    single_core_diagram: str
    contended_diagram: str
    single_core_stalls: int
    contended_stalls: int

    def render(self) -> str:
        return (
            "Fig. 1a - stall-free stream (EX->EX path excited):\n"
            f"{self.single_core_diagram}\n\n"
            "Fig. 1b - contended fetch (forwarding broken, RF read):\n"
            f"{self.contended_diagram}\n\n"
            f"additional stalls observed by the performance counters: "
            f"{self.contended_stalls - self.single_core_stalls}"
        )


def _fig1_program(base: int) -> "PhasedBuilder":
    asm = PhasedBuilder(base, "fig1")
    asm.li(4, 0x1010)
    asm.li(5, 0x0202)
    asm.li(6, 0x4040)
    asm.align()
    asm.nop(2)
    # The paper's pair: add r7,r6,r5 immediately consumed by add r9,r7,r4.
    asm.packet(Instruction(Mnemonic.ADD, rd=7, rs1=6, rs2=5))
    asm.packet(Instruction(Mnemonic.ADD, rd=9, rs1=7, rs2=4))
    asm.nop(4)
    asm.halt()
    return asm


def fig1_pipeline_traces(soc_config: SocConfig = DEFAULT_SOC_CONFIG) -> Fig1Result:
    """The paper's motivating example, traced on the simulator."""
    # Stall-free: run from the I-TCM (perfect fetch).
    soc = Soc(soc_config)
    core = soc.cores[0]
    base = core.itcm.base
    program = _fig1_program(base).build()
    for address, word in zip(
        range(base, base + program.size_bytes, 4), program.encoded_words()
    ):
        core.itcm.write_word(address, word)
    core.keep_trace = True
    soc.start_core(0, base)
    soc.run(max_cycles=10_000)
    single_uops = [u for u in core.trace if u.instr.mnemonic is Mnemonic.ADD]
    single_stalls = core.ifstall + core.hazstall
    single_diagram = render_pipeline_diagram(single_uops)

    # Contended: same code in flash while two other cores hammer the bus.
    soc = Soc(soc_config)
    program = _fig1_program(0x200).build()
    soc.load(program)
    busy = PhasedBuilder(0x8000, "busy")
    busy.label("spin")
    busy.nop(16)
    busy.j("spin")
    busy_program = busy.build()
    soc.load(busy_program)
    for other in (1, 2):
        soc.cores[other].recording = False
        soc.start_core(other, 0x8000)
    soc.run_cycles(7)
    core = soc.cores[0]
    core.keep_trace = True
    soc.start_core(0, 0x200)
    for _ in range(3_000):
        if core.done:
            break
        soc.step()
    contended_uops = [u for u in core.trace if u.instr.mnemonic is Mnemonic.ADD]
    contended_stalls = core.ifstall + core.hazstall
    return Fig1Result(
        single_core_diagram=single_diagram,
        contended_diagram=render_pipeline_diagram(contended_uops),
        single_core_stalls=single_stalls,
        contended_stalls=contended_stalls,
    )


# ----------------------------------------------------------------------
# Fig. 2 — structure of the cache-based strategy.
# ----------------------------------------------------------------------

@dataclass
class Fig2Result:
    """Structural + runtime audit of the wrapper (Fig. 2b semantics)."""

    wrapped_size_bytes: int
    single_size_bytes: int
    loading_loop_fills: int
    execution_loop_fills: int
    loading_loop_observable_records: int
    execution_loop_observable_records: int
    signature_matches_single_core: bool

    def render(self) -> str:
        rows = [
            ("single-core program size [B]", self.single_size_bytes),
            ("cache-based program size [B]", self.wrapped_size_bytes),
            ("I$ line fills during loading loop", self.loading_loop_fills),
            ("I$ line fills during execution loop", self.execution_loop_fills),
            ("observable activations, loading loop",
             self.loading_loop_observable_records),
            ("observable activations, execution loop",
             self.execution_loop_observable_records),
            ("execution-loop signature == single-core golden",
             self.signature_matches_single_core),
        ]
        return format_table(
            ("property", "value"),
            rows,
            title="Fig. 2 - cache-based strategy: structural/runtime audit",
        )


def fig2_structure_audit(
    core_id: int = 0, soc_config: SocConfig = DEFAULT_SOC_CONFIG
) -> Fig2Result:
    """Verify the wrapper implements Fig. 2b's blocks as specified."""
    from repro.core.cache_wrapper import build_cache_wrapped
    from repro.core.golden import golden_signature
    from repro.stl.conventions import SIG_REG

    model = MODELS[core_id]
    ctx = RoutineContext.for_core(core_id, model)
    routine = make_forwarding_routine(model, with_pcs=False)
    base = placement_address(CodePosition.LOW, CodeAlignment.QWORD, core_id)
    single = routine.build_single_core(base, ctx)
    wrapped = build_cache_wrapped(routine, base, ctx)

    soc = Soc(soc_config)
    soc.load(wrapped)
    core = soc.cores[core_id]
    soc.start_core(core_id, base)
    # Run until the execution loop starts (TESTWIN turns 1), sampling
    # the fill counter at the boundary.
    loading_fills = None
    for _ in range(4_000_000):
        soc.step()
        if loading_fills is None and core.testwin & 1:
            loading_fills = core.icache.stats.fills
        if core.done:
            break
    total_fills = core.icache.stats.fills
    observable = sum(1 for r in core.log.forwarding if r.observable)
    unobservable = sum(1 for r in core.log.forwarding if not r.observable)
    golden = golden_signature(single, core_id, soc_config)
    return Fig2Result(
        wrapped_size_bytes=wrapped.size_bytes,
        single_size_bytes=single.size_bytes,
        loading_loop_fills=loading_fills or 0,
        execution_loop_fills=total_fills - (loading_fills or 0),
        loading_loop_observable_records=unobservable,
        execution_loop_observable_records=observable,
        signature_matches_single_core=core.regfile.read(SIG_REG) == golden,
    )
