"""Diagnostics: which forwarding paths did a run actually excite?

The paper explains FC fluctuation by "how many issue packets
consecutively enter the processor pipeline, activating different
forwarding paths".  This module turns an activation log into the
per-path excitation counts a test engineer would look at to understand
*why* a scenario's coverage dropped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.recording import ActivationLog, FwdSource
from repro.stl.routines.forwarding import ForwardingPath, all_paths
from repro.utils.tables import format_table

#: Select source implied by (producer slot, packet distance).
_SOURCE_OF = {
    (0, 1): FwdSource.EX0,
    (1, 1): FwdSource.EX1,
    (0, 2): FwdSource.MEM0,
    (1, 2): FwdSource.MEM1,
}


@dataclass(frozen=True)
class PathExcitation:
    """Observable activation count of one forwarding path."""

    path: ForwardingPath
    activations: int

    @property
    def excited(self) -> bool:
        return self.activations > 0


def path_excitation(log: ActivationLog) -> list[PathExcitation]:
    """Count observable activations of each of the 16 forwarding paths."""
    counts: dict[tuple[int, int, FwdSource], int] = {}
    for record in log.forwarding:
        if not record.observable or record.select == FwdSource.RF:
            continue
        key = (record.slot, record.operand, record.select)
        counts[key] = counts.get(key, 0) + 1
    report = []
    for path in all_paths():
        source = _SOURCE_OF[(path.producer_slot, path.distance)]
        key = (path.consumer_slot, path.operand, source)
        report.append(PathExcitation(path, counts.get(key, 0)))
    return report


def excitation_summary(log: ActivationLog) -> str:
    """Render the per-path excitation table."""
    rows = [
        (
            entry.path.label,
            f"EX{entry.path.producer_slot}"
            if entry.path.distance == 1
            else f"MEM{entry.path.producer_slot}",
            entry.activations,
            "excited" if entry.excited else "NOT EXCITED",
        )
        for entry in path_excitation(log)
    ]
    return format_table(
        ("path", "source", "activations", "status"),
        rows,
        title="Forwarding-path excitation",
    )


def compare_excitation(
    reference: ActivationLog, other: ActivationLog
) -> list[ForwardingPath]:
    """Paths excited in ``reference`` but lost in ``other`` — the
    paths whose faults silently go undetected in the degraded run."""
    excited_ref = {
        e.path for e in path_excitation(reference) if e.excited
    }
    excited_other = {
        e.path for e in path_excitation(other) if e.excited
    }
    return sorted(
        excited_ref - excited_other,
        key=lambda p: p.label,
    )
