"""Plain-text table rendering for experiment reports.

The benchmark harness prints tables shaped like the ones in the paper;
this module renders them without any third-party dependency.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an ASCII table with a separator under the header.

    Cell values are converted with :func:`str`; numeric cells are
    right-aligned, text cells left-aligned.
    """
    cells = [[str(value) for value in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(header) for header in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    numeric = [
        all(_is_numeric(row[i]) for row in cells) if cells else False
        for i in range(len(headers))
    ]

    def render_row(row: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(row):
            parts.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "| " + " | ".join(parts) + " |"

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("|-" + "-|-".join("-" * w for w in widths) + "-|")
    lines.extend(render_row(row) for row in cells)
    return "\n".join(lines)


def _is_numeric(text: str) -> bool:
    stripped = text.replace(",", "").replace("%", "").strip()
    if not stripped:
        return False
    try:
        float(stripped)
    except ValueError:
        return False
    return True
