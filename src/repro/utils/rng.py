"""A tiny deterministic pseudo-random generator.

The simulator must be bit-for-bit reproducible across runs and Python
versions, so the few places that need pseudo-randomness (physical-design
variation in netlist generation, initial SoC phase offsets) use this
xorshift generator instead of :mod:`random`.
"""

from __future__ import annotations

from repro.utils.bitops import MASK64


class DeterministicRng:
    """xorshift64* generator with a required explicit seed."""

    def __init__(self, seed: int):
        if seed <= 0:
            raise ValueError("seed must be a positive integer")
        self._state = seed & MASK64

    def next_u64(self) -> int:
        """Return the next 64-bit value of the stream."""
        x = self._state
        x ^= (x >> 12) & MASK64
        x = (x ^ (x << 25)) & MASK64
        x ^= (x >> 27) & MASK64
        self._state = x
        return (x * 0x2545F4914F6CDD1D) & MASK64

    def next_u32(self) -> int:
        """Return the next 32-bit value of the stream."""
        return self.next_u64() >> 32

    def randint(self, low: int, high: int) -> int:
        """Return a value in the inclusive range [low, high]."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_u64() % span

    def choice(self, items):
        """Return a pseudo-random element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randint(0, len(items) - 1)]

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place (Fisher-Yates)."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]
