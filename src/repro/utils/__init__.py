"""Shared low-level helpers: bit manipulation, RNG, table rendering."""

from repro.utils.bitops import (
    MASK32,
    MASK64,
    bit,
    bits_of,
    mask,
    popcount,
    rotl32,
    rotr32,
    sext,
    to_signed,
    to_unsigned,
)
from repro.utils.rng import DeterministicRng
from repro.utils.tables import format_table

__all__ = [
    "MASK32",
    "MASK64",
    "bit",
    "bits_of",
    "mask",
    "popcount",
    "rotl32",
    "rotr32",
    "sext",
    "to_signed",
    "to_unsigned",
    "DeterministicRng",
    "format_table",
]
