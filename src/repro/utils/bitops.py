"""Bit-level helpers used throughout the simulator and fault model.

All word-level arithmetic in the CPU model is done on non-negative Python
integers truncated to 32 (or 64) bits; these helpers centralise the
masking and signedness conversions so the arithmetic code stays readable.
"""

from __future__ import annotations

MASK32 = 0xFFFF_FFFF
MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def mask(width: int) -> int:
    """Return a mask with the ``width`` least-significant bits set."""
    if width < 0:
        raise ValueError(f"mask width must be non-negative, got {width}")
    return (1 << width) - 1


def bit(value: int, index: int) -> int:
    """Return bit ``index`` (0 = LSB) of ``value`` as 0 or 1."""
    return (value >> index) & 1


def bits_of(value: int, width: int) -> list[int]:
    """Return the ``width`` least-significant bits of ``value``, LSB first."""
    return [(value >> i) & 1 for i in range(width)]


def popcount(value: int) -> int:
    """Return the number of set bits in a non-negative integer."""
    if value < 0:
        raise ValueError("popcount expects a non-negative integer")
    return value.bit_count()


def to_signed(value: int, width: int = 32) -> int:
    """Interpret the ``width``-bit pattern ``value`` as two's complement."""
    value &= mask(width)
    sign = 1 << (width - 1)
    return value - (1 << width) if value & sign else value


def to_unsigned(value: int, width: int = 32) -> int:
    """Truncate a (possibly negative) integer to a ``width``-bit pattern."""
    return value & mask(width)


def sext(value: int, from_width: int, to_width: int = 32) -> int:
    """Sign-extend the ``from_width``-bit pattern ``value`` to ``to_width`` bits."""
    if from_width > to_width:
        raise ValueError(
            f"cannot sign-extend from {from_width} to narrower {to_width} bits"
        )
    return to_unsigned(to_signed(value, from_width), to_width)


def rotl32(value: int, amount: int) -> int:
    """Rotate a 32-bit value left by ``amount`` bits."""
    amount %= 32
    value &= MASK32
    return ((value << amount) | (value >> (32 - amount))) & MASK32 if amount else value


def rotr32(value: int, amount: int) -> int:
    """Rotate a 32-bit value right by ``amount`` bits."""
    return rotl32(value, (32 - amount) % 32)


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    if alignment & (alignment - 1):
        raise ValueError(f"alignment must be a power of two, got {alignment}")
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    return align_down(value + alignment - 1, alignment)


def is_aligned(value: int, alignment: int) -> bool:
    """Return True when ``value`` is a multiple of power-of-two ``alignment``."""
    return align_down(value, alignment) == value
