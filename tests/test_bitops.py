"""Unit + property tests for repro.utils.bitops."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    MASK32,
    align_down,
    align_up,
    bit,
    bits_of,
    is_aligned,
    mask,
    popcount,
    rotl32,
    rotr32,
    sext,
    to_signed,
    to_unsigned,
)

u32 = st.integers(min_value=0, max_value=MASK32)


def test_mask_widths():
    assert mask(0) == 0
    assert mask(1) == 1
    assert mask(32) == MASK32
    assert mask(5) == 0b11111


def test_mask_negative_rejected():
    with pytest.raises(ValueError):
        mask(-1)


def test_bit_extraction():
    assert bit(0b1010, 1) == 1
    assert bit(0b1010, 0) == 0
    assert bit(1 << 31, 31) == 1


def test_bits_of_lsb_first():
    assert bits_of(0b1101, 4) == [1, 0, 1, 1]


def test_popcount_values():
    assert popcount(0) == 0
    assert popcount(0xFF) == 8
    assert popcount(MASK32) == 32


def test_popcount_rejects_negative():
    with pytest.raises(ValueError):
        popcount(-1)


def test_to_signed_boundaries():
    assert to_signed(0x7FFF_FFFF) == 2**31 - 1
    assert to_signed(0x8000_0000) == -(2**31)
    assert to_signed(MASK32) == -1


def test_to_unsigned_negative():
    assert to_unsigned(-1) == MASK32
    assert to_unsigned(-(2**31)) == 0x8000_0000


def test_sext_widths():
    assert sext(0b1000, 4) == to_unsigned(-8)
    assert sext(0b0111, 4) == 7
    with pytest.raises(ValueError):
        sext(1, 33, 32)


def test_rotl32_known():
    assert rotl32(0x8000_0000, 1) == 1
    assert rotl32(1, 31) == 0x8000_0000
    assert rotl32(0xDEADBEEF, 0) == 0xDEADBEEF


def test_align_helpers():
    assert align_down(0x1234, 16) == 0x1230
    assert align_up(0x1234, 16) == 0x1240
    assert align_up(0x1230, 16) == 0x1230
    assert is_aligned(0x1230, 16)
    assert not is_aligned(0x1234, 16)


def test_align_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        align_down(10, 12)


@given(u32)
def test_signed_unsigned_roundtrip(value):
    assert to_unsigned(to_signed(value)) == value


@given(u32, st.integers(min_value=0, max_value=63))
def test_rotl_rotr_inverse(value, amount):
    assert rotr32(rotl32(value, amount), amount) == value


@given(u32, st.integers(min_value=0, max_value=31))
def test_rotl_preserves_popcount(value, amount):
    assert popcount(rotl32(value, amount)) == popcount(value)


@given(st.integers(min_value=0, max_value=2**20), st.sampled_from([1, 2, 4, 8, 16]))
def test_align_down_le_up(value, alignment):
    down, up = align_down(value, alignment), align_up(value, alignment)
    assert down <= value <= up
    assert up - down in (0, alignment)
