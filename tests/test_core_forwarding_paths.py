"""Pipeline-level tests of forwarding-path excitation and recording.

These run engineered packet sequences from the I-TCM (perfect fetch) and
assert which mux input served each operand — the ground truth the whole
fault-grading flow rests on.
"""

import pytest

from repro.cpu.recording import FwdSource
from repro.isa.instructions import Instruction, Mnemonic
from repro.soc import Soc
from repro.stl.packets import PhasedBuilder
from repro.stl.routines.forwarding import ForwardingPath, all_paths


def run_from_tcm(build, core_id=0):
    soc = Soc()
    core = soc.cores[core_id]
    asm = PhasedBuilder(core.itcm.base, "tcmtest")
    build(asm)
    asm.halt()
    program = asm.build()
    for address, word in zip(
        range(program.base_address, program.end_address, 4),
        program.encoded_words(),
    ):
        core.itcm.write_word(address, word)
    core.testwin = 1
    soc.start_core(core_id, program.base_address)
    soc.run(max_cycles=50_000)
    return core


def _exercise(path: ForwardingPath):
    def build(asm: PhasedBuilder):
        asm.li(5, 0x1234)
        asm.li(6, 0x4321)
        asm.align()
        asm.packet(Instruction(Mnemonic.ADD, rd=10, rs1=0, rs2=0))
        producer = Instruction(Mnemonic.OR, rd=7, rs1=5, rs2=0)
        filler0 = Instruction(Mnemonic.ADD, rd=11, rs1=0, rs2=0)
        if path.producer_slot == 0:
            asm.packet(producer, filler0)
        else:
            asm.packet(filler0, producer)
        if path.distance == 2:
            asm.packet(
                Instruction(Mnemonic.ADD, rd=12, rs1=0, rs2=0),
                Instruction(Mnemonic.ADD, rd=13, rs1=0, rs2=0),
            )
        if path.operand == 0:
            consumer = Instruction(Mnemonic.XOR, rd=9, rs1=7, rs2=6)
        else:
            consumer = Instruction(Mnemonic.XOR, rd=9, rs1=6, rs2=7)
        filler1 = Instruction(Mnemonic.ADD, rd=14, rs1=0, rs2=0)
        if path.consumer_slot == 0:
            asm.packet(consumer, filler1)
        else:
            asm.packet(filler1, consumer)

    return build


EXPECTED_SOURCE = {
    (0, 1): FwdSource.EX0,
    (1, 1): FwdSource.EX1,
    (0, 2): FwdSource.MEM0,
    (1, 2): FwdSource.MEM1,
}


@pytest.mark.parametrize("path", all_paths(), ids=lambda p: p.label)
def test_every_forwarding_path_excitable(path):
    core = run_from_tcm(_exercise(path))
    expected = EXPECTED_SOURCE[(path.producer_slot, path.distance)]
    assert core.regfile.read(9) == 0x1234 ^ 0x4321
    hits = [
        r
        for r in core.log.forwarding
        if r.select == expected and r.slot == path.consumer_slot
        and r.operand == path.operand
    ]
    assert hits, f"path {path.label} not excited as {expected.name}"


def test_distance_three_reads_register_file():
    def build(asm):
        asm.li(5, 0xAA)
        asm.align()
        asm.packet(Instruction(Mnemonic.OR, rd=7, rs1=5, rs2=0))
        for reg in (10, 11, 12):
            asm.packet(
                Instruction(Mnemonic.ADD, rd=reg, rs1=0, rs2=0),
                Instruction(Mnemonic.ADD, rd=reg + 4, rs1=0, rs2=0),
            )
        asm.packet(Instruction(Mnemonic.XOR, rd=9, rs1=7, rs2=0))

    core = run_from_tcm(build)
    assert core.regfile.read(9) == 0xAA
    last = [r for r in core.log.forwarding if r.candidates[0] == 0xAA]
    assert last and all(r.select == FwdSource.RF for r in last)


def test_load_use_creates_stall_then_mem_forward():
    def build(asm):
        asm.li(3, 0x0500_0000)  # D-TCM
        asm.li(5, 0xBEEF)
        asm.sw(5, 0, 3)
        asm.align()
        asm.packet(Instruction(Mnemonic.LW, rd=7, rs1=3, imm=0))
        asm.packet(Instruction(Mnemonic.XOR, rd=9, rs1=7, rs2=0))

    core = run_from_tcm(build)
    assert core.regfile.read(9) == 0xBEEF
    assert core.hazstall >= 1
    stalls = [r for r in core.log.hdcu if r.stall]
    assert stalls
    assert any(
        r.select in (FwdSource.MEM0, FwdSource.MEM1)
        and r.candidates[int(r.select)] == 0xBEEF
        for r in core.log.forwarding
    )


def test_stale_value_visible_as_rf_candidate():
    """While the producer is in flight, the RF candidate still holds the
    stale value — the very bit-difference mux faults are graded on."""

    def build(asm):
        asm.li(7, 0x00FF)  # stale
        asm.align()
        asm.packet(Instruction(Mnemonic.ADD, rd=10, rs1=0, rs2=0))
        asm.packet(Instruction(Mnemonic.ADD, rd=11, rs1=0, rs2=0))
        asm.li(5, 0xFF00)
        asm.align()
        asm.packet(Instruction(Mnemonic.OR, rd=7, rs1=5, rs2=0))  # rp = new
        asm.packet(Instruction(Mnemonic.XOR, rd=9, rs1=7, rs2=0))

    core = run_from_tcm(build)
    assert core.regfile.read(9) == 0xFF00
    # The *consumer's* record is the last EX0-forward of 0xFF00 (the
    # earlier one belongs to the li expansion feeding the producer).
    records = [
        r for r in core.log.forwarding
        if r.select == FwdSource.EX0 and r.candidates[int(FwdSource.EX0)] == 0xFF00
    ]
    assert records[-1].candidates[int(FwdSource.RF)] == 0x00FF


def test_intra_packet_dependency_splits_and_forwards():
    def build(asm):
        asm.li(5, 0x77)
        asm.align()
        # Dependent pair: the front end must split it.
        asm.emit(Instruction(Mnemonic.OR, rd=7, rs1=5, rs2=0))
        asm.emit(Instruction(Mnemonic.XOR, rd=9, rs1=7, rs2=0))
        asm.align()

    core = run_from_tcm(build)
    assert core.regfile.read(9) == 0x77
    assert any(
        r.select == FwdSource.EX0 and r.candidates[1] == 0x77
        for r in core.log.forwarding
    )


def test_records_respect_testwin():
    from repro.isa.instructions import Csr

    def build2(asm):
        asm.li(1, 0)
        asm.csrw(Csr.TESTWIN, 1)
        asm.li(5, 0x11)
        asm.align()
        asm.packet(Instruction(Mnemonic.OR, rd=7, rs1=5, rs2=0))
        asm.packet(Instruction(Mnemonic.XOR, rd=9, rs1=7, rs2=0))

    core = run_from_tcm(build2)
    tail = core.log.forwarding[-4:]
    assert all(not r.observable for r in tail)
