"""Edge-case tests across smaller surfaces of the library."""

import pytest

from repro.errors import (
    AssemblyError,
    EncodingError,
    ExecutionLimitExceeded,
    FaultModelError,
    MemoryError_,
    ReproError,
    RoutineTooLargeError,
    SimulationError,
    ValidationError,
)
from repro.isa import AsmBuilder, assemble
from repro.soc import CodeAlignment, CodePosition, Soc, place
from repro.stl import RoutineContext
from repro.stl.routines import make_forwarding_routine
from tests.conftest import run_program


def test_exception_hierarchy():
    for exc in (
        AssemblyError, EncodingError, MemoryError_, SimulationError,
        ValidationError, FaultModelError,
    ):
        assert issubclass(exc, ReproError)
    assert issubclass(ExecutionLimitExceeded, SimulationError)
    assert issubclass(RoutineTooLargeError, ValidationError)


def test_assembly_error_line_prefix():
    error = AssemblyError("bad thing", line=7)
    assert "line 7" in str(error)
    assert AssemblyError("plain").line is None


def test_loader_place_rebuilds_at_address():
    from repro.cpu.core import CORE_MODEL_A
    from repro.soc import placement_address

    routine = make_forwarding_routine(
        CORE_MODEL_A, with_pcs=False, patterns_per_path=1
    )
    ctx = RoutineContext.for_core(0, CORE_MODEL_A)
    program = place(
        routine.builder_for(ctx), CodePosition.MID, CodeAlignment.DWORD, 1
    )
    assert program.base_address == placement_address(
        CodePosition.MID, CodeAlignment.DWORD, 1
    )


def test_soc_load_routes_data_to_sram(soc):
    asm = AsmBuilder(0x100)
    asm.nop()
    asm.halt()
    asm.data_word(0x2000_0040, 0xFACE)
    soc.load(asm.build())
    assert soc.sram.read_word(0x2000_0040) == 0xFACE
    assert soc.flash.read_word(0x100) != 0


def test_readonly_csr_writes_ignored():
    _, core = run_program(
        """
        addi r1, r0, 999
        csrw cycles, r1
        csrw coreid, r1
        csrr r2, coreid
        halt
        """
    )
    assert core.regfile.read(2) == 0


def test_restarting_a_core_reruns_the_program():
    from repro.isa import assemble

    soc = Soc()
    soc.load(assemble(".org 0x100\naddi r1, r0, 4\nhalt\n"))
    soc.start_core(0, 0x100)
    soc.run()
    first = soc.cores[0].instret
    soc.start_core(0, 0x100)
    soc.run()
    assert soc.cores[0].instret == 2 * first


def test_tas_listing_roundtrip():
    program = assemble("tas r3, 8(r2)\nhalt\n")
    again = assemble(program.listing())
    assert again.encoded_words() == program.encoded_words()


def test_branch_far_keeps_packet_phase():
    from repro.isa.instructions import Mnemonic
    from repro.stl.packets import PhasedBuilder

    asm = PhasedBuilder()
    asm.label("top")
    asm.nop(4)
    asm.branch_far(Mnemonic.BNE, 1, 2, "top")
    assert asm.at_packet_boundary


def test_core_report_pass_rate():
    from repro.core.report import SignatureStability
    from repro.stl.conventions import RESULT_FAIL, RESULT_PASS

    report = SignatureStability(
        core_id=0,
        model="A",
        signatures=(1, 1, 2),
        verdicts=(RESULT_PASS, RESULT_FAIL, RESULT_PASS),
    )
    assert not report.stable
    assert report.distinct_signatures == 2
    assert report.pass_count == 2 and report.fail_count == 1
    assert report.pass_rate == pytest.approx(2 / 3)


def test_dispatch_builders_are_relocatable():
    from repro.cpu.core import CORE_MODEL_A
    from repro.soc.scheduler import ParallelSchedule, dispatch_builders
    from repro.stl import build_library

    library = build_library(CORE_MODEL_A, include_module_tests=False)
    schedule = ParallelSchedule.round_robin({0: library})
    builders = dispatch_builders(
        {0: library}, schedule, {0: RoutineContext.for_core(0, CORE_MODEL_A)}
    )
    low = builders[0](0x1000)
    high = builders[0](0x9000)
    assert low.base_address == 0x1000 and high.base_address == 0x9000
    assert len(low.code) == len(high.code)


def test_sb_byte_store_through_dcache():
    _, core = run_program(
        """
        addi r1, r0, 6      # D$ on, write-allocate
        csrw cachecfg, r1
        lui r2, 0x20000
        addi r3, r0, 0x7F
        sb r3, 1(r2)
        lbu r4, 1(r2)
        lw r5, 0(r2)
        halt
        """
    )
    assert core.regfile.read(4) == 0x7F
    assert core.regfile.read(5) == 0x7F << 8


def test_icu_pending_vector_visible_before_recognition():
    _, core = run_program(
        """
        lui r1, 0x7FFFF
        ori r1, r1, 0xFFF
        addi r2, r0, 1
        addo r3, r1, r2
        csrr r4, icu_pend
        halt
        """
    )
    # Depending on recognition timing the event is either still pending
    # (bit set in ICU_PEND) or already recognised (ICU_COUNT = 1).
    assert core.regfile.read(4) in (0, 1) or core.icu.read_count() == 1
