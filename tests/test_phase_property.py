"""Property test: the PhasedBuilder's static greedy-pairing simulation
agrees with the hardware front end on random pairable streams.

This is the load-bearing assumption of the whole routine-generation
approach: if the static phase model ever diverged from the real issue
logic under perfect fetch, the generated forwarding patterns would be
meaningless.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import Instruction, Mnemonic
from repro.soc import Soc
from repro.stl.packets import PhasedBuilder

_ALU = (Mnemonic.ADD, Mnemonic.XOR, Mnemonic.OR, Mnemonic.SUB, Mnemonic.AND)


@st.composite
def instruction_streams(draw):
    """Random short ALU/NOP streams over a small register set."""
    length = draw(st.integers(min_value=4, max_value=24))
    stream = []
    for _ in range(length):
        if draw(st.booleans()):
            stream.append(Instruction(Mnemonic.NOP))
        else:
            stream.append(
                Instruction(
                    draw(st.sampled_from(_ALU)),
                    rd=draw(st.integers(min_value=1, max_value=6)),
                    rs1=draw(st.integers(min_value=0, max_value=6)),
                    rs2=draw(st.integers(min_value=0, max_value=6)),
                )
            )
    return stream


def _static_pairs(stream):
    """Reference implementation of greedy packet formation."""
    from repro.cpu.hazard import can_dual_issue

    pairs = []
    index = 0
    while index < len(stream):
        first = stream[index]
        if (
            index + 1 < len(stream)
            and not (first.spec.is_branch or first.spec.is_system)
            and can_dual_issue(first, stream[index + 1])
        ):
            pairs.append((index, index + 1))
            index += 2
        else:
            pairs.append((index,))
            index += 1
    return pairs


@settings(max_examples=40, deadline=None)
@given(instruction_streams())
def test_phase_simulation_matches_hardware(stream):
    soc = Soc()
    core = soc.cores[0]
    asm = PhasedBuilder(core.itcm.base, "prop")
    for instr in stream:
        asm.emit(instr)
    asm.align()
    asm.halt()
    program = asm.build()
    for address, word in zip(
        range(program.base_address, program.end_address, 4),
        program.encoded_words(),
    ):
        core.itcm.write_word(address, word)
    core.keep_trace = True
    soc.start_core(0, program.base_address)
    soc.run(max_cycles=5_000)
    by_cycle = {}
    for uop in core.trace:
        if uop.instr.mnemonic is Mnemonic.HALT:
            continue
        by_cycle.setdefault(uop.issue_cycle, []).append(uop)
    observed = []
    for cycle in sorted(by_cycle):
        group = sorted(by_cycle[cycle], key=lambda u: u.slot)
        observed.append(tuple(u.seq - 1 for u in group))
    expected = [tuple(p) for p in _static_pairs(stream)]
    # Padding NOPs from align() may extend the final packet; compare the
    # stream-covering prefix.
    flat_observed = [i for group in observed for i in group if i < len(stream)]
    flat_expected = [i for group in expected for i in group]
    assert flat_observed == flat_expected
    trimmed = [
        tuple(i for i in group if i < len(stream))
        for group in observed
    ]
    trimmed = [g for g in trimmed if g]
    assert trimmed == [tuple(g) for g in expected]
