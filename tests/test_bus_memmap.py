"""Tests for the shared bus and the address map."""

import pytest

from repro.errors import MemoryError_
from repro.mem.bus import SystemBus, Transaction, TxnKind
from repro.mem.device import MemoryDevice
from repro.mem.memmap import (
    DTCM_BASE,
    ITCM_BASE,
    SRAM_BASE,
    MemoryMap,
    dtcm_base,
    is_cacheable,
    itcm_base,
)


def make_bus(num_cores: int = 2, latency: int = 3):
    memmap = MemoryMap()
    device = MemoryDevice("ram", 0, 0x1000, latency=latency)
    memmap.add(device)
    return SystemBus(memmap, num_cores), device


def step_until_done(bus, txn, limit=100):
    cycle = 0
    while not txn.done and cycle < limit:
        cycle += 1
        bus.step(cycle)
    assert txn.done, "transaction never completed"
    return cycle


def test_single_read_latency():
    bus, device = make_bus(latency=3)
    device.write_word(0x10, 77)
    txn = bus.submit(Transaction(0, TxnKind.DREAD, 0x10), cycle=0)
    cycles = step_until_done(bus, txn)
    assert txn.data == [77]
    # Grant on cycle 1, completes at grant + latency.
    assert cycles == 1 + 3


def test_write_transaction_applies_at_completion():
    bus, device = make_bus()
    txn = bus.submit(
        Transaction(0, TxnKind.DWRITE, 0x20, is_write=True, write_values=[5]),
        cycle=0,
    )
    bus.step(1)
    assert device.read_word(0x20) == 0  # not yet applied
    step_until_done(bus, txn)
    assert device.read_word(0x20) == 5


def test_byte_write_transaction():
    bus, device = make_bus()
    device.write_word(0x30, 0x11223344)
    txn = bus.submit(
        Transaction(
            0, TxnKind.DWRITE, 0x31, is_write=True, write_values=[0xAA],
            byte_write=True,
        ),
        cycle=0,
    )
    step_until_done(bus, txn)
    assert device.read_word(0x30) == 0x1122AA44


def test_burst_read():
    bus, device = make_bus()
    for i in range(4):
        device.write_word(0x40 + 4 * i, i)
    txn = bus.submit(Transaction(0, TxnKind.IFETCH, 0x40, burst_words=4), 0)
    step_until_done(bus, txn)
    assert txn.data == [0, 1, 2, 3]


def test_one_transaction_at_a_time():
    bus, _ = make_bus(latency=4)
    a = bus.submit(Transaction(0, TxnKind.DREAD, 0x0), 0)
    b = bus.submit(Transaction(0, TxnKind.DREAD, 0x4), 0)
    bus.step(1)
    assert a.grant_cycle == 1 and b.grant_cycle is None
    step_until_done(bus, b)
    assert b.grant_cycle > a.complete_cycle - 1


def test_round_robin_fairness():
    bus, _ = make_bus(num_cores=2, latency=2)
    txns = [
        bus.submit(Transaction(core, TxnKind.DREAD, 0x0), 0)
        for core in (0, 0, 1)
    ]
    for cycle in range(1, 50):
        bus.step(cycle)
    # Core 1's request must be granted before core 0's *second* request.
    assert txns[2].grant_cycle < txns[1].grant_cycle


def test_wait_cycle_accounting():
    bus, _ = make_bus(num_cores=2, latency=5)
    bus.submit(Transaction(0, TxnKind.DREAD, 0x0), 0)
    waiting = bus.submit(Transaction(1, TxnKind.DREAD, 0x4), 0)
    step_until_done(bus, waiting)
    assert bus.stats[1].wait_cycles > 0
    assert bus.stats[0].transactions == 1
    assert bus.stats[1].transactions == 1


def test_unknown_master_rejected():
    bus, _ = make_bus(num_cores=1)
    with pytest.raises(MemoryError_):
        bus.submit(Transaction(5, TxnKind.DREAD, 0), 0)


def test_bus_idle_property():
    bus, _ = make_bus()
    assert bus.idle
    txn = bus.submit(Transaction(0, TxnKind.DREAD, 0), 0)
    assert not bus.idle
    step_until_done(bus, txn)
    bus.step(99)
    assert bus.idle


def test_memmap_routing_and_overlap():
    memmap = MemoryMap()
    a = MemoryDevice("a", 0x0, 0x100)
    b = MemoryDevice("b", 0x100, 0x100)
    memmap.add(a)
    memmap.add(b)
    assert memmap.route(0x80) is a
    assert memmap.route(0x180) is b
    assert memmap.try_route(0x5000) is None
    with pytest.raises(MemoryError_):
        memmap.route(0x5000)
    with pytest.raises(MemoryError_):
        memmap.add(MemoryDevice("c", 0x80, 0x100))


def test_cacheability_rules():
    assert is_cacheable(0x0)  # flash
    assert is_cacheable(SRAM_BASE)  # SRAM
    assert not is_cacheable(ITCM_BASE)
    assert not is_cacheable(DTCM_BASE)


def test_tcm_window_addresses():
    assert itcm_base(0) == ITCM_BASE
    assert itcm_base(1) - itcm_base(0) == dtcm_base(1) - dtcm_base(0)
    assert dtcm_base(2) > itcm_base(2)
