"""Fuzzing the bus: the wrapped signature must survive *any* contention.

The scenario matrix of the paper samples a handful of configurations;
this test goes further and generates pseudo-random background programs
(random mixes of flash fetch streams, SRAM traffic and branches) on the
other cores, asserting the cache-wrapped routine still reproduces its
golden signature bit-for-bit.  This is the determinism claim under
adversarial, not just representative, contention.
"""

import pytest

from repro.core import build_cache_wrapped, golden_signature
from repro.cpu.core import CORE_MODEL_A
from repro.soc import Soc
from repro.stl import RoutineContext
from repro.stl.conventions import SIG_REG
from repro.stl.packets import PhasedBuilder
from repro.stl.routines import make_forwarding_routine
from repro.utils.rng import DeterministicRng

CTX = RoutineContext.for_core(0, CORE_MODEL_A)


def noise_program(seed: int, base: int):
    """A pseudo-random bus-hammering background program."""
    rng = DeterministicRng(seed)
    asm = PhasedBuilder(base, f"noise{seed}")
    asm.li(2, 0x2004_0000 + (seed % 7) * 0x100)
    asm.label("spin")
    for _ in range(rng.randint(6, 20)):
        choice = rng.randint(0, 3)
        if choice == 0:
            asm.nop(rng.randint(1, 3))
        elif choice == 1:
            asm.lw(3, 4 * rng.randint(0, 30), 2)
        elif choice == 2:
            asm.sw(3, 4 * rng.randint(0, 30), 2)
        else:
            asm.add(4, 3, 3)
    asm.j("spin")
    return asm.build()


@pytest.fixture(scope="module")
def wrapped_and_golden():
    routine = make_forwarding_routine(
        CORE_MODEL_A, with_pcs=False, patterns_per_path=2
    )
    program = build_cache_wrapped(routine, 0x1000, CTX)
    return program, golden_signature(program, 0)


@pytest.mark.parametrize("seed", [3, 17, 101, 999, 54321])
def test_wrapped_signature_immune_to_random_noise(seed, wrapped_and_golden):
    program, golden = wrapped_and_golden
    soc = Soc()
    soc.load(program)
    rng = DeterministicRng(seed * 7919)
    for other in (1, 2):
        noise = noise_program(seed + other, 0x0008_0000 + other * 0x4000)
        soc.load(noise)
        soc.cores[other].recording = False
        soc.run_cycles(rng.randint(0, 13))
        soc.start_core(other, noise.base_address)
    core = soc.cores[0]
    soc.run_cycles(rng.randint(0, 23))
    soc.start_core(0, 0x1000)
    for _ in range(4_000_000):
        if core.done:
            break
        soc.step()
    assert core.done
    assert core.regfile.read(SIG_REG) == golden


@pytest.mark.parametrize("seed", [3, 101])
def test_unwrapped_pc_signature_not_immune(seed):
    """Control experiment: the PC-bearing single-core program diverges
    from its golden signature under the same noise."""
    routine = make_forwarding_routine(
        CORE_MODEL_A, with_pcs=True, patterns_per_path=2
    )
    program = routine.build_single_core(0x1000, CTX)
    golden = golden_signature(program, 0)
    soc = Soc()
    soc.load(program)
    for other in (1, 2):
        noise = noise_program(seed + other, 0x0008_0000 + other * 0x4000)
        soc.load(noise)
        soc.cores[other].recording = False
        soc.start_core(other, noise.base_address)
    core = soc.cores[0]
    soc.start_core(0, 0x1000)
    for _ in range(4_000_000):
        if core.done:
            break
        soc.step()
    assert core.done
    assert core.regfile.read(SIG_REG) != golden
