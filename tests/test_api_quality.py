"""Release-quality checks on the public API surface.

Every public module, class and function of the package must carry a
docstring, and the top-level ``__all__`` must resolve.  These tests
keep the documentation contract honest as the library evolves.
"""

import importlib
import inspect
import pkgutil

import repro

PACKAGES = [
    "repro",
    "repro.isa",
    "repro.mem",
    "repro.cpu",
    "repro.soc",
    "repro.stl",
    "repro.stl.routines",
    "repro.core",
    "repro.faults",
    "repro.analysis",
    "repro.utils",
]


def iter_public_modules():
    for name in PACKAGES:
        module = importlib.import_module(name)
        yield module
        for info in pkgutil.iter_modules(module.__path__, prefix=name + "."):
            if info.name.rsplit(".", 1)[-1].startswith("_"):
                continue
            yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [
        module.__name__
        for module in iter_public_modules()
        if not (module.__doc__ or "").strip()
    ]
    assert not missing, f"modules without docstrings: {missing}"


def test_public_classes_and_functions_documented():
    missing = []
    for module in iter_public_modules():
        for name, item in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(item, "__module__", None) != module.__name__:
                continue
            if inspect.isclass(item) or inspect.isfunction(item):
                if not (item.__doc__ or "").strip():
                    missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_subpackage_all_resolves():
    for package in PACKAGES[1:]:
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.{name}"


def test_version_string():
    assert repro.__version__.count(".") == 2
