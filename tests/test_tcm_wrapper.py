"""Tests of the TCM/scratchpad execution strategy (Table IV baseline)."""

import pytest

from repro.core import build_tcm_wrapped, finalise_with_expected
from repro.cpu.core import CORE_MODEL_A
from repro.errors import ValidationError
from repro.soc import Soc
from repro.stl import RoutineContext
from repro.stl.conventions import RESULT_PASS, SIG_REG
from repro.stl.routines import make_forwarding_routine, make_interrupt_routine

CTX = RoutineContext.for_core(0, CORE_MODEL_A)


def run_deployment(deployment, core_id=0):
    soc = Soc()
    deployment.load(soc, core_id)
    soc.start_core(core_id, deployment.entry_point)
    soc.run(max_cycles=2_000_000)
    return soc, soc.cores[core_id]


def test_deployment_runs_and_reserves_tcm():
    routine = make_interrupt_routine(CORE_MODEL_A, windows=(0, 2))
    deployment = build_tcm_wrapped(routine, 0x1000, CTX)
    soc, core = run_deployment(deployment)
    assert core.done
    assert core.itcm.reserved_bytes == deployment.reserved_tcm_bytes
    assert deployment.reserved_tcm_bytes == deployment.body.size_bytes
    assert core.regfile.read(SIG_REG) != 0


def test_body_image_matches_body_program():
    routine = make_interrupt_routine(CORE_MODEL_A, windows=(0,))
    deployment = build_tcm_wrapped(routine, 0x1000, CTX)
    words = deployment.body.encoded_words()
    for i, word in enumerate(words):
        assert deployment.driver.data[deployment.image_address + 4 * i] == word


def test_copy_loop_actually_copies_into_tcm():
    routine = make_interrupt_routine(CORE_MODEL_A, windows=(0,))
    deployment = build_tcm_wrapped(routine, 0x1000, CTX)
    soc, core = run_deployment(deployment)
    base = deployment.body.base_address
    for i, word in enumerate(deployment.body.encoded_words()):
        assert core.itcm.read_word(base + 4 * i) == word


def test_signature_check_passes_with_expected():
    routine = make_interrupt_routine(CORE_MODEL_A, windows=(0, 2))

    def build(expected):
        return build_tcm_wrapped(routine, 0x1000, CTX, expected).driver

    # finalise_with_expected wants a plain Program builder; adapt.
    unchecked = build_tcm_wrapped(routine, 0x1000, CTX)
    soc, core = run_deployment(unchecked)
    expected = core.regfile.read(SIG_REG)
    checked = build_tcm_wrapped(routine, 0x1000, CTX, expected)
    soc, core = run_deployment(checked)
    assert core.dtcm.read_word(CTX.mailbox_address) == RESULT_PASS


def test_oversized_body_rejected():
    routine = make_forwarding_routine(CORE_MODEL_A, patterns_per_path=12)
    with pytest.raises(ValidationError):
        build_tcm_wrapped(routine, 0x1000, CTX, tcm_offset=12 << 10)


def test_driver_overrun_rejected():
    routine = make_interrupt_routine(CORE_MODEL_A)
    with pytest.raises(ValidationError, match="image_offset"):
        build_tcm_wrapped(routine, 0x1000, CTX, image_offset=8)


def test_tcm_execution_time_is_deterministic_under_contention():
    """The body runs from the I-TCM, so its signature is contention-proof
    (its *start time* may shift, but the computed signature may not)."""
    routine = make_interrupt_routine(CORE_MODEL_A, windows=(0, 3))
    deployment = build_tcm_wrapped(routine, 0x1000, CTX)

    def run_with_noise(noise: bool):
        soc = Soc()
        deployment.load(soc, 0)
        if noise:
            from repro.stl.packets import PhasedBuilder

            busy = PhasedBuilder(0x0010_0000, "busy")
            busy.label("spin")
            busy.nop(12)
            busy.j("spin")
            soc.load(busy.build())
            for other in (1, 2):
                soc.cores[other].recording = False
                soc.start_core(other, 0x0010_0000)
        soc.start_core(0, deployment.entry_point)
        for _ in range(2_000_000):
            soc.step()
            if soc.cores[0].done:
                break
        return soc.cores[0].regfile.read(SIG_REG)

    assert run_with_noise(False) == run_with_noise(True)
