"""Supervised execution: watchdog, bounded retry, quarantine, reports.

The acceptance story of the resilience layer:

* a seeded cache-line bit flip between the wrapper's loading and
  execution loops produces a signature mismatch that ONE supervised
  retry repairs — the retry re-enters the loading loop, re-warms the
  private caches and re-converges to the golden signature;
* a hung routine trips the per-routine watchdog and is quarantined
  after its retry budget, with the full attempt history in the
  :class:`RecoveryReport`;
* the whole disturbance-plus-recovery history is reproducible from the
  injection seed.
"""

import pytest

from repro.core import build_cache_wrapped, finalise_with_expected
from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_B
from repro.faults import AlwaysGlitch, ExecutionEntryCorruption, SoftErrorInjector
from repro.isa import AsmBuilder
from repro.soc import RecoveryReport, RoutineSpec, Soc
from repro.soc import TestSupervisor as Supervisor
from repro.soc.supervisor import (
    BUS_ERROR,
    PASS,
    SIGNATURE_MISMATCH,
    WATCHDOG_TIMEOUT,
)
from repro.stl import RoutineContext
from repro.stl import TestRoutine as Routine
from repro.stl.conventions import DATA_PTR
from repro.stl.signature import emit_signature_update

CTX0 = RoutineContext.for_core(0, CORE_MODEL_A)


def load_chain_routine() -> Routine:
    """A body whose execution loop CONSUMES cached data: eight loads
    covering exactly one 32-byte D-cache line, each folded into the
    signature.  Any bit flipped in that line between the loops lands in
    the checked signature (store-first bodies would mask it)."""

    def emit_body(asm, ctx):
        for i in range(8):
            asm.lw(1, 4 * i, DATA_PTR)
            emit_signature_update(asm, 1)

    return Routine("ld_chain", "GEN", emit_body)


def build_checked(base: int = 0x1000, ctx: RoutineContext = CTX0):
    """Two-phase build of the cache-wrapped routine with its golden
    signature check enabled."""
    routine = load_chain_routine()
    return finalise_with_expected(
        lambda expected: build_cache_wrapped(routine, base, ctx, expected),
        ctx.core_index,
    )


def spin_program(base: int = 0x5000):
    asm = AsmBuilder(base)
    asm.label("spin")
    asm.j("spin")
    return asm.build()


def spec_for(name, ctx, entry, expected=None, deadline=200_000) -> RoutineSpec:
    return RoutineSpec(
        name=name,
        core_id=ctx.core_index,
        entry_point=entry,
        mailbox_address=ctx.mailbox_address,
        expected_signature=expected,
        deadline_cycles=deadline,
    )


# ----------------------------------------------------------------------
# Acceptance (a): transient cache corruption repaired by one retry.
# ----------------------------------------------------------------------


def test_cache_flip_between_loops_is_repaired_by_one_retry():
    program, expected = build_checked()
    soc = Soc()
    soc.load(program)
    injector = SoftErrorInjector(seed=2024)
    soc.fault_hooks.append(ExecutionEntryCorruption(0, injector, which="dcache"))
    supervisor = Supervisor(soc, max_retries=2, injector=injector)
    report = supervisor.run_routine(spec_for("ld_chain", CTX0, 0x1000, expected))
    # First attempt: the flip lands after cache warm-up, inside the
    # checked execution loop -> signature mismatch.  Second attempt: the
    # wrapper re-invalidates (dropping the corrupt, clean line) and
    # re-warms from untouched SRAM -> golden signature.
    assert [a.outcome for a in report.attempts] == [SIGNATURE_MISMATCH, PASS]
    assert report.recovered and report.passed and not report.quarantined
    assert report.attempts[0].signature != expected
    assert report.attempts[1].signature == expected
    assert len(injector.log) == 1
    assert injector.log[0].kind == "cache-flip"
    assert injector.log[0].target.startswith("dcache")


def test_unperturbed_routine_passes_first_time():
    program, expected = build_checked()
    soc = Soc()
    soc.load(program)
    supervisor = Supervisor(soc)
    report = supervisor.run_routine(spec_for("ld_chain", CTX0, 0x1000, expected))
    assert [a.outcome for a in report.attempts] == [PASS]
    assert report.passed and not report.recovered


def test_icache_corruption_is_also_repaired():
    """A flip in the (clean) I-cache between the loops corrupts the
    execution loop's instruction stream; the retry's ICINV + reload
    repairs it whatever the failure mode was."""
    program, expected = build_checked()
    soc = Soc()
    soc.load(program)
    injector = SoftErrorInjector(seed=7)
    soc.fault_hooks.append(ExecutionEntryCorruption(0, injector, which="icache"))
    supervisor = Supervisor(soc, max_retries=2, injector=injector)
    report = supervisor.run_routine(spec_for("ld_chain", CTX0, 0x1000, expected))
    assert report.passed
    assert len(injector.log) == 1
    assert injector.log[0].target.startswith("icache")


# ----------------------------------------------------------------------
# Acceptance (b): hung routine -> watchdog -> quarantine.
# ----------------------------------------------------------------------


def test_hung_routine_is_quarantined_after_the_retry_budget():
    soc = Soc()
    soc.load(spin_program())
    supervisor = Supervisor(soc, max_retries=2)
    spec = spec_for("hang", CTX0, 0x5000, deadline=2_000)
    report = supervisor.run_routine(spec)
    assert report.quarantined and not report.passed
    assert len(report.attempts) == 3  # 1 + max_retries, then quarantine
    assert report.failure_causes == [WATCHDOG_TIMEOUT] * 3
    assert all(a.cycles >= 2_000 for a in report.attempts)
    # The watchdog trip carries per-core diagnostics.
    assert "core 0" in report.attempts[0].detail
    # The core is parked so the rest of the session can proceed.
    assert soc.cores[0].halted
    assert not soc.cores[0].active


def test_session_continues_past_a_quarantined_routine():
    ctx1 = RoutineContext.for_core(1, CORE_MODEL_B)
    wrapped, expected = build_checked(base=0x1000, ctx=ctx1)
    soc = Soc()
    soc.load(wrapped)
    soc.load(spin_program())
    supervisor = Supervisor(soc, max_retries=1)
    report = supervisor.run_session(
        [
            spec_for("hang", CTX0, 0x5000, deadline=2_000),
            spec_for("ld_chain", ctx1, 0x1000, expected),
        ]
    )
    assert report.quarantined_names == ["hang"]
    assert report.routine("ld_chain").passed
    assert not report.all_passed
    assert report.total_attempts == 3  # 2 failed + 1 passed
    with pytest.raises(KeyError):
        report.routine("nonexistent")


def test_persistent_bus_faults_quarantine_with_bus_error_cause():
    program, expected = build_checked()
    soc = Soc()
    soc.load(program)
    soc.bus.glitcher = AlwaysGlitch(target_core=0)
    supervisor = Supervisor(soc, max_retries=1)
    report = supervisor.run_routine(spec_for("ld_chain", CTX0, 0x1000, expected))
    assert report.quarantined
    assert report.failure_causes == [BUS_ERROR, BUS_ERROR]
    assert "core 0" in report.attempts[0].detail


# ----------------------------------------------------------------------
# Reports: reproducibility and serialisation.
# ----------------------------------------------------------------------


def corrupted_session(seed: int) -> RecoveryReport:
    program, expected = build_checked()
    soc = Soc()
    soc.load(program)
    injector = SoftErrorInjector(seed=seed)
    soc.fault_hooks.append(ExecutionEntryCorruption(0, injector))
    supervisor = Supervisor(soc, max_retries=2, injector=injector)
    return supervisor.run_session([spec_for("ld_chain", CTX0, 0x1000, expected)])


def test_recovery_report_is_reproducible_from_the_seed():
    first = corrupted_session(99).to_dict()
    second = corrupted_session(99).to_dict()
    assert first == second
    assert first["injections"]  # the flip is part of the record


def test_recovery_report_json_round_trip(tmp_path):
    report = corrupted_session(99)
    path = tmp_path / "report.json"
    report.save(path)
    loaded = RecoveryReport.load(path)
    assert loaded.to_dict() == report.to_dict()
    assert loaded.recovered_names == ["ld_chain"]
