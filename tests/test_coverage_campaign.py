"""Mini fault-coverage campaigns asserting the paper's core claims."""

import pytest

from repro.core import cache_wrapped_builder, run_scenario
from repro.core.determinism import Scenario, single_core_scenarios
from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_B, CORE_MODEL_C
from repro.faults import (
    coverage_range,
    forwarding_coverage,
    hdcu_coverage,
    icu_coverage,
)
from repro.soc import CodeAlignment, CodePosition
from repro.stl import RoutineContext
from repro.stl.routines import make_forwarding_routine, make_interrupt_routine

MODELS = {0: CORE_MODEL_A, 1: CORE_MODEL_B, 2: CORE_MODEL_C}


def contexts():
    return {i: RoutineContext.for_core(i, m) for i, m in MODELS.items()}


def mini_scenarios():
    return (
        Scenario((0, 1, 2), CodePosition.LOW, CodeAlignment.QWORD),
        Scenario((0, 1, 2), CodePosition.MID, CodeAlignment.WORD),
        Scenario((0, 1), CodePosition.HIGH, CodeAlignment.DWORD),
    )


@pytest.fixture(scope="module")
def fwd_runs():
    ctxs = contexts()
    plain = {
        i: make_forwarding_routine(m, with_pcs=False).builder_for(ctxs[i])
        for i, m in MODELS.items()
    }
    wrapped = {
        i: cache_wrapped_builder(make_forwarding_routine(m, with_pcs=False), ctxs[i])
        for i, m in MODELS.items()
    }
    plain_results = [run_scenario(plain, s) for s in mini_scenarios()]
    wrapped_results = [run_scenario(wrapped, s) for s in mini_scenarios()]
    single = run_scenario(plain, single_core_scenarios(0)[0])
    return plain_results, wrapped_results, single


def test_cached_forwarding_coverage_higher_and_stable(fwd_runs):
    plain_results, wrapped_results, _ = fwd_runs
    for core_id, model in MODELS.items():
        plain = [
            forwarding_coverage(r.per_core[core_id].log, model)
            for r in plain_results
            if core_id in r.per_core
        ]
        wrapped = [
            forwarding_coverage(r.per_core[core_id].log, model)
            for r in wrapped_results
            if core_id in r.per_core
        ]
        cached = coverage_range(wrapped)
        assert cached.stable
        assert cached.minimum_percent > max(c.coverage_percent for c in plain)


def test_no_cache_coverage_oscillates(fwd_runs):
    plain_results, _, _ = fwd_runs
    oscillating = 0
    for core_id, model in MODELS.items():
        coverages = [
            forwarding_coverage(r.per_core[core_id].log, model)
            for r in plain_results
            if core_id in r.per_core
        ]
        if coverage_range(coverages).spread > 0:
            oscillating += 1
    assert oscillating >= 2


def test_single_core_below_cached(fwd_runs):
    _, wrapped_results, single = fwd_runs
    model = CORE_MODEL_A
    single_cov = forwarding_coverage(single.per_core[0].log, model)
    cached = [
        forwarding_coverage(r.per_core[0].log, model) for r in wrapped_results
    ]
    assert single_cov.coverage_percent < min(c.coverage_percent for c in cached)


def test_core_c_forwarding_coverage_lowest_cached(fwd_runs):
    """The 32-bit signature masks part of core C's 64-bit datapath."""
    _, wrapped_results, _ = fwd_runs
    by_core = {}
    for core_id, model in MODELS.items():
        values = [
            forwarding_coverage(r.per_core[core_id].log, model).coverage_percent
            for r in wrapped_results
            if core_id in r.per_core
        ]
        by_core[model.name] = max(values)
    assert by_core["C"] < by_core["A"]
    assert by_core["C"] < by_core["B"]


def test_icu_coverage_higher_on_core_c():
    """One-hot status bits beat the shared mapping by several percent."""
    ctxs = contexts()
    results = {}
    for core_id, model in MODELS.items():
        builder = {core_id: cache_wrapped_builder(make_interrupt_routine(model), ctxs[core_id])}
        run = run_scenario(builder, single_core_scenarios(core_id)[0])
        results[model.name] = icu_coverage(
            run.per_core[core_id].log, model
        ).coverage_percent
    assert results["C"] > results["A"] + 2
    assert results["C"] > results["B"] + 2


def test_hdcu_stall_faults_need_performance_counters():
    """With PCs removed, the stall-request cone is unobservable, so the
    HDCU coverage must drop."""
    ctx = RoutineContext.for_core(0, CORE_MODEL_A)
    routine = make_forwarding_routine(CORE_MODEL_A, with_pcs=True)
    builder = {0: cache_wrapped_builder(routine, ctx)}
    scenario = single_core_scenarios(0)[0]
    with_pcs = run_scenario(builder, scenario, pcs_observable=True)
    without = run_scenario(builder, scenario, pcs_observable=False)
    cov_with = hdcu_coverage(with_pcs.per_core[0].log, CORE_MODEL_A)
    cov_without = hdcu_coverage(without.per_core[0].log, CORE_MODEL_A)
    assert cov_with.detected_faults > cov_without.detected_faults


def test_coverage_range_requires_data():
    with pytest.raises(ValueError):
        coverage_range([])
