"""Tests of the transition-delay fault model."""

from repro.faults import (
    TransitionFault,
    enumerate_transition_faults,
    transition_fault_simulate,
)
from repro.faults.gates import GateKind
from repro.faults.netlist import Netlist
from repro.faults.ppsfp import PatternSet


def buffer_netlist():
    nl = Netlist("buf")
    (a,) = nl.add_input_bus("a", 1)
    out = nl.add_gate(GateKind.BUF, a)
    nl.mark_output_bus("out", [out])
    return nl


def patterns_for(nl, values, observable=True):
    (a,) = nl.inputs["a"]
    out = nl.outputs["out"][0]
    packed = 0
    for t, v in enumerate(values):
        packed |= (v & 1) << t
    mask = (1 << len(values)) - 1
    return PatternSet(
        num_patterns=len(values),
        inputs={a: packed},
        output_observability={out: mask if observable else 0},
    )


def test_enumeration_two_per_net():
    nl = buffer_netlist()
    faults = enumerate_transition_faults(nl)
    assert len(faults) == 2 * nl.num_nets


def test_rising_transition_detected():
    nl = buffer_netlist()
    patterns = patterns_for(nl, [0, 1])  # launch 0->1 at t=1
    result = transition_fault_simulate(nl, patterns)
    detected_kinds = result.detected_faults
    # Slow-to-rise faults on both nets detected; slow-to-fall not.
    assert detected_kinds == 2


def test_falling_transition_detected():
    nl = buffer_netlist()
    patterns = patterns_for(nl, [1, 0])
    out = nl.outputs["out"][0]
    str_faults = [TransitionFault(out, True)]
    stf_faults = [TransitionFault(out, False)]
    assert transition_fault_simulate(nl, patterns, str_faults).detected_faults == 0
    assert transition_fault_simulate(nl, patterns, stf_faults).detected_faults == 1


def test_constant_stream_detects_nothing():
    nl = buffer_netlist()
    patterns = patterns_for(nl, [1, 1, 1, 1])
    result = transition_fault_simulate(nl, patterns)
    assert result.detected_faults == 0


def test_first_pattern_cannot_launch():
    """Pattern 0 has no predecessor: a '1' there is not a transition."""
    nl = buffer_netlist()
    patterns = patterns_for(nl, [1])
    result = transition_fault_simulate(nl, patterns)
    assert result.detected_faults == 0


def test_unobservable_capture_misses():
    nl = buffer_netlist()
    patterns = patterns_for(nl, [0, 1], observable=False)
    assert transition_fault_simulate(nl, patterns).detected_faults == 0


def test_transition_through_gate():
    nl = Netlist("and")
    a, b = nl.add_input_bus("in", 2)
    out = nl.add_gate(GateKind.AND, a, b)
    nl.mark_output_bus("out", [out])
    # a: 0 -> 1 with b held 1: the rise propagates and is captured.
    patterns = PatternSet(
        num_patterns=2,
        inputs={a: 0b10, b: 0b11},
        output_observability={out: 0b11},
    )
    faults = [TransitionFault(a, True), TransitionFault(a, False)]
    result = transition_fault_simulate(nl, patterns, faults)
    assert result.detected_faults == 1  # only the slow-to-rise


def test_ordered_pattern_sets_preserve_sequence():
    from repro.core import build_cache_wrapped
    from repro.cpu.core import CORE_MODEL_A
    from repro.faults import get_modules
    from repro.faults.observability import forwarding_pattern_sets
    from repro.stl import RoutineContext
    from repro.stl.routines import make_forwarding_routine
    from tests.conftest import run_program

    routine = make_forwarding_routine(
        CORE_MODEL_A, with_pcs=False, patterns_per_path=1
    )
    ctx = RoutineContext.for_core(0, CORE_MODEL_A)
    program = build_cache_wrapped(routine, 0x1000, ctx)
    _, core = run_program(program)
    modules = get_modules(CORE_MODEL_A)
    merged = forwarding_pattern_sets(core.log, modules)
    ordered = forwarding_pattern_sets(core.log, modules, ordered=True)
    for port in merged:
        assert ordered[port].num_patterns >= merged[port].num_patterns
    # Ordered pattern count equals the observable record count per port.
    per_port = {}
    for record in core.log.forwarding:
        if record.observable:
            key = (record.slot, record.operand)
            per_port[key] = per_port.get(key, 0) + 1
    for port, patterns in ordered.items():
        assert patterns.num_patterns == per_port[port]


def test_cached_beats_no_cache_for_delay_faults():
    from repro.core import build_cache_wrapped
    from repro.cpu.core import CORE_MODEL_A
    from repro.faults import forwarding_transition_coverage
    from repro.stl import RoutineContext
    from repro.stl.routines import make_forwarding_routine
    from tests.conftest import run_program

    routine = make_forwarding_routine(CORE_MODEL_A, with_pcs=False)
    ctx = RoutineContext.for_core(0, CORE_MODEL_A)
    plain = routine.build_single_core(0x1000, ctx)
    wrapped = build_cache_wrapped(routine, 0x1000, ctx)
    _, plain_core = run_program(plain, max_cycles=2_000_000)
    _, wrapped_core = run_program(wrapped, max_cycles=2_000_000)
    plain_cov = forwarding_transition_coverage(plain_core.log, CORE_MODEL_A)
    wrapped_cov = forwarding_transition_coverage(wrapped_core.log, CORE_MODEL_A)
    assert wrapped_cov.coverage_percent > plain_cov.coverage_percent
