"""Consistency tests: the generated netlists must agree bit-for-bit with
the behavioural pipeline model on every recorded activation."""

import pytest

from repro.core import build_cache_wrapped
from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_B, CORE_MODEL_C
from repro.faults.generators import PORTS, get_modules
from repro.faults.observability import (
    forwarding_pattern_sets,
    hdcu_pattern_sets,
    icu_pattern_set,
)
from repro.faults.ppsfp import good_simulation
from repro.stl import RoutineContext
from repro.stl.routines import make_forwarding_routine, make_interrupt_routine
from repro.utils.bitops import bit as get_bit
from tests.conftest import run_program

MODELS = {0: CORE_MODEL_A, 1: CORE_MODEL_B, 2: CORE_MODEL_C}


def run_routine(core_id, routine):
    model = MODELS[core_id]
    ctx = RoutineContext.for_core(core_id, model)
    program = build_cache_wrapped(routine, 0x1000, ctx)
    soc, core = run_program(program, core_id=core_id, max_cycles=2_000_000)
    return core.log


def test_fault_lists_differ_between_a_and_b():
    a, b = get_modules(CORE_MODEL_A), get_modules(CORE_MODEL_B)
    assert a.forwarding_fault_count != b.forwarding_fault_count
    assert a.hdcu_fault_count != b.hdcu_fault_count


def test_core_c_forwarding_faults_roughly_double():
    a, c = get_modules(CORE_MODEL_A), get_modules(CORE_MODEL_C)
    ratio = c.forwarding_fault_count / a.forwarding_fault_count
    assert 1.6 < ratio < 2.6


def test_icu_status_width_by_model():
    assert len(get_modules(CORE_MODEL_A).icu.outputs["status"]) == 3
    assert len(get_modules(CORE_MODEL_C).icu.outputs["status"]) == 6


@pytest.mark.parametrize("core_id", [0, 2], ids=["coreA", "coreC"])
def test_forwarding_netlist_reproduces_selected_data(core_id):
    """For every pattern, the mux netlist's output must equal the data
    of the recorded select source."""
    model = MODELS[core_id]
    routine = make_forwarding_routine(model, with_pcs=False, patterns_per_path=1)
    log = run_routine(core_id, routine)
    modules = get_modules(model)
    pattern_sets = forwarding_pattern_sets(log, modules)
    assert pattern_sets
    width = 64 if model.is64 else 32
    for port, patterns in pattern_sets.items():
        nl = modules.forwarding[port]
        values = good_simulation(nl, patterns)
        out_nets = nl.outputs["out"]
        sel_nets = nl.inputs["sel"]
        data_nets = [nl.inputs[f"d{i}"] for i in range(5)]
        for t in range(patterns.num_patterns):
            select = next(
                i for i in range(5) if get_bit(patterns.inputs[sel_nets[i]], t)
            )
            expected = 0
            for j in range(width):
                expected |= get_bit(patterns.inputs[data_nets[select][j]], t) << j
            observed = 0
            for j in range(width):
                observed |= get_bit(values[out_nets[j]], t) << j
            assert observed == expected


@pytest.mark.parametrize("core_id", [0, 1], ids=["coreA", "coreB"])
def test_hdcu_netlist_reproduces_selects_and_stalls(core_id):
    model = MODELS[core_id]
    routine = make_forwarding_routine(model, with_pcs=True, patterns_per_path=1)
    log = run_routine(core_id, routine)
    modules = get_modules(model)
    pattern_sets = hdcu_pattern_sets(log, modules)
    records_by_port = {}
    for record in log.hdcu:
        if record.observable:
            records_by_port.setdefault((record.slot, record.operand), []).append(
                record
            )
    checked = 0
    for port, patterns in pattern_sets.items():
        nl = modules.hdcu[port]
        values = good_simulation(nl, patterns)
        sel_nets = nl.outputs["sel"]
        stall_net = nl.outputs["stall"][0]
        # Re-derive each unique pattern's expected select from a record
        # with the same stimulus.
        seen = {}
        for record in records_by_port.get(port, []):
            key = (
                record.consumer_reg,
                record.producer_regs,
                record.producer_valid,
                record.producer_load_mask,
            )
            if key in seen:
                continue
            seen[key] = record
        for t in range(patterns.num_patterns):
            consumer = sum(
                get_bit(patterns.inputs[nl.inputs["c"][i]], t) << i
                for i in range(5)
            )
            producers = tuple(
                sum(
                    get_bit(patterns.inputs[nl.inputs[f"p{k}"][i]], t) << i
                    for i in range(5)
                )
                for k in range(4)
            )
            valid = sum(
                get_bit(patterns.inputs[nl.inputs["valid"][i]], t) << i
                for i in range(4)
            )
            load = sum(
                get_bit(patterns.inputs[nl.inputs["load"][i]], t) << i
                for i in range(4)
            )
            record = seen.get((consumer, producers, valid, load))
            if record is None or record.stall:
                continue
            onehot = [get_bit(values[sel_nets[i]], t) for i in range(5)]
            assert sum(onehot) == 1
            assert onehot[int(record.select)] == 1
            assert get_bit(values[stall_net], t) == int(record.stall)
            checked += 1
    assert checked > 50


@pytest.mark.parametrize("core_id", [0, 2], ids=["coreA", "coreC"])
def test_icu_netlist_reproduces_status_mapping(core_id):
    model = MODELS[core_id]
    routine = make_interrupt_routine(model, windows=(0, 2, 4))
    log = run_routine(core_id, routine)
    modules = get_modules(model)
    patterns = icu_pattern_set(log, modules)
    assert patterns.num_patterns > 0
    nl = modules.icu
    values = good_simulation(nl, patterns)
    status_nets = nl.outputs["status"]
    event_nets = nl.inputs["e"]
    from repro.cpu.icu import Icu, IcuConfig

    icu = Icu(IcuConfig(shared_status_bits=model.icu_shared_status_bits))
    for t in range(patterns.num_patterns):
        event = next(
            e for e in range(6) if get_bit(patterns.inputs[event_nets[e]], t)
        )
        expected_bit = icu.map_event(event)
        observed = [get_bit(values[net], t) for net in status_nets]
        assert observed[expected_bit] == 1
        assert sum(observed) == 1


def test_icu_imp_and_count_paths():
    model = CORE_MODEL_A
    routine = make_interrupt_routine(model, windows=(0, 2, 4, 7))
    log = run_routine(0, routine)
    modules = get_modules(model)
    patterns = icu_pattern_set(log, modules)
    nl = modules.icu
    values = good_simulation(nl, patterns)
    imp_in = nl.inputs["imp"]
    imp_out = nl.outputs["imp_out"]
    for i in range(4):
        assert values[imp_out[i]] == patterns.inputs[imp_in[i]]
    # count_out = count_in + 1 (mod 16) whenever an event is present.
    count_in_nets = nl.inputs["count"]
    count_out_nets = nl.outputs["count_out"]
    for t in range(patterns.num_patterns):
        count_in = sum(
            get_bit(patterns.inputs[count_in_nets[i]], t) << i for i in range(4)
        )
        count_out = sum(
            get_bit(values[count_out_nets[i]], t) << i for i in range(4)
        )
        assert count_out == (count_in + 1) % 16
