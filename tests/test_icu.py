"""Tests of the imprecise-interrupt recognition model."""

from repro.cpu.icu import Icu, IcuConfig
from repro.isa.instructions import Event


def make_icu(shared=True, max_wait=6):
    return Icu(IcuConfig(shared_status_bits=shared, max_wait=max_wait))


def test_status_bit_mapping_shared_vs_onehot():
    shared = make_icu(shared=True)
    onehot = make_icu(shared=False)
    assert shared.map_event(Event.OVF_ADD) == shared.map_event(Event.OVF_SUB)
    assert onehot.map_event(Event.OVF_ADD) != onehot.map_event(Event.OVF_SUB)
    assert shared.num_status_bits == 3
    assert onehot.num_status_bits == 6


def test_recognition_waits_for_retirement_bubble():
    icu = make_icu()
    icu.raise_event(Event.DIV0, cycle=10)
    # Full dual retirement: no recognition yet.
    assert icu.step(11, retired_this_cycle=2) is None
    assert icu.read_status() == 0
    # A bubble recognises the event.
    recognition = icu.step(12, retired_this_cycle=1)
    assert recognition is not None
    assert icu.read_status() == 1 << icu.map_event(Event.DIV0)
    # Imprecision counts the younger instructions retired meanwhile.
    assert recognition.imprecision == 3


def test_recognition_forced_after_max_wait():
    icu = make_icu(max_wait=3)
    icu.raise_event(Event.SAT, cycle=0)
    assert icu.step(1, 2) is None
    assert icu.step(2, 2) is None
    recognition = icu.step(3, 2)
    assert recognition is not None
    assert recognition.imprecision == 6


def test_merged_recognition():
    icu = make_icu()
    icu.raise_event(Event.OVF_ADD, cycle=0)
    icu.raise_event(Event.OVF_SUB, cycle=0)
    recognition = icu.step(1, retired_this_cycle=0)
    assert recognition.merged
    assert recognition.events == (Event.OVF_ADD, Event.OVF_SUB)
    # Shared mapping: both events fold into one status bit.
    assert recognition.status_bits == 1 << 0
    assert icu.read_count() == 2


def test_merged_recognition_onehot_distinguishes():
    icu = make_icu(shared=False)
    icu.raise_event(Event.OVF_ADD, cycle=0)
    icu.raise_event(Event.OVF_SUB, cycle=0)
    recognition = icu.step(1, 0)
    assert recognition.status_bits == 0b11


def test_pending_vector_and_acknowledge():
    icu = make_icu()
    icu.raise_event(Event.SHIFTO, cycle=0)
    assert icu.pending_vector == 1 << int(Event.SHIFTO)
    icu.step(1, 0)
    assert icu.pending_vector == 0
    assert icu.read_status() != 0
    icu.acknowledge()
    assert icu.read_status() == 0
    assert icu.read_imprecision() == 0
    # The recognition *count* survives acknowledge (it is a counter).
    assert icu.read_count() == 1


def test_no_event_no_recognition():
    icu = make_icu()
    for cycle in range(5):
        assert icu.step(cycle, 0) is None


def test_imprecision_depends_on_retirement_stream():
    """The paper's core claim: the same event sequence yields different
    imprecision when the retirement stream differs."""

    def run(retire_pattern):
        icu = make_icu()
        icu.raise_event(Event.DIV0, cycle=0)
        for cycle, retired in enumerate(retire_pattern, start=1):
            recognition = icu.step(cycle, retired)
            if recognition:
                return recognition.imprecision
        return None

    smooth = run([2, 2, 2, 2, 2, 2])  # stall-free stream
    stalled = run([2, 0, 2, 2, 2, 2])  # a fetch bubble on cycle 2
    assert smooth != stalled


def test_recognitions_are_logged():
    icu = make_icu()
    icu.raise_event(Event.DIV0, 0)
    icu.step(1, 0)
    icu.raise_event(Event.SAT, 5)
    icu.step(6, 0)
    assert len(icu.recognitions) == 2
    assert icu.recognitions[0].events == (Event.DIV0,)
