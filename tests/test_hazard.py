"""Tests of the dual-issue pairing rules and hazard predicates."""

from repro.cpu.hazard import can_dual_issue, unresolved_producer
from repro.cpu.uop import Uop
from repro.isa.instructions import Instruction, Mnemonic


def ins(mnemonic, rd=0, rs1=0, rs2=0, imm=0):
    return Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2, imm=imm)


def test_independent_alu_pair_issues_together():
    assert can_dual_issue(ins(Mnemonic.ADD, 1, 2, 3), ins(Mnemonic.XOR, 4, 5, 6))


def test_raw_dependency_splits_packet():
    assert not can_dual_issue(ins(Mnemonic.ADD, 1, 2, 3), ins(Mnemonic.ADD, 4, 1, 5))


def test_waw_dependency_splits_packet():
    assert not can_dual_issue(ins(Mnemonic.ADD, 1, 2, 3), ins(Mnemonic.SUB, 1, 4, 5))


def test_war_is_allowed():
    # Second writes what first reads: fine for in-order same-cycle issue.
    assert can_dual_issue(ins(Mnemonic.ADD, 1, 2, 3), ins(Mnemonic.ADD, 2, 4, 5))


def test_memory_op_must_be_slot0():
    assert can_dual_issue(ins(Mnemonic.LW, 1, 2), ins(Mnemonic.ADD, 3, 4, 5))
    assert not can_dual_issue(ins(Mnemonic.ADD, 3, 4, 5), ins(Mnemonic.LW, 1, 2))


def test_mul_must_be_slot0():
    assert can_dual_issue(ins(Mnemonic.MUL, 1, 2, 3), ins(Mnemonic.ADD, 4, 5, 6))
    assert not can_dual_issue(ins(Mnemonic.ADD, 4, 5, 6), ins(Mnemonic.MUL, 1, 2, 3))


def test_two_memory_ops_never_pair():
    assert not can_dual_issue(ins(Mnemonic.LW, 1, 2), ins(Mnemonic.SW, 0, 3, 4))


def test_branch_terminates_packet():
    branch = ins(Mnemonic.BEQ, rs1=1, rs2=2)
    assert not can_dual_issue(branch, ins(Mnemonic.ADD, 3, 4, 5))
    assert not can_dual_issue(ins(Mnemonic.ADD, 3, 4, 5), branch)


def test_system_instructions_issue_alone():
    csr = ins(Mnemonic.CSRR, rd=1)
    assert not can_dual_issue(csr, ins(Mnemonic.ADD, 3, 4, 5))
    assert not can_dual_issue(ins(Mnemonic.ADD, 3, 4, 5), csr)


def test_nop_pairs_freely():
    assert can_dual_issue(ins(Mnemonic.ADD, 1, 2, 3), ins(Mnemonic.NOP))
    assert can_dual_issue(ins(Mnemonic.NOP), ins(Mnemonic.ADD, 1, 2, 3))


def test_64bit_pair_dependency_detected_via_high_half():
    first = ins(Mnemonic.ADD, rd=3, rs1=1, rs2=2)  # writes r3
    second = ins(Mnemonic.ADD64, rd=6, rs1=2, rs2=8)  # reads r2,r3,r8,r9
    assert not can_dual_issue(first, second)


def test_unresolved_producer_detects_pending_load():
    load = Uop(
        seq=1, pc=0, instr=ins(Mnemonic.LW, 5, 2), slot=0, dests=(5,),
        result=None, result_ready=False, is_load=True,
    )
    consumer = ins(Mnemonic.ADD, 6, 5, 7)
    other = ins(Mnemonic.ADD, 6, 8, 7)
    assert unresolved_producer(consumer, [load])
    assert not unresolved_producer(other, [load])
    assert not unresolved_producer(ins(Mnemonic.NOP), [load])
