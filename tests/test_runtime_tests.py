"""Tests of the run-time (idle-window) self-test mode."""

import pytest

from repro.core import golden_signature
from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_B, CORE_MODEL_C
from repro.soc import Soc
from repro.stl import RoutineContext
from repro.stl.conventions import RESULT_PASS
from repro.stl.routines import make_background_routines, make_forwarding_routine
from repro.stl.runtime import (
    build_runtime_session,
    expected_app_checksum,
    session_checksum,
    session_verdict,
)

MODELS = {0: CORE_MODEL_A, 1: CORE_MODEL_B, 2: CORE_MODEL_C}


def routines_with_expected(core_index, model, count=2):
    routines = make_background_routines()[:count]
    ctx = RoutineContext.for_core(core_index, model)
    out = []
    for routine in routines:
        program = routine.build_single_core(0x7000, ctx)
        out.append((routine, golden_signature(program, core_index)))
    return out, ctx


def test_session_runs_and_passes_single_core():
    pairs, ctx = routines_with_expected(0, CORE_MODEL_A)
    session = build_runtime_session(pairs, rounds=4, base_address=0x1000, ctx=ctx)
    soc = Soc()
    soc.load(session.program)
    soc.start_core(0, session.entry_point)
    soc.run(max_cycles=4_000_000)
    passed, checksum_ok = session_verdict(soc.cores[0], session)
    assert passed
    assert checksum_ok


def test_runtime_tests_survive_full_contention():
    """The paper: run-time tests CAN be executed in parallel."""
    soc = Soc()
    sessions = {}
    for core_id, model in MODELS.items():
        pairs, ctx = routines_with_expected(core_id, model)
        sessions[core_id] = build_runtime_session(
            pairs, rounds=3, base_address=0x1000 + core_id * 0x8000, ctx=ctx
        )
        soc.load(sessions[core_id].program)
    for core_id, session in sessions.items():
        soc.start_core(core_id, session.entry_point)
    soc.run(max_cycles=8_000_000)
    for core_id, session in sessions.items():
        passed, checksum_ok = session_verdict(soc.cores[core_id], session)
        assert passed, f"core {core_id} run-time test failed under contention"
        assert checksum_ok


def test_app_checksum_model_matches_hardware():
    pairs, ctx = routines_with_expected(0, CORE_MODEL_A, count=1)
    for rounds in (1, 2, 5):
        session = build_runtime_session(
            pairs, rounds=rounds, base_address=0x1000, ctx=ctx
        )
        soc = Soc()
        soc.load(session.program)
        soc.start_core(0, session.entry_point)
        soc.run(max_cycles=4_000_000)
        _, checksum_ok = session_verdict(soc.cores[0], expected_app_checksum(rounds))
        assert checksum_ok
        assert session_checksum(soc.cores[0]) == expected_app_checksum(rounds)


def test_wrong_expected_signature_latches_fail():
    routines = make_background_routines()[:1]
    ctx = RoutineContext.for_core(0, CORE_MODEL_A)
    session = build_runtime_session(
        [(routines[0], 0xDEAD_0000)], rounds=2, base_address=0x1000, ctx=ctx
    )
    soc = Soc()
    soc.load(session.program)
    soc.start_core(0, session.entry_point)
    soc.run(max_cycles=4_000_000)
    passed, checksum_ok = session_verdict(soc.cores[0], session)
    assert not passed
    # The application itself is unaffected by the failing test.
    assert checksum_ok


def test_pc_bearing_routine_rejected():
    routine = make_forwarding_routine(CORE_MODEL_A, with_pcs=True)
    ctx = RoutineContext.for_core(0, CORE_MODEL_A)
    with pytest.raises(ValueError, match="performance counters"):
        build_runtime_session([(routine, 0)], rounds=1, base_address=0x1000, ctx=ctx)


def test_empty_routine_list_rejected():
    ctx = RoutineContext.for_core(0, CORE_MODEL_A)
    with pytest.raises(ValueError):
        build_runtime_session([], rounds=1, base_address=0x1000, ctx=ctx)
