"""End-to-end execution tests of the pipeline core."""

import pytest

from repro.errors import ExecutionLimitExceeded, SimulationError
from repro.isa import AsmBuilder, Csr, Mnemonic
from repro.isa.instructions import Instruction
from repro.soc import Soc
from tests.conftest import run_program


def test_arithmetic_loop():
    _, core = run_program(
        """
        .org 0x100
        addi r1, r0, 10
        addi r2, r0, 0
        loop: add r2, r2, r1
        addi r1, r1, -1
        bne r1, r0, loop
        halt
        """
    )
    assert core.regfile.read(2) == 55
    assert core.done


def test_memory_roundtrip_sram():
    _, core = run_program(
        """
        lui r3, 0x20000
        addi r1, r0, 1234
        sw r1, 0(r3)
        lw r2, 0(r3)
        sb r1, 5(r3)
        lbu r4, 5(r3)
        halt
        """
    )
    assert core.regfile.read(2) == 1234
    assert core.regfile.read(4) == 1234 & 0xFF


def test_tcm_data_access():
    asm = AsmBuilder(0x100)
    asm.li(3, 0x0500_0000)  # core 0 D-TCM
    asm.li(1, 0x5A5A)
    asm.sw(1, 8, 3)
    asm.lw(2, 8, 3)
    asm.halt()
    _, core = run_program(asm.build())
    assert core.regfile.read(2) == 0x5A5A
    assert core.dtcm.read_word(core.dtcm.base + 8) == 0x5A5A


def test_jal_jr_roundtrip():
    _, core = run_program(
        """
        .org 0x200
        addi r1, r0, 1
        jal sub
        addi r1, r1, 16
        halt
        sub: addi r1, r1, 2
        jr r31
        """
    )
    assert core.regfile.read(1) == 19
    assert core.regfile.read(31) == 0x208


def test_untaken_branch_falls_through():
    _, core = run_program(
        """
        addi r1, r0, 1
        beq r1, r0, skip
        addi r2, r0, 7
        skip: halt
        """
    )
    assert core.regfile.read(2) == 7


def test_csr_reads():
    _, core = run_program(
        """
        csrr r1, coreid
        csrr r2, cycles
        csrr r3, instret
        halt
        """
    )
    assert core.regfile.read(1) == 0
    assert core.regfile.read(2) > 0


def test_dual_issue_achieves_ipc_above_one():
    asm = AsmBuilder(0x100)
    # Run from the I-TCM so fetch never limits issue.
    asm = AsmBuilder(0x0400_0000)
    for i in range(100):
        asm.emit(Instruction(Mnemonic.ADD, rd=1 + i % 4, rs1=0, rs2=0))
        asm.emit(Instruction(Mnemonic.ADD, rd=5 + i % 4, rs1=0, rs2=0))
    asm.halt()
    program = asm.build()
    soc = Soc()
    core = soc.cores[0]
    for address, word in zip(
        range(program.base_address, program.end_address, 4),
        program.encoded_words(),
    ):
        core.itcm.write_word(address, word)
    soc.start_core(0, program.base_address)
    soc.run(max_cycles=10_000)
    assert core.instret / core.cycles > 1.2


def test_trap_event_reaches_icu():
    _, core = run_program(
        """
        lui r1, 0x7FFFF
        ori r1, r1, 0xFFF
        addi r2, r0, 1
        addo r3, r1, r2
        nop
        nop
        nop
        nop
        csrr r4, icu_status
        csrr r5, icu_count
        halt
        """
    )
    assert core.regfile.read(4) == 1  # OVF_ADD maps to status bit 0
    assert core.regfile.read(5) == 1


def test_icu_ack_clears_status():
    _, core = run_program(
        """
        addi r1, r0, 5
        divt r2, r1, r0
        nop
        nop
        nop
        csrw icu_ack, r0
        csrr r3, icu_status
        halt
        """
    )
    assert core.regfile.read(3) == 0


def test_cachecfg_csr_controls_caches():
    _, core = run_program(
        """
        addi r1, r0, 7
        csrw cachecfg, r1
        csrr r2, cachecfg
        addi r1, r0, 0
        csrw cachecfg, r1
        csrr r3, cachecfg
        halt
        """
    )
    assert core.regfile.read(2) == 7
    assert core.regfile.read(3) == 0


def test_icinv_dcinv_execute():
    _, core = run_program("icinv\ndcinv\nhalt\n")
    assert core.icache.stats.invalidations == 1
    assert core.dcache.stats.invalidations == 1


def test_sync_drains_pipeline():
    _, core = run_program(
        """
        lui r3, 0x20000
        addi r1, r0, 9
        sw r1, 0(r3)
        sync
        lw r2, 0(r3)
        halt
        """
    )
    assert core.regfile.read(2) == 9


def test_64bit_ops_require_core_c(soc):
    asm = AsmBuilder(0x100)
    asm.add64(2, 4, 6)
    asm.halt()
    program = asm.build()
    soc.load(program)
    soc.start_core(0, 0x100)  # core A: no 64-bit extension
    with pytest.raises(SimulationError):
        soc.run(max_cycles=1000)


def test_64bit_ops_on_core_c(soc):
    asm = AsmBuilder(0x100)
    asm.li(4, 0xFFFFFFFF)
    asm.li(5, 0x1)
    asm.li(6, 0x1)
    asm.li(7, 0x0)
    asm.add64(2, 4, 6)  # 0x1_FFFFFFFF + 1 = 0x2_00000000
    asm.halt()
    program = asm.build()
    soc.load(program)
    soc.start_core(2, 0x100)
    soc.run(max_cycles=10_000)
    core = soc.cores[2]
    assert core.regfile.read(2) == 0
    assert core.regfile.read(3) == 2


def test_runaway_program_hits_cycle_limit(soc):
    asm = AsmBuilder(0x100)
    asm.label("spin")
    asm.j("spin")
    soc.load(asm.build())
    soc.start_core(0, 0x100)
    with pytest.raises(ExecutionLimitExceeded):
        soc.run(max_cycles=500)


def test_counters_monotonic_and_consistent():
    _, core = run_program(
        """
        addi r1, r0, 50
        loop: addi r1, r1, -1
        bne r1, r0, loop
        halt
        """
    )
    # 1 init + 50 iterations of (addi + bne) + halt.
    assert core.instret == 1 + 2 * 50 + 1
    assert core.cycles >= core.instret / 2
    assert core.ifstall > 0  # uncached flash fetch always stalls some


def test_store_to_load_forwarding_through_memory():
    """A store immediately followed by a load of the same address must
    return the stored value (the memory unit serialises accesses)."""
    _, core = run_program(
        """
        lui r3, 0x20000
        addi r1, r0, 77
        sw r1, 4(r3)
        lw r2, 4(r3)
        halt
        """
    )
    assert core.regfile.read(2) == 77
