"""Tests of the TAS instruction and the dynamic (claim-based) scheduler."""

import pytest

from repro.core import golden_signature
from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_B, CORE_MODEL_C
from repro.soc import Soc
from repro.soc.scheduler import (
    DynamicSchedulerLayout,
    build_dynamic_dispatch_program,
)
from repro.stl import RoutineContext, build_library
from tests.conftest import run_program

MODELS = {0: CORE_MODEL_A, 1: CORE_MODEL_B, 2: CORE_MODEL_C}


def test_tas_instruction_semantics():
    _, core = run_program(
        """
        lui r2, 0x20000
        tas r3, 0(r2)      # first claim: reads 0, sets 1
        tas r4, 0(r2)      # second claim: reads 1
        lw r5, 0(r2)
        halt
        """
    )
    assert core.regfile.read(3) == 0
    assert core.regfile.read(4) == 1
    assert core.regfile.read(5) == 1


def test_tas_bypasses_dcache():
    _, core = run_program(
        """
        addi r1, r0, 6     # D$ on, write-allocate
        csrw cachecfg, r1
        lui r2, 0x20000
        tas r3, 8(r2)
        halt
        """
    )
    assert core.dcache.resident_lines() == 0


def test_mutual_exclusion_under_contention():
    """Three cores increment a lock-protected counter; no update is lost."""
    from repro.stl.packets import PhasedBuilder

    soc = Soc()
    lock, counter = 0x200F_8000, 0x200F_8004
    increments = 40
    for core_id in range(3):
        asm = PhasedBuilder(0x1000 + core_id * 0x4000, f"inc{core_id}")
        asm.li(5, increments)
        asm.label("outer")
        asm.li(1, lock)
        asm.label("acquire")
        asm.tas(2, 0, 1)
        asm.bne(2, 0, "acquire")
        asm.li(3, counter)
        asm.lw(4, 0, 3)
        asm.addi(4, 4, 1)
        asm.sw(4, 0, 3)
        asm.sync()
        asm.sw(0, 0, 1)  # release
        asm.addi(5, 5, -1)
        asm.bne(5, 0, "outer")
        asm.halt()
        program = asm.build()
        soc.load(program)
        soc.cores[core_id].recording = False
        soc.start_core(core_id, program.base_address)
    soc.run(max_cycles=10_000_000)
    assert soc.sram.read_word(counter) == 3 * increments


@pytest.fixture(scope="module")
def dynamic_session():
    libraries = {
        i: build_library(m, include_module_tests=False) for i, m in MODELS.items()
    }
    names = [r.name for r in libraries[0].generic_routines]
    layout = DynamicSchedulerLayout(num_routines=len(names))
    soc = Soc()
    for core_id, model in MODELS.items():
        ctx = RoutineContext.for_core(core_id, model)
        program = build_dynamic_dispatch_program(
            libraries[core_id], 0x1000 + core_id * 0x8000, ctx, layout, names
        )
        soc.load(program)
        soc.cores[core_id].recording = False
        soc.start_core(core_id, program.base_address)
    soc.run(max_cycles=30_000_000)
    return soc, layout, names, libraries


def test_pool_fully_drained(dynamic_session):
    soc, layout, names, _ = dynamic_session
    # Every routine claimed exactly once, plus one drain-claim per core.
    assert soc.sram.read_word(layout.counter_address) == len(names) + 3
    assert all(core.done for core in soc.cores)


def test_every_routine_ran_once_with_golden_signature(dynamic_session):
    soc, layout, names, libraries = dynamic_session
    ctx = RoutineContext.for_core(0, CORE_MODEL_A)
    for index, name in enumerate(names):
        routine = libraries[0].get(name)
        golden = golden_signature(routine.build_single_core(0x7000, ctx), 0)
        assert soc.sram.read_word(layout.result_address(index)) == golden, name


def test_lock_released_at_end(dynamic_session):
    soc, layout, _, _ = dynamic_session
    assert soc.sram.read_word(layout.lock_address) == 0
