"""Tests of the trace renderer and the per-table experiment drivers."""

import pytest

from repro.analysis import (
    fig1_pipeline_traces,
    fig2_structure_audit,
    table1_stalls,
    table4_tcm_vs_cache,
)
from repro.cpu.trace import render_pipeline_diagram
from repro.cpu.uop import Uop
from repro.isa.instructions import Instruction, Mnemonic


def test_render_empty_trace():
    assert "empty" in render_pipeline_diagram([])


def test_render_contains_stage_letters():
    uop = Uop(
        seq=1, pc=0, instr=Instruction(Mnemonic.ADD, rd=1), slot=0,
        issue_cycle=5, mem_cycle=6, wb_cycle=7,
    )
    text = render_pipeline_diagram([uop])
    assert "D" in text and "E" in text and "M" in text and "W" in text
    assert "add r1, r0, r0" in text


def test_fig1_shows_broken_forwarding():
    result = fig1_pipeline_traces()
    # Stall-free: the consumer issues right behind the producer and the
    # EX->EX path is excited.
    assert "fwd: EX0" in result.single_core_diagram
    # Contended: no forwarding annotation on the consumer's operand 7.
    contended_consumer = [
        line for line in result.contended_diagram.splitlines()
        if line.startswith("add r9")
    ][0]
    assert "EX0" not in contended_consumer
    assert result.contended_stalls > result.single_core_stalls


def test_fig2_audit_properties():
    result = fig2_structure_audit()
    assert result.execution_loop_fills == 0
    assert result.loading_loop_fills > 0
    assert result.signature_matches_single_core
    assert result.wrapped_size_bytes - result.single_size_bytes < 128
    rendered = result.render()
    assert "loading loop" in rendered


def test_table1_superlinear_growth():
    result = table1_stalls(repeat=1)
    rows = {r.active_cores: r for r in result.rows}
    assert rows[2].total_if_stalls > 2 * rows[1].total_if_stalls
    assert rows[3].total_if_stalls > rows[2].total_if_stalls
    assert rows[3].total_mem_stalls > rows[1].total_mem_stalls
    assert "Table I" in result.render()


def test_table4_memory_overhead_shape():
    result = table4_tcm_vs_cache()
    by_approach = {row.approach: row for row in result.rows}
    assert by_approach["TCM-based"].memory_overhead_bytes > 0
    assert by_approach["Cache-based"].memory_overhead_bytes == 0
    assert by_approach["Cache-based"].execution_cycles > 0
    assert "Table IV" in result.render()
    # Microsecond conversion at the paper's 180 MHz clock.
    row = by_approach["TCM-based"]
    assert row.microseconds(180_000_000) == pytest.approx(
        row.execution_cycles / 180.0, rel=1e-6
    )
