"""Tests of the STL routine generators and the library."""

import pytest

from repro.core import golden_signature
from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_B, CORE_MODEL_C, ICACHE_CONFIG
from repro.stl import RoutineContext, build_library
from repro.stl.conventions import RESULT_PASS, SIG_REG
from repro.stl.routines import (
    make_background_routines,
    make_forwarding_routine,
    make_interrupt_routine,
)
from tests.conftest import run_program


def ctx_for(core_index=0, model=CORE_MODEL_A):
    return RoutineContext.for_core(core_index, model)


def small_fwd(model=CORE_MODEL_A, **kw):
    kw.setdefault("patterns_per_path", 1)
    kw.setdefault("load_use_blocks", 2)
    return make_forwarding_routine(model, **kw)


def test_library_contents_and_lookup():
    library = build_library(CORE_MODEL_A)
    names = {r.name for r in library.routines}
    assert "fwd_a_pc" in names and "icu_a" in names
    assert library.get("stl_alu").module == "GEN"
    assert len(library.by_module("FWD")) == 2
    with pytest.raises(KeyError):
        library.get("nope")


def test_library_rejects_duplicates():
    library = build_library(CORE_MODEL_A)
    with pytest.raises(ValueError):
        library.add(library.routines[0])


def test_routines_fit_instruction_cache():
    """Section IV: 'it was not necessary to split them, since the
    instruction cache was large enough'."""
    for model in (CORE_MODEL_A, CORE_MODEL_B, CORE_MODEL_C):
        for routine in build_library(model).routines:
            if routine.module == "GEN":
                continue
            program = routine.build_single_core(0x400, ctx_for(0, model))
            assert program.size_bytes <= ICACHE_CONFIG.size_bytes, routine.name


def test_background_routines_produce_stable_signatures():
    for routine in make_background_routines():
        ctx = ctx_for()
        program = routine.build_single_core(0x400, ctx)
        sig_a = golden_signature(program, 0)
        sig_b = golden_signature(program, 0)
        assert sig_a == sig_b
        assert sig_a != 0


def test_background_repeat_scales_size():
    once = make_background_routines(repeat=1)[0]
    twice = make_background_routines(repeat=2)[0]
    size1 = once.build_single_core(0x400, ctx_for()).size_bytes
    size2 = twice.build_single_core(0x400, ctx_for()).size_bytes
    assert size2 > 1.8 * size1


def test_forwarding_routine_excites_all_paths_when_stall_free():
    routine = small_fwd()
    program = routine.build_single_core(0x400, ctx_for())
    soc, core = run_program(program)
    # Enable perfect-fetch conditions instead: run it cache-wrapped.
    from repro.core import build_cache_wrapped

    wrapped = build_cache_wrapped(routine, 0x400, ctx_for())
    soc, core = run_program(wrapped)
    assert len(core.log.forwarded_path_set()) == 16


def test_forwarding_routine_signature_value_independent_of_pcs_setting():
    with_pcs = make_forwarding_routine(CORE_MODEL_A, with_pcs=True,
                                       patterns_per_path=1)
    assert with_pcs.uses_pcs
    no_pcs = make_forwarding_routine(CORE_MODEL_A, with_pcs=False,
                                     patterns_per_path=1)
    assert not no_pcs.uses_pcs


def test_interrupt_routine_triggers_every_event():
    routine = make_interrupt_routine(CORE_MODEL_A)
    program = routine.build_single_core(0x400, ctx_for())
    _, core = run_program(program)
    raised = set()
    for recognition in core.icu.recognitions:
        raised.update(recognition.events)
    assert len(raised) == 6


def test_interrupt_routine_merged_pairs_on_shared_mapping():
    routine = make_interrupt_routine(CORE_MODEL_A)
    program = routine.build_single_core(0x400, ctx_for())
    _, core = run_program(program)
    assert any(r.merged for r in core.log.icu)


def test_epilogue_pass_verdict():
    routine = small_fwd()
    ctx = ctx_for()
    program = routine.build_single_core(0x400, ctx)
    expected = golden_signature(program, 0)
    checked = routine.build_single_core(0x400, ctx, expected)
    _, core = run_program(checked)
    assert core.dtcm.read_word(ctx.mailbox_address) == RESULT_PASS


def test_epilogue_fail_verdict_on_wrong_expectation():
    routine = small_fwd()
    ctx = ctx_for()
    checked = routine.build_single_core(0x400, ctx, expected_signature=0x1)
    _, core = run_program(checked)
    from repro.stl.conventions import RESULT_FAIL

    assert core.dtcm.read_word(ctx.mailbox_address) == RESULT_FAIL


def test_core_c_routine_uses_64bit_blocks():
    routine = small_fwd(CORE_MODEL_C)
    program = routine.build_single_core(0x400, ctx_for(2, CORE_MODEL_C))
    from repro.isa.instructions import Mnemonic

    mnemonics = {i.mnemonic for i in program.code}
    assert Mnemonic.OR64 in mnemonics and Mnemonic.XOR64 in mnemonics


def test_core_c_records_wide_operands():
    from repro.soc import Soc

    routine = small_fwd(CORE_MODEL_C)
    program = routine.build_single_core(0x400, ctx_for(2, CORE_MODEL_C))
    soc = Soc()
    soc.load(program)
    soc.start_core(2, 0x400)
    soc.run(max_cycles=400_000)
    wide = [r for r in soc.cores[2].log.forwarding if r.width == 64]
    assert wide
    assert any(r.observable_high for r in wide)
    assert any(not r.observable_high for r in wide)
