"""Tests of the campaign-level helper APIs."""

from repro.core import (
    cache_wrapped_builder,
    memory_overhead_bytes,
    run_campaign,
    signature_stability,
)
from repro.core.determinism import Scenario
from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_B
from repro.soc import CodeAlignment, CodePosition
from repro.stl import RoutineContext
from repro.stl.routines import make_forwarding_routine


def test_run_campaign_returns_one_result_per_scenario():
    ctx0 = RoutineContext.for_core(0, CORE_MODEL_A)
    ctx1 = RoutineContext.for_core(1, CORE_MODEL_B)
    builders = {
        0: cache_wrapped_builder(
            make_forwarding_routine(CORE_MODEL_A, with_pcs=False,
                                    patterns_per_path=1),
            ctx0,
        ),
        1: cache_wrapped_builder(
            make_forwarding_routine(CORE_MODEL_B, with_pcs=False,
                                    patterns_per_path=1),
            ctx1,
        ),
    }
    scenarios = (
        Scenario((0, 1), CodePosition.LOW, CodeAlignment.QWORD),
        Scenario((0, 1), CodePosition.HIGH, CodeAlignment.WORD),
    )
    results = run_campaign(builders, scenarios)
    assert len(results) == 2
    assert all(set(r.per_core) == {0, 1} for r in results)
    report = signature_stability(results, 0)
    assert report.stable


def test_memory_overhead_is_zero_by_construction():
    ctx = RoutineContext.for_core(0, CORE_MODEL_A)
    routine = make_forwarding_routine(CORE_MODEL_A, patterns_per_path=1)
    assert memory_overhead_bytes(routine, ctx) == 0


def test_scenario_result_carries_stall_counters():
    ctx = RoutineContext.for_core(0, CORE_MODEL_A)
    builders = {
        0: make_forwarding_routine(
            CORE_MODEL_A, with_pcs=False, patterns_per_path=1
        ).builder_for(ctx)
    }
    from repro.core import run_scenario

    result = run_scenario(
        builders, Scenario((0,), CodePosition.LOW, CodeAlignment.QWORD)
    )
    run = result.per_core[0]
    assert run.if_stalls > 0
    assert run.cycles >= run.if_stalls
    assert result.total_cycles >= run.cycles
