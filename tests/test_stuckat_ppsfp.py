"""Tests of fault enumeration, collapsing and the PPSFP simulator —
including a brute-force cross-check on random netlists."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.gates import GateKind, eval_gate
from repro.faults.netlist import Netlist
from repro.faults.ppsfp import PatternSet, fault_simulate, good_simulation
from repro.faults.stuckat import (
    StuckAtFault,
    collapse_faults,
    collapse_with_weights,
    enumerate_faults,
)


def simple_and() -> Netlist:
    nl = Netlist("and2")
    a, b = nl.add_input_bus("in", 2)
    out = nl.add_gate(GateKind.AND, a, b)
    nl.mark_output_bus("out", [out])
    return nl


def test_enumerate_counts():
    nl = simple_and()
    faults = enumerate_faults(nl)
    assert len(faults) == 2 * nl.num_nets == 6


def test_collapse_weights_sum_to_uncollapsed_population():
    nl = Netlist("chain")
    (a,) = nl.add_input_bus("a", 1)
    end = nl.buffer_chain(a, 4)
    nl.mark_output_bus("out", [end])
    weighted = collapse_with_weights(nl)
    assert sum(w for _, w in weighted) == 2 * nl.num_nets
    # The whole chain collapses onto the final net: 2 classes remain.
    assert len(weighted) == 2
    assert all(fault.net == end for fault, _ in weighted)


def test_collapse_through_not_swaps_polarity():
    nl = Netlist("inv")
    (a,) = nl.add_input_bus("a", 1)
    out = nl.add_gate(GateKind.NOT, a)
    nl.mark_output_bus("out", [out])
    weighted = dict(
        ((f.net, f.value), w) for f, w in collapse_with_weights(nl)
    )
    # a/SA0 == out/SA1 and vice versa.
    assert weighted[(out, 0)] == 2
    assert weighted[(out, 1)] == 2


def test_collapse_keeps_fanout_stems():
    nl = Netlist("fan")
    (a,) = nl.add_input_bus("a", 1)
    buf = nl.add_gate(GateKind.BUF, a)
    other = nl.add_gate(GateKind.NOT, a)  # a has fanout 2: no collapse
    nl.mark_output_bus("out", [buf, other])
    nets = {f.net for f in collapse_faults(nl)}
    assert a in nets


def test_and_gate_detection():
    nl = simple_and()
    a, b = nl.inputs["in"]
    out = nl.outputs["out"][0]
    # One pattern: a=1, b=1 (out=1), fully observable.
    patterns = PatternSet(
        num_patterns=1, inputs={a: 1, b: 1}, output_observability={out: 1}
    )
    result = fault_simulate(nl, patterns, enumerate_faults(nl))
    # Detectable with a=b=1: every SA0 (3 faults).  SA1s need a 0 input.
    assert result.detected_faults == 3
    # Adding a=0,b=1 detects a/SA1 and out/SA1 too.
    patterns = PatternSet(
        num_patterns=2, inputs={a: 0b01, b: 0b11},
        output_observability={out: 0b11},
    )
    result = fault_simulate(nl, patterns, enumerate_faults(nl))
    assert result.detected_faults == 5


def test_unobservable_pattern_detects_nothing():
    nl = simple_and()
    a, b = nl.inputs["in"]
    out = nl.outputs["out"][0]
    patterns = PatternSet(
        num_patterns=1, inputs={a: 1, b: 1}, output_observability={out: 0}
    )
    result = fault_simulate(nl, patterns, enumerate_faults(nl))
    assert result.detected_faults == 0


def test_weighted_totals():
    nl = Netlist("wchain")
    (a,) = nl.add_input_bus("a", 1)
    end = nl.buffer_chain(a, 3)
    nl.mark_output_bus("out", [end])
    patterns = PatternSet(
        num_patterns=2, inputs={a: 0b01}, output_observability={end: 0b11}
    )
    result = fault_simulate(nl, patterns)  # weighted classes by default
    assert result.total_faults == 2 * nl.num_nets
    assert result.detected_faults == result.total_faults  # both polarities seen


@st.composite
def random_netlists(draw):
    nl = Netlist("rand")
    inputs = nl.add_input_bus("in", draw(st.integers(min_value=2, max_value=4)))
    nets = list(inputs)
    for _ in range(draw(st.integers(min_value=1, max_value=10))):
        kind = draw(st.sampled_from(list(GateKind)))
        a = draw(st.sampled_from(nets))
        b = draw(st.sampled_from(nets))
        nets.append(nl.add_gate(kind, a, b))
    nl.mark_output_bus("out", nets[-2:])
    return nl


def _brute_force_detected(nl, patterns):
    """Oracle: full netlist re-simulation per fault, no cone pruning."""
    mask = patterns.mask
    good = good_simulation(nl, patterns)
    input_nets = set(nl.input_nets)
    detected = set()
    for fault in enumerate_faults(nl):
        forced = 0 if fault.value == 0 else mask
        sim = [0] * nl.num_nets
        for net, value in patterns.inputs.items():
            sim[net] = value & mask
        if fault.net in input_nets:
            sim[fault.net] = forced
        for gate in nl.gates:
            b = sim[gate.b] if gate.b >= 0 else 0
            out = eval_gate(gate.kind, sim[gate.a], b, mask)
            sim[gate.out] = forced if gate.out == fault.net else out
        for net, obs in patterns.output_observability.items():
            if (sim[net] ^ good[net]) & obs:
                detected.add((fault.net, fault.value))
                break
    return detected


@settings(max_examples=40, deadline=None)
@given(random_netlists(), st.data())
def test_ppsfp_matches_brute_force(nl, data):
    num_patterns = data.draw(st.integers(min_value=1, max_value=6))
    mask = (1 << num_patterns) - 1
    inputs = {
        net: data.draw(st.integers(min_value=0, max_value=mask))
        for net in nl.input_nets
    }
    obs = {net: mask for net in nl.output_nets}
    patterns = PatternSet(
        num_patterns=num_patterns, inputs=inputs, output_observability=obs
    )
    faults = enumerate_faults(nl)
    result = fault_simulate(nl, patterns, faults)
    oracle = _brute_force_detected(nl, patterns)
    assert result.detected_faults == len(oracle)
