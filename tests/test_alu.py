"""Functional tests of the ALU, including trap conditions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cpu.alu import branch_taken, execute_alu, execute_alu64, execute_imm
from repro.errors import SimulationError
from repro.isa.instructions import Event, Mnemonic
from repro.utils.bitops import MASK32, MASK64, to_signed, to_unsigned

u32 = st.integers(min_value=0, max_value=MASK32)
u64 = st.integers(min_value=0, max_value=MASK64)


@given(u32, u32)
def test_add_sub_match_python(a, b):
    assert execute_alu(Mnemonic.ADD, a, b)[0] == (a + b) & MASK32
    assert execute_alu(Mnemonic.SUB, a, b)[0] == (a - b) & MASK32


@given(u32, u32)
def test_logic_ops(a, b):
    assert execute_alu(Mnemonic.AND, a, b)[0] == a & b
    assert execute_alu(Mnemonic.OR, a, b)[0] == a | b
    assert execute_alu(Mnemonic.XOR, a, b)[0] == a ^ b
    assert execute_alu(Mnemonic.NOR, a, b)[0] == ~(a | b) & MASK32


@given(u32, u32)
def test_comparisons(a, b):
    assert execute_alu(Mnemonic.SLT, a, b)[0] == int(to_signed(a) < to_signed(b))
    assert execute_alu(Mnemonic.SLTU, a, b)[0] == int(a < b)


@given(u32, st.integers(min_value=0, max_value=31))
def test_shifts(a, amount):
    assert execute_alu(Mnemonic.SLL, a, amount)[0] == (a << amount) & MASK32
    assert execute_alu(Mnemonic.SRL, a, amount)[0] == a >> amount
    assert execute_alu(Mnemonic.SRA, a, amount)[0] == to_unsigned(
        to_signed(a) >> amount
    )


@given(u32, u32)
def test_mul_and_mulh(a, b):
    assert execute_alu(Mnemonic.MUL, a, b)[0] == (a * b) & MASK32
    assert execute_alu(Mnemonic.MULH, a, b)[0] == to_unsigned(
        (to_signed(a) * to_signed(b)) >> 32
    )


def test_addo_overflow_event():
    result, event = execute_alu(Mnemonic.ADDO, 0x7FFFFFFF, 1)
    assert event is Event.OVF_ADD and result == 0x80000000
    assert execute_alu(Mnemonic.ADDO, 1, 2) == (3, None)


def test_subo_overflow_event():
    _, event = execute_alu(Mnemonic.SUBO, 0x80000000, 1)
    assert event is Event.OVF_SUB
    assert execute_alu(Mnemonic.SUBO, 5, 3)[1] is None


def test_mulo_overflow_event():
    _, event = execute_alu(Mnemonic.MULO, 0x10000, 0x10000)
    assert event is Event.OVF_MUL
    assert execute_alu(Mnemonic.MULO, 100, 100)[1] is None


def test_satadd_saturates_both_ways():
    result, event = execute_alu(Mnemonic.SATADD, 0x7FFFFFFF, 0x7FFFFFFF)
    assert event is Event.SAT and result == 0x7FFFFFFF
    result, event = execute_alu(Mnemonic.SATADD, 0x80000000, 0x80000000)
    assert event is Event.SAT and result == 0x80000000
    assert execute_alu(Mnemonic.SATADD, 1, 1) == (2, None)


def test_divt_division_and_div0():
    assert execute_alu(Mnemonic.DIVT, 7, 2) == (3, None)
    assert execute_alu(Mnemonic.DIVT, to_unsigned(-7), 2)[0] == to_unsigned(-3)
    result, event = execute_alu(Mnemonic.DIVT, 5, 0)
    assert event is Event.DIV0 and result == 0


def test_sllo_shift_overflow():
    _, event = execute_alu(Mnemonic.SLLO, 0xF0000000, 4)
    assert event is Event.SHIFTO
    assert execute_alu(Mnemonic.SLLO, 1, 4)[1] is None
    assert execute_alu(Mnemonic.SLLO, 0xF0000000, 0)[1] is None


def test_non_alu_mnemonic_rejected():
    with pytest.raises(SimulationError):
        execute_alu(Mnemonic.LW, 0, 0)
    with pytest.raises(SimulationError):
        execute_alu64(Mnemonic.ADD, 0, 0)
    with pytest.raises(SimulationError):
        execute_imm(Mnemonic.ADD, 0, 0)
    with pytest.raises(SimulationError):
        branch_taken(Mnemonic.ADD, 0, 0)


@given(u64, u64)
def test_alu64_semantics(a, b):
    assert execute_alu64(Mnemonic.ADD64, a, b) == (a + b) & MASK64
    assert execute_alu64(Mnemonic.SUB64, a, b) == (a - b) & MASK64
    assert execute_alu64(Mnemonic.XOR64, a, b) == a ^ b
    assert execute_alu64(Mnemonic.AND64, a, b) == a & b
    assert execute_alu64(Mnemonic.OR64, a, b) == a | b


@given(u32)
def test_immediates(a):
    assert execute_imm(Mnemonic.ADDI, a, -1) == (a - 1) & MASK32
    assert execute_imm(Mnemonic.ANDI, a, 0xFF) == a & 0xFF
    assert execute_imm(Mnemonic.ORI, a, 0x0F0) == a | 0xF0
    assert execute_imm(Mnemonic.XORI, a, 0x55) == a ^ 0x55
    assert execute_imm(Mnemonic.SLLI, a, 3) == (a << 3) & MASK32
    assert execute_imm(Mnemonic.SRLI, a, 3) == a >> 3


@given(u32, u32)
def test_branch_conditions(a, b):
    assert branch_taken(Mnemonic.BEQ, a, b) == (a == b)
    assert branch_taken(Mnemonic.BNE, a, b) == (a != b)
    assert branch_taken(Mnemonic.BLT, a, b) == (to_signed(a) < to_signed(b))
    assert branch_taken(Mnemonic.BGE, a, b) == (to_signed(a) >= to_signed(b))
    assert branch_taken(Mnemonic.BLTU, a, b) == (a < b)
    assert branch_taken(Mnemonic.BGEU, a, b) == (a >= b)
