"""Tests of golden-signature derivation and the determinism campaign."""

import pytest

from repro.core import (
    cache_wrapped_builder,
    default_scenarios,
    finalise_with_expected,
    golden_signature,
    run_scenario,
    signature_stability,
    single_core_scenarios,
)
from repro.core.determinism import Scenario
from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_B, CORE_MODEL_C
from repro.soc import CodeAlignment, CodePosition
from repro.stl import RoutineContext
from repro.stl.conventions import RESULT_PASS
from repro.stl.routines import make_forwarding_routine

MODELS = {0: CORE_MODEL_A, 1: CORE_MODEL_B, 2: CORE_MODEL_C}


def small_routine(model):
    return make_forwarding_routine(
        model, with_pcs=False, patterns_per_path=1, load_use_blocks=1
    )


def contexts():
    return {i: RoutineContext.for_core(i, m) for i, m in MODELS.items()}


def test_finalise_with_expected_roundtrip():
    ctx = contexts()[0]
    routine = small_routine(CORE_MODEL_A)

    def build(expected):
        return routine.build_single_core(0x1000, ctx, expected)

    program, expected = finalise_with_expected(build, 0)
    assert expected == golden_signature(build(None), 0)
    # The finalised program passes its own check.
    from tests.conftest import run_program

    _, core = run_program(program)
    assert core.dtcm.read_word(ctx.mailbox_address) == RESULT_PASS


def test_scenario_matrix_size_and_labels():
    scenarios = default_scenarios()
    assert len(scenarios) == 18
    labels = {s.label for s in scenarios}
    assert len(labels) == 18
    assert len(single_core_scenarios(0)) == 9


def test_start_delays_deterministic_and_scenario_dependent():
    a = Scenario((0, 1, 2), CodePosition.LOW, CodeAlignment.QWORD)
    b = Scenario((0, 1, 2), CodePosition.HIGH, CodeAlignment.WORD)
    assert a.start_delay(0) == a.start_delay(0)
    delays_a = [a.start_delay(c) for c in range(3)]
    delays_b = [b.start_delay(c) for c in range(3)]
    assert delays_a != delays_b


def test_run_scenario_collects_all_active_cores():
    ctxs = contexts()
    builders = {
        i: small_routine(m).builder_for(ctxs[i]) for i, m in MODELS.items()
    }
    scenario = Scenario((0, 2), CodePosition.MID, CodeAlignment.DWORD)
    result = run_scenario(builders, scenario)
    assert set(result.per_core) == {0, 2}
    assert result.per_core[0].signature != 0
    assert result.per_core[0].cycles > 0
    assert result.per_core[0].log.forwarding


def test_inactive_cores_stay_off():
    ctxs = contexts()
    builders = {
        i: small_routine(m).builder_for(ctxs[i]) for i, m in MODELS.items()
    }
    scenario = Scenario((0,), CodePosition.LOW, CodeAlignment.QWORD)
    result = run_scenario(builders, scenario)
    assert set(result.per_core) == {0}


def test_wrapped_signature_stable_across_scenarios():
    """The paper's headline: identical signatures in every scenario."""
    ctxs = contexts()
    builders = {
        i: cache_wrapped_builder(small_routine(m), ctxs[i])
        for i, m in MODELS.items()
    }
    results = [run_scenario(builders, s) for s in default_scenarios()[::4]]
    for core_id in MODELS:
        report = signature_stability(results, core_id)
        assert report.stable, f"core {core_id} unstable: {report.signatures}"


def test_unwrapped_pc_signature_unstable_across_scenarios():
    """And the converse: with PCs in the signature and no caches, the
    multi-core runs disagree."""
    ctxs = contexts()
    builders = {
        i: make_forwarding_routine(
            m, with_pcs=True, patterns_per_path=1
        ).builder_for(ctxs[i])
        for i, m in MODELS.items()
    }
    results = [
        run_scenario(builders, s, pcs_observable=True)
        for s in default_scenarios()[::3]
    ]
    unstable_cores = sum(
        1 for core_id in MODELS
        if not signature_stability(results, core_id).stable
    )
    assert unstable_cores >= 2


def test_stability_report_counts_verdicts():
    report = signature_stability([], 0)
    assert report.pass_rate == 0.0
    assert report.signatures == ()
