"""Tests for the deterministic RNG and the table renderer."""

import pytest

from repro.utils.rng import DeterministicRng
from repro.utils.tables import format_table


def test_rng_is_reproducible():
    a = [DeterministicRng(42).next_u64() for _ in range(5)]
    b = [DeterministicRng(42).next_u64() for _ in range(5)]
    assert a == b


def test_rng_streams_differ_by_seed():
    a = DeterministicRng(1)
    b = DeterministicRng(2)
    assert [a.next_u32() for _ in range(4)] != [b.next_u32() for _ in range(4)]


def test_rng_randint_bounds():
    rng = DeterministicRng(7)
    values = [rng.randint(3, 9) for _ in range(200)]
    assert min(values) >= 3
    assert max(values) <= 9
    assert len(set(values)) > 3


def test_rng_rejects_bad_seed_and_range():
    with pytest.raises(ValueError):
        DeterministicRng(0)
    rng = DeterministicRng(1)
    with pytest.raises(ValueError):
        rng.randint(5, 4)
    with pytest.raises(ValueError):
        rng.choice([])


def test_rng_shuffle_is_permutation():
    rng = DeterministicRng(99)
    items = list(range(20))
    shuffled = list(items)
    rng.shuffle(shuffled)
    assert sorted(shuffled) == items
    assert shuffled != items  # astronomically unlikely to be identity


def test_format_table_alignment():
    text = format_table(("name", "count"), [("abc", 12), ("d", 3456)])
    lines = text.splitlines()
    assert lines[0].startswith("| name")
    assert "3456" in lines[-1]
    # Numeric column right-aligned: the shorter number is padded left.
    assert lines[2].endswith("|    12 |")


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(("a", "b"), [(1,)])


def test_format_table_title():
    text = format_table(("x",), [(1,)], title="My Table")
    assert text.splitlines()[0] == "My Table"
