"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.isa import AsmBuilder, Program, assemble
from repro.soc import Soc, SocConfig


@pytest.fixture
def soc() -> Soc:
    """A fresh stock triple-core SoC."""
    return Soc()


def run_program(
    source_or_program, core_id: int = 0, max_cycles: int = 200_000
) -> tuple[Soc, "object"]:
    """Assemble (if needed), load and run a program on one core.

    Returns ``(soc, core)`` after the core halts.
    """
    if isinstance(source_or_program, str):
        program = assemble(source_or_program)
    else:
        program = source_or_program
    machine = Soc()
    machine.load(program)
    machine.start_core(core_id, program.base_address)
    machine.run(max_cycles=max_cycles)
    return machine, machine.cores[core_id]


def run_on_soc(
    machine: Soc, program: Program, core_id: int = 0, max_cycles: int = 200_000
):
    """Load and run a pre-built program on an existing SoC."""
    machine.load(program)
    machine.start_core(core_id, program.base_address)
    machine.run(max_cycles=max_cycles)
    return machine.cores[core_id]
