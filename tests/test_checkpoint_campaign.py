"""Checkpoint/resume of supervised coverage campaigns (durability)."""

import json

import pytest

from repro.core import cache_wrapped_builder
from repro.core.determinism import Scenario
from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_B
from repro.errors import CheckpointCorruptionWarning, CheckpointError
from repro.faults import (
    CampaignCheckpoint,
    ScenarioOutcome,
    run_checkpointed_campaign,
)
from repro.soc import CodeAlignment, CodePosition
from repro.stl import RoutineContext
from repro.stl.routines import make_forwarding_routine

MODELS = {0: CORE_MODEL_A, 1: CORE_MODEL_B}


def builders():
    out = {}
    for core_id, model in MODELS.items():
        ctx = RoutineContext.for_core(core_id, model)
        routine = make_forwarding_routine(
            model, with_pcs=False, patterns_per_path=1, load_use_blocks=1
        )
        out[core_id] = cache_wrapped_builder(routine, ctx)
    return out


def scenarios():
    return (
        Scenario((0, 1), CodePosition.LOW, CodeAlignment.QWORD),
        Scenario((0, 1), CodePosition.MID, CodeAlignment.WORD),
    )


def run_all(path, on_scenario=None):
    return run_checkpointed_campaign(
        builders(),
        scenarios(),
        MODELS,
        path,
        modules=("FWD",),
        on_scenario=on_scenario,
    )


def as_dicts(outcomes):
    return {label: outcome.to_dict() for label, outcome in outcomes.items()}


# ----------------------------------------------------------------------
# Acceptance (c): kill mid-run, resume, identical coverage.
# ----------------------------------------------------------------------


def test_killed_campaign_resumes_with_identical_coverage(tmp_path):
    reference = run_all(tmp_path / "reference.json")
    assert len(reference) == 2
    assert all(not o.failed for o in reference.values())
    assert all(o.coverages for o in reference.values())

    # Simulated kill: the process dies right after the first scenario is
    # checkpointed (on_scenario fires post-checkpoint, and a
    # non-ReproError is deliberately NOT contained by the campaign).
    path = tmp_path / "campaign.json"

    def die(outcome):
        raise KeyboardInterrupt("killed mid-campaign")

    with pytest.raises(KeyboardInterrupt):
        run_all(path, on_scenario=die)
    saved = json.loads(path.read_text())
    assert len(saved["scenarios"]) == 1

    # Resume: only the remaining scenario runs...
    resumed_labels = []
    outcomes = run_all(path, on_scenario=lambda o: resumed_labels.append(o.label))
    assert resumed_labels == [scenarios()[1].label]
    # ... and the merged result matches the uninterrupted campaign.
    assert as_dicts(outcomes) == as_dicts(reference)


def test_completed_campaign_reruns_as_pure_checkpoint_reads(tmp_path):
    path = tmp_path / "campaign.json"
    first = run_all(path)
    reran = []
    second = run_all(path, on_scenario=lambda o: reran.append(o.label))
    assert reran == []  # nothing left to execute
    assert as_dicts(second) == as_dicts(first)


# ----------------------------------------------------------------------
# Supervision: a failing scenario is recorded, not fatal.
# ----------------------------------------------------------------------


def test_hung_scenario_is_retried_then_recorded_as_error(tmp_path):
    outcomes = run_checkpointed_campaign(
        builders(),
        scenarios()[:1],
        MODELS,
        tmp_path / "campaign.json",
        modules=("FWD",),
        max_cycles=100,  # guaranteed watchdog trip
        retries=2,
    )
    (outcome,) = outcomes.values()
    assert outcome.failed
    assert "ExecutionLimitExceeded" in outcome.error
    assert outcome.attempts == 3  # 1 + retries
    assert outcome.coverages == []
    assert outcome.module_coverages() == []


def test_unknown_module_is_rejected(tmp_path):
    with pytest.raises(ValueError):
        run_checkpointed_campaign(
            builders(), scenarios(), MODELS, tmp_path / "c.json", modules=("NOPE",)
        )


# ----------------------------------------------------------------------
# Checkpoint file hygiene.
# ----------------------------------------------------------------------


def test_checkpoint_quarantines_garbage_file(tmp_path):
    """Rotted bytes are corruption, not a caller error: the file moves
    to a .corrupt sidecar with a warning and the checkpoint starts
    empty (the shard recomputes; the evidence survives)."""
    path = tmp_path / "c.json"
    path.write_text("not json {")
    with pytest.warns(CheckpointCorruptionWarning, match="unreadable"):
        checkpoint = CampaignCheckpoint(path, ("FWD",))
    assert checkpoint.outcomes == {}
    sidecar = tmp_path / "c.json.corrupt"
    assert sidecar.read_text() == "not json {"
    assert not path.exists()


def test_checkpoint_rejects_version_mismatch(tmp_path):
    path = tmp_path / "c.json"
    path.write_text(json.dumps({"version": 999, "modules": ["FWD"], "scenarios": []}))
    with pytest.raises(CheckpointError):
        CampaignCheckpoint(path, ("FWD",))


def test_checkpoint_refuses_to_mix_module_sets(tmp_path):
    path = tmp_path / "c.json"
    checkpoint = CampaignCheckpoint(path, ("FWD",))
    checkpoint.record(ScenarioOutcome(label="s1", coverages=[]))
    with pytest.raises(CheckpointError):
        CampaignCheckpoint(path, ("FWD", "ICU"))


def test_checkpoint_save_is_atomic(tmp_path):
    path = tmp_path / "c.json"
    checkpoint = CampaignCheckpoint(path, ("FWD",))
    checkpoint.record(ScenarioOutcome(label="s1"))
    assert not path.with_suffix(".json.tmp").exists()
    reloaded = CampaignCheckpoint(path, ("FWD",))
    assert reloaded.done("s1") and not reloaded.done("s2")
