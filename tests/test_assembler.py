"""Tests for the two-pass text assembler."""

import pytest

from repro.errors import AssemblyError
from repro.isa import assemble
from repro.isa.instructions import Mnemonic


def test_basic_program_with_labels():
    program = assemble(
        """
        .org 0x200
        start: addi r1, r0, 3
        loop:  addi r1, r1, -1
               bne r1, r0, loop
               j start
               halt
        """
    )
    assert program.base_address == 0x200
    assert program.symbols["loop"] == 0x204
    assert program.code[2].imm == -1
    assert program.code[3].imm == 0x200 // 4


def test_comments_and_blank_lines_ignored():
    program = assemble("# header\n; also comment\nnop  # trailing\n\nhalt\n")
    assert [i.mnemonic for i in program.code] == [Mnemonic.NOP, Mnemonic.HALT]


def test_memory_operands():
    program = assemble("lw r1, 8(r2)\nsw r3, -4(r4)\nlbu r5, (r6)\n")
    assert program.code[0].imm == 8 and program.code[0].rs1 == 2
    assert program.code[1].imm == -4 and program.code[1].rs2 == 3
    assert program.code[2].imm == 0


def test_csr_names():
    program = assemble("csrr r1, cycles\ncsrw cachecfg, r2\n")
    assert program.code[0].csr == 0
    assert program.code[1].rs1 == 2


def test_zero_register_alias():
    program = assemble("add r1, zero, r2\n")
    assert program.code[0].rs1 == 0


def test_numeric_branch_and_jump_targets():
    program = assemble("beq r1, r2, -2\nj 0x100\n")
    assert program.code[0].imm == -2
    assert program.code[1].imm == 0x40


def test_name_directive():
    program = assemble(".name my_test\nhalt\n")
    assert program.name == "my_test"


def test_word_directive():
    program = assemble(".word 0x20000000, 0x1234\nhalt\n")
    assert program.data[0x2000_0000] == 0x1234


def test_errors_carry_line_numbers():
    with pytest.raises(AssemblyError, match="line 2"):
        assemble("nop\nbogus r1\n")
    with pytest.raises(AssemblyError, match="line 1"):
        assemble("add r1, r2\n")
    with pytest.raises(AssemblyError, match="register"):
        assemble("add r1, r2, r99\n")
    with pytest.raises(AssemblyError, match="CSR"):
        assemble("csrr r1, nonsense\n")


def test_org_after_code_rejected():
    with pytest.raises(AssemblyError):
        assemble("nop\n.org 0x100\n")


def test_base_address_override():
    program = assemble(".org 0x100\nhalt\n", base_address=0x400)
    assert program.base_address == 0x400


def test_listing_roundtrip():
    source = """
    .org 0x300
    top: addi r1, r0, 7
         lw r2, 4(r1)
         sw r2, 8(r1)
         beq r2, r0, top
         csrr r3, instret
         halt
    """
    first = assemble(source)
    second = assemble(first.listing(), base_address=first.base_address)
    assert first.encoded_words() == second.encoded_words()
