"""Tests for memory devices: base device, SRAM, flash, TCM."""

import pytest

from repro.errors import MemoryError_
from repro.mem.device import MemoryDevice
from repro.mem.flash import Flash
from repro.mem.sram import Sram
from repro.mem.tcm import Tcm


def test_device_word_access_and_bounds():
    device = MemoryDevice("dev", 0x1000, 0x100, latency=2)
    device.write_word(0x1004, 0xDEADBEEF)
    assert device.read_word(0x1004) == 0xDEADBEEF
    assert device.read_word(0x1008) == 0  # uninitialised reads as zero
    with pytest.raises(MemoryError_):
        device.read_word(0x2000)
    with pytest.raises(MemoryError_):
        device.write_word(0x0FFC, 1)


def test_device_byte_access_little_endian():
    device = MemoryDevice("dev", 0, 0x100)
    device.write_word(0, 0x44332211)
    assert [device.read_byte(i) for i in range(4)] == [0x11, 0x22, 0x33, 0x44]
    device.write_byte(2, 0xAB)
    assert device.read_word(0) == 0x44AB2211


def test_device_burst_read():
    device = MemoryDevice("dev", 0, 0x100)
    for i in range(4):
        device.write_word(4 * i, i + 1)
    assert device.read_burst(0, 4) == [1, 2, 3, 4]


def test_device_alignment_requirements():
    with pytest.raises(MemoryError_):
        MemoryDevice("dev", 0x1001, 0x100)


def test_device_access_cycles_burst():
    device = MemoryDevice("dev", 0, 0x100, latency=3)
    assert device.access_cycles(0, False, 1) == 3
    assert device.access_cycles(0, False, 4) == 6


def test_sram_defaults():
    sram = Sram()
    assert sram.contains(0x2000_0000)
    assert sram.latency == 2


def test_flash_is_read_only_at_runtime():
    flash = Flash()
    flash.program_word(0x100, 0xCAFE)
    assert flash.read_word(0x100) == 0xCAFE
    with pytest.raises(MemoryError_):
        flash.write_word(0x100, 1)


def test_flash_buffer_hit_vs_miss_timing():
    flash = Flash(array_cycles=8, buffer_cycles=2, buffer_bytes=32, num_buffers=1)
    assert flash.access_cycles(0x100, False, 2) == 8  # cold miss
    assert flash.access_cycles(0x108, False, 2) == 2  # same line: hit
    assert flash.access_cycles(0x200, False, 2) == 8  # other line evicts
    assert flash.access_cycles(0x100, False, 2) == 8  # original evicted


def test_flash_two_buffers_hold_two_streams():
    flash = Flash(num_buffers=2)
    flash.access_cycles(0x100, False, 2)  # stream 1
    flash.access_cycles(0x1000, False, 1)  # stream 2
    assert flash.access_cycles(0x108, False, 2) == flash.buffer_cycles
    assert flash.access_cycles(0x1004, False, 1) == flash.buffer_cycles


def test_flash_burst_crossing_line_pays_two_accesses():
    flash = Flash(array_cycles=8, buffer_bytes=32)
    cycles = flash.access_cycles(0x118, False, 4)  # crosses 0x120
    assert cycles == 16


def test_flash_reset_buffer():
    flash = Flash()
    flash.access_cycles(0x100, False, 1)
    flash.reset_buffer()
    assert flash.access_cycles(0x100, False, 1) == flash.array_cycles


def test_flash_hit_miss_counters():
    flash = Flash(num_buffers=1)
    flash.access_cycles(0x0, False, 1)
    flash.access_cycles(0x4, False, 1)
    assert flash.buffer_misses == 1
    assert flash.buffer_hits == 1


def test_tcm_reservation():
    tcm = Tcm("itcm0", 0x0400_0000, 16 << 10)
    tcm.reserve(3000)
    tcm.reserve(1000)  # smaller reservations don't shrink the high water
    assert tcm.reserved_bytes == 3000
    with pytest.raises(ValueError):
        tcm.reserve(17 << 10)
