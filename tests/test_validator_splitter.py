"""Tests of the rule-2.1/2.2 validator and the routine splitter."""

import pytest

from repro.core import (
    build_cache_wrapped,
    split_routine,
    validate_cache_residency,
)
from repro.cpu.core import CORE_MODEL_A, ICACHE_CONFIG
from repro.errors import RoutineTooLargeError
from repro.mem.cache import CacheConfig
from repro.stl import RoutineContext
from repro.stl.routines import make_forwarding_routine
from repro.stl.routines.forwarding import (
    forwarding_block_emitters,
    forwarding_setup_emitter,
    forwarding_teardown_emitter,
)
from tests.conftest import run_program

CTX = RoutineContext.for_core(0, CORE_MODEL_A)
TINY_ICACHE = CacheConfig(name="tiny", size_bytes=2 << 10)


def test_wrapped_routine_validates_clean():
    routine = make_forwarding_routine(CORE_MODEL_A, with_pcs=False)
    program = build_cache_wrapped(routine, 0x1000, CTX)
    report = validate_cache_residency(program, ICACHE_CONFIG)
    assert report.ok, report.summary()


def test_oversized_program_flagged():
    routine = make_forwarding_routine(CORE_MODEL_A, with_pcs=False)
    program = build_cache_wrapped(routine, 0x1000, CTX)
    report = validate_cache_residency(program, TINY_ICACHE)
    assert not report.ok
    assert any("split" in v for v in report.violations)


def test_external_jump_flagged():
    from repro.isa.builder import AsmBuilder
    from repro.isa.instructions import Instruction, Mnemonic

    asm = AsmBuilder(0x1000)
    asm.emit(Instruction(Mnemonic.J, imm=0x9000 // 4))
    asm.halt()
    report = validate_cache_residency(asm.build(), ICACHE_CONFIG)
    assert not report.ok
    assert any("leaves the routine" in v for v in report.violations)


def test_data_dependent_branch_warned_not_failed():
    from repro.isa.builder import AsmBuilder

    asm = AsmBuilder(0x1000)
    asm.label("body")
    asm.beq(1, 2, "body")
    asm.halt()
    report = validate_cache_residency(asm.build(), ICACHE_CONFIG)
    assert report.ok
    assert report.warnings


def test_wrapper_loop_branch_is_allowed():
    routine = make_forwarding_routine(
        CORE_MODEL_A, with_pcs=False, patterns_per_path=1
    )
    program = build_cache_wrapped(routine, 0x1000, CTX)
    report = validate_cache_residency(program, ICACHE_CONFIG)
    # The loop back-edge and the signature check are exempt from 2.1.
    assert not report.warnings


def test_split_not_needed_returns_single_part():
    blocks = forwarding_block_emitters(CORE_MODEL_A, patterns_per_path=1)
    parts = split_routine(
        "fwd", "FWD", blocks, CTX, ICACHE_CONFIG,
        setup=forwarding_setup_emitter(CORE_MODEL_A, False),
        teardown=forwarding_teardown_emitter(CORE_MODEL_A, False),
    )
    assert len(parts) == 1
    assert parts[0].name == "fwd"


def test_split_produces_cache_sized_parts():
    blocks = forwarding_block_emitters(CORE_MODEL_A, patterns_per_path=5)
    parts = split_routine(
        "fwd", "FWD", blocks, CTX, TINY_ICACHE,
        setup=forwarding_setup_emitter(CORE_MODEL_A, False),
        teardown=forwarding_teardown_emitter(CORE_MODEL_A, False),
    )
    assert len(parts) > 1
    for part in parts:
        program = build_cache_wrapped(part, 0x1000, CTX)
        assert program.size_bytes <= TINY_ICACHE.size_bytes, part.name


def test_split_preserves_all_blocks():
    """Splitting must not drop coverage: the parts' combined excitation
    equals the unsplit routine's ('it does not compromise the fault
    coverage of the original single-core test procedure')."""
    blocks = forwarding_block_emitters(
        CORE_MODEL_A, patterns_per_path=2, load_use_blocks=0
    )
    parts = split_routine(
        "fwd", "FWD", blocks, CTX, TINY_ICACHE,
        setup=forwarding_setup_emitter(CORE_MODEL_A, False),
    )
    combined_paths = set()
    for part in parts:
        program = build_cache_wrapped(part, 0x1000, CTX)
        _, core = run_program(program)
        combined_paths |= core.log.forwarded_path_set()
    assert len(combined_paths) == 16


def test_unsplittable_block_raises():
    def huge_block(asm, ctx):
        for i in range(3000):
            asm.nop()

    with pytest.raises(RoutineTooLargeError):
        split_routine("huge", "GEN", [huge_block], CTX, TINY_ICACHE)


def test_split_rejects_empty():
    with pytest.raises(ValueError):
        split_routine("empty", "GEN", [], CTX, TINY_ICACHE)
