"""Tests of the packet-aware builder and the MISR signature."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import Instruction, Mnemonic
from repro.soc import Soc
from repro.stl.conventions import SIG_REG
from repro.stl.packets import PhasedBuilder
from repro.stl.signature import (
    SIGNATURE_SEED,
    emit_signature_init,
    emit_signature_update,
    signature_of,
    signature_update,
)
from repro.utils.bitops import MASK32
from tests.conftest import run_program


def test_align_inserts_nop_only_when_needed():
    asm = PhasedBuilder()
    asm.emit(Instruction(Mnemonic.ADD, rd=1, rs1=0, rs2=0))
    assert not asm.at_packet_boundary
    asm.align()
    assert asm.at_packet_boundary
    count = asm.instruction_count
    asm.align()
    assert asm.instruction_count == count  # idempotent


def test_branch_opens_new_packet_without_padding():
    asm = PhasedBuilder()
    asm.label("x")
    asm.beq(0, 0, "x")
    assert asm.at_packet_boundary


def test_packet_validates_pairing():
    asm = PhasedBuilder()
    import pytest

    with pytest.raises(ValueError):
        asm.packet(
            Instruction(Mnemonic.ADD, rd=1, rs1=0, rs2=0),
            Instruction(Mnemonic.ADD, rd=2, rs1=1, rs2=0),  # RAW
        )
    with pytest.raises(ValueError):
        asm.packet()


def test_packet_singleton_padding():
    asm = PhasedBuilder()
    asm.packet(Instruction(Mnemonic.ADD, rd=1, rs1=0, rs2=0))
    assert asm.at_packet_boundary
    assert asm.instruction_count == 2  # padded with a NOP


def test_static_phase_matches_hardware_issue():
    """The builder's greedy-pairing simulation must agree with the real
    front end when fetch never starves (I-TCM execution)."""
    soc = Soc()
    core = soc.cores[0]
    asm = PhasedBuilder(core.itcm.base, "phase")
    intended = []
    for k in range(30):
        first = Instruction(Mnemonic.ADD, rd=1 + k % 3, rs1=0, rs2=0)
        second = Instruction(Mnemonic.XOR, rd=5 + k % 3, rs1=0, rs2=0)
        asm.packet(first, second)
        intended.append((str(first), str(second)))
    asm.halt()
    program = asm.build()
    for address, word in zip(
        range(program.base_address, program.end_address, 4),
        program.encoded_words(),
    ):
        core.itcm.write_word(address, word)
    core.keep_trace = True
    soc.start_core(0, program.base_address)
    soc.run(max_cycles=10_000)
    by_cycle = {}
    for uop in core.trace:
        by_cycle.setdefault(uop.issue_cycle, []).append(uop)
    pairs = [
        tuple(str(u.instr) for u in sorted(group, key=lambda u: u.slot))
        for group in by_cycle.values()
        if len(group) == 2
    ]
    for intended_pair in intended:
        assert intended_pair in pairs


def test_signature_update_model_known_values():
    assert signature_update(0x8000_0000, 0) == 1
    assert signature_update(0, 0xDEAD) == 0xDEAD
    assert signature_of([1, 2, 3]) == signature_update(
        signature_update(signature_update(SIGNATURE_SEED, 1), 2), 3
    )


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=MASK32), min_size=1, max_size=5))
def test_emitted_misr_matches_python_model(values):
    """The 4-instruction emitted MISR must equal the Python model."""
    asm = PhasedBuilder(0x100, "sig")
    emit_signature_init(asm)
    for i, value in enumerate(values):
        asm.li(1 + i % 8, value)
        emit_signature_update(asm, 1 + i % 8)
    asm.halt()
    _, core = run_program(asm.build())
    assert core.regfile.read(SIG_REG) == signature_of(values)


def test_signature_order_sensitivity():
    assert signature_of([1, 2]) != signature_of([2, 1])


def test_signature_detects_single_bit_flip():
    base = signature_of([0x1234, 0x5678])
    flipped = signature_of([0x1234, 0x5679])
    assert base != flipped
