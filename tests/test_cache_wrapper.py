"""Tests of the cache-based deterministic execution wrapper (Fig. 2b)."""

import pytest

from repro.core import (
    CacheWrapperOptions,
    build_cache_wrapped,
    golden_signature,
)
from repro.cpu.core import CORE_MODEL_A
from repro.isa.instructions import Mnemonic
from repro.stl import RoutineContext
from repro.stl.conventions import SIG_REG
from repro.stl.routines import make_forwarding_routine
from tests.conftest import run_program

CTX = RoutineContext.for_core(0, CORE_MODEL_A)


def small_routine():
    return make_forwarding_routine(
        CORE_MODEL_A, with_pcs=False, patterns_per_path=1, load_use_blocks=1
    )


def test_wrapper_structure_blocks():
    program = build_cache_wrapped(small_routine(), 0x1000, CTX)
    mnemonics = [i.mnemonic for i in program.code[:8]]
    # Block b: cache configuration + invalidation before everything else.
    assert Mnemonic.CSRW in mnemonics
    assert Mnemonic.ICINV in mnemonics
    assert Mnemonic.DCINV in mnemonics
    assert "wrapper_loop" in program.symbols


def test_body_executes_twice():
    routine = small_routine()
    single = routine.build_single_core(0x1000, CTX)
    wrapped = build_cache_wrapped(routine, 0x1000, CTX)
    _, single_core = run_program(single)
    _, wrapped_core = run_program(wrapped)
    # Twice the body, modest wrapper overhead.
    assert wrapped_core.instret > 1.9 * single_core.instret


def test_loading_loop_is_unobservable_execution_observable():
    routine = small_routine()
    wrapped = build_cache_wrapped(routine, 0x1000, CTX)
    _, core = run_program(wrapped)
    observable = [r for r in core.log.forwarding if r.observable]
    hidden = [r for r in core.log.forwarding if not r.observable]
    # The two iterations produce near-identical record counts.
    assert observable and hidden
    assert abs(len(observable) - len(hidden)) < 0.1 * len(observable)


def test_execution_loop_runs_entirely_from_cache():
    routine = small_routine()
    wrapped = build_cache_wrapped(routine, 0x1000, CTX)
    from repro.soc import Soc

    soc = Soc()
    soc.load(wrapped)
    core = soc.cores[0]
    soc.start_core(0, 0x1000)
    fills_at_execution_start = None
    for _ in range(2_000_000):
        soc.step()
        if fills_at_execution_start is None and core.testwin & 1:
            fills_at_execution_start = core.icache.stats.fills
        if core.done:
            break
    assert core.done
    assert fills_at_execution_start is not None
    assert core.icache.stats.fills == fills_at_execution_start


def test_signature_matches_unwrapped_single_core():
    routine = small_routine()
    single = routine.build_single_core(0x1000, CTX)
    wrapped = build_cache_wrapped(routine, 0x1000, CTX)
    assert golden_signature(single, 0) == golden_signature(wrapped, 0)


def test_memory_footprint_overhead_is_small_and_ram_free():
    from repro.core import memory_overhead_bytes

    routine = small_routine()
    single = routine.build_single_core(0x1000, CTX)
    wrapped = build_cache_wrapped(routine, 0x1000, CTX)
    assert memory_overhead_bytes(routine, CTX) == 0
    # Flash overhead: a few dozen bytes of wrapper ("negligible").
    assert wrapped.size_bytes - single.size_bytes < 128


def test_no_loading_loop_ablation_runs_once():
    routine = small_routine()
    options = CacheWrapperOptions(loading_loop=False)
    wrapped = build_cache_wrapped(routine, 0x1000, CTX, options=options)
    full = build_cache_wrapped(routine, 0x1000, CTX)
    _, once = run_program(wrapped)
    _, twice = run_program(full)
    assert twice.instret > 1.7 * once.instret


def test_no_invalidate_ablation_skips_invalidation():
    options = CacheWrapperOptions(invalidate=False)
    wrapped = build_cache_wrapped(small_routine(), 0x1000, CTX, options=options)
    mnemonics = {i.mnemonic for i in wrapped.code}
    assert Mnemonic.ICINV not in mnemonics


def test_dummy_loads_follow_stores_under_no_write_allocate():
    options = CacheWrapperOptions(write_allocate=False)
    routine = make_forwarding_routine(
        CORE_MODEL_A, with_pcs=False, patterns_per_path=1, load_use_blocks=2
    )
    wrapped = build_cache_wrapped(routine, 0x1000, CTX, options=options)
    code = wrapped.code
    stores = [i for i, instr in enumerate(code) if instr.spec.is_store]
    assert stores
    for index in stores:
        follower = code[index + 1]
        assert follower.spec.is_load
        assert follower.rs1 == code[index].rs1
        assert follower.imm == code[index].imm


def test_write_allocate_needs_no_dummy_loads():
    wrapped = build_cache_wrapped(small_routine(), 0x1000, CTX)
    code = wrapped.code
    stores = [i for i, instr in enumerate(code) if instr.spec.is_store]
    # At least one store is NOT followed by a load of the same address.
    assert any(
        not code[i + 1].spec.is_load or code[i + 1].rs1 != code[i].rs1
        for i in stores
    )


def store_heavy_routine():
    """A body whose stores are never followed by loads — the case the
    no-write-allocate dummy-load rule exists for."""
    from repro.stl.conventions import DATA_PTR
    from repro.stl.routine import TestRoutine
    from repro.stl.signature import emit_signature_update

    def emit_body(asm, ctx):
        for i in range(8):
            asm.li(1, 0x1000 + i)
            asm.sw(1, 32 * i, DATA_PTR)
            emit_signature_update(asm, 1)

    return TestRoutine("store_heavy", "GEN", emit_body)


def test_nwa_execution_loop_store_hits():
    """With no-write-allocate + dummy loads, the execution loop's stores
    must all hit in the D-cache (the dummy loads pulled the lines in)."""
    options = CacheWrapperOptions(write_allocate=False)
    routine = store_heavy_routine()
    wrapped = build_cache_wrapped(routine, 0x1000, CTX, options=options)
    from repro.soc import Soc

    soc = Soc()
    soc.load(wrapped)
    core = soc.cores[0]
    soc.start_core(0, 0x1000)
    bypasses_at_execution = None
    for _ in range(2_000_000):
        soc.step()
        if bypasses_at_execution is None and core.testwin & 1:
            bypasses_at_execution = core.dcache.stats.write_miss_bypasses
        if core.done:
            break
    assert bypasses_at_execution is not None
    # The loading loop's stores do miss and bypass (that is what the
    # dummy loads then repair), so the counter the metrics report
    # surfaces is live by the time the window opens ...
    assert bypasses_at_execution > 0
    # ... and never moves again: every execution-loop store hits.
    assert core.dcache.stats.write_miss_bypasses == bypasses_at_execution


def test_nwa_without_dummy_loads_keeps_missing():
    """Ablation: dropping the dummy-load rule leaves write misses in the
    execution loop — the traffic the rule exists to remove."""
    options = CacheWrapperOptions(write_allocate=False, dummy_loads=False)
    wrapped = build_cache_wrapped(store_heavy_routine(), 0x1000, CTX, options=options)
    from repro.soc import Soc

    soc = Soc()
    soc.load(wrapped)
    core = soc.cores[0]
    soc.start_core(0, 0x1000)
    bypasses_at_execution = None
    for _ in range(2_000_000):
        soc.step()
        if bypasses_at_execution is None and core.testwin & 1:
            bypasses_at_execution = core.dcache.stats.write_miss_bypasses
        if core.done:
            break
    assert core.dcache.stats.write_miss_bypasses > bypasses_at_execution
