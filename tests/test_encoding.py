"""Encode/decode tests, including a hypothesis round-trip."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.isa.encoding import (
    IMM10_MAX,
    IMM10_MIN,
    IMM15_MAX,
    IMM15_MIN,
    IMM20_MAX,
    IMM25_MAX,
    OPCODE_OF,
    decode,
    encode,
)
from repro.isa.instructions import Format, Instruction, Mnemonic

regs = st.integers(min_value=0, max_value=31)


def test_opcodes_unique():
    assert len(set(OPCODE_OF.values())) == len(Mnemonic)
    assert max(OPCODE_OF.values()) < 128


def test_known_encoding_fields():
    word = encode(Instruction(Mnemonic.ADD, rd=1, rs1=2, rs2=3))
    assert (word >> 25) == OPCODE_OF[Mnemonic.ADD]
    assert (word >> 20) & 0x1F == 1
    assert (word >> 15) & 0x1F == 2
    assert (word >> 10) & 0x1F == 3


def test_negative_immediates_roundtrip():
    instr = Instruction(Mnemonic.ADDI, rd=1, rs1=2, imm=-1)
    assert decode(encode(instr)).imm == -1
    branch = Instruction(Mnemonic.BNE, rs1=1, rs2=2, imm=IMM10_MIN)
    assert decode(encode(branch)).imm == IMM10_MIN


def test_out_of_range_immediates_rejected():
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.ADDI, rd=1, rs1=2, imm=IMM15_MAX + 1))
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.SW, rs1=1, rs2=2, imm=IMM10_MAX + 1))
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.LUI, rd=1, imm=IMM20_MAX + 1))
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.J, imm=IMM25_MAX + 1))
    with pytest.raises(EncodingError):
        encode(Instruction(Mnemonic.ADD, rd=32, rs1=0, rs2=0))


def test_unknown_opcode_rejected():
    with pytest.raises(EncodingError):
        decode(127 << 25)
    with pytest.raises(EncodingError):
        decode(-1)


@st.composite
def instructions(draw):
    mnemonic = draw(st.sampled_from(list(Mnemonic)))
    fmt = Instruction(mnemonic).spec.format
    rd = draw(regs)
    rs1 = draw(regs)
    rs2 = draw(regs)
    if fmt is Format.R3:
        return Instruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
    if fmt in (Format.I, Format.LOAD):
        imm = draw(st.integers(min_value=IMM15_MIN, max_value=IMM15_MAX))
        return Instruction(mnemonic, rd=rd, rs1=rs1, imm=imm)
    if fmt is Format.LUI:
        return Instruction(mnemonic, rd=rd, imm=draw(
            st.integers(min_value=0, max_value=IMM20_MAX)))
    if fmt in (Format.STORE, Format.BRANCH):
        imm = draw(st.integers(min_value=IMM10_MIN, max_value=IMM10_MAX))
        return Instruction(mnemonic, rs1=rs1, rs2=rs2, imm=imm)
    if fmt is Format.JUMP:
        return Instruction(mnemonic, imm=draw(
            st.integers(min_value=0, max_value=IMM25_MAX)))
    if fmt is Format.JR:
        return Instruction(mnemonic, rs1=rs1)
    if fmt is Format.CSRR:
        return Instruction(mnemonic, rd=rd, csr=draw(
            st.integers(min_value=0, max_value=31)))
    if fmt is Format.CSRW:
        return Instruction(mnemonic, csr=draw(
            st.integers(min_value=0, max_value=31)), rs1=rs1)
    return Instruction(mnemonic)


@given(instructions())
def test_encode_decode_roundtrip(instr):
    word = encode(instr)
    assert 0 <= word <= 0xFFFF_FFFF
    again = decode(word)
    assert encode(again) == word
    assert again.mnemonic == instr.mnemonic


@given(instructions())
def test_decode_preserves_operands(instr):
    again = decode(encode(instr))
    assert again.source_regs() == instr.source_regs()
    assert again.dest_regs() == instr.dest_regs()
    assert again.imm == instr.imm
