"""End-to-end memory-consistency property test.

Runs randomly generated store/load sequences through the *full* pipeline
(uncached, write-allocate cached and no-write-allocate cached) and
checks every loaded value against a flat reference memory.  This is the
strongest guard against cache/memory-unit bugs: any coherence slip in
the write-back path, the NWA bypass or the fill sequencing shows up as
a wrong loaded value.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import AsmBuilder
from repro.isa.instructions import (
    CACHECFG_DCACHE_EN,
    CACHECFG_WRITE_ALLOCATE,
    Csr,
)
from repro.soc import Soc
from repro.stl.signature import signature_of
from repro.utils.bitops import MASK32

BASE = 0x2000_0000
#: Offsets span several cache lines and sets.
OFFSETS = tuple(range(0, 512, 4))

ops = st.lists(
    st.tuples(
        st.booleans(),  # True = store
        st.sampled_from(OFFSETS),
        st.integers(min_value=0, max_value=MASK32),
    ),
    min_size=1,
    max_size=25,
)

cache_modes = st.sampled_from(
    (0, CACHECFG_DCACHE_EN, CACHECFG_DCACHE_EN | CACHECFG_WRITE_ALLOCATE)
)


@settings(max_examples=40, deadline=None)
@given(ops, cache_modes)
def test_pipeline_memory_matches_reference(operations, cachecfg):
    asm = AsmBuilder(0x100)
    asm.li(1, cachecfg)
    asm.csrw(Csr.CACHECFG, 1)
    asm.li(2, BASE)
    reference: dict[int, int] = {}
    expected_loads = []
    load_count = 0
    for is_store, offset, value in operations:
        if is_store:
            asm.li(3, value)
            asm.sw(3, offset, 2)
            reference[offset] = value
        else:
            asm.lw(4 + load_count % 8, offset, 2)
            expected_loads.append((4 + load_count % 8, reference.get(offset, 0)))
            load_count += 1
            # Fold the loaded value into a running signature so every
            # load is architecturally observable at the end.
            asm.xor(20, 20, 4 + (load_count - 1) % 8)
    asm.halt()
    soc = Soc()
    soc.load(asm.build())
    soc.start_core(0, 0x100)
    soc.run(max_cycles=500_000)
    core = soc.cores[0]
    # The final value of each load register must match the reference
    # (later loads into the same register win).
    final = {}
    for reg, value in expected_loads:
        final[reg] = value
    for reg, value in final.items():
        assert core.regfile.read(reg) == value, (
            f"cachecfg={cachecfg:#x} r{reg}"
        )
    # And the XOR accumulator matches the reference fold.
    acc = 0
    for _, value in expected_loads:
        acc ^= value
    assert core.regfile.read(20) == acc
