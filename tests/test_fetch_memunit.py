"""Focused tests of the fetch unit and the data memory unit."""

from repro.isa import AsmBuilder
from repro.isa.instructions import CACHECFG_DCACHE_EN, CACHECFG_ICACHE_EN, Csr
from repro.soc import Soc
from tests.conftest import run_program


def test_fetch_redirect_discards_inflight():
    """A taken branch must not let stale prefetched words issue."""
    _, core = run_program(
        """
        .org 0x100
        addi r1, r0, 1
        j target
        addi r1, r1, 100   # must never execute
        addi r1, r1, 100
        target: addi r1, r1, 2
        halt
        """
    )
    assert core.regfile.read(1) == 3


def test_unaligned_branch_target_fetches_partial_group():
    """Jumping to a non-16-byte-aligned target works and the stream
    continues correctly from there."""
    _, core = run_program(
        """
        .org 0x100
        j target
        nop
        nop
        target: addi r2, r0, 9
        addi r3, r2, 1
        halt
        """
    )
    assert core.regfile.read(3) == 10


def test_icache_fill_then_hits():
    asm = AsmBuilder(0x200)
    asm.li(1, CACHECFG_ICACHE_EN)
    asm.csrw(Csr.CACHECFG, 1)
    asm.li(2, 3)
    asm.label("loop")
    asm.addi(2, 2, -1)
    asm.bne(2, 0, "loop")
    asm.halt()
    _, core = run_program(asm.build())
    assert core.icache.stats.fills >= 1
    assert core.icache.stats.hits > core.icache.stats.misses


def test_uncached_fetch_uses_burst_groups():
    _, core = run_program(
        """
        .org 0x100
        nop
        nop
        nop
        nop
        nop
        nop
        nop
        halt
        """
    )
    # 8 instructions starting 16-byte aligned: two 4-word bursts.
    soc = Soc()
    # Count bursts via bus stats of a fresh identical run.
    from repro.isa import assemble

    program = assemble(".org 0x100\n" + "nop\n" * 7 + "halt\n")
    soc.load(program)
    soc.start_core(0, 0x100)
    soc.run()
    # Two useful 4-word bursts; the prefetcher may have streamed one
    # further speculative burst before HALT stopped it.
    assert 2 <= soc.bus.stats[0].transactions <= 3


def test_dcache_write_back_on_eviction():
    """Dirty lines must reach memory when evicted."""
    asm = AsmBuilder(0x100)
    asm.li(1, CACHECFG_DCACHE_EN | 4)  # D$ on, write-allocate
    asm.csrw(Csr.CACHECFG, 1)
    asm.li(2, 0x2000_0000)
    asm.li(3, 0xFEED)
    asm.sw(3, 0, 2)  # dirty line at set 0
    # Two more lines mapping to the same set (4 KiB / 2 ways / 32 B =
    # 64 sets -> stride 2 KiB).
    asm.li(4, 0x2000_0800)
    asm.sw(3, 0, 4)
    asm.li(5, 0x2000_1000)
    asm.sw(3, 0, 5)
    asm.halt()
    soc = Soc()
    program = asm.build()
    soc.load(program)
    soc.start_core(0, 0x100)
    soc.run()
    assert soc.sram.read_word(0x2000_0000) == 0xFEED
    assert soc.cores[0].dcache.stats.writebacks >= 1


def test_nwa_store_miss_bypasses_cache():
    asm = AsmBuilder(0x100)
    asm.li(1, CACHECFG_DCACHE_EN)  # D$ on, NO write-allocate
    asm.csrw(Csr.CACHECFG, 1)
    asm.li(2, 0x2000_0000)
    asm.li(3, 0xBEAD)
    asm.sw(3, 0, 2)
    asm.sync()
    asm.halt()
    soc = Soc()
    soc.load(asm.build())
    soc.start_core(0, 0x100)
    soc.run()
    core = soc.cores[0]
    assert soc.sram.read_word(0x2000_0000) == 0xBEAD
    assert core.dcache.stats.write_miss_bypasses == 1
    assert core.dcache.resident_lines() == 0


def test_wa_store_miss_allocates():
    asm = AsmBuilder(0x100)
    asm.li(1, CACHECFG_DCACHE_EN | 4)
    asm.csrw(Csr.CACHECFG, 1)
    asm.li(2, 0x2000_0000)
    asm.li(3, 0xC0DE)
    asm.sw(3, 0, 2)
    asm.lw(4, 0, 2)
    asm.halt()
    soc = Soc()
    soc.load(asm.build())
    soc.start_core(0, 0x100)
    soc.run()
    core = soc.cores[0]
    assert core.regfile.read(4) == 0xC0DE
    assert core.dcache.stats.write_miss_bypasses == 0
    assert core.dcache.resident_lines() == 1
    # Write-back cache: the value is only in the cache until eviction.
    assert soc.sram.read_word(0x2000_0000) == 0


def test_byte_store_uncached():
    _, core = run_program(
        """
        lui r2, 0x20000
        addi r3, r0, 0xAB
        sb r3, 2(r2)
        lbu r4, 2(r2)
        lw r5, 0(r2)
        halt
        """
    )
    assert core.regfile.read(4) == 0xAB
    assert core.regfile.read(5) == 0xAB << 16


def test_memstall_counted_for_uncached_loads():
    _, core = run_program(
        """
        lui r2, 0x20000
        lw r3, 0(r2)
        lw r4, 4(r2)
        halt
        """
    )
    assert core.memstall > 0
