"""Property test: random programs survive listing -> assemble round-trips,
plus tests of the `li` pseudo-instruction."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import AsmBuilder, assemble
from repro.isa.encoding import IMM10_MAX, IMM10_MIN, IMM15_MAX, IMM15_MIN
from repro.isa.instructions import Instruction, Mnemonic
from repro.utils.bitops import MASK32

regs = st.integers(min_value=0, max_value=31)


@st.composite
def simple_programs(draw):
    asm = AsmBuilder(4 * draw(st.integers(min_value=0, max_value=1 << 18)))
    asm.label("top")
    for _ in range(draw(st.integers(min_value=1, max_value=15))):
        choice = draw(st.integers(min_value=0, max_value=5))
        if choice == 0:
            asm.add(draw(regs), draw(regs), draw(regs))
        elif choice == 1:
            asm.addi(
                draw(regs), draw(regs),
                draw(st.integers(min_value=IMM15_MIN, max_value=IMM15_MAX)),
            )
        elif choice == 2:
            asm.lw(
                draw(regs),
                draw(st.integers(min_value=IMM15_MIN, max_value=IMM15_MAX)),
                draw(regs),
            )
        elif choice == 3:
            asm.sw(
                draw(regs),
                draw(st.integers(min_value=IMM10_MIN, max_value=IMM10_MAX)),
                draw(regs),
            )
        elif choice == 4:
            asm.beq(draw(regs), draw(regs), "top")
        else:
            asm.nop()
    asm.halt()
    return asm.build()


@settings(max_examples=60, deadline=None)
@given(simple_programs())
def test_listing_assemble_roundtrip(program):
    again = assemble(program.listing())
    assert again.base_address == program.base_address
    assert again.encoded_words() == program.encoded_words()


@given(st.integers(min_value=0, max_value=MASK32))
def test_li_pseudo_matches_builder(value):
    source = f"li r5, {value:#x}\nhalt\n"
    program = assemble(source)
    asm = AsmBuilder()
    asm.li(5, value)
    asm.halt()
    assert program.encoded_words() == asm.build().encoded_words()


def test_li_pseudo_negative():
    program = assemble("li r3, -7\nhalt\n")
    assert program.code[0].mnemonic is Mnemonic.ADDI
    assert program.code[0].imm == -7


def test_li_pseudo_errors():
    import pytest

    from repro.errors import AssemblyError

    with pytest.raises(AssemblyError):
        assemble("li r3\n")
    with pytest.raises(AssemblyError):
        assemble("li r99, 4\n")
