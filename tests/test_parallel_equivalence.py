"""Differential serial-vs-parallel equivalence for every fault model.

The parallel engine's contract is that no (workers, num_shards)
geometry changes a single reported number.  These tests pin that
contract for the three fault models — uncollapsed stuck-at, weighted
PPSFP (collapsed equivalence classes) and transition-delay — across
shard counts {1, 2, 7, 16}, odd shard shapes (empty shards, a
single-fault shard) and real process pools, and for the campaign layer
including the per-core signatures each scenario records.
"""

import pytest

from repro.core.determinism import Scenario, run_scenario
from repro.cpu.core import CORE_MODEL_A
from repro.faults import (
    fault_simulate,
    get_modules,
    parallel_fault_simulate,
    parallel_transition_fault_simulate,
    run_checkpointed_campaign,
    run_parallel_checkpointed_campaign,
    shard_faults,
)
from repro.faults.observability import forwarding_pattern_sets
from repro.faults.stuckat import collapse_with_weights, enumerate_faults
from repro.faults.transition import (
    enumerate_transition_faults,
    transition_fault_simulate,
)
from repro.faults.workload import DEFAULT_CAMPAIGN_MODELS, small_provider
from repro.soc import CodeAlignment, CodePosition

SHARD_COUNTS = (1, 2, 7, 16)

SCENARIOS = (
    Scenario((0, 1), CodePosition.LOW, CodeAlignment.QWORD),
    Scenario((0, 1), CodePosition.MID, CodeAlignment.WORD),
    Scenario((0, 1, 2), CodePosition.HIGH, CodeAlignment.DWORD),
)


@pytest.fixture(scope="module")
def fwd_port():
    """One forwarding port's netlist + merged and ordered pattern sets
    from a real (small) two-core run."""
    builders = small_provider()()
    result = run_scenario(builders, SCENARIOS[0])
    modules = get_modules(CORE_MODEL_A)
    log = result.per_core[0].log
    merged = forwarding_pattern_sets(log, modules)
    ordered = forwarding_pattern_sets(log, modules, ordered=True)
    port = sorted(merged)[0]
    return modules.forwarding[port], merged[port], ordered[port]


def as_tuple(result):
    return (
        result.module,
        result.total_faults,
        result.detected_faults,
        result.num_patterns,
    )


# ----------------------------------------------------------------------
# Fault-model equivalence across shard counts (in-process sharding).
# ----------------------------------------------------------------------


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_stuckat_equivalence_across_shard_counts(fwd_port, num_shards):
    netlist, patterns, _ = fwd_port
    faults = enumerate_faults(netlist)
    serial = fault_simulate(netlist, patterns, faults)
    parallel = parallel_fault_simulate(
        netlist, patterns, faults, workers=1, num_shards=num_shards
    )
    assert as_tuple(parallel) == as_tuple(serial)


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_weighted_ppsfp_equivalence_across_shard_counts(fwd_port, num_shards):
    netlist, patterns, _ = fwd_port
    weighted = collapse_with_weights(netlist)
    serial = fault_simulate(netlist, patterns, weighted)
    parallel = parallel_fault_simulate(
        netlist, patterns, weighted, workers=1, num_shards=num_shards
    )
    assert as_tuple(parallel) == as_tuple(serial)
    # The weighted totals must still count the uncollapsed population.
    assert parallel.total_faults == 2 * netlist.num_nets


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_transition_equivalence_across_shard_counts(fwd_port, num_shards):
    netlist, _, ordered = fwd_port
    faults = enumerate_transition_faults(netlist)
    serial = transition_fault_simulate(netlist, ordered, faults)
    parallel = parallel_transition_fault_simulate(
        netlist, ordered, faults, workers=1, num_shards=num_shards
    )
    assert as_tuple(parallel) == as_tuple(serial)


def test_default_fault_lists_match_serial_defaults(fwd_port):
    """Omitting ``faults`` must grade the same default list serially
    and in parallel (collapsed stuck-at classes)."""
    netlist, patterns, _ = fwd_port
    serial = fault_simulate(netlist, patterns)
    parallel = parallel_fault_simulate(
        netlist, patterns, workers=1, num_shards=7
    )
    assert as_tuple(parallel) == as_tuple(serial)


# ----------------------------------------------------------------------
# Real process pools.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("workers,num_shards", [(2, 2), (2, 7), (4, 16)])
def test_stuckat_equivalence_with_process_pool(fwd_port, workers, num_shards):
    netlist, patterns, _ = fwd_port
    serial = fault_simulate(netlist, patterns)
    parallel = parallel_fault_simulate(
        netlist, patterns, workers=workers, num_shards=num_shards
    )
    assert as_tuple(parallel) == as_tuple(serial)


def test_transition_equivalence_with_process_pool(fwd_port):
    netlist, _, ordered = fwd_port
    serial = transition_fault_simulate(netlist, ordered)
    parallel = parallel_transition_fault_simulate(
        netlist, ordered, workers=2, num_shards=7
    )
    assert as_tuple(parallel) == as_tuple(serial)


# ----------------------------------------------------------------------
# Odd shard shapes.
# ----------------------------------------------------------------------


def test_empty_shards_are_harmless(fwd_port):
    """More shards than faults leaves some shards empty; they must
    contribute exactly (0, 0) to the merge."""
    netlist, patterns, _ = fwd_port
    faults = enumerate_faults(netlist)[:5]
    shards = shard_faults(faults, 16)
    assert any(not shard for shard in shards)  # genuinely empty shards
    serial = fault_simulate(netlist, patterns, faults)
    parallel = parallel_fault_simulate(
        netlist, patterns, faults, workers=1, num_shards=16
    )
    assert as_tuple(parallel) == as_tuple(serial)


def test_single_fault_shard(fwd_port):
    netlist, patterns, _ = fwd_port
    faults = enumerate_faults(netlist)[:1]
    serial = fault_simulate(netlist, patterns, faults)
    parallel = parallel_fault_simulate(
        netlist, patterns, faults, workers=1, num_shards=7
    )
    assert as_tuple(parallel) == as_tuple(serial)
    assert parallel.total_faults == 1


def test_workers_one_is_exact_serial_path(fwd_port):
    """``workers=1`` without an explicit shard count must not shard at
    all — it is the serial engine called through the parallel API."""
    netlist, patterns, _ = fwd_port
    serial = fault_simulate(netlist, patterns)
    parallel = parallel_fault_simulate(netlist, patterns, workers=1)
    assert as_tuple(parallel) == as_tuple(serial)


# ----------------------------------------------------------------------
# Campaign-level equivalence: coverage dicts AND signatures.
# ----------------------------------------------------------------------


def outcome_dicts(outcomes):
    return {label: outcome.to_dict() for label, outcome in outcomes.items()}


@pytest.fixture(scope="module")
def serial_campaign(tmp_path_factory):
    path = tmp_path_factory.mktemp("serial") / "campaign.json"
    return run_checkpointed_campaign(
        small_provider()(),
        SCENARIOS,
        DEFAULT_CAMPAIGN_MODELS,
        path,
        modules=("FWD",),
    )


@pytest.mark.parametrize("workers,num_shards", [(1, None), (2, 3), (2, 7)])
def test_campaign_equivalence(
    serial_campaign, tmp_path, workers, num_shards
):
    result = run_parallel_checkpointed_campaign(
        small_provider(),
        SCENARIOS,
        DEFAULT_CAMPAIGN_MODELS,
        tmp_path / "parallel",
        modules=("FWD",),
        workers=workers,
        num_shards=num_shards,
    )
    assert outcome_dicts(result.outcomes) == outcome_dicts(serial_campaign)
    # Signatures are part of the contract: identical per core, per
    # scenario, whatever the pool geometry.
    for label, outcome in result.outcomes.items():
        assert outcome.signatures == serial_campaign[label].signatures
        assert outcome.signatures  # actually recorded, not vacuous


def test_campaign_preserves_scenario_order(serial_campaign, tmp_path):
    result = run_parallel_checkpointed_campaign(
        small_provider(),
        SCENARIOS,
        DEFAULT_CAMPAIGN_MODELS,
        tmp_path / "ordered",
        modules=("FWD",),
        workers=2,
        num_shards=2,
    )
    assert list(result.outcomes) == [s.label for s in SCENARIOS]
    assert list(result.outcomes) == list(serial_campaign)


def test_campaign_multi_module_equivalence(tmp_path):
    """Grading several fault lists at once stays equivalent too."""
    modules = ("FWD", "ICU")
    serial = run_checkpointed_campaign(
        small_provider()(),
        SCENARIOS[:2],
        DEFAULT_CAMPAIGN_MODELS,
        tmp_path / "serial.json",
        modules=modules,
    )
    parallel = run_parallel_checkpointed_campaign(
        small_provider(),
        SCENARIOS[:2],
        DEFAULT_CAMPAIGN_MODELS,
        tmp_path / "parallel",
        modules=modules,
        workers=2,
        num_shards=2,
    )
    assert outcome_dicts(parallel.outcomes) == outcome_dicts(serial)
