"""Differential compiled-vs-interpreted equivalence for every fault model.

The compiled kernel (:mod:`repro.faults.compiled`) is a pure
performance substitution: levelized arrays, cached cones, preallocated
buffers — but not one reported number may move.  These tests pin that
contract against the interpreted reference path for the three fault
models (uncollapsed stuck-at, weighted PPSFP, transition-delay), on
both real module netlists and seeded random ones, with and without
fault dropping, across shard geometries, and through a killed-and-
resumed checkpointed campaign that switches engines mid-flight.
"""

import pickle
import random

import pytest

from repro.core.determinism import Scenario, run_scenario
from repro.cpu.core import CORE_MODEL_A
from repro.errors import FaultModelError
from repro.faults import (
    DropSet,
    compiled_for,
    fault_simulate,
    get_modules,
    parallel_fault_simulate,
    run_checkpointed_campaign,
    run_parallel_checkpointed_campaign,
)
from repro.faults.gates import UNARY, GateKind
from repro.faults.netlist import Netlist
from repro.faults.observability import forwarding_pattern_sets
from repro.faults.ppsfp import PatternSet
from repro.faults.stuckat import collapse_with_weights, enumerate_faults
from repro.faults.transition import (
    enumerate_transition_faults,
    transition_fault_simulate,
)
from repro.faults.workload import DEFAULT_CAMPAIGN_MODELS, small_provider
from repro.soc import CodeAlignment, CodePosition

SHARD_COUNTS = (1, 2, 7, 16)
SEEDS = tuple(range(6))

SCENARIOS = (
    Scenario((0, 1), CodePosition.LOW, CodeAlignment.QWORD),
    Scenario((0, 1), CodePosition.MID, CodeAlignment.WORD),
)


@pytest.fixture(scope="module")
def fwd_port():
    """One forwarding port's netlist + merged and ordered pattern sets
    from a real (small) two-core run."""
    builders = small_provider()()
    result = run_scenario(builders, SCENARIOS[0])
    modules = get_modules(CORE_MODEL_A)
    log = result.per_core[0].log
    merged = forwarding_pattern_sets(log, modules)
    ordered = forwarding_pattern_sets(log, modules, ordered=True)
    port = sorted(merged)[0]
    return modules.forwarding[port], merged[port], ordered[port]


def as_tuple(result):
    return (
        result.module,
        result.total_faults,
        result.detected_faults,
        result.num_patterns,
    )


def random_netlist(seed: int, num_inputs: int = 8, num_gates: int = 60) -> Netlist:
    """A seeded random feed-forward netlist with every gate kind."""
    rng = random.Random(seed)
    netlist = Netlist(f"rand{seed}")
    netlist.add_input_bus("in", num_inputs)
    nets = list(netlist.input_nets)
    kinds = list(GateKind)
    for _ in range(num_gates):
        kind = rng.choice(kinds)
        if kind in UNARY:
            out = netlist.add_gate(kind, rng.choice(nets))
        else:
            out = netlist.add_gate(kind, rng.choice(nets), rng.choice(nets))
        nets.append(out)
    internal = nets[num_inputs:]
    netlist.mark_output_bus("out", rng.sample(internal, k=min(6, len(internal))))
    return netlist


def random_patterns(
    netlist: Netlist, seed: int, num_patterns: int = 37, internal_obs: bool = False
) -> PatternSet:
    """Seeded stimulus + observability.  ``internal_obs`` additionally
    observes nets that feed no output, which defeats the compiled
    engine's truncated-cone fast path and forces the full-cone walk."""
    rng = random.Random(seed + 9000)
    inputs = {net: rng.getrandbits(num_patterns) for net in netlist.input_nets}
    observability = {
        net: rng.getrandbits(num_patterns) for net in netlist.output_nets
    }
    if internal_obs:
        gate_outs = [g.out for g in netlist.gates if g.out not in observability]
        for net in rng.sample(gate_outs, k=min(4, len(gate_outs))):
            observability[net] = rng.getrandbits(num_patterns)
    return PatternSet(num_patterns, inputs, observability)


# ----------------------------------------------------------------------
# Good simulation: the compiled per-kind batched sweep is bit-identical.
# ----------------------------------------------------------------------


def test_good_simulation_matches_on_real_module(fwd_port):
    netlist, patterns, _ = fwd_port
    compiled = compiled_for(netlist)
    assert compiled.evaluate(patterns.inputs, patterns.mask) == netlist.evaluate(
        patterns.inputs, patterns.mask
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_good_simulation_matches_on_random_netlists(seed):
    netlist = random_netlist(seed)
    patterns = random_patterns(netlist, seed)
    compiled = compiled_for(netlist)
    assert compiled.evaluate(patterns.inputs, patterns.mask) == netlist.evaluate(
        patterns.inputs, patterns.mask
    )


# ----------------------------------------------------------------------
# Three fault models on a real module netlist.
# ----------------------------------------------------------------------


def test_stuckat_engines_agree_on_real_module(fwd_port):
    netlist, patterns, _ = fwd_port
    faults = enumerate_faults(netlist)
    compiled = fault_simulate(netlist, patterns, faults, engine="compiled")
    interpreted = fault_simulate(netlist, patterns, faults, engine="interpreted")
    assert as_tuple(compiled) == as_tuple(interpreted)


def test_weighted_ppsfp_engines_agree_on_real_module(fwd_port):
    netlist, patterns, _ = fwd_port
    weighted = collapse_with_weights(netlist)
    compiled = fault_simulate(netlist, patterns, weighted, engine="compiled")
    interpreted = fault_simulate(netlist, patterns, weighted, engine="interpreted")
    assert as_tuple(compiled) == as_tuple(interpreted)
    assert compiled.total_faults == 2 * netlist.num_nets


def test_transition_engines_agree_on_real_module(fwd_port):
    netlist, _, ordered = fwd_port
    faults = enumerate_transition_faults(netlist)
    compiled = transition_fault_simulate(netlist, ordered, faults, engine="compiled")
    interpreted = transition_fault_simulate(
        netlist, ordered, faults, engine="interpreted"
    )
    assert as_tuple(compiled) == as_tuple(interpreted)


def test_unknown_engine_rejected(fwd_port):
    netlist, patterns, _ = fwd_port
    with pytest.raises(FaultModelError, match="unknown engine"):
        fault_simulate(netlist, patterns, engine="jit")


# ----------------------------------------------------------------------
# Seeded random netlists, truncated and full-cone observability.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("internal_obs", (False, True))
def test_random_netlists_stuckat_equivalence(seed, internal_obs):
    netlist = random_netlist(seed)
    patterns = random_patterns(netlist, seed, internal_obs=internal_obs)
    compiled = compiled_for(netlist)
    # internal_obs observes nets outside the output cone, which must
    # disable truncation (the fast path would miss those detections).
    assert compiled.can_truncate(patterns.output_observability) == (not internal_obs)
    faults = enumerate_faults(netlist)
    assert as_tuple(
        fault_simulate(netlist, patterns, faults, engine="compiled")
    ) == as_tuple(fault_simulate(netlist, patterns, faults, engine="interpreted"))


@pytest.mark.parametrize("seed", SEEDS)
def test_random_netlists_transition_equivalence(seed):
    netlist = random_netlist(seed)
    patterns = random_patterns(netlist, seed)
    faults = enumerate_transition_faults(netlist)
    assert as_tuple(
        transition_fault_simulate(netlist, patterns, faults, engine="compiled")
    ) == as_tuple(
        transition_fault_simulate(netlist, patterns, faults, engine="interpreted")
    )


# ----------------------------------------------------------------------
# Fault dropping: neutral within a call, cumulative across calls,
# identical across engines and shard geometries.
# ----------------------------------------------------------------------


def test_dropping_is_neutral_within_one_call(fwd_port):
    netlist, patterns, _ = fwd_port
    faults = enumerate_faults(netlist)
    plain = fault_simulate(netlist, patterns, faults)
    for engine in ("compiled", "interpreted"):
        dropped = DropSet()
        dropping = fault_simulate(
            netlist, patterns, faults, engine=engine, dropped=dropped
        )
        assert as_tuple(dropping) == as_tuple(plain)
        assert len(dropped) == plain.detected_faults


def test_engines_record_identical_drop_sets(fwd_port):
    netlist, patterns, _ = fwd_port
    faults = enumerate_faults(netlist)
    sets = {}
    for engine in ("compiled", "interpreted"):
        dropped = DropSet()
        fault_simulate(netlist, patterns, faults, engine=engine, dropped=dropped)
        sets[engine] = dropped.detected
    assert sets["compiled"] == sets["interpreted"]


def test_predetected_faults_are_credited_not_resimulated(fwd_port):
    netlist, patterns, _ = fwd_port
    faults = enumerate_faults(netlist)
    first = DropSet()
    reference = fault_simulate(netlist, patterns, faults, dropped=first)
    # Second pass over the same list with the populated set: every
    # previously detected fault is credited, undetected ones re-graded.
    for engine in ("compiled", "interpreted"):
        again = fault_simulate(
            netlist, patterns, faults, engine=engine,
            dropped=DropSet(first.detected),
        )
        assert as_tuple(again) == as_tuple(reference)
    # Pre-dropping *every* fault short-circuits the whole run.
    everything = DropSet(f.stable_id for f in faults)
    credited = fault_simulate(netlist, patterns, faults, dropped=everything)
    assert credited.detected_faults == len(faults)


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_sharded_dropping_matches_serial(fwd_port, num_shards):
    netlist, patterns, _ = fwd_port
    faults = enumerate_faults(netlist)
    serial_set = DropSet()
    serial = fault_simulate(netlist, patterns, faults, dropped=serial_set)
    sharded_set = DropSet()
    sharded = parallel_fault_simulate(
        netlist, patterns, faults,
        workers=1, num_shards=num_shards, dropped=sharded_set,
    )
    assert as_tuple(sharded) == as_tuple(serial)
    assert sharded_set.detected == serial_set.detected


# ----------------------------------------------------------------------
# Campaign layer: engine choice never moves coverage or signatures,
# and a killed campaign may resume under the other engine.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def interpreted_campaign(tmp_path_factory):
    path = tmp_path_factory.mktemp("interpreted") / "campaign.json"
    return run_checkpointed_campaign(
        small_provider()(),
        SCENARIOS,
        DEFAULT_CAMPAIGN_MODELS,
        path,
        modules=("FWD",),
        engine="interpreted",
    )


def outcome_dicts(outcomes):
    return {label: outcome.to_dict() for label, outcome in outcomes.items()}


def test_campaign_engines_agree(interpreted_campaign, tmp_path):
    result = run_parallel_checkpointed_campaign(
        small_provider(),
        SCENARIOS,
        DEFAULT_CAMPAIGN_MODELS,
        tmp_path / "compiled",
        modules=("FWD",),
        workers=1,
        engine="compiled",
    )
    assert outcome_dicts(result.outcomes) == outcome_dicts(interpreted_campaign)
    for label, outcome in result.outcomes.items():
        assert outcome.signatures == interpreted_campaign[label].signatures
        assert outcome.signatures  # actually recorded, not vacuous


def test_campaign_resume_switches_engines(interpreted_campaign, tmp_path):
    """Kill a compiled campaign after its first shard, resume it
    interpreted: bit-identical engines make the switch legal, and the
    merged outcomes must equal the serial interpreted reference."""

    class Killed(RuntimeError):
        pass

    def kill_after_first_shard(index, outcomes):
        raise Killed(f"killed after shard {index}")

    directory = tmp_path / "switch"
    with pytest.raises(Killed):
        run_parallel_checkpointed_campaign(
            small_provider(),
            SCENARIOS,
            DEFAULT_CAMPAIGN_MODELS,
            directory,
            modules=("FWD",),
            workers=1,
            num_shards=2,
            engine="compiled",
            on_shard=kill_after_first_shard,
        )
    resumed = run_parallel_checkpointed_campaign(
        small_provider(),
        SCENARIOS,
        DEFAULT_CAMPAIGN_MODELS,
        directory,
        modules=("FWD",),
        workers=1,
        engine="interpreted",
    )
    # The resume ran strictly fewer shards than the plan holds.
    assert len(resumed.scheduled) < resumed.num_shards
    assert outcome_dicts(resumed.outcomes) == outcome_dicts(interpreted_campaign)


# ----------------------------------------------------------------------
# Compile-artifact lifecycle: freeze, cache, and lean pickles.
# ----------------------------------------------------------------------


def test_compiling_freezes_the_netlist():
    netlist = random_netlist(99)
    compiled_for(netlist)
    assert netlist.frozen
    with pytest.raises(FaultModelError, match="frozen"):
        netlist.add_gate(GateKind.NOT, 0)
    with pytest.raises(FaultModelError, match="frozen"):
        netlist.new_net()
    with pytest.raises(FaultModelError, match="frozen"):
        netlist.mark_output_bus("late", [0])


def test_compiled_artifact_is_cached_per_netlist():
    netlist = random_netlist(100)
    assert compiled_for(netlist) is compiled_for(netlist)


def test_pickled_netlists_drop_the_compiled_artifact():
    netlist = random_netlist(101)
    patterns = random_patterns(netlist, 101)
    reference = fault_simulate(netlist, patterns)  # compiles + caches
    clone = pickle.loads(pickle.dumps(netlist))
    assert not hasattr(clone, "_compiled_artifact")
    assert clone.frozen  # freeze state survives the round-trip
    assert as_tuple(fault_simulate(clone, patterns)) == as_tuple(reference)
