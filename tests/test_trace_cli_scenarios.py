"""The ``python -m repro trace`` subcommand and its canned scenarios."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main
from repro.telemetry import validate_trace_events
from repro.telemetry.scenarios import TRACE_SCENARIOS, run_trace_scenario


def test_registry_names_are_stable():
    assert set(TRACE_SCENARIOS) == {"quickstart", "contention", "recovery"}
    # The trace subcommand rides outside the experiment registry (the
    # CLI test asserts that registry exactly), so it must not leak in.
    assert "trace" not in EXPERIMENTS


def test_unknown_scenario_raises_with_choices():
    with pytest.raises(KeyError, match="quickstart"):
        run_trace_scenario("nope")


def test_quickstart_scenario_audits_clean():
    run = run_trace_scenario("quickstart", small=True)
    assert run.expect_audit_pass and run.session.auditor.passed
    assert run.audit_as_expected
    assert sorted(run.session.auditor.windows_opened) == [0, 1, 2]
    assert run.cycles > 0


def test_contention_scenario_fails_audit_on_purpose():
    run = run_trace_scenario("contention", small=True)
    auditor = run.session.auditor
    assert not run.expect_audit_pass and not auditor.passed
    assert run.audit_as_expected
    # Only the unwrapped core violates; the wrapped neighbour stays clean.
    assert {v.core for v in auditor.violations} == {0}
    assert auditor.windows_opened[1] == 1


def test_recovery_scenario_recovers_with_audit_attached():
    run = run_trace_scenario("recovery", small=True)
    report = run.report
    assert report is not None and report.all_passed
    assert report.recovered_names == ["tiny_ld"]
    assert len(report.injections) == 1
    assert report.audit is not None and report.audit["passed"] is True
    # The retry re-opened the window: both attempts were audited.
    assert report.audit["windows_opened"] == {"0": 2}
    # The injected flip is visible in the recorded stream.
    kinds = {e.kind.value for e in run.session.events}
    assert "fault.injection" in kinds
    assert "supervisor.retry" in kinds


def test_cli_trace_writes_artifacts(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    rc = main(
        [
            "trace",
            "quickstart",
            "--small",
            "--strict",
            "--trace-out",
            str(trace_path),
            "--metrics-out",
            str(metrics_path),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "DeterminismAuditor: PASS" in out
    assert "Cache activity by core and STL phase" in out
    trace = json.loads(trace_path.read_text())
    validate_trace_events(trace)
    metrics = json.loads(metrics_path.read_text())
    assert "core0" in metrics and "loading" in metrics["core0"]


def test_cli_trace_strict_passes_on_expected_failure(tmp_path):
    # The contention scenario *expects* a failed audit; --strict agrees.
    rc = main(
        [
            "trace",
            "contention",
            "--small",
            "--strict",
            "--trace-out",
            str(tmp_path / "t.json"),
            "--metrics-out",
            str(tmp_path / "m.json"),
        ]
    )
    assert rc == 0


def test_cli_trace_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["trace", "definitely-not-a-scenario"])
