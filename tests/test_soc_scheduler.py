"""Tests of the SoC container, loader, scheduler and stall monitor."""

import pytest

from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_B, CORE_MODEL_C
from repro.soc import (
    CodeAlignment,
    CodePosition,
    Soc,
    StallMonitor,
    placement_address,
)
from repro.soc.scheduler import (
    ParallelSchedule,
    build_dispatch_program,
    load_parallel_session,
)
from repro.stl import RoutineContext, build_library
from repro.stl.conventions import SIG_REG


def test_soc_has_three_heterogeneous_cores():
    soc = Soc()
    assert [core.model.name for core in soc.cores] == ["A", "B", "C"]
    assert soc.core_by_model("C").model.is64
    with pytest.raises(KeyError):
        soc.core_by_model("Z")


def test_private_resources_are_distinct():
    soc = Soc()
    bases = {core.itcm.base for core in soc.cores}
    assert len(bases) == 3
    assert soc.cores[0].icache is not soc.cores[1].icache


def test_placement_addresses_distinct_per_scenario():
    seen = set()
    for position in CodePosition:
        for alignment in CodeAlignment:
            for core in range(3):
                address = placement_address(position, alignment, core)
                assert address % 4 == 0
                seen.add(address)
    assert len(seen) == 27


def test_placement_varies_line_phase():
    phases = {
        placement_address(position, CodeAlignment.QWORD, 0) % 32
        for position in CodePosition
    }
    assert len(phases) == 3


def test_dispatch_program_runs_whole_library():
    library = build_library(CORE_MODEL_A, include_module_tests=False)
    schedule = ParallelSchedule.round_robin({0: library})
    ctx = RoutineContext.for_core(0, CORE_MODEL_A)
    program = build_dispatch_program(
        library, schedule.per_core[0], 0x400, ctx
    )
    soc = Soc()
    soc.load(program)
    soc.start_core(0, 0x400)
    soc.run(max_cycles=2_000_000)
    core = soc.cores[0]
    assert core.done
    assert core.regfile.read(SIG_REG) != 0


def test_parallel_session_loads_all_cores():
    libraries = {
        i: build_library(m, include_module_tests=False)
        for i, m in enumerate((CORE_MODEL_A, CORE_MODEL_B, CORE_MODEL_C))
    }
    schedule = ParallelSchedule.round_robin(libraries)
    soc = Soc()
    entries = load_parallel_session(soc, libraries, schedule)
    assert set(entries) == {0, 1, 2}
    for core_id, entry in entries.items():
        soc.cores[core_id].recording = False
        soc.start_core(core_id, entry)
    soc.run(max_cycles=4_000_000)
    assert all(core.done for core in soc.cores)


def test_stall_monitor_reports_started_cores_only():
    soc = Soc()
    from repro.isa import assemble

    soc.load(assemble(".org 0x100\nnop\nhalt\n"))
    soc.start_core(1, 0x100)
    soc.run()
    report = StallMonitor().snapshot(soc)
    assert report.active_cores == 1
    assert report.per_core[0].core_id == 1
    assert report.total_cycles == report.per_core[0].cycles


def test_stalls_grow_superlinearly_with_active_cores():
    """Table I's shape, in miniature."""
    totals = {}
    for active in (1, 2, 3):
        libraries = {
            i: build_library(m, include_module_tests=False)
            for i, m in list(enumerate((CORE_MODEL_A, CORE_MODEL_B, CORE_MODEL_C)))[
                :active
            ]
        }
        schedule = ParallelSchedule.round_robin(libraries)
        soc = Soc()
        entries = load_parallel_session(soc, libraries, schedule)
        for core_id, entry in entries.items():
            soc.cores[core_id].recording = False
            soc.start_core(core_id, entry)
        soc.run(max_cycles=8_000_000)
        report = StallMonitor().snapshot(soc)
        totals[active] = report.total_if_stalls
    assert totals[2] > 2 * totals[1]
    assert totals[3] > 1.5 * totals[2]


def test_run_cycles_partial_progress():
    soc = Soc()
    from repro.isa import assemble

    soc.load(assemble(".org 0x100\nnop\nnop\nhalt\n"))
    soc.start_core(0, 0x100)
    soc.run_cycles(2)
    assert soc.cycle == 2
    assert soc.cores[0].active
