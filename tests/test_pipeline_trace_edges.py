"""Edge cases of the Fig. 1 pipeline-diagram renderer (repro.cpu.trace).

These pin the rendered grid exactly — stage letters and column gaps —
for the degenerate inputs the experiment code never produces: an empty
trace window, a single uop, and a stalled dependent pair.
"""

from repro.cpu.trace import render_pipeline_diagram, trace_rows
from repro.cpu.uop import Uop
from repro.isa.instructions import Instruction, Mnemonic

LABEL = 24


def make_uop(seq, instr, issue, wb=-1):
    return Uop(seq=seq, pc=4 * seq, instr=instr, slot=0,
               issue_cycle=issue, wb_cycle=wb)


def grid(diagram, row):
    """The stage-cell portion of data row ``row`` (header is line 0)."""
    return diagram.splitlines()[1 + row][LABEL + 2:]


def test_empty_trace_window_renders_placeholder():
    assert render_pipeline_diagram([]) == "(empty trace)"


def test_single_uop_renders_four_stages():
    add = Instruction(Mnemonic.ADD, rd=7, rs1=6, rs2=5)
    uop = make_uop(0, add, issue=5, wb=7)
    diagram = render_pipeline_diagram([uop])
    lines = diagram.splitlines()
    assert len(lines) == 2  # header + one row
    # Columns span issue .. wb+1: cycles 5..8.
    assert lines[0] == " " * LABEL + "  " + "  5  6  7  8"
    assert grid(diagram, 0) == "  D  E  M  W"
    assert lines[1].startswith(str(add)[: LABEL - 1])


def test_single_uop_without_wb_uses_issue_plus_two():
    # wb_cycle = -1 (never reached WB, e.g. window cut mid-flight):
    # the renderer schedules M at issue+2 rather than at cycle -1.
    nop = Instruction(Mnemonic.NOP)
    diagram = render_pipeline_diagram([make_uop(0, nop, issue=10)])
    assert grid(diagram, 0) == "  D  E  M  W"


def test_stalled_dependent_pair_shows_issue_gap():
    load = Instruction(Mnemonic.LW, rd=7, rs1=2, imm=0)
    use = Instruction(Mnemonic.ADD, rd=9, rs1=7, rs2=4)
    # The load writes back at 2; the dependent add could have issued at
    # 1 but stalls until 3 — a two-cycle load-use gap.
    pair = [make_uop(0, load, issue=0, wb=2), make_uop(1, use, issue=3, wb=5)]
    diagram = render_pipeline_diagram(pair)
    assert grid(diagram, 0) == "  D  E  M  W  .  .  ."
    assert grid(diagram, 1) == "  .  .  .  D  E  M  W"
    # The D-column gap (3 columns) is exactly the issue-cycle distance.
    row0, row1 = grid(diagram, 0), grid(diagram, 1)
    assert row1.index("D") - row0.index("D") == 3 * 3  # 3 cells of width 3


def test_back_to_back_pair_has_adjacent_decodes():
    a = Instruction(Mnemonic.ADD, rd=7, rs1=6, rs2=5)
    b = Instruction(Mnemonic.ADD, rd=9, rs1=7, rs2=4)
    pair = [make_uop(0, a, issue=0, wb=2), make_uop(1, b, issue=1, wb=3)]
    diagram = render_pipeline_diagram(pair)
    assert grid(diagram, 0) == "  D  E  M  W  ."
    assert grid(diagram, 1) == "  .  D  E  M  W"


def test_trace_rows_copy_uop_schedule():
    add = Instruction(Mnemonic.ADD, rd=7, rs1=6, rs2=5)
    rows = trace_rows([make_uop(0, add, issue=4, wb=6)])
    assert len(rows) == 1
    assert (rows[0].issue_cycle, rows[0].wb_cycle) == (4, 6)
    assert rows[0].text == str(add)
    assert rows[0].selects == ()
