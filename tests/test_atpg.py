"""Tests of the random-pattern ATPG ceiling analysis."""

from repro.cpu.core import CORE_MODEL_A
from repro.faults.atpg import (
    forwarding_ceiling,
    forwarding_select_constraint,
    random_pattern_atpg,
)
from repro.faults.gates import GateKind
from repro.faults.netlist import Netlist


def tiny_netlist():
    nl = Netlist("tiny")
    a, b = nl.add_input_bus("in", 2)
    out = nl.add_gate(GateKind.XOR, a, b)
    nl.mark_output_bus("out", [out])
    return nl


def test_fully_testable_netlist_reaches_100():
    result = random_pattern_atpg(tiny_netlist(), patterns_per_round=16)
    assert result.ceiling_percent == 100.0
    assert result.rounds >= 1


def test_unobserved_logic_caps_the_ceiling():
    nl = Netlist("capped")
    a, b = nl.add_input_bus("in", 2)
    seen = nl.add_gate(GateKind.AND, a, b)
    nl.add_gate(GateKind.OR, a, b)  # unobserved cone
    nl.mark_output_bus("out", [seen])
    result = random_pattern_atpg(nl)
    assert result.ceiling_percent < 100.0


def test_atpg_is_deterministic():
    first = random_pattern_atpg(tiny_netlist(), seed=7)
    second = random_pattern_atpg(tiny_netlist(), seed=7)
    assert first == second


def test_dry_round_early_stop():
    result = random_pattern_atpg(
        tiny_netlist(), patterns_per_round=64, max_rounds=24, dry_rounds=2
    )
    assert result.rounds < 24


def test_forwarding_constraint_keeps_selects_one_hot():
    from repro.faults.generators import get_modules
    from repro.utils.rng import DeterministicRng

    netlist = get_modules(CORE_MODEL_A).forwarding[(0, 0)]
    constrain = forwarding_select_constraint(netlist)
    inputs = {net: 0xFFFF for net in netlist.input_nets}
    constrained = constrain(inputs, DeterministicRng(5), 16)
    sel = [constrained[net] for net in netlist.inputs["sel"]]
    for t in range(16):
        assert sum((value >> t) & 1 for value in sel) == 1
    for net in netlist.inputs["sel_x"]:
        assert constrained[net] == 0


def test_routine_is_close_to_functional_ceiling():
    """The cached routine's ~80 % sits within a few percent of the
    ideal-algorithm ceiling — the paper's 'improving the algorithm was
    out of scope' context, quantified."""
    ceiling = forwarding_ceiling(CORE_MODEL_A).ceiling_percent
    # From the Table II campaign: the cache-based run reaches ~80 %.
    assert 75.0 < ceiling < 90.0


def test_unconstrained_ceiling_is_higher_than_functional():
    from repro.faults.generators import get_modules

    netlist = get_modules(CORE_MODEL_A).forwarding[(0, 0)]
    unconstrained = random_pattern_atpg(netlist)
    functional = forwarding_ceiling(CORE_MODEL_A)
    assert unconstrained.ceiling_percent > functional.ceiling_percent
