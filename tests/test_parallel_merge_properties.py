"""Property-based tests of the coverage-merge reducer and the sharder.

The merge reducer must behave like integer addition over disjoint
shards: permutation-invariant, associative under any grouping, with the
empty shard as identity — and the sharder must produce a true partition
(complete, disjoint, deterministic) for any fault list and shard count.
Uses ``hypothesis`` when installed; otherwise the same properties run
over seeded randomized cases, so the suite is meaningful without the
optional dependency.
"""

import random

import pytest

from repro.errors import FaultModelError
from repro.faults import (
    check_partition,
    reduce_results,
    shard_faults,
    shard_seed,
    stable_shard_index,
)
from repro.faults.parallel import fault_identity
from repro.faults.ppsfp import FaultSimResult
from repro.faults.stuckat import StuckAtFault
from repro.faults.transition import TransitionFault

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised on minimal installs
    HAVE_HYPOTHESIS = False

SEEDS = tuple(range(8))


def make_results(rng: random.Random, count: int) -> list[FaultSimResult]:
    return [
        FaultSimResult(
            module="m",
            total_faults=(total := rng.randint(0, 500)),
            detected_faults=rng.randint(0, total),
            num_patterns=17,
        )
        for _ in range(count)
    ]


def make_faults(rng: random.Random, count: int) -> list:
    """A mixed fault list: plain stuck-at, weighted pairs, transition."""
    faults = []
    for index in range(count):
        shape = rng.randrange(3)
        if shape == 0:
            faults.append(StuckAtFault(index, rng.randrange(2)))
        elif shape == 1:
            faults.append((StuckAtFault(index, rng.randrange(2)), rng.randint(1, 9)))
        else:
            faults.append(TransitionFault(index, rng.random() < 0.5))
    return faults


# ----------------------------------------------------------------------
# Reducer properties (seeded randomized — always run).
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_reduce_is_permutation_invariant(seed):
    rng = random.Random(seed)
    results = make_results(rng, rng.randint(1, 12))
    reference = reduce_results(list(results))
    for _ in range(5):
        shuffled = list(results)
        rng.shuffle(shuffled)
        merged = reduce_results(shuffled)
        assert (merged.total_faults, merged.detected_faults) == (
            reference.total_faults,
            reference.detected_faults,
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_remerge_idempotence(seed):
    """Reducing a singleton is the identity, and folding in empty-shard
    results (the merge identity) changes nothing."""
    rng = random.Random(seed)
    (result,) = make_results(rng, 1)
    assert reduce_results([result]) == result
    identity = FaultSimResult("m", 0, 0, 17)
    padded = reduce_results([identity, result, identity, identity])
    assert (padded.total_faults, padded.detected_faults) == (
        result.total_faults,
        result.detected_faults,
    )
    # Re-reducing an already-reduced result is stable.
    assert reduce_results([padded]) == padded


@pytest.mark.parametrize("seed", SEEDS)
def test_reduce_matches_arbitrary_groupings(seed):
    """Associativity: pre-merging any contiguous grouping first gives
    the same answer as the flat reduction."""
    rng = random.Random(seed)
    results = make_results(rng, rng.randint(2, 10))
    flat = reduce_results(list(results))
    cut = rng.randint(1, len(results) - 1)
    grouped = reduce_results(
        [reduce_results(results[:cut]), reduce_results(results[cut:])]
    )
    assert (grouped.total_faults, grouped.detected_faults) == (
        flat.total_faults,
        flat.detected_faults,
    )


def test_reduce_rejects_incompatible_shards():
    a = FaultSimResult("m", 10, 5, 17)
    with pytest.raises(FaultModelError):
        reduce_results([a, FaultSimResult("other", 10, 5, 17)])
    with pytest.raises(FaultModelError):
        reduce_results([a, FaultSimResult("m", 10, 5, 3)])
    with pytest.raises(FaultModelError):
        reduce_results([])


# ----------------------------------------------------------------------
# Sharder properties: disjoint-shard completeness.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_shards_partition_the_fault_list(seed):
    rng = random.Random(seed)
    faults = make_faults(rng, rng.randint(0, 60))
    num_shards = rng.choice((1, 2, 7, 16))
    shards = shard_faults(faults, num_shards)
    assert len(shards) == num_shards
    check_partition(faults, shards)  # completeness + disjointness
    # Completeness, independently of check_partition's own accounting.
    flattened = sorted(fault_identity(item) for shard in shards for item in shard)
    assert flattened == sorted(fault_identity(item) for item in faults)
    # Disjointness: distinct identities never land in two shards.
    seen: dict[str, int] = {}
    for index, shard in enumerate(shards):
        for item in shard:
            identity = fault_identity(item)
            assert seen.setdefault(identity, index) == index
    # Weighted pairs keep their weights through sharding.
    total_weight = sum(
        item[1] if isinstance(item, tuple) else 1 for item in faults
    )
    assert total_weight == sum(
        item[1] if isinstance(item, tuple) else 1
        for shard in shards
        for item in shard
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_shard_assignment_is_deterministic(seed):
    rng = random.Random(seed)
    faults = make_faults(rng, 40)
    assert shard_faults(faults, 7) == shard_faults(list(faults), 7)


def test_check_partition_catches_loss_and_duplication():
    faults = [StuckAtFault(n, 0) for n in range(6)]
    shards = shard_faults(faults, 3)
    donor = next(shard for shard in shards if shard)
    dropped = [list(s) for s in shards]
    dropped[shards.index(donor)] = donor[1:]
    with pytest.raises(FaultModelError):
        check_partition(faults, dropped)
    duplicated = [list(s) for s in shards]
    duplicated[0] = duplicated[0] + [donor[0]]
    with pytest.raises(FaultModelError):
        check_partition(faults, duplicated)


def test_stable_shard_index_is_pinned():
    """The hash is CRC-32 of the identity — pinned so a silent change
    of hashing scheme (e.g. to salted ``hash()``) fails loudly."""
    import zlib

    for identity in ("net0/SA0", "net31/SA1", "net7/STR"):
        for shards in (1, 2, 7, 16):
            assert stable_shard_index(identity, shards) == (
                zlib.crc32(identity.encode()) % shards
            )
    with pytest.raises(FaultModelError):
        stable_shard_index("net0/SA0", 0)


def test_shard_seeds_are_stable_and_distinct():
    seeds = [shard_seed(2024, index) for index in range(16)]
    assert seeds == [shard_seed(2024, index) for index in range(16)]
    assert len(set(seeds)) == 16
    assert shard_seed(2024, 0) != shard_seed(2025, 0)


# ----------------------------------------------------------------------
# The same properties under hypothesis, when available.
# ----------------------------------------------------------------------

if HAVE_HYPOTHESIS:

    result_strategy = st.builds(
        lambda total, frac: FaultSimResult(
            "m", total, min(total, frac), 17
        ),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=10_000),
    )

    fault_strategy = st.one_of(
        st.builds(StuckAtFault, st.integers(0, 999), st.integers(0, 1)),
        st.tuples(
            st.builds(StuckAtFault, st.integers(0, 999), st.integers(0, 1)),
            st.integers(1, 9),
        ),
        st.builds(TransitionFault, st.integers(0, 999), st.booleans()),
    )

    @settings(max_examples=50, deadline=None)
    @given(
        results=st.lists(result_strategy, min_size=1, max_size=12),
        seed=st.integers(0, 2**32 - 1),
    )
    def test_hypothesis_permutation_invariance(results, seed):
        reference = reduce_results(list(results))
        shuffled = list(results)
        random.Random(seed).shuffle(shuffled)
        merged = reduce_results(shuffled)
        assert (merged.total_faults, merged.detected_faults) == (
            reference.total_faults,
            reference.detected_faults,
        )

    @settings(max_examples=50, deadline=None)
    @given(
        faults=st.lists(fault_strategy, max_size=80),
        num_shards=st.integers(1, 32),
    )
    def test_hypothesis_partition_completeness(faults, num_shards):
        shards = shard_faults(faults, num_shards)
        check_partition(faults, shards)
        assert sorted(
            fault_identity(item) for shard in shards for item in shard
        ) == sorted(fault_identity(item) for item in faults)
