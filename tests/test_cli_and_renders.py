"""Tests of the CLI entry point and the experiment result renderers."""

import pytest

from repro.__main__ import EXPERIMENTS, main
from repro.analysis.experiments import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    Table2Result,
    Table2Row,
    Table3Result,
    Table3Row,
    Table4Result,
    Table4Row,
)
from repro.faults.campaign import CoverageRange


def test_cli_lists_every_experiment():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "table3", "table4", "fig1", "fig2",
    }


def test_cli_runs_fig1(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 1a" in out and "Fig. 1b" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["table9"])


def test_paper_reference_values_complete():
    assert set(PAPER_TABLE1) == {1, 2, 3}
    assert set(PAPER_TABLE2) == {"A", "B", "C"}
    assert len(PAPER_TABLE3) == 6
    assert set(PAPER_TABLE4) == {"TCM-based", "Cache-based"}


def _range(module, core, lo, hi):
    return CoverageRange(
        module=module, core_model=core, minimum_percent=lo, maximum_percent=hi
    )


def test_table2_render_marks_unstable_cached_runs():
    result = Table2Result(
        rows=[
            Table2Row(
                core="A",
                num_faults=100,
                no_cache=_range("FWD", "A", 60.0, 70.0),
                cached=_range("FWD", "A", 75.0, 79.0),
            )
        ]
    )
    text = result.render()
    assert "UNSTABLE" in text
    assert "60.00 - 70.00" in text


def test_table2_render_stable_cached():
    result = Table2Result(
        rows=[
            Table2Row(
                core="B",
                num_faults=100,
                no_cache=_range("FWD", "B", 60.0, 70.0),
                cached=_range("FWD", "B", 78.0, 78.0),
            )
        ]
    )
    assert "UNSTABLE" not in result.render()


def test_table3_render_shows_fail_ratio():
    result = Table3Result(
        rows=[
            Table3Row(
                core="A",
                module="ICU",
                num_faults=100,
                single_core_no_cache=46.0,
                multicore_cached=51.0,
                no_cache_multicore_pass=0,
                no_cache_multicore_fail=6,
            )
        ]
    )
    assert "6/6" in result.render()


def test_table4_render_microseconds():
    result = Table4Result(
        rows=[
            Table4Row("TCM-based", 2874, 18_000),
            Table4Row("Cache-based", 0, 18_000),
        ]
    )
    text = result.render()
    assert "100.00" in text  # 18,000 cycles at 180 MHz = 100 us


def test_coverage_range_properties():
    stable = _range("FWD", "A", 50.0, 50.0)
    moving = _range("FWD", "A", 50.0, 55.0)
    assert stable.stable and not moving.stable
    assert moving.spread == pytest.approx(5.0)
