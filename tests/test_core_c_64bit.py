"""Pipeline-level tests specific to core C's 64-bit extension."""

from repro.cpu.recording import FwdSource
from repro.isa.instructions import Instruction, Mnemonic
from repro.soc import Soc
from repro.stl.packets import PhasedBuilder


def run_on_core_c(build):
    soc = Soc()
    core = soc.cores[2]
    asm = PhasedBuilder(core.itcm.base, "c64")
    build(asm)
    asm.halt()
    program = asm.build()
    for address, word in zip(
        range(program.base_address, program.end_address, 4),
        program.encoded_words(),
    ):
        core.itcm.write_word(address, word)
    core.testwin = 1
    soc.start_core(2, program.base_address)
    soc.run(max_cycles=50_000)
    return core


def test_pair_forwarding_both_halves():
    def build(asm):
        asm.li(4, 0x1111)
        asm.li(5, 0x2222)
        asm.li(6, 0x0003)
        asm.li(7, 0x0004)
        asm.align()
        asm.packet(Instruction(Mnemonic.ADD64, rd=8, rs1=4, rs2=6))
        asm.packet(Instruction(Mnemonic.XOR64, rd=10, rs1=8, rs2=8))

    core = run_on_core_c(build)
    # ADD64: (0x2222_00001111) + (0x4_00000003) = 0x2226_00001114.
    assert core.regfile.read(8) == 0x1114
    assert core.regfile.read(9) == 0x2226
    # XOR64 with itself consumed the pair over a forwarding path.
    assert core.regfile.read(10) == 0
    assert core.regfile.read(11) == 0
    wide = [r for r in core.log.forwarding if r.width == 64]
    assert any(r.select == FwdSource.EX0 for r in wide)


def test_wide_record_packs_both_halves():
    def build(asm):
        asm.li(4, 0xAAAA0001)
        asm.li(5, 0x55550002)
        asm.align()
        asm.packet(Instruction(Mnemonic.OR64, rd=6, rs1=4, rs2=4))
        asm.packet(Instruction(Mnemonic.XOR64, rd=8, rs1=6, rs2=6))

    core = run_on_core_c(build)
    wide = [
        r for r in core.log.forwarding
        if r.width == 64 and r.select == FwdSource.EX0
    ]
    assert wide
    value = wide[-1].candidates[int(FwdSource.EX0)]
    assert value == (0x55550002 << 32) | 0xAAAA0001


def test_mixed_width_dependency():
    """A 32-bit producer feeding one half of a 64-bit consumer."""

    def build(asm):
        asm.li(4, 0)
        asm.li(5, 0)
        asm.li(6, 0)
        asm.li(7, 0)
        asm.align()
        # Write only the high half (r5) with a 32-bit op, then consume
        # the pair (r4, r5).
        asm.packet(Instruction(Mnemonic.ADDI, rd=5, rs1=0, imm=9))
        asm.packet(Instruction(Mnemonic.ADD64, rd=8, rs1=4, rs2=6))

    core = run_on_core_c(build)
    assert core.regfile.read(9) == 9  # high half propagated


def test_carry_crosses_word_boundary():
    def build(asm):
        asm.li(4, 0xFFFFFFFF)
        asm.li(5, 0x0)
        asm.li(6, 0x1)
        asm.li(7, 0x0)
        asm.align()
        asm.packet(Instruction(Mnemonic.ADD64, rd=8, rs1=4, rs2=6))

    core = run_on_core_c(build)
    assert core.regfile.read(8) == 0
    assert core.regfile.read(9) == 1
