"""Tests for the instruction-set metadata (specs, register sets)."""

from repro.isa.instructions import (
    NUM_EVENTS,
    SPECS,
    Csr,
    Event,
    Format,
    Instruction,
    Mnemonic,
    format_instruction,
)


def test_every_mnemonic_has_a_spec():
    assert set(SPECS) == set(Mnemonic)


def test_trap_instructions_carry_events():
    trapping = [m for m, s in SPECS.items() if s.is_trap]
    assert len(trapping) == NUM_EVENTS
    assert {SPECS[m].event for m in trapping} == set(Event)


def test_memory_class_flags():
    assert SPECS[Mnemonic.LW].is_load and SPECS[Mnemonic.LW].is_mem
    assert SPECS[Mnemonic.SW].is_store and SPECS[Mnemonic.SW].is_mem
    assert not SPECS[Mnemonic.ADD].is_mem


def test_source_regs_r3():
    instr = Instruction(Mnemonic.ADD, rd=3, rs1=4, rs2=5)
    assert instr.source_regs() == (4, 5)
    assert instr.dest_regs() == (3,)


def test_source_regs_64bit_pairs():
    instr = Instruction(Mnemonic.ADD64, rd=2, rs1=4, rs2=6)
    assert instr.source_regs() == (4, 5, 6, 7)
    assert instr.dest_regs() == (2, 3)


def test_dest_regs_r0_discarded():
    assert Instruction(Mnemonic.ADD, rd=0, rs1=1, rs2=2).dest_regs() == ()


def test_jal_writes_link_register():
    assert Instruction(Mnemonic.JAL, imm=64).dest_regs() == (31,)


def test_store_reads_base_and_data():
    instr = Instruction(Mnemonic.SW, rs1=10, rs2=11, imm=4)
    assert set(instr.source_regs()) == {10, 11}
    assert instr.dest_regs() == ()


def test_branch_reads_both_operands():
    instr = Instruction(Mnemonic.BEQ, rs1=1, rs2=2, imm=-4)
    assert instr.source_regs() == (1, 2)
    assert instr.spec.is_branch


def test_forwarding_operands_subset_of_sources():
    for mnemonic in Mnemonic:
        instr = Instruction(mnemonic, rd=3, rs1=4, rs2=5)
        fwd = instr.forwarding_operands()
        if not instr.spec.is_64bit:
            assert set(fwd) <= set(instr.source_regs())


def test_system_instructions_flagged():
    for mnemonic in (Mnemonic.CSRR, Mnemonic.CSRW, Mnemonic.HALT,
                     Mnemonic.ICINV, Mnemonic.DCINV, Mnemonic.SYNC):
        assert SPECS[mnemonic].is_system
    assert not SPECS[Mnemonic.NOP].is_system  # NOP may dual-issue


def test_format_instruction_text():
    assert str(Instruction(Mnemonic.ADD, rd=1, rs1=2, rs2=3)) == "add r1, r2, r3"
    assert str(Instruction(Mnemonic.LW, rd=4, rs1=5, imm=8)) == "lw r4, 8(r5)"
    assert str(Instruction(Mnemonic.SW, rs1=5, rs2=4, imm=-4)) == "sw r4, -4(r5)"
    assert (
        format_instruction(Instruction(Mnemonic.CSRR, rd=1, csr=int(Csr.CYCLES)))
        == "csrr r1, cycles"
    )
    assert str(Instruction(Mnemonic.NOP)) == "nop"


def test_formats_cover_all_mnemonics():
    for mnemonic in Mnemonic:
        assert isinstance(SPECS[mnemonic].format, Format)
