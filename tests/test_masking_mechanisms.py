"""Sharp tests of the two per-core masking mechanisms of Section IV.

1. Core C's 32-bit signature masks the upper word of its 64-bit
   forwarding datapath except where the routine folds it (TESTWIN bit 1).
2. Cores A/B's shared ICU status bits make event-encode faults that swap
   a pair's members structurally undetectable, while core C's one-hot
   mapping exposes them.
"""

from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_C
from repro.faults import fault_simulate, get_modules
from repro.faults.observability import forwarding_pattern_sets
from repro.faults.ppsfp import PatternSet
from repro.faults.stuckat import StuckAtFault
from repro.isa.instructions import NUM_EVENTS
from repro.utils.bitops import mask as bitmask


def _icu_patterns_all_events(modules):
    """One isolated pattern per event, everything observable."""
    nl = modules.icu
    num = NUM_EVENTS
    patterns = PatternSet(num_patterns=num)
    inputs = {net: 0 for net in nl.input_nets}
    for event in range(num):
        inputs[nl.inputs["e"][event]] |= 1 << event
    patterns.inputs = inputs
    patterns.output_observability = {
        net: bitmask(num) for net in nl.output_nets
    }
    return patterns


def _enc_lsb_net(modules):
    """The encoder's LSB line: its faults swap event pairs."""
    return modules.icu.annotations["enc"][0]


def test_pair_swap_fault_masked_on_shared_mapping():
    modules = get_modules(CORE_MODEL_A)
    patterns = _icu_patterns_all_events(modules)
    fault = StuckAtFault(_enc_lsb_net(modules), 1)
    result = fault_simulate(modules.icu, patterns, [fault])
    assert result.detected_faults == 0


def test_pair_swap_fault_exposed_on_onehot_mapping():
    modules = get_modules(CORE_MODEL_C)
    patterns = _icu_patterns_all_events(modules)
    fault = StuckAtFault(_enc_lsb_net(modules), 1)
    result = fault_simulate(modules.icu, patterns, [fault])
    assert result.detected_faults == 1


def _core_c_log():
    from repro.core import build_cache_wrapped
    from repro.stl import RoutineContext
    from repro.stl.routines import make_forwarding_routine
    from tests.conftest import run_program

    routine = make_forwarding_routine(CORE_MODEL_C, with_pcs=False)
    ctx = RoutineContext.for_core(2, CORE_MODEL_C)
    program = build_cache_wrapped(routine, 0x1000, ctx)
    _, core = run_program(program, core_id=2, max_cycles=2_000_000)
    return core.log


def test_high_word_observability_follows_folds():
    """Upper-word output bits are observable exactly on the patterns the
    routine folds (TESTWIN bit 1) — the signature-masking mechanism."""
    log = _core_c_log()
    modules = get_modules(CORE_MODEL_C)
    pattern_sets = forwarding_pattern_sets(log, modules)
    saw_partial = False
    for port, patterns in pattern_sets.items():
        nl = modules.forwarding[port]
        out = nl.outputs["out"]
        low_mask = patterns.output_observability.get(out[0], 0)
        high_mask = patterns.output_observability.get(out[40], 0)
        # High-word observability is a strict subset of low-word's.
        assert high_mask & ~low_mask == 0
        if high_mask != low_mask:
            saw_partial = True
    assert saw_partial


def test_unfolded_high_word_fault_escapes_folded_detected():
    """High-word data faults are graded detected only through folded
    patterns; a routine that never folds loses those detections."""
    log = _core_c_log()
    modules = get_modules(CORE_MODEL_C)
    pattern_sets = forwarding_pattern_sets(log, modules)
    confirmed = 0
    for port, patterns in pattern_sets.items():
        nl = modules.forwarding[port]
        low_out = set(nl.outputs["out"][:32])
        stripped = PatternSet(
            num_patterns=patterns.num_patterns,
            inputs=patterns.inputs,
            output_observability={
                net: obs_mask
                for net, obs_mask in patterns.output_observability.items()
                if net in low_out
            },
        )
        for source in ("d1", "d2", "d3"):
            for bit in (40, 45, 50):
                fault = [StuckAtFault(nl.inputs[source][bit], 0)]
                folded = fault_simulate(nl, patterns, fault).detected_faults
                if folded == 0:
                    continue
                unfolded = fault_simulate(nl, stripped, fault).detected_faults
                assert unfolded == 0, (port, source, bit)
                confirmed += 1
    assert confirmed >= 3
