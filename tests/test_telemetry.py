"""The telemetry layer: sinks, phases, metrics, auditor, exporters.

Unit tests use hand-built event streams; the integration tests attach a
:class:`TelemetrySession` to a real SoC running cache-wrapped routines
and check the paper's invariant end to end — including that attaching
telemetry never changes what the machine computes.
"""

import json

import pytest

from repro.core.cache_wrapper import (
    CacheWrapperOptions,
    build_cache_wrapped,
)
from repro.core.determinism import Scenario, run_scenario
from repro.core.golden import finalise_with_expected
from repro.cpu.core import CORE_MODEL_A
from repro.faults.campaign import ScenarioOutcome
from repro.mem.bus import BusStats
from repro.mem.cache import CacheStats
from repro.soc.loader import CodeAlignment, CodePosition
from repro.soc.soc import Soc
from repro.stl.conventions import DATA_PTR, RESULT_PASS, SIG_REG
from repro.stl.routine import RoutineContext
from repro.stl.routine import TestRoutine as Routine
from repro.stl.signature import emit_signature_update
from repro.telemetry import (
    NULL_SINK,
    PHASE_EXECUTION,
    PHASE_IDLE,
    PHASE_LOADING,
    DeterminismAuditor,
    EventKind,
    MetricsCollector,
    NullSink,
    PhaseTracker,
    RecordingSink,
    TelemetryEvent,
    TelemetrySession,
    chrome_trace_events,
    validate_trace_events,
)

CTX = RoutineContext.for_core(0, CORE_MODEL_A)
ENTRY = 0x1000


def tiny_routine() -> Routine:
    def emit_body(asm, ctx):
        for i in range(8):
            asm.lw(1, 4 * i, DATA_PTR)
            emit_signature_update(asm, 1)

    return Routine("tiny_ld", "GEN", emit_body)


def wrapped_program(options=CacheWrapperOptions()):
    def build(expected):
        return build_cache_wrapped(tiny_routine(), ENTRY, CTX, expected, options)

    program, _ = finalise_with_expected(build, 0)
    return program


# ---------------------------------------------------------------------------
# Sinks.
# ---------------------------------------------------------------------------


def test_null_sink_is_disabled_and_inert():
    assert NULL_SINK.enabled is False
    assert isinstance(NULL_SINK, NullSink)
    # Safe no-op even for callers that skip the enabled guard, including
    # payloads that carry their own "kind" field.
    NULL_SINK.emit(EventKind.BUS_SUBMIT, core=1, kind="ifetch", address=0)


def test_recording_sink_stamps_with_clock_and_fans_out():
    now = {"cycle": 41}
    seen = []

    class Probe:
        def on_event(self, event):
            seen.append(event)

    sink = RecordingSink(clock=lambda: now["cycle"], subscribers=(Probe(),))
    assert sink.enabled is True
    sink.emit(EventKind.CACHE_MISS, core=2, cache="icache", address=0x40)
    now["cycle"] = 99
    sink.emit(EventKind.BUS_SUBMIT, core=2, kind="ifetch", address=0x40)
    assert [e.cycle for e in sink.events] == [41, 99]
    assert sink.events[0].kind is EventKind.CACHE_MISS
    assert sink.events[0].core == 2
    # The transaction kind lands in the payload, not on the event kind.
    assert sink.events[1].kind is EventKind.BUS_SUBMIT
    assert sink.events[1].fields["kind"] == "ifetch"
    # Subscribers saw both events, in order.
    assert seen == sink.events


def test_recording_sink_drop_kinds_counted_but_subscribers_still_fed():
    seen = []

    class Probe:
        def on_event(self, event):
            seen.append(event.kind)

    sink = RecordingSink(
        subscribers=(Probe(),), drop_kinds=(EventKind.CACHE_HIT,)
    )
    sink.emit(EventKind.CACHE_HIT, core=0, cache="icache", address=0)
    sink.emit(EventKind.CACHE_MISS, core=0, cache="icache", address=0)
    assert [e.kind for e in sink.events] == [EventKind.CACHE_MISS]
    assert sink.dropped == 1
    assert seen == [EventKind.CACHE_HIT, EventKind.CACHE_MISS]


def test_recording_sink_capacity_bound():
    sink = RecordingSink(capacity=2)
    for i in range(5):
        sink.emit(EventKind.CACHE_FILL, core=0, address=32 * i)
    assert len(sink.events) == 2
    assert sink.dropped == 3


def test_event_to_dict_and_describe():
    event = TelemetryEvent(
        cycle=7, kind=EventKind.BUS_SUBMIT, core=1,
        fields={"kind": "ifetch", "address": 0x1E0},
    )
    data = event.to_dict()
    assert data["cycle"] == 7 and data["core"] == 1
    # The payload nests under "fields" so its own "kind" (the bus
    # transaction kind) cannot shadow the event kind.
    assert data["kind"] == "bus.submit"
    assert data["fields"] == {"kind": "ifetch", "address": 0x1E0}
    text = event.describe()
    assert "cycle" in text and "core 1" in text
    assert "address=0x1e0" in text  # addresses render in hex


# ---------------------------------------------------------------------------
# Phases.
# ---------------------------------------------------------------------------


def _core_event(event_kind, core=0, **fields):
    return TelemetryEvent(cycle=0, kind=event_kind, core=core, fields=fields)


def test_phase_tracker_follows_testwin():
    tracker = PhaseTracker()
    assert tracker.phase(0) == PHASE_IDLE
    tracker.on_event(_core_event(EventKind.CORE_START, testwin=0))
    assert tracker.phase(0) == PHASE_LOADING
    tracker.on_event(_core_event(EventKind.CORE_TESTWIN, value=1, prev=0))
    assert tracker.phase(0) == PHASE_EXECUTION
    assert tracker.in_execution_window(0)
    tracker.on_event(_core_event(EventKind.CORE_TESTWIN, value=0, prev=1))
    assert tracker.phase(0) == PHASE_LOADING
    tracker.on_event(_core_event(EventKind.CORE_HALT))
    assert tracker.phase(0) == PHASE_IDLE
    # Unknown cores and unattributed events stay idle.
    assert tracker.phase(5) == PHASE_IDLE
    assert tracker.phase(None) == PHASE_IDLE


# ---------------------------------------------------------------------------
# Metrics.
# ---------------------------------------------------------------------------


def test_metrics_collector_phase_split_and_delta():
    collector = MetricsCollector()
    collector.on_event(_core_event(EventKind.CORE_START, testwin=0))
    collector.on_event(
        _core_event(EventKind.BUS_GRANT, kind="ifetch", wait=3, glitch=1)
    )
    collector.on_event(_core_event(EventKind.CACHE_FILL, cache="icache"))
    before = collector.snapshot()
    collector.on_event(_core_event(EventKind.CORE_TESTWIN, value=1, prev=0))
    collector.on_event(_core_event(EventKind.CACHE_HIT, cache="dcache"))
    view = collector.snapshot()
    assert view.get(0, PHASE_LOADING, "bus.transactions") == 1
    assert view.get(0, PHASE_LOADING, "bus.wait_cycles") == 3
    assert view.get(0, PHASE_LOADING, "bus.glitch_delay_cycles") == 1
    assert view.get(0, PHASE_LOADING, "icache.fills") == 1
    assert view.get(0, PHASE_EXECUTION, "dcache.hits") == 1
    assert view.cache_names() == ("dcache", "icache")
    assert view.phase_total(PHASE_LOADING, "bus.transactions") == 1
    assert view.core_total(0, "bus.transactions") == 1
    # Interval arithmetic: only the post-snapshot counters remain.
    diff = view.delta(before)
    assert diff.get(0, PHASE_EXECUTION, "dcache.hits") == 1
    assert diff.get(0, PHASE_LOADING, "bus.transactions") == 0
    # The snapshot is frozen; the live view keeps moving.
    collector.on_event(_core_event(EventKind.CACHE_HIT, cache="dcache"))
    assert before.get(0, PHASE_EXECUTION, "dcache.hits") == 0
    assert collector.view().get(0, PHASE_EXECUTION, "dcache.hits") == 2


def test_metrics_supervisor_and_fault_counters():
    collector = MetricsCollector()
    collector.on_event(_core_event(EventKind.SUPERVISOR_ATTEMPT, routine="r"))
    collector.on_event(_core_event(EventKind.SUPERVISOR_RETRY, routine="r"))
    collector.on_event(_core_event(EventKind.SUPERVISOR_QUARANTINE, attempts=3))
    collector.on_event(_core_event(EventKind.FAULT_INJECTION, kind="cache"))
    view = collector.view()
    assert view.get(0, PHASE_IDLE, "supervisor.attempts") == 1
    assert view.get(0, PHASE_IDLE, "supervisor.retries") == 1
    assert view.get(0, PHASE_IDLE, "supervisor.quarantines") == 1
    assert view.get(0, PHASE_IDLE, "faults.injections") == 1
    # Rendered and serialised forms carry the same numbers.
    assert "supervisor" not in view.render()  # bus/cache tables only
    assert view.to_dict()["core0"]["idle"]["supervisor.attempts"] == 1


# ---------------------------------------------------------------------------
# Determinism auditor.
# ---------------------------------------------------------------------------


def test_auditor_flags_only_in_window_bus_traffic():
    auditor = DeterminismAuditor()
    submit = lambda: auditor.on_event(
        _core_event(EventKind.BUS_SUBMIT, kind="ifetch", address=0x100)
    )
    auditor.on_event(_core_event(EventKind.CORE_START, testwin=0))
    submit()  # loading phase: legal
    assert auditor.passed and not auditor.audited
    auditor.on_event(_core_event(EventKind.CORE_TESTWIN, value=1, prev=0))
    assert auditor.audited
    submit()  # in-window: violation
    auditor.on_event(
        _core_event(EventKind.BUS_RETRY, kind="ifetch", address=0x100)
    )  # retries count too
    auditor.on_event(_core_event(EventKind.CORE_TESTWIN, value=0, prev=1))
    submit()  # window closed: legal again
    assert not auditor.passed
    assert auditor.violation_count == 2
    assert auditor.windows_opened == {0: 1}
    assert [v.window for v in auditor.violations] == [1, 1]
    summary = auditor.summary()
    assert summary["passed"] is False
    assert summary["violation_count"] == 2
    assert summary["windows_opened"] == {"0": 1}
    assert summary["violations"][0]["event"]["fields"]["address"] == 0x100
    assert "FAIL" in auditor.render()
    # The summary is checkpoint-safe.
    json.dumps(summary)


def test_auditor_recorded_violations_are_capped():
    auditor = DeterminismAuditor()
    auditor.on_event(_core_event(EventKind.CORE_START, testwin=1))
    for _ in range(DeterminismAuditor.MAX_RECORDED_VIOLATIONS + 10):
        auditor.on_event(_core_event(EventKind.BUS_SUBMIT, kind="ifetch"))
    assert auditor.violation_count == DeterminismAuditor.MAX_RECORDED_VIOLATIONS + 10
    assert len(auditor.violations) == DeterminismAuditor.MAX_RECORDED_VIOLATIONS
    assert "more" in auditor.render()


# ---------------------------------------------------------------------------
# Model-stats snapshots (satellite: BusStats/CacheStats intervals).
# ---------------------------------------------------------------------------


def test_bus_and_cache_stats_snapshot_delta():
    bus = BusStats()
    bus.transactions, bus.wait_cycles = 5, 10
    before = bus.snapshot()
    bus.transactions, bus.wait_cycles = 9, 17
    diff = bus.delta(before)
    assert (diff.transactions, diff.wait_cycles) == (4, 7)
    # The snapshot is decoupled from the live counters.
    assert before.transactions == 5

    cache = CacheStats()
    cache.hits, cache.fills = 3, 2
    before = cache.snapshot()
    cache.hits, cache.fills, cache.write_miss_bypasses = 8, 2, 1
    diff = cache.delta(before)
    assert (diff.hits, diff.fills, diff.write_miss_bypasses) == (5, 0, 1)


# ---------------------------------------------------------------------------
# Integration: a real SoC under a session.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def traced_run():
    soc = Soc()
    soc.load(wrapped_program())
    session = TelemetrySession.attach(soc)
    soc.start_core(0, ENTRY)
    cycles = soc.run(max_cycles=2_000_000)
    return soc, session, cycles


def test_wrapped_routine_audits_clean(traced_run):
    soc, session, _ = traced_run
    assert soc.cores[0].dtcm.read_word(CTX.mailbox_address) == RESULT_PASS
    assert session.auditor.audited
    assert session.auditor.passed, session.auditor.render()
    assert session.auditor.windows_opened == {0: 1}


def test_phase_metrics_show_loading_fills_execution_silence(traced_run):
    _, session, _ = traced_run
    view = session.metrics.snapshot()
    # The loading loop fills both caches ...
    assert view.get(0, PHASE_LOADING, "icache.fills") > 0
    assert view.get(0, PHASE_LOADING, "dcache.fills") > 0
    assert view.get(0, PHASE_LOADING, "bus.transactions") > 0
    # ... and the execution window is cache-resident and bus-silent.
    for metric in ("icache.fills", "dcache.fills", "icache.misses",
                   "dcache.misses", "bus.transactions"):
        assert view.get(0, PHASE_EXECUTION, metric) == 0, metric
    assert view.get(0, PHASE_EXECUTION, "icache.hits") > 0


def test_chrome_trace_exports_and_validates(traced_run, tmp_path):
    _, session, _ = traced_run
    path = tmp_path / "trace.json"
    trace = session.export_chrome_trace(path)
    validate_trace_events(trace)
    on_disk = json.loads(path.read_text())
    assert on_disk == trace
    names = {entry["name"] for entry in trace}
    assert "loading loop" in names and "execution loop" in names
    # Completed transactions are duration slices on the bus track.
    slices = [e for e in trace if e["ph"] == "X" and e["tid"] == 0]
    assert slices and all(e["dur"] >= 0 for e in slices)
    # Submits/grants are folded into those slices, not exported raw.
    assert not any(e["name"].startswith("bus.submit") for e in trace)


def test_validate_trace_events_rejects_malformed():
    good = chrome_trace_events([])
    validate_trace_events(good)
    with pytest.raises(ValueError, match="ph"):
        validate_trace_events([{"name": "x", "pid": 1, "tid": 0}])
    with pytest.raises(ValueError, match="ts"):
        validate_trace_events(
            [{"name": "x", "ph": "i", "pid": 1, "tid": 0, "ts": -1, "s": "t"}]
        )
    with pytest.raises(ValueError, match="dur"):
        validate_trace_events(
            [{"name": "x", "ph": "X", "pid": 1, "tid": 0, "ts": 0}]
        )


def test_attach_detach_restores_null_sink():
    soc = Soc()
    session = TelemetrySession.attach(soc)
    assert soc.bus.telemetry is session.sink
    assert soc.cores[0].icache.telemetry is session.sink
    session.detach()
    for component in (soc, soc.bus, *soc.cores):
        assert component.telemetry is NULL_SINK
    assert soc.cores[0].fetch.telemetry is NULL_SINK
    assert soc.cores[0].memunit.telemetry is NULL_SINK
    assert soc.cores[0].dcache.telemetry is NULL_SINK


def test_telemetry_does_not_perturb_the_simulation():
    """Same program, with and without a session: bit-identical outcome."""
    program = wrapped_program()

    def run(instrument):
        soc = Soc()
        soc.load(program)
        session = TelemetrySession.attach(soc) if instrument else None
        soc.start_core(0, ENTRY)
        cycles = soc.run(max_cycles=2_000_000)
        core = soc.cores[0]
        return cycles, core.regfile.read(SIG_REG), core.ifstall, core.memstall

    assert run(False) == run(True)


def test_unwrapped_ablation_fails_audit_with_actionable_events():
    program = wrapped_program(CacheWrapperOptions(loading_loop=False))
    soc = Soc()
    soc.load(program)
    session = TelemetrySession.attach(soc)
    soc.start_core(0, ENTRY)
    soc.run(max_cycles=2_000_000)
    auditor = session.auditor
    assert auditor.audited and not auditor.passed
    # Violations carry the actionable payload: what, when, where.
    violation = auditor.violations[0]
    assert violation.core == 0 and violation.window == 1
    assert violation.event.kind is EventKind.BUS_SUBMIT
    assert "address" in violation.event.fields
    assert violation.event.fields["kind"] in ("ifetch", "dread", "dwrite")


# ---------------------------------------------------------------------------
# Audit propagation into campaign records.
# ---------------------------------------------------------------------------


def test_run_scenario_attaches_audit_verdict():
    builders = {
        0: lambda base: build_cache_wrapped(tiny_routine(), base, CTX)
    }
    scenario = Scenario((0,), CodePosition.LOW, CodeAlignment.QWORD)
    result = run_scenario(builders, scenario, audit=True)
    assert result.audit is not None
    assert result.audit["passed"] is True
    assert result.audit["windows_opened"] == {"0": 1}
    # Default mode stays audit-free (and telemetry-free).
    assert run_scenario(builders, scenario).audit is None


def test_scenario_outcome_roundtrips_audit():
    outcome = ScenarioOutcome(
        label="cores0_low_qword",
        audit={"passed": True, "violation_count": 0},
    )
    restored = ScenarioOutcome.from_dict(json.loads(json.dumps(outcome.to_dict())))
    assert restored.audit == outcome.audit
    # Pre-audit checkpoints load with audit=None.
    legacy = dict(outcome.to_dict())
    del legacy["audit"]
    assert ScenarioOutcome.from_dict(legacy).audit is None
