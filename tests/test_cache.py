"""Tests for the set-associative write-back cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MemoryError_
from repro.mem.cache import Cache, CacheConfig

SMALL = CacheConfig(name="t", size_bytes=256, line_bytes=32, ways=2)


def _fill_words(base: int, count: int = 8) -> list[int]:
    return [(base + 4 * i) & 0xFFFF_FFFF for i in range(count)]


def make_resident(cache: Cache, address: int) -> None:
    line = address & ~31
    cache.install(line, _fill_words(line))


def test_geometry():
    assert SMALL.num_sets == 4
    assert SMALL.words_per_line == 8
    with pytest.raises(MemoryError_):
        CacheConfig(name="bad", size_bytes=100)


def test_miss_then_hit():
    cache = Cache(SMALL)
    assert not cache.lookup(0x1000)
    make_resident(cache, 0x1000)
    assert cache.lookup(0x1000)
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_read_resident_word_and_byte():
    cache = Cache(SMALL)
    make_resident(cache, 0x40)
    assert cache.read(0x44) == 0x44
    assert cache.read(0x44, width=1) == 0x44
    assert cache.read(0x45, width=1) == 0x00


def test_read_nonresident_raises():
    cache = Cache(SMALL)
    with pytest.raises(MemoryError_):
        cache.read(0x40)


def test_write_marks_dirty_and_writeback_plan():
    cache = Cache(SMALL)
    make_resident(cache, 0x0)
    cache.write(0x4, 0xABCD)
    assert cache.read(0x4) == 0xABCD
    # Fill two more lines in set 0 -> the dirty line becomes the victim.
    make_resident(cache, 0x100)  # same set (0x100 % 128 == 0 set)
    plan = cache.prepare_fill(0x200)
    assert plan.writeback_address == 0x0
    assert plan.writeback_words[1] == 0xABCD


def test_byte_write_read_modify():
    cache = Cache(SMALL)
    make_resident(cache, 0x20)
    cache.write(0x21, 0xEE, width=1)
    assert cache.read(0x20) == (0x20 & ~0xFF00) | 0xEE00


def test_lru_replacement_order():
    cache = Cache(SMALL)
    make_resident(cache, 0x000)  # set 0, way A
    make_resident(cache, 0x100)  # set 0, way B
    cache.read(0x000)  # touch A: B becomes LRU
    plan = cache.prepare_fill(0x200)
    cache.install(plan.line_address, _fill_words(0x200))
    assert cache.probe(0x000)
    assert not cache.probe(0x100)


def test_invalidate_all_discards_dirty():
    cache = Cache(SMALL)
    make_resident(cache, 0x60)
    cache.write(0x60, 1)
    cache.invalidate_all()
    assert cache.resident_lines() == 0
    assert cache.stats.invalidations == 1
    plan = cache.prepare_fill(0x60)
    assert plan.writeback_address is None  # dirty data was discarded


def test_install_wrong_width_rejected():
    cache = Cache(SMALL)
    with pytest.raises(MemoryError_):
        cache.install(0x0, [0] * 4)


def test_holds_range():
    cache = Cache(SMALL)
    make_resident(cache, 0x40)
    make_resident(cache, 0x60)
    assert cache.holds_range(0x40, 64)
    assert not cache.holds_range(0x40, 96)


def test_write_allocate_flag_mutable():
    cache = Cache(SMALL)
    assert cache.write_allocate
    cache.write_allocate = False
    assert not cache.write_allocate


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=0x3FF),
            st.booleans(),
            st.integers(min_value=0, max_value=0xFFFF_FFFF),
        ),
        min_size=1,
        max_size=60,
    )
)
def test_cache_matches_reference_model(operations):
    """The cache + a backing dict must behave like a plain flat memory."""
    cache = Cache(SMALL)
    backing: dict[int, int] = {}
    reference: dict[int, int] = {}

    def backing_read(line: int) -> list[int]:
        return [backing.get(line + 4 * i, 0) for i in range(8)]

    for address, is_write, value in operations:
        address &= ~3
        if not cache.probe(address):
            plan = cache.prepare_fill(address)
            if plan.writeback_address is not None:
                for i, word in enumerate(plan.writeback_words):
                    backing[plan.writeback_address + 4 * i] = word
            cache.install(plan.line_address, backing_read(plan.line_address))
        if is_write:
            cache.write(address, value)
            reference[address] = value & 0xFFFF_FFFF
        else:
            assert cache.read(address) == reference.get(address, 0)
    # Final coherence: every reference word is visible either in the
    # cache or in the backing store.
    for address, value in reference.items():
        observed = (
            cache.read(address) if cache.probe(address) else backing.get(address, 0)
        )
        assert observed == value
