"""Tests of the Program container."""

import pytest

from repro.isa import AsmBuilder, Program, assemble, decode
from repro.isa.instructions import Instruction, Mnemonic


def sample_program():
    asm = AsmBuilder(0x400, "sample")
    asm.label("entry")
    asm.addi(1, 0, 5)
    asm.nop()
    asm.halt()
    asm.data_word(0x2000_0000, 0x1234)
    return asm.build()


def test_size_and_addresses():
    program = sample_program()
    assert program.size_bytes == 12
    assert program.end_address == 0x40C
    assert program.address_of(2) == 0x408
    assert program.index_of(0x404) == 1


def test_index_of_rejects_outside_and_misaligned():
    program = sample_program()
    with pytest.raises(IndexError):
        program.index_of(0x40C)
    with pytest.raises(IndexError):
        program.index_of(0x402)


def test_image_contains_code_and_data():
    program = sample_program()
    image = program.image()
    assert image[0x2000_0000] == 0x1234
    assert decode(image[0x400]).mnemonic is Mnemonic.ADDI


def test_image_rejects_data_overlapping_code():
    program = sample_program()
    program.data[0x404] = 99
    with pytest.raises(ValueError):
        program.image()


def test_base_address_must_be_aligned():
    with pytest.raises(ValueError):
        Program(code=[Instruction(Mnemonic.NOP)], base_address=2)


def test_listing_reassembles_identically():
    program = sample_program()
    again = assemble(program.listing())
    assert again.base_address == program.base_address
    assert again.encoded_words() == program.encoded_words()
    assert again.data == program.data
    assert again.name == program.name
