"""Tests of gate primitives and the netlist container."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FaultModelError
from repro.faults.gates import GateKind, eval_gate
from repro.faults.netlist import Netlist

TRUTH = {
    GateKind.AND: lambda a, b: a & b,
    GateKind.OR: lambda a, b: a | b,
    GateKind.NAND: lambda a, b: 1 - (a & b),
    GateKind.NOR: lambda a, b: 1 - (a | b),
    GateKind.XOR: lambda a, b: a ^ b,
    GateKind.XNOR: lambda a, b: 1 - (a ^ b),
}


@pytest.mark.parametrize("kind", list(TRUTH))
def test_binary_gate_truth_tables(kind):
    for a in (0, 1):
        for b in (0, 1):
            assert eval_gate(kind, a, b, 1) == TRUTH[kind](a, b)


def test_unary_gates():
    assert eval_gate(GateKind.BUF, 0b1010, 0, 0b1111) == 0b1010
    assert eval_gate(GateKind.NOT, 0b1010, 0, 0b1111) == 0b0101


@given(
    st.sampled_from(list(TRUTH)),
    st.integers(min_value=0, max_value=2**64 - 1),
    st.integers(min_value=0, max_value=2**64 - 1),
)
def test_bit_parallel_matches_bitwise(kind, a, b):
    mask = 2**64 - 1
    packed = eval_gate(kind, a, b, mask)
    for bit in range(0, 64, 7):
        expected = TRUTH[kind]((a >> bit) & 1, (b >> bit) & 1)
        assert (packed >> bit) & 1 == expected


def test_netlist_construction_and_eval():
    nl = Netlist("t")
    a, b = nl.add_input_bus("in", 2)
    out = nl.add_gate(GateKind.XOR, a, b)
    nl.mark_output_bus("out", [out])
    values = nl.evaluate({a: 0b1100, b: 0b1010}, 0b1111)
    assert values[out] == 0b0110


def test_netlist_rejects_forward_references():
    nl = Netlist("t")
    with pytest.raises(FaultModelError):
        nl.add_gate(GateKind.AND, 5, 6)


def test_or_and_trees():
    nl = Netlist("t")
    bus = nl.add_input_bus("in", 5)
    or_out = nl.or_tree(bus)
    and_out = nl.and_tree(bus)
    mask = 0b11
    values = nl.evaluate({net: (0b01 if i == 2 else 0b11) for i, net in enumerate(bus)}, mask)
    assert values[or_out] == 0b11
    assert values[and_out] == 0b01


def test_equality_comparator():
    nl = Netlist("t")
    a = nl.add_input_bus("a", 4)
    b = nl.add_input_bus("b", 4)
    eq = nl.equality(a, b)
    # Pattern 0: a=b=5; pattern 1: a=5, b=7.
    inputs = {}
    for i in range(4):
        inputs[a[i]] = ((5 >> i) & 1) | (((5 >> i) & 1) << 1)
        inputs[b[i]] = ((5 >> i) & 1) | (((7 >> i) & 1) << 1)
    values = nl.evaluate(inputs, 0b11)
    assert values[eq] == 0b01


def test_buffer_chain_depth():
    nl = Netlist("t")
    (a,) = nl.add_input_bus("a", 1)
    end = nl.buffer_chain(a, 3)
    assert len(nl.gates) == 3
    values = nl.evaluate({a: 1}, 1)
    assert values[end] == 1


def test_duplicate_bus_names_rejected():
    nl = Netlist("t")
    nl.add_input_bus("x", 1)
    with pytest.raises(FaultModelError):
        nl.add_input_bus("x", 1)
    nl.mark_output_bus("y", [0])
    with pytest.raises(FaultModelError):
        nl.mark_output_bus("y", [0])


def test_fanout_table():
    nl = Netlist("t")
    a, b = nl.add_input_bus("in", 2)
    g1 = nl.add_gate(GateKind.AND, a, b)
    g2 = nl.add_gate(GateKind.OR, a, g1)
    assert nl.fanout[a] == [0, 1]
    assert nl.fanout[g1] == [1]
