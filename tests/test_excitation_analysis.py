"""Tests of the path-excitation diagnostics."""

from repro.analysis.excitation import (
    compare_excitation,
    excitation_summary,
    path_excitation,
)
from repro.core import build_cache_wrapped
from repro.cpu.core import CORE_MODEL_A
from repro.stl import RoutineContext
from repro.stl.routines import make_forwarding_routine
from tests.conftest import run_program

CTX = RoutineContext.for_core(0, CORE_MODEL_A)


def _logs():
    routine = make_forwarding_routine(
        CORE_MODEL_A, with_pcs=False, patterns_per_path=1
    )
    wrapped = build_cache_wrapped(routine, 0x1000, CTX)
    plain = routine.build_single_core(0x1000, CTX)
    _, wrapped_core = run_program(wrapped)
    _, plain_core = run_program(plain)
    return wrapped_core.log, plain_core.log


def test_cached_run_excites_all_paths():
    wrapped_log, _ = _logs()
    report = path_excitation(wrapped_log)
    assert len(report) == 16
    assert all(entry.excited for entry in report)


def test_uncached_run_loses_paths():
    wrapped_log, plain_log = _logs()
    lost = compare_excitation(wrapped_log, plain_log)
    assert lost  # the no-cache run misses at least one path
    # Losses must be real: none of the lost paths appears excited.
    plain_excited = {e.path for e in path_excitation(plain_log) if e.excited}
    assert not (set(lost) & plain_excited)


def test_summary_renders_status_column():
    wrapped_log, plain_log = _logs()
    text = excitation_summary(plain_log)
    assert "NOT EXCITED" in text
    assert "p0d1c0o0" in text
    assert "NOT EXCITED" not in excitation_summary(wrapped_log)


def test_empty_log_reports_all_unexcited():
    from repro.cpu.recording import ActivationLog

    report = path_excitation(ActivationLog())
    assert all(not entry.excited for entry in report)
