"""Chaos-injection proof of the supervised orchestrator's contract.

The invariant under test: a campaign or fault-simulation run under
injected infrastructure failure — worker kills, transient exceptions,
hung shards, corrupted checkpoint bytes — merges to results
**bit-identical** to a clean run whenever no shard ends quarantined.
Retries, pool rebuilds and straggler re-dispatch are allowed to cost
wall-clock; they are never allowed to change a number.

A poison shard (fails every attempt) is the complement: the campaign
must *complete* anyway, with the loss enumerated — an explicit
quarantine roster, outcomes for exactly the surviving scenarios, and a
distinct :class:`~repro.errors.OrchestrationError` when the caller did
not opt into partial results.

The chaos decisions themselves are pure functions of (shard, attempt),
so the orchestrator's decision sequence is deterministic too — pinned
via :meth:`OrchestrationReport.stable_dict` across repeated runs.
"""

import json

import pytest

from repro.core.determinism import Scenario, run_scenario
from repro.cpu.core import CORE_MODEL_A
from repro.errors import (
    CheckpointCorruptionWarning,
    CheckpointError,
    OrchestrationError,
)
from repro.faults import (
    ChaosError,
    ChaosPolicy,
    PartialCampaignResult,
    RetryPolicy,
    ShardChaos,
    fault_simulate,
    get_modules,
    orchestrated_fault_simulate,
    run_parallel_checkpointed_campaign,
    shard_faults,
)
from repro.faults.chaos import corrupt_file
from repro.faults.observability import forwarding_pattern_sets
from repro.faults.orchestrator import ORCHESTRATION_REPORT_NAME, OrchestrationReport
from repro.faults.parallel import MANIFEST_NAME
from repro.faults.stuckat import enumerate_faults
from repro.faults.workload import DEFAULT_CAMPAIGN_MODELS, small_provider
from repro.soc import CodeAlignment, CodePosition
from repro.telemetry.events import EventKind, RecordingSink
from repro.telemetry.metrics import MetricsCollector

SCENARIOS = (
    Scenario((0, 1), CodePosition.LOW, CodeAlignment.QWORD),
    Scenario((0, 1), CodePosition.MID, CodeAlignment.WORD),
)

WORKER_COUNTS = (1, 2, 4)

#: Fast retry policy shared by the happy-path chaos runs.
FAST = dict(max_retries=2, backoff_base=0.01, seed=11)


def fast_policy(**overrides):
    return RetryPolicy(**{**FAST, **overrides})


def outcome_dicts(result):
    return {label: o.to_dict() for label, o in result.outcomes.items()}


def run_campaign(directory, *, chaos=None, policy=None, **kwargs):
    kwargs.setdefault("modules", ("FWD",))
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("num_shards", 2)
    return run_parallel_checkpointed_campaign(
        small_provider(), SCENARIOS, DEFAULT_CAMPAIGN_MODELS, directory,
        chaos=chaos, policy=policy, **kwargs,
    )


@pytest.fixture(scope="module")
def campaign_reference(tmp_path_factory):
    """The clean, unsupervised campaign every chaos run must reproduce."""
    result = run_campaign(
        tmp_path_factory.mktemp("reference"), workers=1, num_shards=2
    )
    return outcome_dicts(result)


@pytest.fixture(scope="module")
def fwd_port(tmp_path_factory):
    """A real forwarding-port netlist + patterns and a clipped fault
    list (keeps the engine matrix affordable on one CPU)."""
    builders = small_provider()()
    result = run_scenario(builders, SCENARIOS[0])
    modules = get_modules(CORE_MODEL_A)
    log = result.per_core[0].log
    merged = forwarding_pattern_sets(log, modules)
    port = sorted(merged)[0]
    netlist, patterns = modules.forwarding[port], merged[port]
    faults = enumerate_faults(netlist)[:400]
    return netlist, patterns, faults


@pytest.fixture(scope="module")
def sim_reference(fwd_port):
    netlist, patterns, faults = fwd_port
    return {
        engine: fault_simulate(
            netlist, patterns, faults, engine=engine
        ).to_dict()
        for engine in ("compiled", "interpreted")
    }


def campaign_chaos(kind):
    """Shard-0 directive for one named campaign chaos case."""
    if kind == "transient":
        return ShardChaos(kind="transient", failures=1)
    if kind == "kill":
        return ShardChaos(kind="kill", failures=1)
    if kind == "kill-mid-shard":
        # The kill lands after one scenario is durably checkpointed:
        # the retry must resume, not re-grade (nor double-count).
        return ShardChaos(kind="kill", failures=1, after_items=1)
    if kind == "hang":
        return ShardChaos(kind="hang", failures=1, hang_seconds=30.0)
    raise AssertionError(kind)


# ----------------------------------------------------------------------
# The headline invariant: chaos campaigns merge bit-identically.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize(
    "kind", ("transient", "kill", "kill-mid-shard", "hang")
)
def test_chaos_campaign_is_bit_identical(
    tmp_path, campaign_reference, kind, workers
):
    chaos = ChaosPolicy({0: campaign_chaos(kind)})
    policy = fast_policy(
        shard_timeout=1.0 if kind == "hang" else None
    )
    result = run_campaign(
        tmp_path / "campaign", chaos=chaos, policy=policy, workers=workers
    )
    assert isinstance(result, PartialCampaignResult)
    assert result.complete
    assert result.quarantined_shards == ()
    assert outcome_dicts(result) == campaign_reference
    # The per-scenario attempt counters must match a clean run too:
    # a shard retry re-runs infrastructure, never re-grades scenarios.
    assert {
        label: data["attempts"]
        for label, data in outcome_dicts(result).items()
    } == {
        label: data["attempts"]
        for label, data in campaign_reference.items()
    }
    failures = [a for a in result.report.attempts if a.status != "ok"]
    if kind in ("transient", "hang"):
        assert failures, "chaos did not fire"
    else:
        # A kill breaks the pool; the charge lands only if the shard
        # breaks it again *in isolation* (here failures=1 means the
        # isolated re-run succeeds), but the rebuild always happens.
        assert result.report.pool_rebuilds >= 1
    if kind == "hang":
        assert result.report.stragglers >= 1


@pytest.mark.parametrize("engine", ("compiled", "interpreted"))
@pytest.mark.parametrize("kind", ("transient", "kill", "hang"))
def test_chaos_faultsim_is_bit_identical(
    fwd_port, sim_reference, engine, kind
):
    netlist, patterns, faults = fwd_port
    directive = (
        ShardChaos(kind="hang", failures=1, hang_seconds=30.0)
        if kind == "hang"
        else ShardChaos(kind=kind, failures=1)
    )
    res = orchestrated_fault_simulate(
        netlist, patterns, faults, workers=2, num_shards=3,
        policy=fast_policy(shard_timeout=2.0 if kind == "hang" else None),
        chaos=ChaosPolicy({1: directive}),
        engine=engine,
    )
    assert res.complete
    assert res.result.to_dict() == sim_reference[engine]


def test_chaos_decision_sequence_is_deterministic(
    tmp_path, campaign_reference
):
    """Two runs under the same chaos + retry policies make the same
    decisions: equal stable report projections, equal outcomes."""
    chaos = ChaosPolicy(
        {
            0: ShardChaos(kind="transient", failures=2),
            1: ShardChaos(kind="kill", failures=1),
        }
    )
    reports = []
    for name in ("a", "b"):
        result = run_campaign(
            tmp_path / name, chaos=chaos, policy=fast_policy()
        )
        assert outcome_dicts(result) == campaign_reference
        reports.append(result.report.stable_dict())
    assert reports[0] == reports[1]


# ----------------------------------------------------------------------
# Poison shards: quarantine, explicit accounting, distinct error.
# ----------------------------------------------------------------------


def test_poison_shard_completes_campaign_with_quarantine_roster(
    tmp_path, campaign_reference
):
    chaos = ChaosPolicy({1: ShardChaos(kind="transient", failures=None)})
    result = run_campaign(
        tmp_path / "campaign",
        chaos=chaos,
        policy=fast_policy(max_retries=1, allow_partial=True),
    )
    assert not result.complete
    assert result.quarantined_shards == (1,)
    # Surviving scenarios carry clean-run outcomes; lost ones are
    # enumerated, not silently dropped from the denominator.
    survivors = set(result.outcomes)
    lost = set(result.quarantined_labels)
    assert survivors.isdisjoint(lost)
    assert survivors | lost == {s.label for s in SCENARIOS}
    for label in survivors:
        assert outcome_dicts(result)[label] == campaign_reference[label]
    # The quarantined shard burned max_retries + 1 attempts.
    attempts = [a for a in result.report.attempts if a.shard == 1]
    assert [a.status for a in attempts] == ["error", "error"]


def test_poison_without_allow_partial_raises_orchestration_error(tmp_path):
    chaos = ChaosPolicy({1: ShardChaos(kind="transient", failures=None)})
    with pytest.raises(OrchestrationError, match="quarantined shard"):
        run_campaign(
            tmp_path / "campaign",
            chaos=chaos,
            policy=fast_policy(max_retries=1),
        )
    # The report still landed next to the manifest for post-mortem.
    report_path = tmp_path / "campaign" / ORCHESTRATION_REPORT_NAME
    assert report_path.exists()
    report = OrchestrationReport.from_dict(
        json.loads(report_path.read_text())
    )
    assert report.quarantined == [1]


def test_poison_faultsim_reports_coverage_lower_bound(
    fwd_port, sim_reference
):
    netlist, patterns, faults = fwd_port
    chaos = ChaosPolicy({2: ShardChaos(kind="transient", failures=None)})
    res = orchestrated_fault_simulate(
        netlist, patterns, faults, workers=2, num_shards=3,
        policy=fast_policy(max_retries=1, allow_partial=True),
        chaos=chaos,
    )
    assert res.quarantined_shards == (2,)
    lost = len(shard_faults(faults, 3)[2])
    assert res.quarantined_faults == lost
    # Same denominator as the clean run, detections only from the
    # surviving shards: a floor, never an overstatement.
    clean = sim_reference["compiled"]
    assert res.result.total_faults == clean["total_faults"]
    assert res.result.detected_faults <= clean["detected_faults"]

    with pytest.raises(OrchestrationError, match="allow_partial"):
        orchestrated_fault_simulate(
            netlist, patterns, faults, workers=2, num_shards=3,
            policy=fast_policy(max_retries=1),
            chaos=chaos,
        )


# ----------------------------------------------------------------------
# Checkpoint corruption under supervision.
# ----------------------------------------------------------------------


def test_corrupted_checkpoints_recover_under_supervision(
    tmp_path, campaign_reference
):
    """Corrupt both a shard checkpoint and the manifest of a finished
    campaign, then resume supervised *with* chaos on the recomputed
    shard: quarantine of the rotted bytes + retry of the injected
    failure still converge to the clean outcomes."""
    directory = tmp_path / "campaign"
    run_campaign(directory, policy=fast_policy())
    corrupt_file(directory / "shard_000.json", "tamper")
    corrupt_file(directory / MANIFEST_NAME, "truncate")
    chaos = ChaosPolicy({0: ShardChaos(kind="transient", failures=1)})
    with pytest.warns(CheckpointCorruptionWarning):
        result = run_campaign(
            directory, chaos=chaos, policy=fast_policy()
        )
    assert result.complete
    assert outcome_dicts(result) == campaign_reference
    retried = [a for a in result.report.attempts if a.status != "ok"]
    assert retried and all(a.shard == 0 for a in retried)


# ----------------------------------------------------------------------
# Degraded serial endgame.
# ----------------------------------------------------------------------


def test_repeated_pool_death_degrades_to_serial(
    tmp_path, campaign_reference
):
    chaos = ChaosPolicy({0: ShardChaos(kind="kill", failures=3)})
    result = run_campaign(
        tmp_path / "campaign",
        chaos=chaos,
        policy=fast_policy(max_retries=5, max_pool_rebuilds=1),
    )
    assert result.report.degraded_serial
    assert any(a.in_process for a in result.report.attempts)
    # In-process, the kill downgrades to a raised ChaosError (the host
    # must survive); semantics are otherwise unchanged.
    assert any(
        a.error and "ChaosError" in a.error
        for a in result.report.attempts
    )
    assert result.complete
    assert outcome_dicts(result) == campaign_reference


# ----------------------------------------------------------------------
# Deterministic backoff.
# ----------------------------------------------------------------------


def test_backoff_schedule_is_a_pure_function():
    a = RetryPolicy(max_retries=4, backoff_base=0.05, seed=9)
    b = RetryPolicy(max_retries=4, backoff_base=0.05, seed=9)
    for shard in range(8):
        assert a.backoff_schedule(shard) == b.backoff_schedule(shard)
    # Different seeds / shards de-synchronise the jitter.
    c = RetryPolicy(max_retries=4, backoff_base=0.05, seed=10)
    assert any(
        a.backoff_schedule(s) != c.backoff_schedule(s) for s in range(8)
    )
    assert a.backoff_schedule(0) != a.backoff_schedule(1)


def test_backoff_grows_and_respects_cap():
    policy = RetryPolicy(
        max_retries=10, backoff_base=0.1, backoff_factor=2.0,
        backoff_max=1.0, seed=3,
    )
    schedule = policy.backoff_schedule(0)
    assert len(schedule) == 10
    assert all(0.0 < delay <= 1.0 for delay in schedule)
    assert schedule[-1] == 1.0  # capped
    # Exponential growth before the cap bites.
    uncapped = [d for d in schedule if d < 1.0]
    assert uncapped == sorted(uncapped)


# ----------------------------------------------------------------------
# Telemetry + report plumbing.
# ----------------------------------------------------------------------


def test_orchestrator_emits_typed_events_and_metrics(tmp_path):
    metrics = MetricsCollector()
    sink = RecordingSink(subscribers=(metrics,))
    chaos = ChaosPolicy({0: ShardChaos(kind="transient", failures=None)})
    result = run_campaign(
        tmp_path / "campaign",
        chaos=chaos,
        policy=fast_policy(max_retries=1, allow_partial=True),
        telemetry=sink,
        metrics=metrics,
    )
    kinds = [event.kind for event in sink.events]
    assert kinds.count(EventKind.SHARD_RETRY) == 1
    assert kinds.count(EventKind.SHARD_QUARANTINE) == 1
    retry = next(e for e in sink.events if e.kind is EventKind.SHARD_RETRY)
    assert retry.fields["shard"] == 0
    assert retry.fields["delay"] > 0.0
    host = metrics.snapshot().host_subset("faultsim.orchestrator")
    assert host["attempts"] == len(result.report.attempts)
    assert host["quarantined"] == 1
    # The event-driven counters agree with the report.
    event_host = metrics.snapshot().host_subset("orchestrator")
    assert event_host["shard_retries"] == 1
    assert event_host["quarantines"] == 1


def test_report_round_trips_and_lands_on_disk(tmp_path):
    chaos = ChaosPolicy({0: ShardChaos(kind="transient", failures=1)})
    result = run_campaign(
        tmp_path / "campaign", chaos=chaos, policy=fast_policy()
    )
    path = tmp_path / "campaign" / ORCHESTRATION_REPORT_NAME
    loaded = OrchestrationReport.from_dict(json.loads(path.read_text()))
    assert loaded.stable_dict() == result.report.stable_dict()
    assert loaded.retried_shards == [0]
    assert loaded.backoff[0] == fast_policy().backoff_schedule(0)


def test_chaos_without_policy_is_rejected(tmp_path):
    with pytest.raises(CheckpointError, match="require a RetryPolicy"):
        run_campaign(
            tmp_path / "campaign",
            chaos=ChaosPolicy({0: ShardChaos()}),
        )


def test_chaos_error_escapes_scenario_supervision():
    # The in-shard campaign supervisor contains ReproError; chaos must
    # model the layer below it and reach the orchestrator.
    from repro.errors import ReproError

    assert not issubclass(ChaosError, ReproError)
    with pytest.raises(ChaosError):
        ChaosPolicy({0: ShardChaos()}).fire(0, 1, in_process=True)
