"""Crash injection around per-shard checkpoints + worker-count interop.

Satellites of the parallel engine PR: a worker killed mid-shard (or a
checkpoint write that dies mid-save) must never double-count detected
faults on resume, and a campaign started with N workers must finish
under M workers with bit-identical coverage.
"""

import json
import os
from functools import partial

import pytest

from repro.core.determinism import Scenario
from repro.errors import CheckpointCorruptionWarning, CheckpointError
from repro.faults import (
    CampaignCheckpoint,
    ScenarioOutcome,
    merge_outcome_maps,
    run_parallel_checkpointed_campaign,
)
from repro.faults.parallel import MANIFEST_NAME
from repro.faults.workload import (
    DEFAULT_CAMPAIGN_MODELS,
    forwarding_builders,
    small_provider,
)
from repro.soc import CodeAlignment, CodePosition

SCENARIOS = (
    Scenario((0, 1), CodePosition.LOW, CodeAlignment.QWORD),
    Scenario((0, 1), CodePosition.MID, CodeAlignment.WORD),
    Scenario((0, 1, 2), CodePosition.HIGH, CodeAlignment.WORD),
)


def crashy_builders(sentinel: str, crash_after: int):
    """Builders whose core-0 program builder dies (a plain RuntimeError,
    deliberately NOT a contained ReproError) once ``crash_after`` builds
    have happened — unless the sentinel file exists.  Module-level so a
    ``partial`` of it pickles into worker processes."""
    builders = forwarding_builders(1, 1)
    calls = {"count": 0}
    inner = builders[0]

    def build(base_address: int):
        calls["count"] += 1
        if calls["count"] > crash_after and not os.path.exists(sentinel):
            raise RuntimeError("simulated worker kill mid-shard")
        return inner(base_address)

    builders[0] = build
    return builders


def outcome_dicts(outcomes):
    return {label: outcome.to_dict() for label, outcome in outcomes.items()}


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The uninterrupted campaign every recovery path must reproduce."""
    result = run_parallel_checkpointed_campaign(
        small_provider(),
        SCENARIOS,
        DEFAULT_CAMPAIGN_MODELS,
        tmp_path_factory.mktemp("reference"),
        modules=("FWD",),
        workers=1,
    )
    return outcome_dicts(result.outcomes)


# ----------------------------------------------------------------------
# Killed worker mid-shard: resume must not double-count.
# ----------------------------------------------------------------------


def test_killed_worker_mid_shard_resumes_without_double_count(
    tmp_path, reference
):
    directory = tmp_path / "campaign"
    sentinel = tmp_path / "sentinel"
    provider = partial(crashy_builders, str(sentinel), 1)

    # One shard holds the whole campaign, so the kill lands after the
    # first scenario's checkpoint write and before the shard finishes.
    with pytest.raises(RuntimeError, match="simulated worker kill"):
        run_parallel_checkpointed_campaign(
            provider,
            SCENARIOS,
            DEFAULT_CAMPAIGN_MODELS,
            directory,
            modules=("FWD",),
            workers=2,
            num_shards=1,
        )
    shard_file = directory / "shard_000.json"
    saved = json.loads(shard_file.read_text())
    assert len(saved["scenarios"]) == 1  # exactly the checkpointed one

    # The worker is "replaced" (sentinel defuses the crash) and the
    # campaign resumed with a different worker count.
    sentinel.touch()
    resumed = run_parallel_checkpointed_campaign(
        provider,
        SCENARIOS,
        DEFAULT_CAMPAIGN_MODELS,
        directory,
        modules=("FWD",),
        workers=1,
    )
    assert outcome_dicts(resumed.outcomes) == reference
    # Every scenario appears exactly once — coverage totals equal the
    # uninterrupted run's, so nothing was double-counted.
    assert sorted(resumed.outcomes) == sorted(s.label for s in SCENARIOS)


def test_crash_during_checkpoint_save_rolls_back(tmp_path, monkeypatch):
    """A kill *inside* the checkpoint write must leave the previous
    consistent file and an in-memory map that matches it."""
    path = tmp_path / "c.json"
    checkpoint = CampaignCheckpoint(path, ("FWD",))
    checkpoint.record(ScenarioOutcome(label="s1"))

    def die(src, dst):
        raise OSError("simulated kill during rename")

    monkeypatch.setattr("repro.faults.campaign.os.replace", die)
    with pytest.raises(OSError, match="simulated kill"):
        checkpoint.record(ScenarioOutcome(label="s2"))
    monkeypatch.undo()

    # In-memory state rolled back: the checkpoint does not claim s2...
    assert checkpoint.done("s1") and not checkpoint.done("s2")
    # ... the on-disk file is the previous consistent state...
    reloaded = CampaignCheckpoint(path, ("FWD",))
    assert sorted(reloaded.outcomes) == ["s1"]
    # ... no staging litter survives, and recording works again.
    assert not list(tmp_path.glob("*.tmp*"))
    checkpoint.record(ScenarioOutcome(label="s2"))
    assert sorted(CampaignCheckpoint(path, ("FWD",)).outcomes) == ["s1", "s2"]


def test_failed_save_of_updated_outcome_restores_previous(
    tmp_path, monkeypatch
):
    path = tmp_path / "c.json"
    checkpoint = CampaignCheckpoint(path, ("FWD",))
    original = ScenarioOutcome(label="s1", attempts=1)
    checkpoint.record(original)
    monkeypatch.setattr(
        "repro.faults.campaign.os.replace",
        lambda src, dst: (_ for _ in ()).throw(OSError("kill")),
    )
    with pytest.raises(OSError):
        checkpoint.record(ScenarioOutcome(label="s1", attempts=7))
    assert checkpoint.outcomes["s1"].attempts == original.attempts


def test_merge_outcome_maps_rejects_duplicate_scenarios():
    a = {"s1": ScenarioOutcome(label="s1")}
    b = {"s2": ScenarioOutcome(label="s2"), "s1": ScenarioOutcome(label="s1")}
    with pytest.raises(CheckpointError, match="multiple shards"):
        merge_outcome_maps([a, b])
    merged = merge_outcome_maps([a, {"s2": ScenarioOutcome(label="s2")}])
    assert sorted(merged) == ["s1", "s2"]


# ----------------------------------------------------------------------
# Worker-count interop: start with N workers, finish with M != N.
# ----------------------------------------------------------------------


def test_resume_with_different_worker_count(tmp_path, reference):
    directory = tmp_path / "campaign"

    class Killed(Exception):
        pass

    def kill_after_first_shard(index, outcomes):
        raise Killed(f"killed after shard {index}")

    with pytest.raises(Killed):
        run_parallel_checkpointed_campaign(
            small_provider(),
            SCENARIOS,
            DEFAULT_CAMPAIGN_MODELS,
            directory,
            modules=("FWD",),
            workers=2,
            num_shards=3,
            on_shard=kill_after_first_shard,
        )

    # Resume with a different worker count (and no explicit shard
    # count: the pinned manifest layout must win).
    resumed = run_parallel_checkpointed_campaign(
        small_provider(),
        SCENARIOS,
        DEFAULT_CAMPAIGN_MODELS,
        directory,
        modules=("FWD",),
        workers=3,
    )
    assert resumed.num_shards == 3
    # At least one shard completed before the kill, so the resume
    # re-schedules strictly fewer shards than the manifest holds.
    assert len(resumed.scheduled) < resumed.num_shards
    assert outcome_dicts(resumed.outcomes) == reference


def test_fully_completed_campaign_resumes_as_pure_reads(tmp_path, reference):
    directory = tmp_path / "campaign"
    first = run_parallel_checkpointed_campaign(
        small_provider(),
        SCENARIOS,
        DEFAULT_CAMPAIGN_MODELS,
        directory,
        modules=("FWD",),
        workers=2,
        num_shards=2,
    )
    assert outcome_dicts(first.outcomes) == reference
    second = run_parallel_checkpointed_campaign(
        small_provider(),
        SCENARIOS,
        DEFAULT_CAMPAIGN_MODELS,
        directory,
        modules=("FWD",),
        workers=4,
    )
    assert second.scheduled == ()  # nothing re-ran
    assert second.shard_timings == []
    assert outcome_dicts(second.outcomes) == reference


# ----------------------------------------------------------------------
# Manifest hygiene.
# ----------------------------------------------------------------------


def run_small(directory, **kwargs):
    return run_parallel_checkpointed_campaign(
        small_provider(),
        SCENARIOS,
        DEFAULT_CAMPAIGN_MODELS,
        directory,
        **kwargs,
    )


def test_resume_rejects_conflicting_shard_count(tmp_path):
    directory = tmp_path / "campaign"
    run_small(directory, modules=("FWD",), workers=1, num_shards=2)
    with pytest.raises(CheckpointError, match="sharded 2 ways"):
        run_small(directory, modules=("FWD",), workers=1, num_shards=5)


def test_resume_rejects_different_modules(tmp_path):
    directory = tmp_path / "campaign"
    run_small(directory, modules=("FWD",), workers=1, num_shards=2)
    with pytest.raises(CheckpointError, match="refusing to mix"):
        run_small(directory, modules=("FWD", "ICU"), workers=1)


def test_resume_rejects_different_scenario_set(tmp_path):
    directory = tmp_path / "campaign"
    run_small(directory, modules=("FWD",), workers=1, num_shards=2)
    with pytest.raises(CheckpointError, match="different scenario set"):
        run_parallel_checkpointed_campaign(
            small_provider(),
            SCENARIOS[:2],
            DEFAULT_CAMPAIGN_MODELS,
            directory,
            modules=("FWD",),
            workers=1,
        )


def test_garbage_manifest_is_quarantined_and_replanned(tmp_path, reference):
    """A rotted manifest is moved aside with a warning, not fatal: the
    layout is a pure function of (scenarios, num_shards), so the
    campaign re-plans and completes with the reference outcomes."""
    directory = tmp_path / "campaign"
    directory.mkdir()
    (directory / MANIFEST_NAME).write_text("not json {")
    with pytest.warns(CheckpointCorruptionWarning, match="unreadable"):
        result = run_small(directory, modules=("FWD",), workers=1)
    sidecar = directory / (MANIFEST_NAME + ".corrupt")
    assert sidecar.exists()
    assert sidecar.read_text() == "not json {"  # evidence preserved
    assert (directory / MANIFEST_NAME).exists()  # fresh, valid manifest
    assert outcome_dicts(result.outcomes) == reference
