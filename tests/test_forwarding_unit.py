"""Unit tests of operand resolution through the forwarding network."""

from repro.cpu.forwarding import resolve_register
from repro.cpu.recording import FwdSource
from repro.cpu.state import RegFile
from repro.cpu.uop import Uop
from repro.isa.instructions import Instruction, Mnemonic


def make_uop(seq, dest, value, slot=0, is_load=False, ready=True, is64=False):
    instr = Instruction(Mnemonic.LW if is_load else Mnemonic.ADD, rd=dest)
    dests = (dest, dest + 1) if is64 else (dest,)
    return Uop(
        seq=seq,
        pc=0,
        instr=instr,
        slot=slot,
        dests=dests,
        result=value,
        is64=is64,
        result_ready=ready,
        is_load=is_load,
    )


def test_rf_read_when_no_producer():
    regfile = RegFile()
    regfile.write(5, 123)
    res = resolve_register(5, [], [], regfile)
    assert res.value == 123
    assert res.select == FwdSource.RF
    assert res.ready
    assert res.valid_mask == 1


def test_ex_source_priority_over_mem():
    regfile = RegFile()
    regfile.write(5, 1)
    ex = [make_uop(2, dest=5, value=20, slot=0)]
    mem = [make_uop(1, dest=5, value=10, slot=0)]
    res = resolve_register(5, ex, mem, regfile)
    assert res.select == FwdSource.EX0
    assert res.value == 20
    # All three sources are visible as candidates.
    assert res.candidates[int(FwdSource.EX0)] == 20
    assert res.candidates[int(FwdSource.MEM0)] == 10
    assert res.candidates[int(FwdSource.RF)] == 1


def test_slot_determines_source_lane():
    regfile = RegFile()
    ex = [make_uop(2, dest=7, value=42, slot=1)]
    res = resolve_register(7, ex, [], regfile)
    assert res.select == FwdSource.EX1


def test_mem_lane_forwarding():
    regfile = RegFile()
    mem = [make_uop(1, dest=9, value=33, slot=1)]
    res = resolve_register(9, [], mem, regfile)
    assert res.select == FwdSource.MEM1
    assert res.value == 33


def test_unready_load_blocks_resolution():
    regfile = RegFile()
    ex = [make_uop(2, dest=5, value=None, is_load=True, ready=False)]
    res = resolve_register(5, ex, [], regfile)
    assert not res.ready


def test_unready_older_load_shadowed_by_younger_producer():
    regfile = RegFile()
    ex = [make_uop(3, dest=5, value=99, slot=0)]
    mem = [make_uop(1, dest=5, value=None, slot=0, is_load=True, ready=False)]
    res = resolve_register(5, ex, mem, regfile)
    assert res.ready
    assert res.value == 99


def test_register_zero_never_forwarded():
    regfile = RegFile()
    # Even a (mis-generated) producer claiming to write r0 is ignored.
    ex = [make_uop(2, dest=0, value=77)]
    res = resolve_register(0, ex, [], regfile)
    assert res.value == 0
    assert res.select == FwdSource.RF


def test_64bit_pair_halves_resolved_independently():
    regfile = RegFile()
    regfile.write(4, 0xAAAA)
    ex = [make_uop(2, dest=4, value=0x1111_2222_3333_4444, is64=True)]
    low = resolve_register(4, ex, [], regfile)
    high = resolve_register(5, ex, [], regfile)
    assert low.value == 0x3333_4444
    assert high.value == 0x1111_2222


def test_valid_mask_reports_ready_producers():
    regfile = RegFile()
    ex = [make_uop(2, dest=5, value=20, slot=0), make_uop(3, dest=6, value=7, slot=1)]
    res = resolve_register(5, ex, [], regfile)
    assert res.valid_mask & (1 << int(FwdSource.EX0))
    assert not res.valid_mask & (1 << int(FwdSource.EX1))
