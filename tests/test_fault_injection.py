"""In-field fault detection: behavioural injection vs. the offline grade.

The finalised routine's verdict trichotomy in the field is PASS /
FAIL / hang (watchdog): any non-PASS outcome counts as detection.  The
cross-check test derives, for the same physical fault, the offline
PPSFP verdict and the in-field outcome, and asserts they agree.
"""

import pytest

from repro.core import cache_wrapped_builder, finalise_with_expected
from repro.cpu.core import CORE_MODEL_A
from repro.cpu.injection import DataBitFault, SelectFault, clear, install
from repro.cpu.recording import FwdSource
from repro.errors import ExecutionLimitExceeded
from repro.soc import Soc
from repro.stl import RoutineContext
from repro.stl.conventions import RESULT_PASS
from repro.stl.routines import make_forwarding_routine

CTX = RoutineContext.for_core(0, CORE_MODEL_A)


@pytest.fixture(scope="module")
def finalised():
    routine = make_forwarding_routine(
        CORE_MODEL_A, with_pcs=False, patterns_per_path=2
    )
    program, expected = finalise_with_expected(
        lambda e: cache_wrapped_builder(routine, CTX, e)(0x1000), 0
    )
    return program, expected


def run_in_field(program, fault):
    """PASS / FAIL / HANG verdict of a field execution with ``fault``."""
    soc = Soc()
    soc.load(program)
    soc.cores[0].recording = False  # field hardware logs nothing
    if fault is not None:
        install(soc.cores[0], fault)
    soc.start_core(0, 0x1000)
    try:
        soc.run(max_cycles=60_000)
    except ExecutionLimitExceeded:
        return "HANG"
    verdict = soc.cores[0].dtcm.read_word(CTX.mailbox_address)
    return "PASS" if verdict == RESULT_PASS else "FAIL"


def test_fault_free_run_passes(finalised):
    program, _ = finalised
    assert run_in_field(program, None) == "PASS"


def test_data_bit_fault_detected_in_field(finalised):
    program, _ = finalised
    fault = DataBitFault(0, 0, FwdSource.EX0, bit=5, stuck_to=0)
    assert run_in_field(program, fault) != "PASS"


def test_select_fault_detected_or_hangs(finalised):
    program, _ = finalised
    fault = SelectFault(0, 0, forced=FwdSource.RF)
    assert run_in_field(program, fault) != "PASS"


def test_clear_restores_fault_free_operation(finalised):
    program, _ = finalised
    soc = Soc()
    soc.load(program)
    install(soc.cores[0], DataBitFault(0, 0, FwdSource.EX0, 5, 0))
    clear(soc.cores[0])
    soc.start_core(0, 0x1000)
    soc.run(max_cycles=4_000_000)
    assert soc.cores[0].dtcm.read_word(CTX.mailbox_address) == RESULT_PASS


def test_unexcitable_fault_escapes_in_field(finalised):
    """A stuck-at agreeing with a never-differing bit must escape —
    found from the run's own pattern log, not guessed."""
    program, _ = finalised
    soc = Soc()
    soc.load(program)
    soc.start_core(0, 0x1000)
    soc.run(max_cycles=4_000_000)
    records = [
        r
        for r in soc.cores[0].log.forwarding
        if r.observable and (r.slot, r.operand) == (0, 0)
        and r.select == FwdSource.EX0
    ]
    assert records
    # Find a bit that is 1 in every selected EX0 value: SA1 there can
    # never be excited through this port.
    always_one = (1 << 32) - 1
    for record in records:
        always_one &= record.candidates[int(FwdSource.EX0)]
    if always_one == 0:
        pytest.skip("routine toggles every EX0 bit in both polarities")
    bit = always_one.bit_length() - 1
    fault = DataBitFault(0, 0, FwdSource.EX0, bit=bit, stuck_to=1)
    assert run_in_field(program, fault) == "PASS"


def test_offline_verdict_agrees_with_in_field(finalised):
    """PPSFP-detected stem faults on the EX0 data column must be caught
    by the field execution of the same routine."""
    from repro.faults import fault_simulate, forwarding_pattern_sets, get_modules
    from repro.faults.stuckat import StuckAtFault

    program, _ = finalised
    soc = Soc()
    soc.load(program)
    soc.start_core(0, 0x1000)
    soc.run(max_cycles=4_000_000)
    modules = get_modules(CORE_MODEL_A)
    patterns = forwarding_pattern_sets(soc.cores[0].log, modules)[(0, 0)]
    netlist = modules.forwarding[(0, 0)]
    ex0_inputs = netlist.inputs["d1"]  # data column of FwdSource.EX0
    checked = 0
    for bit in (0, 3, 7, 19):
        for stuck in (0, 1):
            offline = fault_simulate(
                netlist, patterns, [StuckAtFault(ex0_inputs[bit], stuck)]
            )
            if offline.detected_faults == 0:
                continue
            fault = DataBitFault(0, 0, FwdSource.EX0, bit=bit, stuck_to=stuck)
            assert run_in_field(program, fault) != "PASS", (bit, stuck)
            checked += 1
    assert checked >= 4
