"""Tests for the programmatic assembly builder."""

import pytest

from repro.errors import AssemblyError
from repro.isa.builder import AsmBuilder
from repro.isa.instructions import Csr, Instruction, Mnemonic
from repro.utils.bitops import to_unsigned


def test_labels_resolve_backward_and_forward():
    asm = AsmBuilder(0x100)
    asm.label("top")
    asm.addi(1, 0, 1)
    asm.beq(1, 0, "end")
    asm.bne(1, 0, "top")
    asm.label("end")
    asm.halt()
    program = asm.build()
    # beq at index 1 -> end at index 3: offset +2.
    assert program.code[1].imm == 2
    # bne at index 2 -> top at index 0: offset -2.
    assert program.code[2].imm == -2


def test_undefined_label_rejected():
    asm = AsmBuilder()
    asm.j("nowhere")
    with pytest.raises(AssemblyError):
        asm.build()


def test_duplicate_label_rejected():
    asm = AsmBuilder()
    asm.label("x")
    asm.nop()
    with pytest.raises(AssemblyError):
        asm.label("x")


def test_jump_encodes_absolute_word_address():
    asm = AsmBuilder(0x400)
    asm.nop()
    asm.label("target")
    asm.nop()
    asm.j("target")
    program = asm.build()
    assert program.code[2].imm == (0x400 + 4) // 4


def test_branch_out_of_range_suggests_far():
    asm = AsmBuilder()
    asm.label("top")
    for _ in range(600):
        asm.nop()
    asm.beq(0, 0, "top")
    with pytest.raises(AssemblyError, match="branch_far"):
        asm.build()


def test_branch_far_expands_to_inverted_branch_plus_jump():
    asm = AsmBuilder()
    asm.label("top")
    for _ in range(600):
        asm.nop()
    asm.branch_far(Mnemonic.BNE, 1, 2, "top")
    asm.halt()
    program = asm.build()
    # The expansion: BEQ (inverted) skipping a J.
    mnemonics = [i.mnemonic for i in program.code[600:603]]
    assert mnemonics == [Mnemonic.BEQ, Mnemonic.J, Mnemonic.HALT]
    assert program.code[601].imm == 0  # jump to word address 0 = "top"


def test_branch_far_rejects_non_branch():
    asm = AsmBuilder()
    with pytest.raises(AssemblyError):
        asm.branch_far(Mnemonic.ADD, 1, 2, "x")


def test_li_small_constant_is_one_instruction():
    asm = AsmBuilder()
    asm.li(5, 42)
    asm.li(6, -3)
    program = asm.build()
    assert [i.mnemonic for i in program.code] == [Mnemonic.ADDI, Mnemonic.ADDI]


def test_li_large_constant_is_lui_ori():
    asm = AsmBuilder()
    asm.li(5, 0xDEADBEEF)
    program = asm.build()
    assert [i.mnemonic for i in program.code] == [Mnemonic.LUI, Mnemonic.ORI]
    assert program.code[0].imm == 0xDEADB
    assert program.code[1].imm == 0xEEF


def test_li_negative_wraps_to_u32():
    asm = AsmBuilder()
    asm.li(5, to_unsigned(-1))
    asm.li(6, -1)
    program = asm.build()
    # Both spellings produce identical encodings.
    assert program.code[0].mnemonic == program.code[1].mnemonic == Mnemonic.ADDI


def test_store_offset_range_checked():
    asm = AsmBuilder()
    with pytest.raises(AssemblyError):
        asm.sw(1, 600, 2)


def test_csr_helpers():
    asm = AsmBuilder()
    asm.csrr(3, Csr.ICU_STATUS)
    asm.csrw(Csr.CACHECFG, 4)
    program = asm.build()
    assert program.code[0].csr == int(Csr.ICU_STATUS)
    assert program.code[1].csr == int(Csr.CACHECFG)


def test_base_address_must_be_aligned():
    with pytest.raises(AssemblyError):
        AsmBuilder(0x101)


def test_data_word_declarations():
    asm = AsmBuilder()
    asm.data_word(0x2000_0000, 0xABCD)
    asm.nop()
    program = asm.build()
    assert program.data[0x2000_0000] == 0xABCD
    with pytest.raises(AssemblyError):
        asm.data_word(0x2000_0001, 1)


def test_symbols_in_built_program():
    asm = AsmBuilder(0x80)
    asm.nop()
    asm.label("here")
    asm.halt()
    program = asm.build()
    assert program.symbols["here"] == 0x84
