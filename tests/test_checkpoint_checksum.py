"""Checkpoint/manifest integrity: content digests and corruption recovery.

Every campaign file (per-shard checkpoints, the shard-layout manifest)
embeds a blake2b content digest over its canonical JSON.  These tests
pin the whole corruption story: truncated, garbage and valid-JSON-but-
tampered files are detected, quarantined to a ``.corrupt`` sidecar with
a :class:`~repro.errors.CheckpointCorruptionWarning` (bytes preserved,
never silently deleted), and the campaign recomputes the lost shard to
outcomes bit-identical to an undisturbed run.  Incompatibility
(version / module mismatch) still raises — rot restarts, caller errors
do not.
"""

import json

import pytest

from repro.core.determinism import Scenario
from repro.errors import CheckpointCorruptionWarning, CheckpointError
from repro.faults import (
    CampaignCheckpoint,
    ScenarioOutcome,
    corrupt_file,
    run_parallel_checkpointed_campaign,
)
from repro.faults.campaign import (
    CHECKPOINT_VERSION,
    CORRUPT_SUFFIX,
    content_digest,
    verify_payload,
)
from repro.faults.parallel import MANIFEST_NAME
from repro.faults.workload import DEFAULT_CAMPAIGN_MODELS, small_provider
from repro.soc import CodeAlignment, CodePosition

SCENARIOS = (
    Scenario((0, 1), CodePosition.LOW, CodeAlignment.QWORD),
    Scenario((0, 1), CodePosition.MID, CodeAlignment.WORD),
)

CORRUPTION_MODES = ("truncate", "garbage", "tamper")


def run_small(directory, **kwargs):
    kwargs.setdefault("modules", ("FWD",))
    kwargs.setdefault("workers", 1)
    return run_parallel_checkpointed_campaign(
        small_provider(), SCENARIOS, DEFAULT_CAMPAIGN_MODELS, directory,
        **kwargs,
    )


def outcome_dicts(result):
    return {label: o.to_dict() for label, o in result.outcomes.items()}


# ----------------------------------------------------------------------
# The digest itself.
# ----------------------------------------------------------------------


def test_content_digest_ignores_embedded_digest_field():
    data = {"a": 1, "b": [2, 3]}
    digest = content_digest(data)
    assert content_digest({**data, "digest": digest}) == digest
    assert content_digest({**data, "digest": "junk"}) == digest


def test_content_digest_is_key_order_independent():
    assert content_digest({"a": 1, "b": 2}) == content_digest({"b": 2, "a": 1})


def test_content_digest_detects_value_changes():
    assert content_digest({"a": 1}) != content_digest({"a": 2})


def test_verify_payload_accepts_missing_digest(tmp_path):
    # Pre-checksum files must remain loadable.
    assert verify_payload(tmp_path / "x.json", {"a": 1}) is None


def test_verify_payload_reports_mismatch(tmp_path):
    reason = verify_payload(tmp_path / "x.json", {"a": 1, "digest": "0" * 32})
    assert reason is not None and "digest mismatch" in reason


# ----------------------------------------------------------------------
# Shard checkpoints: every corruption mode quarantines and recomputes.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("mode", CORRUPTION_MODES)
def test_corrupt_shard_checkpoint_recovers_bit_identical(tmp_path, mode):
    reference = run_small(tmp_path / "reference", num_shards=2)

    directory = tmp_path / "campaign"
    run_small(directory, num_shards=2)
    target = directory / "shard_000.json"
    original = target.read_bytes()
    corrupt_file(target, mode)
    assert target.read_bytes() != original

    with pytest.warns(CheckpointCorruptionWarning):
        resumed = run_small(directory, num_shards=2)
    sidecar = directory / (target.name + CORRUPT_SUFFIX)
    assert sidecar.exists()  # evidence preserved for post-mortem
    assert outcome_dicts(resumed) == outcome_dicts(reference)
    # The recomputed file is valid again: a third run is pure reads.
    third = run_small(directory, num_shards=2)
    assert third.scheduled == ()
    assert outcome_dicts(third) == outcome_dicts(reference)


@pytest.mark.parametrize("mode", CORRUPTION_MODES)
def test_corrupt_manifest_recovers_bit_identical(tmp_path, mode):
    reference = run_small(tmp_path / "reference", num_shards=2)

    directory = tmp_path / "campaign"
    run_small(directory, num_shards=2)
    corrupt_file(directory / MANIFEST_NAME, mode)

    with pytest.warns(CheckpointCorruptionWarning):
        resumed = run_small(directory, num_shards=2)
    assert (directory / (MANIFEST_NAME + CORRUPT_SUFFIX)).exists()
    # plan_campaign_shards is pure, so the re-planned layout re-adopted
    # the existing shard checkpoints: nothing was re-executed.
    assert resumed.scheduled == ()
    assert outcome_dicts(resumed) == outcome_dicts(reference)


def test_tamper_is_caught_only_by_the_digest(tmp_path):
    """The nastiest mode stays valid JSON — json.loads alone would
    accept it; the embedded digest is what catches it."""
    directory = tmp_path / "campaign"
    run_small(directory, num_shards=1)
    target = directory / "shard_000.json"
    corrupt_file(target, "tamper")
    data = json.loads(target.read_text())  # parses fine
    assert verify_payload(target, data) is not None


# ----------------------------------------------------------------------
# Rot restarts; incompatibility still raises.
# ----------------------------------------------------------------------


def test_version_mismatch_still_raises(tmp_path):
    path = tmp_path / "checkpoint.json"
    data = {"version": CHECKPOINT_VERSION + 1, "modules": ["FWD"], "scenarios": []}
    data["digest"] = content_digest(data)
    path.write_text(json.dumps(data))
    with pytest.raises(CheckpointError, match="version"):
        CampaignCheckpoint(path, ("FWD",))


def test_module_mismatch_still_raises(tmp_path):
    path = tmp_path / "checkpoint.json"
    checkpoint = CampaignCheckpoint(path, ("FWD",))
    checkpoint.record(ScenarioOutcome(label="s", coverages=[]))
    with pytest.raises(CheckpointError, match="refusing to mix"):
        CampaignCheckpoint(path, ("ICU",))


def test_saved_checkpoint_round_trips_with_digest(tmp_path):
    path = tmp_path / "checkpoint.json"
    checkpoint = CampaignCheckpoint(path, ("FWD",))
    checkpoint.record(ScenarioOutcome(label="s", coverages=[]))
    data = json.loads(path.read_text())
    assert data["digest"] == content_digest(data)
    # Clean reload: no warning, outcome intact.
    reloaded = CampaignCheckpoint(path, ("FWD",))
    assert set(reloaded.outcomes) == {"s"}
