"""Seeded soft-error injection: memory flips, cache flips, bus glitches."""

import pytest

from repro.errors import BusError, FaultModelError, MemoryError_, ReproError
from repro.faults import (
    AlwaysGlitch,
    BusGlitcher,
    CycleTrigger,
    SoftErrorInjector,
)
from repro.isa import AsmBuilder
from repro.mem.cache import Cache, CacheConfig
from repro.mem.sram import Sram
from repro.soc import Soc
from repro.stl.conventions import scratch_base

# ----------------------------------------------------------------------
# Bit flips in backing memories.
# ----------------------------------------------------------------------


def small_sram() -> Sram:
    return Sram(base=0x2000_0000, size=0x1000, latency=1)


def test_device_flip_bit_xors_one_bit():
    sram = small_sram()
    sram.write_word(0x2000_0010, 0x1234_5678)
    flipped = sram.flip_bit(0x2000_0010, 3)
    assert flipped == 0x1234_5678 ^ (1 << 3)
    assert sram.read_word(0x2000_0010) == flipped
    assert sram.soft_error_flips == 1


def test_device_flip_bit_validates_bit_index():
    sram = small_sram()
    sram.write_word(0x2000_0000, 1)
    with pytest.raises(MemoryError_):
        sram.flip_bit(0x2000_0000, 32)


def test_flash_flip_bypasses_the_readonly_guard():
    soc = Soc()
    soc.flash.program_word(soc.config.flash_base, 0xFFFF_FFFF)
    with pytest.raises(ReproError):
        soc.flash.write_word(soc.config.flash_base, 0)
    soc.flash.flip_bit(soc.config.flash_base, 31)
    assert soc.flash.read_word(soc.config.flash_base) == 0x7FFF_FFFF


def test_sram_flip_random_bit_draws_from_occupied_words():
    from repro.utils.rng import DeterministicRng

    sram = small_sram()
    sram.write_word(0x2000_0020, 0xFFFF_FFFF)
    address, bit = sram.flip_random_bit(DeterministicRng(3))
    assert address == 0x2000_0020
    assert sram.read_word(address) == 0xFFFF_FFFF ^ (1 << bit)
    with pytest.raises(MemoryError_):
        small_sram().flip_random_bit(DeterministicRng(3))


def test_injector_refuses_an_empty_device():
    injector = SoftErrorInjector(seed=1)
    with pytest.raises(FaultModelError):
        injector.flip_memory_bit(small_sram())


def test_injector_is_reproducible_from_its_seed():
    def campaign(seed: int) -> list[dict]:
        sram = small_sram()
        for i in range(32):
            sram.write_word(0x2000_0000 + 4 * i, 0xA5A5_0000 | i)
        injector = SoftErrorInjector(seed)
        for _ in range(10):
            injector.flip_memory_bit(sram)
        return injector.log_dicts()

    assert campaign(42) == campaign(42)
    assert campaign(42) != campaign(43)


def test_injection_records_round_trip():
    sram = small_sram()
    sram.write_word(0x2000_0040, 7)
    injector = SoftErrorInjector(seed=9)
    record = injector.flip_memory_bit(sram, cycle=123)
    assert record.kind == "sram-flip"
    assert record.cycle == 123
    from repro.faults import InjectionRecord

    assert InjectionRecord.from_dict(record.to_dict()) == record


# ----------------------------------------------------------------------
# Bit flips in cache lines.
# ----------------------------------------------------------------------


def warm_cache() -> Cache:
    cache = Cache(CacheConfig(name="d0", size_bytes=512))
    cache.install(0x100, list(range(8)))
    cache.install(0x200, list(range(8, 16)))
    return cache


def test_cache_flip_corrupts_a_resident_word():
    cache = warm_cache()
    assert sorted(cache.valid_line_addresses()) == [0x100, 0x200]
    cache.flip_bit(0x100, word_index=2, bit=5)
    assert cache.read(0x100 + 8) == 2 ^ (1 << 5)
    assert cache.stats.soft_error_flips == 1


def test_cache_flip_requires_a_resident_line():
    cache = warm_cache()
    with pytest.raises(MemoryError_):
        cache.flip_bit(0x300, word_index=0, bit=0)


def test_cache_injector_skips_an_empty_cache():
    cache = Cache(CacheConfig(name="d0", size_bytes=512))
    injector = SoftErrorInjector(seed=5)
    assert injector.flip_cache_bit(cache) is None
    assert injector.log == []


def test_cache_flip_does_not_dirty_the_line():
    """An SEU must not change writeback bookkeeping: invalidation drops
    the corruption instead of writing it back (the recovery guarantee)."""
    cache = warm_cache()
    injector = SoftErrorInjector(seed=5)
    record = injector.flip_cache_bit(cache, core_id=0)
    assert record is not None
    cache.invalidate_all()
    assert cache.valid_line_addresses() == []


# ----------------------------------------------------------------------
# Bus glitches: delayed grants and retriable error responses.
# ----------------------------------------------------------------------


def busy_program(base: int = 0x100):
    asm = AsmBuilder(base)
    asm.li(5, scratch_base(0))
    asm.li(1, 0)
    asm.li(2, 20)
    asm.label("loop")
    asm.add(1, 1, 2)
    asm.sw(1, 0, 5)
    asm.lw(3, 0, 5)
    asm.addi(2, 2, -1)
    asm.bne(2, 0, "loop")
    asm.halt()
    return asm.build()


def run_with_glitcher(glitcher) -> Soc:
    soc = Soc()
    program = busy_program()
    soc.load(program)
    soc.bus.glitcher = glitcher
    soc.start_core(0, program.base_address)
    soc.run(max_cycles=200_000)
    return soc


def test_glitch_rates_are_validated():
    with pytest.raises(FaultModelError):
        BusGlitcher(seed=1, delay_rate=1.5)
    with pytest.raises(FaultModelError):
        BusGlitcher(seed=1, max_delay=0)


def test_delayed_grants_stretch_the_run_deterministically():
    baseline = run_with_glitcher(None)
    first = BusGlitcher(seed=7, delay_rate=0.3)
    second = BusGlitcher(seed=7, delay_rate=0.3)
    run_a = run_with_glitcher(first)
    run_b = run_with_glitcher(second)
    assert first.stats.grants_delayed > 0
    assert first.stats.delay_cycles == second.stats.delay_cycles
    assert run_a.cycle == run_b.cycle > baseline.cycle
    assert (
        run_a.bus.stats[0].glitch_delay_cycles
        == run_b.bus.stats[0].glitch_delay_cycles
        == first.stats.delay_cycles
    )
    # The glitches are architecturally invisible: same final state.
    assert run_a.cores[0].regfile.read(1) == baseline.cores[0].regfile.read(1)


def test_error_responses_are_retried_transparently():
    baseline = run_with_glitcher(None)
    glitcher = BusGlitcher(seed=11, error_rate=0.25)
    soc = run_with_glitcher(glitcher)
    assert soc.bus.stats[0].error_responses > 0
    assert glitcher.stats.errors_injected == soc.bus.stats[0].error_responses
    # Every errored transaction was re-submitted and the program's
    # architectural outcome is untouched.
    assert soc.cores[0].regfile.read(1) == baseline.cores[0].regfile.read(1)
    assert soc.cores[0].regfile.read(3) == baseline.cores[0].regfile.read(3)


def test_retry_exhaustion_raises_bus_error():
    program = busy_program()
    soc = Soc()
    soc.load(program)
    soc.bus.glitcher = AlwaysGlitch()
    soc.start_core(0, program.base_address)
    with pytest.raises(BusError) as excinfo:
        soc.run(max_cycles=200_000)
    err = excinfo.value
    assert isinstance(err, ReproError)
    assert err.core_id == 0
    assert err.retries >= 3
    assert "core 0" in str(err)


def test_always_glitch_targets_one_core_only():
    program = busy_program()
    soc = Soc()
    soc.load(program)
    soc.bus.glitcher = AlwaysGlitch(target_core=1)
    soc.start_core(0, program.base_address)
    soc.run(max_cycles=200_000)  # core 0 is untouched
    assert soc.bus.stats[0].error_responses == 0


# ----------------------------------------------------------------------
# SoC fault hooks.
# ----------------------------------------------------------------------


def test_cycle_trigger_fires_once_at_its_cycle():
    program = busy_program()
    soc = Soc()
    soc.load(program)
    fired_at = []
    trigger = CycleTrigger(cycle=50, action=lambda s: fired_at.append(s.cycle))
    soc.fault_hooks.append(trigger)
    soc.start_core(0, program.base_address)
    soc.run(max_cycles=200_000)
    assert trigger.fired
    assert fired_at == [50]
    assert soc.fault_hooks == []
