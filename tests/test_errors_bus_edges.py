"""The error hierarchy and the bus/fetch edge cases it describes."""

import inspect

import pytest

import repro.errors as errors_module
from repro.errors import (
    BusError,
    CoreDiagnostic,
    ExecutionLimitExceeded,
    MemoryError_,
    ReproError,
)
from repro.isa import AsmBuilder
from repro.mem.bus import Transaction, TxnKind
from repro.soc import Soc


def test_every_exported_exception_is_a_repro_error():
    """One ``except ReproError`` must catch the whole family.

    Warning categories are exempt: they go through ``warnings.warn``,
    never ``raise``, and making them ``ReproError`` subclasses would
    drag them into exception handlers they must not trigger.
    """
    exception_types = [
        obj
        for _, obj in inspect.getmembers(errors_module, inspect.isclass)
        if issubclass(obj, Exception) and not issubclass(obj, Warning)
    ]
    assert len(exception_types) >= 10
    for exc_type in exception_types:
        assert issubclass(exc_type, ReproError), exc_type.__name__


def test_bus_error_message_carries_full_context():
    err = BusError(
        "data access failed", core_id=2, address=0x2000_0040, kind="read", retries=3
    )
    message = str(err)
    assert "core 2" in message
    assert "read" in message
    assert "0x20000040" in message
    assert "after 3 retries" in message
    assert (err.core_id, err.address, err.kind, err.retries) == (
        2,
        0x2000_0040,
        "read",
        3,
    )


def test_bus_error_without_context_is_just_the_message():
    assert str(BusError("boom")) == "boom"


def test_misaligned_fetch_target_names_core_and_address():
    soc = Soc()
    with pytest.raises(MemoryError_) as excinfo:
        soc.cores[0].fetch.redirect(0x103)
    message = str(excinfo.value)
    assert "core 0" in message
    assert "0x00000103" in message
    assert isinstance(excinfo.value, ReproError)


def test_unmapped_bus_address_names_the_master():
    soc = Soc()
    soc.bus.submit(
        Transaction(core_id=1, kind=TxnKind.DREAD, address=0xDEAD_0000), cycle=0
    )
    with pytest.raises(MemoryError_) as excinfo:
        soc.bus.step(1)
    message = str(excinfo.value)
    assert "core 1" in message
    assert "0xdead0000" in message
    assert "unmapped" in message


def test_unknown_bus_master_is_rejected():
    soc = Soc()
    with pytest.raises(MemoryError_):
        soc.bus.submit(
            Transaction(core_id=99, kind=TxnKind.DREAD, address=0x100), cycle=0
        )


def test_execution_limit_carries_per_core_diagnostics():
    asm = AsmBuilder(0x100)
    asm.label("spin")
    asm.j("spin")
    program = asm.build()
    soc = Soc()
    soc.load(program)
    soc.start_core(0, 0x100)
    with pytest.raises(ExecutionLimitExceeded) as excinfo:
        soc.run(max_cycles=500)
    err = excinfo.value
    assert len(err.diagnostics) == len(soc.cores)
    spinning = err.diagnostics[0]
    assert spinning.core_id == 0
    assert spinning.started and spinning.active and not spinning.halted
    assert spinning.cycles > 0
    # Cores that were never started are reported as off, not hung.
    assert not err.diagnostics[1].started
    assert "core 0" in str(err)
    assert "running" in spinning.describe()
    assert "off" in err.diagnostics[1].describe()


def test_diagnostic_describe_distinguishes_done_from_halted():
    done = CoreDiagnostic(
        core_id=0,
        model="A",
        pc=0x100,
        started=True,
        halted=True,
        active=False,
        cycles=10,
        bus_wait_cycles=2,
    )
    assert "halted" in done.describe()
    assert "pc=0x00000100" in done.describe()


def test_retried_transaction_clone_preserves_the_request():
    txn = Transaction(
        core_id=1,
        kind=TxnKind.DWRITE,
        address=0x2000_0000,
        is_write=True,
        write_values=[7],
    )
    txn.error = True
    txn.done = True
    clone = txn.retry_clone()
    assert clone.retries == 1
    assert not clone.done and not clone.error
    assert clone.write_values == [7] and clone.write_values is not txn.write_values
    assert (clone.core_id, clone.kind, clone.address) == (1, TxnKind.DWRITE, 0x2000_0000)
    assert clone.retry_clone().retries == 2
