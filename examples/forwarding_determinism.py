#!/usr/bin/env python3
"""The Table II story: fluctuating vs. deterministic fault coverage.

Runs the forwarding test (performance counters removed, so the signature
is stable either way) across the paper's scenario matrix — active-core
count x flash position x code alignment — twice: once as a plain
single-core program executed without caches, once wrapped in the
cache-based strategy.  Then fault-simulates every run's activation log
against the per-core forwarding-logic netlists.

Expected output shape (the paper's Section IV-C): without caches the
coverage oscillates from scenario to scenario while the signature never
changes — the silent danger — and with the wrapper it is bit-stable at
a higher value.
"""

from repro import (
    CORE_MODEL_A,
    CORE_MODEL_B,
    CORE_MODEL_C,
    RoutineContext,
    cache_wrapped_builder,
    default_scenarios,
    forwarding_coverage,
    make_forwarding_routine,
    run_scenario,
)
from repro.utils.tables import format_table

MODELS = {0: CORE_MODEL_A, 1: CORE_MODEL_B, 2: CORE_MODEL_C}


def main() -> None:
    contexts = {i: RoutineContext.for_core(i, m) for i, m in MODELS.items()}
    plain = {
        i: make_forwarding_routine(m, with_pcs=False).builder_for(contexts[i])
        for i, m in MODELS.items()
    }
    wrapped = {
        i: cache_wrapped_builder(
            make_forwarding_routine(m, with_pcs=False), contexts[i]
        )
        for i, m in MODELS.items()
    }
    scenarios = default_scenarios()
    print(f"running {len(scenarios)} scenarios, twice each ...")
    rows = []
    per_scenario = []
    plain_results = [run_scenario(plain, s) for s in scenarios]
    wrapped_results = [run_scenario(wrapped, s) for s in scenarios]
    for core_id, model in MODELS.items():
        no_cache = [
            forwarding_coverage(r.per_core[core_id].log, model).coverage_percent
            for r in plain_results
            if core_id in r.per_core
        ]
        cached = {
            round(
                forwarding_coverage(r.per_core[core_id].log, model).coverage_percent,
                6,
            )
            for r in wrapped_results
            if core_id in r.per_core
        }
        sigs_plain = {
            r.per_core[core_id].signature
            for r in plain_results
            if core_id in r.per_core
        }
        rows.append(
            (
                model.name,
                f"{min(no_cache):.2f} - {max(no_cache):.2f}",
                len(sigs_plain),
                f"{min(cached):.2f}",
                "stable" if len(cached) == 1 else "UNSTABLE",
            )
        )
    for r, s in zip(plain_results, scenarios):
        if 0 in r.per_core:
            fc = forwarding_coverage(r.per_core[0].log, CORE_MODEL_A)
            per_scenario.append((s.label, f"{fc.coverage_percent:.2f}"))
    print()
    print(
        format_table(
            ("core", "FC% no caches (min-max)", "distinct signatures",
             "FC% cache-based", "cache-based FC"),
            rows,
            title="Forwarding-logic coverage across the scenario matrix",
        )
    )
    print()
    print(
        format_table(
            ("scenario", "core A FC%"),
            per_scenario,
            title="Per-scenario oscillation (core A, no caches)",
        )
    )
    print(
        "\nNote how the no-cache runs always return the same signature"
        " (column 3 = 1): the coverage loss is invisible in the field."
    )


if __name__ == "__main__":
    main()
