#!/usr/bin/env python3
"""In-field fault detection, end to end.

"When the test is executed in field, the test signature represents the
only way to safely detect the occurrence of faults" (Section I).  This
demo arms physical faults in the *running* forwarding network of core A
and executes the finalised (expected-signature-bearing) cache-wrapped
routine, exactly as a boot-time STL would run in a vehicle:

* no fault                     -> PASS
* stuck data bit, excited path -> FAIL (signature mismatch)
* forced select line           -> FAIL or watchdog timeout
* stuck bit on a path the
  routine never excites        -> silent escape (the coverage gap
                                  Tables II/III quantify)
"""

from repro.core import cache_wrapped_builder, finalise_with_expected
from repro.cpu.core import CORE_MODEL_A
from repro.cpu.injection import DataBitFault, SelectFault, install
from repro.cpu.recording import FwdSource
from repro.errors import ExecutionLimitExceeded
from repro.soc import Soc
from repro.stl import RoutineContext
from repro.stl.conventions import RESULT_PASS
from repro.stl.routines import make_forwarding_routine
from repro.utils.tables import format_table

CTX = RoutineContext.for_core(0, CORE_MODEL_A)


def run_in_field(program, fault):
    soc = Soc()
    soc.load(program)
    soc.cores[0].recording = False  # field hardware logs nothing
    if fault is not None:
        install(soc.cores[0], fault)
    soc.start_core(0, 0x1000)
    try:
        soc.run(max_cycles=100_000)
    except ExecutionLimitExceeded:
        return "WATCHDOG TIMEOUT"
    verdict = soc.cores[0].dtcm.read_word(CTX.mailbox_address)
    return "PASS" if verdict == RESULT_PASS else "FAIL (signature mismatch)"


def main() -> None:
    routine = make_forwarding_routine(CORE_MODEL_A, with_pcs=False)
    program, expected = finalise_with_expected(
        lambda e: cache_wrapped_builder(routine, CTX, e)(0x1000), 0
    )
    print(
        f"finalised {program.name}: expected signature {expected:#010x}\n"
    )
    experiments = [
        ("fault-free reference", None),
        (
            "EX0 data column, bit 5 stuck-at-0",
            DataBitFault(0, 0, FwdSource.EX0, bit=5, stuck_to=0),
        ),
        (
            "EX0 data column, bit 17 stuck-at-1",
            DataBitFault(0, 0, FwdSource.EX0, bit=17, stuck_to=1),
        ),
        (
            "MEM1 data column, bit 3 stuck-at-0",
            DataBitFault(1, 1, FwdSource.MEM1, bit=3, stuck_to=0),
        ),
        (
            "select line forced to RF",
            SelectFault(0, 0, forced=FwdSource.RF),
        ),
    ]
    rows = [
        (description, run_in_field(program, fault))
        for description, fault in experiments
    ]
    print(
        format_table(
            ("injected fault", "in-field outcome"),
            rows,
            title="Boot-time self-test verdicts under injected faults",
        )
    )
    print(
        "\nEvery outcome other than PASS is an in-field detection; the"
        "\nsignature (or the watchdog) is all the vehicle ever sees."
    )


if __name__ == "__main__":
    main()
