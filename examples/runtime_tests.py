#!/usr/bin/env python3
"""Run-time self-tests: testing while the application runs.

The paper's Section I taxonomy: run-time tests execute "concurrently
with the application software ... usually during the processor idle
times", and unlike boot-time tests they can run in parallel without
special machinery — provided they are timing-insensitive (no
performance counters, no imprecise-interrupt state in the signature).

This example interleaves an application workload with a rotation of
run-time routines on all three cores at once, then shows that (a) every
self-test execution reproduced its golden signature despite full bus
contention and (b) the applications' checksums are untouched — the
"increase the system availability" story.
"""

from repro import (
    CORE_MODEL_A,
    CORE_MODEL_B,
    CORE_MODEL_C,
    RoutineContext,
    Soc,
    golden_signature,
    make_background_routines,
)
from repro.stl.runtime import build_runtime_session, session_verdict
from repro.utils.tables import format_table

MODELS = {0: CORE_MODEL_A, 1: CORE_MODEL_B, 2: CORE_MODEL_C}
ROUNDS = 6


def main() -> None:
    soc = Soc()
    sessions = {}
    for core_id, model in MODELS.items():
        ctx = RoutineContext.for_core(core_id, model)
        pairs = []
        for routine in make_background_routines()[:3]:
            golden = golden_signature(
                routine.build_single_core(0x7000, ctx), core_id
            )
            pairs.append((routine, golden))
        session = build_runtime_session(
            pairs, rounds=ROUNDS, base_address=0x1000 + core_id * 0x8000, ctx=ctx
        )
        sessions[core_id] = session
        soc.load(session.program)
    for core_id, session in sessions.items():
        soc.start_core(core_id, session.entry_point)
    cycles = soc.run(max_cycles=16_000_000)
    rows = []
    for core_id, session in sessions.items():
        core = soc.cores[core_id]
        passed, checksum_ok = session_verdict(core, session)
        rows.append(
            (
                core.model.name,
                ROUNDS,
                ", ".join(sorted(set(session.routine_names))),
                "PASS" if passed else "FAIL",
                "OK" if checksum_ok else "CORRUPT",
            )
        )
    print(
        format_table(
            ("core", "test windows", "routines", "self-tests", "application"),
            rows,
            title=f"Concurrent run-time testing ({cycles:,} cycles, 3 cores)",
        )
    )
    print(
        "\nRun-time routines are timing-insensitive by construction, so no"
        "\ncache wrapping is needed; the boot-time routines (forwarding/ICU)"
        "\nwould fail here - that is what the paper's methodology is for."
    )


if __name__ == "__main__":
    main()
