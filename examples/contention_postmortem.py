#!/usr/bin/env python3
"""Post-mortem of a non-deterministic self-test, using the telemetry layer.

A test engineer's debugging session in two acts:

1. **The broken build.**  Core 0 runs its routine *without* the loading
   loop (the ablation `CacheWrapperOptions(loading_loop=False)`): it
   enters the test window with cold caches while core 1, properly
   wrapped, hammers the shared bus next to it.  The determinism auditor
   flags every bus transaction core 0 initiated inside its window —
   with the cycle, transaction kind and address of each offence — and
   the phase-split metrics show the smoking gun: cache fills *inside*
   the execution phase.

2. **The fix.**  The same two routines, both cache-wrapped.  Every fill
   moves into the loading phase, the execution phase runs bus-silent,
   and the auditor passes.

Run it:  PYTHONPATH=src python examples/contention_postmortem.py
"""

from repro import (
    CORE_MODEL_A,
    CORE_MODEL_B,
    RoutineContext,
    Soc,
    cache_wrapped_builder,
    finalise_with_expected,
    make_forwarding_routine,
    placement_address,
)
from repro.core.cache_wrapper import CacheWrapperOptions
from repro.soc import CodeAlignment, CodePosition
from repro.telemetry import PHASE_EXECUTION, TelemetrySession

MODELS = {0: CORE_MODEL_A, 1: CORE_MODEL_B}


def build_program(core_id, options=CacheWrapperOptions()):
    """One core's routine, wrapped with ``options``, golden-finalised."""
    model = MODELS[core_id]
    routine = make_forwarding_routine(model, with_pcs=False)
    ctx = RoutineContext.for_core(core_id, model)
    base = placement_address(CodePosition.LOW, CodeAlignment.QWORD, core_id)

    def build(expected):
        return cache_wrapped_builder(routine, ctx, expected, options)(base)

    program, _ = finalise_with_expected(build, core_id)
    return program


def run_pair(core0_options) -> TelemetrySession:
    """Run core 0 (with ``core0_options``) next to a wrapped core 1."""
    soc = Soc()
    entries = {}
    for core_id in MODELS:
        options = core0_options if core_id == 0 else CacheWrapperOptions()
        program = build_program(core_id, options)
        soc.load(program)
        entries[core_id] = program.base_address
    session = TelemetrySession.attach(soc)
    for core_id, entry in sorted(entries.items()):
        soc.start_core(core_id, entry)
    soc.run()
    return session


def execution_phase_fills(session: TelemetrySession, core_id: int) -> int:
    view = session.metrics.snapshot()
    return sum(
        view.get(core_id, PHASE_EXECUTION, f"{cache}.fills")
        for cache in view.cache_names()
    )


def main() -> None:
    print("=" * 72)
    print("Act 1: core 0 skips the loading loop (cold caches in the window)")
    print("=" * 72)
    broken = run_pair(CacheWrapperOptions(loading_loop=False))
    print(broken.auditor.render(max_lines=6))
    fills = execution_phase_fills(broken, 0)
    print(f"\ncore 0 cache fills during its execution phase: {fills}")
    assert not broken.auditor.passed, "the ablation should fail the audit"
    assert fills > 0, "cold caches must fill inside the window"

    print()
    print("=" * 72)
    print("Act 2: the same pair, core 0 properly cache-wrapped")
    print("=" * 72)
    fixed = run_pair(CacheWrapperOptions())
    print(fixed.auditor.render())
    fills = execution_phase_fills(fixed, 0)
    print(f"\ncore 0 cache fills during its execution phase: {fills}")
    assert fixed.auditor.passed, "the wrapped pair must audit clean"
    assert fills == 0, "a warm window never fills"

    fixed.export_chrome_trace("trace_postmortem.json")
    print(
        "\nwrote trace_postmortem.json - open ui.perfetto.dev and drop it "
        "in to see the loading/execution windows per core."
    )


if __name__ == "__main__":
    main()
