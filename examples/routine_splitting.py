#!/usr/bin/env python3
"""Rule 2.2 in action: splitting a routine that outgrows the I-cache.

The paper: "If the resulting test program is larger than the available
cache size, it must be split into two or more smaller self-test
procedures ... it does not compromise the fault coverage of the
original single-core test procedure."

This example builds an oversized forwarding test (every data pattern on
every path), validates it against a deliberately small 2 KiB
instruction cache, splits it, runs every part cache-wrapped, and shows
that the parts' combined coverage equals the unsplit routine's.
"""

from repro import CORE_MODEL_A, RoutineContext, forwarding_coverage
from repro.core import build_cache_wrapped, split_routine, validate_cache_residency
from repro.cpu.recording import ActivationLog
from repro.mem.cache import CacheConfig
from repro.soc import Soc
from repro.stl.routines.forwarding import (
    forwarding_block_emitters,
    forwarding_setup_emitter,
    make_forwarding_routine,
)
from repro.utils.tables import format_table

SMALL_ICACHE = CacheConfig(name="icache", size_bytes=2 << 10)


def run_wrapped(program):
    soc = Soc()
    soc.load(program)
    soc.start_core(0, program.base_address)
    soc.run(max_cycles=4_000_000)
    return soc.cores[0].log


def main() -> None:
    ctx = RoutineContext.for_core(0, CORE_MODEL_A)
    routine = make_forwarding_routine(
        CORE_MODEL_A, with_pcs=False, patterns_per_path=4
    )
    whole = build_cache_wrapped(routine, 0x1000, ctx)
    report = validate_cache_residency(whole, SMALL_ICACHE)
    print(report.summary())
    assert not report.ok, "expected a rule-2.2 violation on the 2 KiB cache"

    blocks = forwarding_block_emitters(CORE_MODEL_A, patterns_per_path=4)
    parts = split_routine(
        "fwd_small",
        "FWD",
        blocks,
        ctx,
        SMALL_ICACHE,
        setup=forwarding_setup_emitter(CORE_MODEL_A, with_pcs=False),
    )
    rows = []
    combined = ActivationLog()
    for part in parts:
        program = build_cache_wrapped(part, 0x1000, ctx)
        part_report = validate_cache_residency(program, SMALL_ICACHE)
        log = run_wrapped(program)
        combined.forwarding.extend(log.forwarding)
        rows.append(
            (
                part.name,
                program.size_bytes,
                "OK" if part_report.ok else "TOO BIG",
                len(log.forwarded_path_set()),
            )
        )
    print()
    print(
        format_table(
            ("part", "wrapped bytes", "rule 2.2", "paths excited"),
            rows,
            title=f"Split into {len(parts)} cache-sized parts",
        )
    )
    whole_fc = forwarding_coverage(run_wrapped(whole), CORE_MODEL_A)
    parts_fc = forwarding_coverage(combined, CORE_MODEL_A)
    print(
        f"\nfault coverage unsplit: {whole_fc.coverage_percent:.2f}%   "
        f"combined over parts: {parts_fc.coverage_percent:.2f}%"
    )
    assert parts_fc.detected_faults >= whole_fc.detected_faults * 0.999
    print("Splitting preserved the routine's coverage, as the paper requires.")


if __name__ == "__main__":
    main()
