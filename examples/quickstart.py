#!/usr/bin/env python3
"""Quickstart: make a boot-time self-test deterministic on a multi-core SoC.

This walks the full flow of the paper in ~60 lines:

1. generate a single-core SBST routine (the exhaustive forwarding test);
2. wrap it with the cache-based strategy (loading loop + execution loop);
3. derive the golden signature from a fault-free single-core run;
4. run the finalised program on all three cores of the SoC *in
   parallel* and check that every core's self-check passes with a
   bit-identical signature.
"""

from repro import (
    CORE_MODEL_A,
    CORE_MODEL_B,
    CORE_MODEL_C,
    RoutineContext,
    Soc,
    cache_wrapped_builder,
    finalise_with_expected,
    make_forwarding_routine,
    placement_address,
)
from repro.soc import CodeAlignment, CodePosition
from repro.stl.conventions import RESULT_PASS, SIG_REG

MODELS = {0: CORE_MODEL_A, 1: CORE_MODEL_B, 2: CORE_MODEL_C}


def main() -> None:
    soc = Soc()
    entries = {}
    for core_id, model in MODELS.items():
        # 1. The unmodified single-core routine for this processor model.
        routine = make_forwarding_routine(model, with_pcs=False)
        ctx = RoutineContext.for_core(core_id, model)
        base = placement_address(CodePosition.LOW, CodeAlignment.QWORD, core_id)

        # 2 + 3. Wrap it and derive the expected signature from a golden
        # (fault-free, single-core) run of the wrapped program.
        def build(expected, routine=routine, ctx=ctx, base=base):
            return cache_wrapped_builder(routine, ctx, expected)(base)

        program, expected = finalise_with_expected(build, core_id)
        print(
            f"core {model.name}: {routine.name:12s} "
            f"{program.size_bytes:5d} B, expected signature {expected:#010x}"
        )
        soc.load(program)
        entries[core_id] = program.base_address

    # 4. Release all three cores at once: maximum bus contention.
    for core_id, entry in entries.items():
        soc.start_core(core_id, entry)
    cycles = soc.run()
    print(f"\nparallel execution finished in {cycles:,} cycles")

    for core_id, model in MODELS.items():
        core = soc.cores[core_id]
        verdict = core.dtcm.read_word(core.dtcm.base)
        signature = core.regfile.read(SIG_REG)
        status = "PASS" if verdict == RESULT_PASS else "FAIL"
        print(
            f"core {model.name}: self-check {status}, "
            f"signature {signature:#010x}, "
            f"execution-loop I$ hits {core.icache.stats.hits:,}"
        )
    assert all(
        soc.cores[c].dtcm.read_word(soc.cores[c].dtcm.base) == RESULT_PASS
        for c in MODELS
    ), "a self-test failed under contention - determinism broken!"
    print("\nAll cores produced their golden signature despite full bus contention.")


if __name__ == "__main__":
    main()
