#!/usr/bin/env python3
"""The Table III story: an unstable signature means the test self-fails.

The imprecise-interrupt routine reads the ICU's imprecision counter into
its signature.  Because recognition happens a *variable* number of
retired instructions after the trapping instruction, the signature is a
function of the fetch timing:

* single-core, no caches — stable signature (the reference);
* multi-core, no caches  — the signature depends on bus contention, so
  the self-check against the golden value fails in every configuration;
* multi-core, cache-based — stable again, and the coverage is higher
  than the single-core run because the execution loop excites the
  recognition logic without flash-latency gaps.
"""

from repro import (
    CORE_MODEL_A,
    CORE_MODEL_B,
    CORE_MODEL_C,
    RoutineContext,
    cache_wrapped_builder,
    default_scenarios,
    finalise_with_expected,
    icu_coverage,
    make_interrupt_routine,
    run_scenario,
    single_core_scenarios,
)
from repro.soc import CodeAlignment, CodePosition, placement_address
from repro.stl.conventions import RESULT_FAIL, RESULT_PASS
from repro.utils.tables import format_table

MODELS = {0: CORE_MODEL_A, 1: CORE_MODEL_B, 2: CORE_MODEL_C}


def main() -> None:
    contexts = {i: RoutineContext.for_core(i, m) for i, m in MODELS.items()}
    plain_builders = {}
    wrapped_builders = {}
    for core_id, model in MODELS.items():
        routine = make_interrupt_routine(model)
        ctx = contexts[core_id]
        base = placement_address(CodePosition.LOW, CodeAlignment.QWORD, core_id)

        def build_plain(expected, routine=routine, ctx=ctx, base=base):
            return routine.build_single_core(base, ctx, expected)

        _, plain_expected = finalise_with_expected(build_plain, core_id)
        plain_builders[core_id] = (
            lambda addr, routine=routine, ctx=ctx, e=plain_expected:
            routine.build_single_core(addr, ctx, e)
        )

        def build_wrapped(expected, routine=routine, ctx=ctx, base=base):
            return cache_wrapped_builder(routine, ctx, expected)(base)

        _, wrapped_expected = finalise_with_expected(build_wrapped, core_id)
        wrapped_builders[core_id] = cache_wrapped_builder(
            routine, ctx, wrapped_expected
        )

    scenarios = default_scenarios()[::2]
    rows = []
    for core_id, model in MODELS.items():
        single = run_scenario(plain_builders, single_core_scenarios(core_id)[0])
        single_fc = icu_coverage(single.per_core[core_id].log, model)
        multi_plain = [run_scenario(plain_builders, s) for s in scenarios]
        verdicts = [
            r.per_core[core_id].mailbox
            for r in multi_plain
            if core_id in r.per_core
        ]
        fails = sum(1 for v in verdicts if v == RESULT_FAIL)
        multi_wrapped = [run_scenario(wrapped_builders, s) for s in scenarios]
        wrapped_sigs = {
            r.per_core[core_id].signature
            for r in multi_wrapped
            if core_id in r.per_core
        }
        wrapped_fc = max(
            icu_coverage(r.per_core[core_id].log, model).coverage_percent
            for r in multi_wrapped
            if core_id in r.per_core
        )
        wrapped_pass = all(
            r.per_core[core_id].mailbox == RESULT_PASS
            for r in multi_wrapped
            if core_id in r.per_core
        )
        rows.append(
            (
                model.name,
                f"{single_fc.coverage_percent:.2f}",
                f"{fails}/{len(verdicts)}",
                f"{wrapped_fc:.2f}",
                f"{'PASS' if wrapped_pass else 'FAIL'}"
                f" ({len(wrapped_sigs)} sig)",
            )
        )
    print(
        format_table(
            ("core", "ICU FC% single/no-cache", "multi/no-cache FAILs",
             "ICU FC% multi/cached", "multi/cached verdict"),
            rows,
            title="Imprecise-interrupt test across deployment strategies",
        )
    )
    print(
        "\nCore C's one-hot status mapping shows the ~+6% ICU coverage the"
        "\npaper attributes to its ICU implementation (Section IV-D)."
    )


if __name__ == "__main__":
    main()
