#!/usr/bin/env python3
"""Transient-fault resilience, end to end.

The cache-based wrapper makes a routine's signature deterministic under
*benign* interference (bus contention).  This demo shows the stronger
property the supervisor adds on top: recovery from *destructive*
transients.

* A seeded soft error flips one bit of a warm D-cache line exactly
  between the wrapper's loading and execution loops.  The execution
  loop consumes the corrupted line -> signature mismatch.  One
  supervised retry re-enters the loading loop, the wrapper invalidates
  the (clean) corrupt line and re-warms it from untouched SRAM -> the
  golden signature is restored.
* Under a persistent disturbance (every bus response to the core errors
  out), retries cannot help: the supervisor burns its budget and
  quarantines the routine instead of hanging the boot-time session.

Everything is reproducible: rerun with the same --seed and the flip
lands on the same bit, the report is bit-for-bit identical.
"""

import argparse

from repro.core import build_cache_wrapped, finalise_with_expected
from repro.cpu.core import CORE_MODEL_A
from repro.faults import AlwaysGlitch, ExecutionEntryCorruption, SoftErrorInjector
from repro.soc import RoutineSpec, Soc, TestSupervisor
from repro.stl import RoutineContext, TestRoutine
from repro.stl.conventions import DATA_PTR
from repro.stl.signature import emit_signature_update
from repro.utils.tables import format_table

CTX = RoutineContext.for_core(0, CORE_MODEL_A)
ENTRY = 0x1000


def load_chain_routine() -> TestRoutine:
    """Eight loads covering one D-cache line, each folded into the
    signature — the body that makes between-loop corruption visible."""

    def emit_body(asm, ctx):
        for i in range(8):
            asm.lw(1, 4 * i, DATA_PTR)
            emit_signature_update(asm, 1)

    return TestRoutine("ld_chain", "GEN", emit_body)


def fresh_soc(program) -> Soc:
    soc = Soc()
    soc.load(program)
    return soc


def attempt_rows(report):
    rows = []
    for routine in report.routines:
        for record in routine.attempts:
            rows.append(
                (
                    routine.name,
                    record.attempt,
                    record.outcome,
                    f"{record.cycles:,}",
                    "-" if record.signature is None else f"{record.signature:#010x}",
                )
            )
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=2024)
    args = parser.parse_args()

    program, expected = finalise_with_expected(
        lambda e: build_cache_wrapped(load_chain_routine(), ENTRY, CTX, e), 0
    )
    spec = RoutineSpec(
        name="ld_chain",
        core_id=0,
        entry_point=ENTRY,
        mailbox_address=CTX.mailbox_address,
        expected_signature=expected,
    )

    # Scenario 1: one transient bit flip between the loops.
    soc = fresh_soc(program)
    injector = SoftErrorInjector(seed=args.seed)
    soc.fault_hooks.append(ExecutionEntryCorruption(0, injector, which="dcache"))
    supervisor = TestSupervisor(soc, max_retries=2, injector=injector)
    transient = supervisor.run_session([spec])
    flip = injector.log[0]
    print(
        format_table(
            ("routine", "attempt", "outcome", "cycles", "signature"),
            attempt_rows(transient),
            title=(
                f"Transient: bit {flip.bit} of word {flip.word_index} in "
                f"{flip.target} flipped at cycle {flip.cycle} "
                f"(golden {expected:#010x})"
            ),
        )
    )
    print(
        f"\nrecovered: {transient.recovered_names}, "
        f"quarantined: {transient.quarantined_names}\n"
    )

    # Scenario 2: persistent interconnect disturbance -> quarantine.
    soc = fresh_soc(program)
    soc.bus.glitcher = AlwaysGlitch(target_core=0)
    supervisor = TestSupervisor(soc, max_retries=2)
    persistent = supervisor.run_session([spec])
    print(
        format_table(
            ("routine", "attempt", "outcome", "cycles", "signature"),
            attempt_rows(persistent),
            title="Persistent: every bus response to core 0 errors out",
        )
    )
    print(
        f"\nrecovered: {persistent.recovered_names}, "
        f"quarantined: {persistent.quarantined_names}"
    )
    print(
        "\nA transient is repaired by one supervised retry (the loading"
        "\nloop re-warms the caches); a persistent fault exhausts the"
        "\nretry budget and the routine is quarantined with its full"
        "\nattempt history on record."
    )


if __name__ == "__main__":
    main()
