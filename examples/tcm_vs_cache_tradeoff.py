#!/usr/bin/env python3
"""The Table IV story: scratchpad reservation vs. zero-footprint caches.

Deploys the imprecise-interrupt routine twice on core A:

* **TCM-based** — a driver copies the routine image from flash into the
  instruction TCM and jumps into it; the copied bytes stay reserved for
  the lifetime of the application;
* **cache-based** — the routine is wrapped in the loading/execution
  loop and allocated in the I-cache at run time, reserving nothing.

Both verify against their golden signatures; the printout compares the
memory cost, the execution time and where the instruction stream was
served from.
"""

from repro import CORE_MODEL_A, RoutineContext, Soc, make_interrupt_routine
from repro.core import build_tcm_wrapped, cache_wrapped_builder, run_alone
from repro.soc import CodeAlignment, CodePosition, placement_address
from repro.stl.conventions import SIG_REG
from repro.utils.tables import format_table


def main() -> None:
    model = CORE_MODEL_A
    ctx = RoutineContext.for_core(0, model)
    routine = make_interrupt_routine(model)
    base = placement_address(CodePosition.LOW, CodeAlignment.QWORD, 0)

    # TCM-based deployment.
    deployment = build_tcm_wrapped(routine, base, ctx)
    soc = Soc()
    deployment.load(soc, 0)
    soc.start_core(0, deployment.entry_point)
    soc.run()
    tcm_core = soc.cores[0]
    tcm_row = (
        "TCM-based",
        deployment.reserved_tcm_bytes,
        f"{tcm_core.cycles:,}",
        f"{1e6 * tcm_core.cycles / model.frequency_hz:.2f}",
        f"{tcm_core.regfile.read(SIG_REG):#010x}",
    )

    # Cache-based deployment.
    wrapped = cache_wrapped_builder(routine, ctx)(base)
    soc = run_alone(wrapped, 0)
    cache_core = soc.cores[0]
    cache_row = (
        "Cache-based",
        0,
        f"{cache_core.cycles:,}",
        f"{1e6 * cache_core.cycles / model.frequency_hz:.2f}",
        f"{cache_core.regfile.read(SIG_REG):#010x}",
    )

    print(
        format_table(
            ("approach", "reserved memory [B]", "cycles", "at 180 MHz [us]",
             "signature"),
            [tcm_row, cache_row],
            title="TCM-based vs cache-based deployment of the ICU test",
        )
    )
    print(
        f"\nTCM reservation is permanent: {deployment.reserved_tcm_bytes} B of "
        f"{tcm_core.itcm.size} B I-TCM are no longer available to the "
        "application.\nThe cache-based strategy borrows the I-cache only "
        "while the test runs: zero bytes reserved."
    )
    print(
        "\n(Note: both signatures differ because each deployment has its "
        "own instruction\nstream timing; each is checked against its own "
        "golden reference.)"
    )


if __name__ == "__main__":
    main()
