"""Hot-path wall-clock: compiled kernel vs interpreted reference.

Runs the full Section IV-C scenario matrix once, extracts every
(netlist, pattern set, fault list) grading item the campaign would
fault-simulate, and times the serial grading sweep under both engines
— the exact per-fault hot path, with scenario simulation (engine-
independent) excluded.  Records wall-clock, the speedup ratio and a
gate-fault-evaluations/second throughput proxy in
``BENCH_hotpaths.json``, plus 1/2/4-worker compiled campaign runs for
the pool-scaling picture (flagged when oversubscribed, as on a
single-CPU container).

The speedup IS asserted: the compiled kernel exists to make the hot
path at least 3x faster, and equivalence of the detected counts is
checked in the same sweep — a fast-but-wrong kernel fails here before
it fails the differential suite.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time

from repro.core.determinism import default_scenarios, run_scenario
from repro.faults import run_parallel_checkpointed_campaign
from repro.faults.compiled import compiled_for
from repro.faults.generators import get_modules
from repro.faults.observability import (
    forwarding_pattern_sets,
    hdcu_pattern_sets,
    icu_pattern_set,
)
from repro.faults.ppsfp import fault_simulate
from repro.faults.workload import DEFAULT_CAMPAIGN_MODELS, standard_provider
from repro.telemetry.metrics import MetricsCollector
from repro.utils.tables import format_table

MODULES = ("FWD", "HDCU", "ICU")
WORKER_COUNTS = (1, 2, 4)
REPS = 3
MIN_SPEEDUP = 3.0
RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_hotpaths.json"
)


def grading_items():
    """Every (netlist, patterns, faults) item of the scenario matrix."""
    builders = standard_provider()()
    items = []
    for scenario in default_scenarios():
        result = run_scenario(builders, scenario)
        for core_id, model in DEFAULT_CAMPAIGN_MODELS.items():
            if core_id not in result.per_core:
                continue
            log = result.per_core[core_id].log
            modules = get_modules(model)
            fwd = forwarding_pattern_sets(log, modules)
            for port, faults in modules.forwarding_faults.items():
                patterns = fwd.get(port)
                if patterns is not None and patterns.num_patterns:
                    items.append((modules.forwarding[port], patterns, faults))
            hdcu = hdcu_pattern_sets(log, modules)
            for port, faults in modules.hdcu_faults.items():
                patterns = hdcu.get(port)
                if patterns is not None and patterns.num_patterns:
                    items.append((modules.hdcu[port], patterns, faults))
            icu = icu_pattern_set(log, modules)
            if icu.num_patterns:
                items.append((modules.icu, icu, modules.icu_faults))
    return items


def sweep(items, engine):
    """Grade every item serially; wall-clock + total detected."""
    start = time.perf_counter()
    detected = sum(
        fault_simulate(netlist, patterns, faults, engine=engine).detected_faults
        for netlist, patterns, faults in items
    )
    return time.perf_counter() - start, detected


def test_compiled_kernel_speedup(emit):
    metrics = MetricsCollector()
    cpus = os.cpu_count() or 1

    setup_start = time.perf_counter()
    items = grading_items()
    setup_seconds = time.perf_counter() - setup_start
    # The work volume behind the throughput proxy: one gate evaluation
    # per gate per fault is what the interpreted engine's cost model
    # bounds, so gates x faults / second compares engines fairly.
    gate_fault_evals = sum(
        len(netlist.gates) * len(faults) for netlist, _, faults in items
    )

    compile_start = time.perf_counter()
    for netlist, _, _ in items:
        compiled_for(netlist)  # one-time lowering, cached per netlist
    compile_seconds = time.perf_counter() - compile_start

    times = {}
    detected = {}
    for engine in ("interpreted", "compiled"):
        best = float("inf")
        for _ in range(REPS):
            seconds, count = sweep(items, engine)
            best = min(best, seconds)
            detected[engine] = count
        times[engine] = best
        metrics.record_host(f"bench.hotpaths.{engine}.us", int(best * 1e6))
        metrics.record_host(
            f"bench.hotpaths.{engine}.evals_per_s",
            int(gate_fault_evals / best),
        )
    # Fast but wrong is just wrong.
    assert detected["compiled"] == detected["interpreted"]
    speedup = times["interpreted"] / times["compiled"]
    metrics.record_host("bench.hotpaths.speedup_x1000", int(speedup * 1000))

    # Pool scaling of the compiled engine over the same scenario set.
    runs = []
    for workers in WORKER_COUNTS:
        with tempfile.TemporaryDirectory() as tmp:
            start = time.perf_counter()
            run_parallel_checkpointed_campaign(
                standard_provider(),
                default_scenarios(),
                DEFAULT_CAMPAIGN_MODELS,
                tmp,
                modules=MODULES,
                workers=workers,
                engine="compiled",
                metrics=metrics,
            )
            seconds = time.perf_counter() - start
        metrics.record_host(
            f"bench.hotpaths.campaign.w{workers}.us", int(seconds * 1e6)
        )
        runs.append(
            {
                "workers": workers,
                "seconds": round(seconds, 3),
                "oversubscribed": workers > cpus,
            }
        )

    payload = {
        "benchmark": "hotpaths",
        "cpu_count": cpus,
        "grading_items": len(items),
        "gate_fault_evals": gate_fault_evals,
        "setup_seconds": round(setup_seconds, 3),
        "compile_seconds": round(compile_seconds, 3),
        "serial": {
            engine: {
                "seconds": round(seconds, 4),
                "evals_per_second": int(gate_fault_evals / seconds),
                "detected_faults": detected[engine],
            }
            for engine, seconds in times.items()
        },
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
        "compiled_campaign_runs": runs,
        "host_metrics": metrics.snapshot().to_dict().get("host", {}),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        format_table(
            ("engine", "seconds", "evals/s", "speedup"),
            [
                (
                    engine,
                    f"{seconds:.3f}",
                    f"{gate_fault_evals / seconds:,.0f}",
                    f"{times['interpreted'] / seconds:.2f}x",
                )
                for engine, seconds in times.items()
            ],
            title=(
                f"Serial grading of {len(items)} items "
                f"({gate_fault_evals:,} gate-fault evals, best of {REPS}) "
                f"-> {RESULT_PATH.name}"
            ),
        )
    )
    assert speedup >= MIN_SPEEDUP, (
        f"compiled kernel is only {speedup:.2f}x faster than interpreted "
        f"(required: {MIN_SPEEDUP}x); see {RESULT_PATH}"
    )
