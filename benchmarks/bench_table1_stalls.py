"""Table I — multi-core STL execution: stalls due to the memory subsystem.

Paper numbers (average over several executions): IF stalls grow
200,679 -> 717,538 -> 1,878,336 clock cycles and MEM stalls
117,965 -> 305,801 -> 663,386 as 1 -> 2 -> 3 cores run the STL in
parallel.  The reproduced claim is the *shape*: both stall categories
grow super-linearly with the number of active cores, and instruction
fetch dominates ("the major source of stalls is the instruction fetch
unit ... a direct consequence of the higher bus contention").
"""

from repro.analysis import table1_stalls


def test_table1_stalls(benchmark, emit):
    result = benchmark.pedantic(
        table1_stalls, kwargs={"repeat": 4}, rounds=1, iterations=1
    )
    emit(result.render())
    rows = {r.active_cores: r for r in result.rows}
    # Super-linear growth of IF stalls with the active-core count.
    assert rows[2].total_if_stalls > 2 * rows[1].total_if_stalls
    assert rows[3].total_if_stalls > 1.5 * rows[2].total_if_stalls
    # MEM stalls grow too, but fetch dominates, as in the paper.
    assert rows[3].total_mem_stalls > rows[1].total_mem_stalls
    for row in result.rows:
        assert row.total_if_stalls > row.total_mem_stalls
    # The stalls are bus contention: time queued on the shared bus (the
    # bus-side view now carried by the stall reports) grows super-linearly
    # with the active-core count as well.
    assert rows[2].total_bus_wait_cycles > 2 * rows[1].total_bus_wait_cycles
    assert rows[3].total_bus_wait_cycles > 1.5 * rows[2].total_bus_wait_cycles
