"""Extension — instruction-cache size sensitivity of rule 2.2.

The paper notes splitting is "exclusively required if the cache memory
is not large enough, and it does not compromise the fault coverage".
This bench sweeps the I-cache size from 2 KiB to 16 KiB: smaller caches
force the splitter to cut the forwarding routine into more parts, but
the combined coverage of the parts stays identical and every part stays
deterministic under full 3-core contention.
"""

from repro.core import build_cache_wrapped, split_routine
from repro.core.determinism import Scenario, run_scenario
from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_B, CORE_MODEL_C
from repro.cpu.recording import ActivationLog
from repro.faults import forwarding_coverage
from repro.mem.cache import CacheConfig
from repro.soc import CodeAlignment, CodePosition, Soc
from repro.stl import RoutineContext
from repro.stl.routines.forwarding import (
    forwarding_block_emitters,
    forwarding_setup_emitter,
)
from repro.utils.tables import format_table

CTX = RoutineContext.for_core(0, CORE_MODEL_A)
SIZES = (2 << 10, 4 << 10, 8 << 10, 16 << 10)


def _run_part(program):
    """Run one wrapped part on core 0 under 3-core contention."""
    from repro.core import cache_wrapped_builder
    from repro.stl.routines import make_forwarding_routine

    noise_models = {1: CORE_MODEL_B, 2: CORE_MODEL_C}
    soc = Soc()
    soc.load(program)
    for core_id, model in noise_models.items():
        noise = cache_wrapped_builder(
            make_forwarding_routine(model, with_pcs=False),
            RoutineContext.for_core(core_id, model),
        )(0x0008_0000 + core_id * 0x8000)
        soc.load(noise)
        soc.cores[core_id].recording = False
        soc.start_core(core_id, noise.base_address)
    soc.start_core(0, program.base_address)
    soc.run(max_cycles=8_000_000)
    return soc.cores[0].log


def sweep_cache_sizes():
    results = []
    for size in SIZES:
        icache = CacheConfig(name="icache", size_bytes=size)
        blocks = forwarding_block_emitters(CORE_MODEL_A, patterns_per_path=4)
        parts = split_routine(
            "fwd_sweep", "FWD", blocks, CTX, icache,
            setup=forwarding_setup_emitter(CORE_MODEL_A, False),
        )
        combined = ActivationLog()
        max_part_bytes = 0
        for part in parts:
            program = build_cache_wrapped(part, 0x1000, CTX)
            max_part_bytes = max(max_part_bytes, program.size_bytes)
            log = _run_part(program)
            combined.forwarding.extend(log.forwarding)
        coverage = forwarding_coverage(combined, CORE_MODEL_A)
        results.append((size, len(parts), max_part_bytes, coverage))
    return results


def test_cache_size_sensitivity(benchmark, emit):
    results = benchmark.pedantic(sweep_cache_sizes, rounds=1, iterations=1)
    rows = [
        (
            f"{size >> 10} KiB",
            parts,
            largest,
            f"{coverage.coverage_percent:.2f}",
        )
        for size, parts, largest, coverage in results
    ]
    emit(
        format_table(
            ("I-cache", "parts after split", "largest part [B]",
             "combined FC%"),
            rows,
            title="Extension: rule 2.2 across instruction-cache sizes",
        )
    )
    coverages = [c.coverage_percent for _, _, _, c in results]
    # Splitting never costs coverage, whatever the cache size (part
    # seams may add a fraction of a percent of extra boundary patterns).
    assert max(coverages) - min(coverages) < 0.1
    assert min(coverages) >= coverages[-1] - 1e-9
    # Smaller caches need more parts; each part fits its cache.
    part_counts = [parts for _, parts, _, _ in results]
    assert part_counts[0] > part_counts[-1]
    for (size, _, largest, _) in results:
        assert largest <= size
