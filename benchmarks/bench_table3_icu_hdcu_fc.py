"""Table III — ICU and HDCU fault simulation results.

Paper: with the full algorithms (performance counters included for the
HDCU test), the single-core no-cache runs give a stable but *lower*
coverage (ICU 46.4-54.9 %, HDCU 62.5-65.7 %) because the 8-cycle flash
latency cannot excite everything; multi-core *without* caches the
procedures "inevitably failed in any configuration" (unstable
signature); multi-core *with* the cache-based strategy the signature is
stable and the coverage is higher than single-core (ICU 51.0-60.9 %,
HDCU 68.1-70.4 %).  Core C's ICU runs ~10 % above A/B (one-hot status
bits vs. shared mapping).
"""

from repro.analysis import table3_icu_hdcu


def test_table3_icu_hdcu_fc(benchmark, emit):
    result = benchmark.pedantic(table3_icu_hdcu, rounds=1, iterations=1)
    emit(result.render())
    rows = {(r.core, r.module): r for r in result.rows}
    for row in result.rows:
        # Multi-core cached beats single-core no-cache.
        assert row.multicore_cached > row.single_core_no_cache
        # Multi-core *without* caches: the self-check failed everywhere.
        assert row.no_cache_multicore_fail > 0
        assert row.no_cache_multicore_pass == 0
    # Core C's one-hot ICU mapping buys several percent of coverage.
    assert (
        rows[("C", "ICU")].multicore_cached
        > rows[("A", "ICU")].multicore_cached + 2
    )
    assert (
        rows[("C", "ICU")].multicore_cached
        > rows[("B", "ICU")].multicore_cached + 2
    )
