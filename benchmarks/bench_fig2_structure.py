"""Fig. 2 — the cache-based strategy's program structure, audited.

Paper (Fig. 2b + Section III): the multi-core version embeds the
unmodified single-core body in a two-iteration loop after invalidating
the caches; the loading loop moves the code into the I-cache without
performing any signature computation; the execution loop then runs
entirely cache-resident and its signature equals the single-core
reference; and the transformation does not alter the routine's memory
footprint.
"""

from repro.analysis import fig2_structure_audit


def test_fig2_structure(benchmark, emit):
    result = benchmark.pedantic(fig2_structure_audit, rounds=1, iterations=1)
    emit(result.render())
    # All line fills happen in the loading loop; the execution loop is
    # fully cache-resident.
    assert result.loading_loop_fills > 0
    assert result.execution_loop_fills == 0
    # The loading loop's activations never count as observable.
    assert result.loading_loop_observable_records > 0
    assert result.execution_loop_observable_records > 0
    # Deterministic result: the execution loop reproduces the golden
    # single-core signature exactly.
    assert result.signature_matches_single_core
    # Memory footprint: the wrapper costs a few flash words only.
    assert result.wrapped_size_bytes - result.single_size_bytes < 128
