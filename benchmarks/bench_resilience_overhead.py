"""Cost of the resilience layer: supervision, recovery, bus glitches.

Three questions a safety architect asks before enabling the layer:

* what does *supervision itself* cost when nothing goes wrong?
  (answer: zero simulated cycles — the watchdog/judging is host-side);
* what does *recovering* from one transient cost?  (answer: one extra
  routine execution — the failed attempt plus the clean re-run);
* what do sub-percent interconnect glitch rates do to the runtime of a
  cache-wrapped routine?  (answer: single-digit percent — once the
  caches are warm the execution loop does not touch the bus).
"""

from repro.core import build_cache_wrapped, finalise_with_expected
from repro.cpu.core import CORE_MODEL_A
from repro.faults import BusGlitcher, ExecutionEntryCorruption, SoftErrorInjector
from repro.soc import RoutineSpec, Soc
from repro.soc import TestSupervisor as Supervisor
from repro.stl import RoutineContext
from repro.stl import TestRoutine as Routine
from repro.stl.conventions import DATA_PTR, RESULT_PASS
from repro.stl.routines import make_forwarding_routine
from repro.stl.signature import emit_signature_update
from repro.utils.tables import format_table

CTX = RoutineContext.for_core(0, CORE_MODEL_A)
ENTRY = 0x1000
SEED = 2024


def checked(routine):
    return finalise_with_expected(
        lambda e: build_cache_wrapped(routine, ENTRY, CTX, e), 0
    )


def load_chain_routine() -> Routine:
    """Eight loads over one D-cache line, folded into the signature —
    the body on which a between-loop flip is guaranteed observable."""

    def emit_body(asm, ctx):
        for i in range(8):
            asm.lw(1, 4 * i, DATA_PTR)
            emit_signature_update(asm, 1)

    return Routine("ld_chain", "GEN", emit_body)


def fresh(program, glitcher=None) -> Soc:
    soc = Soc()
    soc.load(program)
    soc.bus.glitcher = glitcher
    return soc


def spec(name, expected) -> RoutineSpec:
    return RoutineSpec(
        name=name,
        core_id=0,
        entry_point=ENTRY,
        mailbox_address=CTX.mailbox_address,
        expected_signature=expected,
    )


def bare_cycles(program) -> int:
    soc = fresh(program)
    soc.start_core(0, ENTRY)
    return soc.run(max_cycles=4_000_000)


def test_resilience_overhead(emit):
    fwd_program, fwd_expected = checked(
        make_forwarding_routine(CORE_MODEL_A, with_pcs=False)
    )
    ld_program, ld_expected = checked(load_chain_routine())

    rows = []

    def row(label, cycles, baseline, outcome):
        overhead = 100.0 * (cycles - baseline) / baseline
        rows.append((label, f"{cycles:,}", f"{overhead:+.1f}%", outcome))

    # Supervision is free: same simulated cycles as the bare run.
    fwd_baseline = bare_cycles(fwd_program)
    row("fwd: bare run (baseline)", fwd_baseline, fwd_baseline, "PASS")
    report = Supervisor(fresh(fwd_program)).run_routine(spec("fwd", fwd_expected))
    assert report.passed
    row(
        "fwd: supervised, no faults",
        report.attempts[0].cycles,
        fwd_baseline,
        report.attempts[0].outcome,
    )

    # Glitched interconnect at field-plausible rates (architecturally
    # invisible: the verdict stays PASS throughout).  The whole sweep
    # reuses ONE SoC — the wrapper re-warms the caches from scratch on
    # every entry, so interval measurements come from BusStats/CacheStats
    # snapshot/delta rather than a fresh machine per rate.
    soc = fresh(fwd_program)
    core = soc.cores[0]

    def rerun(glitcher) -> int:
        soc.bus.glitcher = glitcher
        core.dtcm.write_word(CTX.mailbox_address, 0)
        start = soc.cycle
        core.hard_reset(ENTRY)
        soc.run(max_cycles=4_000_000)
        return soc.cycle - start

    rerun(None)  # warm-up: flash buffer state settles before measuring
    warm_before = core.icache.stats.snapshot()
    warm_baseline = rerun(None)
    warm_fills = core.icache.stats.delta(warm_before).fills
    row("fwd: warm re-run (reused SoC)", warm_baseline, warm_baseline, "PASS")
    for delay_rate, error_rate in ((0.01, 0.0), (0.1, 0.0), (0.0, 0.01), (0.1, 0.01)):
        glitcher = BusGlitcher(seed=SEED, delay_rate=delay_rate, error_rate=error_rate)
        bus_before = soc.bus.stats[0].snapshot()
        icache_before = core.icache.stats.snapshot()
        cycles = rerun(glitcher)
        verdict = core.dtcm.read_word(CTX.mailbox_address)
        assert verdict == RESULT_PASS
        bus_interval = soc.bus.stats[0].delta(bus_before)
        # The bus-side interval counters agree with the glitcher's own.
        assert bus_interval.glitch_delay_cycles == glitcher.stats.delay_cycles
        assert bus_interval.error_responses == glitcher.stats.errors_injected
        # Glitches delay the warm-up traffic but never change it: every
        # re-entry fills exactly the same lines.
        assert core.icache.stats.delta(icache_before).fills == warm_fills
        row(
            f"fwd: bus glitches d={delay_rate:.0%} e={error_rate:.0%}",
            cycles,
            warm_baseline,
            "PASS",
        )

    # Recovery cost: the failed attempt plus the clean re-run, measured
    # on a body whose execution loop consumes the corrupted line.
    ld_baseline = bare_cycles(ld_program)
    row("ld_chain: bare run (baseline)", ld_baseline, ld_baseline, "PASS")
    soc = fresh(ld_program)
    injector = SoftErrorInjector(seed=SEED)
    soc.fault_hooks.append(ExecutionEntryCorruption(0, injector))
    report = Supervisor(soc, injector=injector).run_routine(
        spec("ld_chain", ld_expected)
    )
    assert report.recovered and len(report.attempts) == 2
    row(
        "ld_chain: flip + supervised retry",
        sum(a.cycles for a in report.attempts),
        ld_baseline,
        f"{report.attempts[0].outcome} -> {report.attempts[1].outcome}",
    )

    emit(
        format_table(
            ("scenario", "cycles", "vs baseline", "outcome"),
            rows,
            title="Resilience-layer overhead (cache-wrapped routines, core A)",
        )
    )
