"""Wall-clock of the sharded campaign vs its serial path.

Runs the full Section IV-C scenario matrix (18 scenarios, FWD + HDCU +
ICU fault lists) under 1, 2 and 4 workers and records wall-clock plus
the speedup ratios in ``BENCH_parallel_faultsim.json``.  The *hard*
assertion is the engine's contract — every worker count produces
bit-identical coverage.  Speedup itself is recorded, not asserted: this
container may expose a single CPU (``cpu_count`` is in the JSON so the
ratio is interpretable), and on a single core a process pool can only
break even.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time

from repro.core.determinism import default_scenarios
from repro.faults import run_parallel_checkpointed_campaign
from repro.faults.workload import DEFAULT_CAMPAIGN_MODELS, standard_provider
from repro.utils.tables import format_table

MODULES = ("FWD", "HDCU", "ICU")
WORKER_COUNTS = (1, 2, 4)
RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_parallel_faultsim.json"
)


def outcome_dicts(outcomes):
    return {label: outcome.to_dict() for label, outcome in outcomes.items()}


def test_parallel_faultsim_speedup(emit):
    scenarios = default_scenarios()
    cpus = os.cpu_count() or 1
    runs = []
    baseline = None
    for workers in WORKER_COUNTS:
        with tempfile.TemporaryDirectory() as tmp:
            start = time.perf_counter()
            result = run_parallel_checkpointed_campaign(
                standard_provider(),
                scenarios,
                DEFAULT_CAMPAIGN_MODELS,
                tmp,
                modules=MODULES,
                workers=workers,
            )
            seconds = time.perf_counter() - start
        outcomes = outcome_dicts(result.outcomes)
        if baseline is None:
            baseline = outcomes
        # The contract under benchmark: identical coverage, identical
        # signatures, whatever the pool geometry.
        assert outcomes == baseline
        runs.append(
            {
                "workers": workers,
                "shards": result.num_shards,
                "seconds": round(seconds, 3),
                # Flagged (never asserted on): with more workers than
                # host CPUs the pool just time-slices one core, so the
                # speedup ratio for this run measures overhead, not
                # scaling.
                "oversubscribed": workers > cpus,
            }
        )

    serial_seconds = runs[0]["seconds"]
    speedups = {
        run["workers"]: round(serial_seconds / run["seconds"], 3)
        for run in runs
    }
    payload = {
        "benchmark": "parallel_faultsim",
        "cpu_count": cpus,
        "scenarios": len(scenarios),
        "modules": list(MODULES),
        "runs": runs,
        "speedup_at_2": speedups.get(2),
        "speedup_at_4": speedups.get(4),
        "equivalent": True,
    }
    if any(run["oversubscribed"] for run in runs):
        payload["note"] = (
            f"host exposes {cpus} CPU(s); worker counts above that are "
            "oversubscribed and their speedup ratios measure pool "
            "overhead, not scaling"
        )
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        format_table(
            ("workers", "shards", "seconds", "speedup"),
            [
                (
                    str(run["workers"]),
                    str(run["shards"]),
                    f"{run['seconds']:.2f}",
                    f"{serial_seconds / run['seconds']:.2f}x"
                    + (" (oversub)" if run["oversubscribed"] else ""),
                )
                for run in runs
            ],
            title=(
                f"Sharded campaign: {len(scenarios)} scenarios x "
                f"{len(MODULES)} modules on {os.cpu_count()} CPU(s) "
                f"-> {RESULT_PATH.name}"
            ),
        )
    )
