"""Table II — forwarding-logic fault simulation (PCs removed).

Paper: across 18 multi-core scenarios without caches the fault coverage
oscillates (A: 64.14-75.19 %, B: 63.61-79.59 %, C: 56.24-66.48 % — up to
~16 % swing) even though the signature never changes; the cache-based
version is stable and higher (79.61 / 82.08 / 68.79 %).  Reproduced
shape: per-core FC oscillates without caches, is bit-stable and strictly
higher with the wrapper, and core C sits lowest (32-bit signature
masking its 64-bit datapath).
"""

from repro.analysis import table2_forwarding


def test_table2_forwarding_fc(benchmark, emit):
    result = benchmark.pedantic(table2_forwarding, rounds=1, iterations=1)
    emit(result.render())
    by_core = {row.core: row for row in result.rows}
    for row in result.rows:
        # Cache-based execution: deterministic FC, above every no-cache run.
        assert row.cached.stable
        assert row.cached.minimum_percent > row.no_cache.maximum_percent
    # FC genuinely oscillates without caches on at least two cores.
    oscillating = sum(1 for row in result.rows if row.no_cache.spread > 0.05)
    assert oscillating >= 2
    # Core C pays the 32-bit-signature masking penalty.
    assert by_core["C"].cached.minimum_percent < by_core["A"].cached.minimum_percent
    assert by_core["C"].cached.minimum_percent < by_core["B"].cached.minimum_percent
    # Physical-design variation: A and B have different fault lists.
    assert by_core["A"].num_faults != by_core["B"].num_faults
