"""Ablations of the methodology's design choices (DESIGN.md section 6).

Each ablation removes one rule of Section III and measures what breaks:

* **no loading loop** — the "execution" pass runs on a cold cache, so
  fetch gaps reappear inside the observable window and the fault
  coverage drops below the full wrapper's (and may oscillate again);
* **no invalidation** — the routine's timing depends on whatever the
  caches held before it started: back-to-back invocations of the same
  test no longer take the same number of cycles;
* **no dummy loads under no-write-allocate** — the execution loop keeps
  missing on its stores, so it is no longer isolated from the bus.
"""

from repro.core import CacheWrapperOptions, build_cache_wrapped, cache_wrapped_builder
from repro.core.determinism import default_scenarios, run_scenario
from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_B, CORE_MODEL_C
from repro.faults import coverage_range, forwarding_coverage
from repro.soc import Soc
from repro.stl import RoutineContext
from repro.stl.routine import TestRoutine
from repro.stl.conventions import DATA_PTR
from repro.stl.routines import make_forwarding_routine
from repro.stl.signature import emit_signature_update
from repro.utils.tables import format_table

MODELS = {0: CORE_MODEL_A, 1: CORE_MODEL_B, 2: CORE_MODEL_C}


def _loading_loop_ablation():
    ctxs = {i: RoutineContext.for_core(i, m) for i, m in MODELS.items()}
    scenarios = default_scenarios()[::4]
    outcomes = {}
    for label, options in (
        ("full wrapper", CacheWrapperOptions()),
        ("no loading loop", CacheWrapperOptions(loading_loop=False)),
    ):
        builders = {
            i: cache_wrapped_builder(
                make_forwarding_routine(m, with_pcs=False), ctxs[i], options=options
            )
            for i, m in MODELS.items()
        }
        results = [run_scenario(builders, s) for s in scenarios]
        coverages = [
            forwarding_coverage(r.per_core[0].log, CORE_MODEL_A) for r in results
        ]
        outcomes[label] = coverage_range(coverages)
    return outcomes


def _pollutant_program():
    """Dirty every D-cache set, like an application that ran before the
    boot-time test."""
    from repro.stl.packets import PhasedBuilder

    asm = PhasedBuilder(0x0002_0000, "pollutant")
    asm.li(2, 0x2008_0000)
    asm.li(3, 160)  # lines to dirty (> 128 sets x ways)
    asm.li(4, 0x5117)
    asm.label("dirty")
    asm.sw(4, 0, 2)
    asm.addi(2, 2, 32)
    asm.addi(3, 3, -1)
    asm.bne(3, 0, "dirty")
    asm.halt()
    return asm.build()


def _invalidate_ablation():
    """Run the wrapped routine on a cold SoC and after a D-cache-dirtying
    application; only invalidation makes the two runs identical."""
    routine = _store_heavy_routine()
    ctx = RoutineContext.for_core(0, CORE_MODEL_A)
    outcomes = {}
    for label, options in (
        ("with invalidation", CacheWrapperOptions()),
        ("no invalidation", CacheWrapperOptions(invalidate=False)),
    ):
        program = build_cache_wrapped(routine, 0x1000, ctx, options=options)
        runs = []
        for polluted in (False, True):
            soc = Soc()
            soc.load(program)
            core = soc.cores[0]
            # Pre-enable the D-cache so the pollutant really dirties it.
            core.memunit.dcache_enabled = True
            if polluted:
                soc.load(_pollutant_program())
                soc.start_core(0, 0x0002_0000)
                soc.run(max_cycles=2_000_000)
            start_cycles = core.cycles
            start_writebacks = core.dcache.stats.writebacks
            soc.start_core(0, 0x1000)
            soc.run(max_cycles=2_000_000)
            runs.append(
                (
                    core.cycles - start_cycles,
                    core.dcache.stats.writebacks - start_writebacks,
                )
            )
        outcomes[label] = runs
    return outcomes


def _store_heavy_routine():
    def emit_body(asm, ctx):
        for i in range(8):
            asm.li(1, 0x2000 + i)
            asm.sw(1, 32 * i, DATA_PTR)
            emit_signature_update(asm, 1)

    return TestRoutine("store_heavy", "GEN", emit_body)


def _dummy_load_ablation():
    ctx = RoutineContext.for_core(0, CORE_MODEL_A)
    outcomes = {}
    for label, options in (
        ("NWA + dummy loads", CacheWrapperOptions(write_allocate=False)),
        (
            "NWA, no dummy loads",
            CacheWrapperOptions(write_allocate=False, dummy_loads=False),
        ),
    ):
        program = build_cache_wrapped(
            _store_heavy_routine(), 0x1000, ctx, options=options
        )
        soc = Soc()
        soc.load(program)
        core = soc.cores[0]
        soc.start_core(0, 0x1000)
        at_execution = None
        for _ in range(2_000_000):
            soc.step()
            if at_execution is None and core.testwin & 1:
                at_execution = core.dcache.stats.write_miss_bypasses
            if core.done:
                break
        outcomes[label] = core.dcache.stats.write_miss_bypasses - (at_execution or 0)
    return outcomes


def run_all_ablations():
    return _loading_loop_ablation(), _invalidate_ablation(), _dummy_load_ablation()


def test_ablations(benchmark, emit):
    loading, invalidation, dummy = benchmark.pedantic(
        run_all_ablations, rounds=1, iterations=1
    )
    rows = []
    for label, fc in loading.items():
        rows.append(
            ("loading loop", label,
             f"FC {fc.minimum_percent:.2f}-{fc.maximum_percent:.2f}%")
        )
    for label, runs in invalidation.items():
        (cold_cycles, cold_wb), (dirty_cycles, dirty_wb) = runs
        rows.append(
            ("invalidation", label,
             f"cold {cold_cycles:,} cyc / {cold_wb} wb; "
             f"after dirty app {dirty_cycles:,} cyc / {dirty_wb} wb")
        )
    for label, bypasses in dummy.items():
        rows.append(
            ("dummy loads", label, f"execution-loop write misses: {bypasses}")
        )
    emit(format_table(("rule", "variant", "observed"), rows,
                      title="Ablations of the Section III rules"))
    # No loading loop: coverage drops below the full wrapper's floor.
    assert (
        loading["no loading loop"].maximum_percent
        < loading["full wrapper"].minimum_percent
    )
    # Full wrapper: deterministic; both claims from Table II hold.
    assert loading["full wrapper"].stable
    # Invalidation isolates the test from the previous application's
    # cache state: identical timing and no inherited write-backs.  The
    # ablated wrapper inherits dirty victims and loses reproducibility.
    (cold, dirty) = invalidation["with invalidation"]
    assert cold == dirty
    assert dirty[1] == 0
    (cold_ab, dirty_ab) = invalidation["no invalidation"]
    assert dirty_ab[1] > 0
    assert dirty_ab != cold_ab
    # Dummy loads keep the execution loop's stores off the bus.
    assert dummy["NWA + dummy loads"] == 0
    assert dummy["NWA, no dummy loads"] > 0
