"""Supervision overhead of the campaign orchestrator.

Runs the same small campaign three ways — plain parallel engine,
supervised with no chaos, and supervised with a transient failure on
one shard — and records wall-clock plus the supervised/plain ratio in
``BENCH_orchestrator.json``.  The *hard* assertions are the
orchestrator's contract: bit-identical outcomes across all three runs
and a clean quarantine roster.  The overhead ratio itself is recorded,
not asserted: on a single-CPU container the dominant cost is the
campaign, and supervision should be noise — the JSON is how a
regression (e.g. the poll loop busy-waiting) becomes visible.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time

from repro.core.determinism import default_scenarios
from repro.faults import (
    ChaosPolicy,
    RetryPolicy,
    ShardChaos,
    run_parallel_checkpointed_campaign,
)
from repro.faults.workload import DEFAULT_CAMPAIGN_MODELS, small_provider
from repro.utils.tables import format_table

RESULT_PATH = pathlib.Path(__file__).resolve().parent.parent / (
    "BENCH_orchestrator.json"
)
WORKERS = 2
NUM_SHARDS = 4


def outcome_dicts(outcomes):
    return {label: outcome.to_dict() for label, outcome in outcomes.items()}


def _timed_run(**kwargs):
    scenarios = default_scenarios()
    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        result = run_parallel_checkpointed_campaign(
            small_provider(),
            scenarios,
            DEFAULT_CAMPAIGN_MODELS,
            tmp,
            modules=("FWD",),
            workers=WORKERS,
            num_shards=NUM_SHARDS,
            **kwargs,
        )
        seconds = time.perf_counter() - start
    return result, seconds


def test_orchestrator_overhead(emit):
    policy = RetryPolicy(max_retries=2, backoff_base=0.01, seed=1)
    chaos = ChaosPolicy({0: ShardChaos(kind="transient", failures=1)})

    plain, plain_s = _timed_run()
    supervised, supervised_s = _timed_run(policy=policy)
    chaotic, chaotic_s = _timed_run(policy=policy, chaos=chaos)

    baseline = outcome_dicts(plain.outcomes)
    assert outcome_dicts(supervised.outcomes) == baseline
    assert outcome_dicts(chaotic.outcomes) == baseline
    assert supervised.quarantined_shards == ()
    assert chaotic.quarantined_shards == ()
    assert any(a.status != "ok" for a in chaotic.report.attempts)

    rows = [
        ("plain", plain_s, None),
        ("supervised", supervised_s, len(supervised.report.attempts)),
        ("supervised+chaos", chaotic_s, len(chaotic.report.attempts)),
    ]
    payload = {
        "benchmark": "orchestrator_overhead",
        "cpu_count": os.cpu_count() or 1,
        "workers": WORKERS,
        "num_shards": NUM_SHARDS,
        "runs": [
            {
                "mode": mode,
                "seconds": round(seconds, 3),
                "shard_attempts": attempts,
            }
            for mode, seconds, attempts in rows
        ],
        "supervision_overhead_ratio": round(supervised_s / plain_s, 3),
        "chaos_recovery_ratio": round(chaotic_s / plain_s, 3),
        "equivalent": True,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    emit(
        format_table(
            ("mode", "seconds", "vs plain", "attempts"),
            [
                (
                    mode,
                    f"{seconds:.2f}",
                    f"{seconds / plain_s:.2f}x",
                    "-" if attempts is None else str(attempts),
                )
                for mode, seconds, attempts in rows
            ],
            title=(
                f"Orchestrator overhead: {NUM_SHARDS} shards, "
                f"{WORKERS} workers on {os.cpu_count()} CPU(s) "
                f"-> {RESULT_PATH.name}"
            ),
        )
    )
