"""Benchmark support: un-captured report printing + result archiving."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit(capsys, request):
    """Print a rendered experiment table through the capture barrier and
    archive it under ``benchmarks/results/``."""

    def _emit(text: str) -> None:
        with capsys.disabled():
            print(f"\n{text}\n")
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{request.node.name}.txt"
        path.write_text(text + "\n")

    return _emit
