"""Table IV — TCM-based versus cache-based execution strategy.

Paper: for the imprecise-interrupt routine, the TCM strategy reserves
2,874 bytes of I-TCM forever and runs in 16,463 cycles; the cache-based
strategy reserves **zero** bytes and runs in 18,043 cycles (~1,580
cycles / 8.25 us at 180 MHz slower).  The reproduced claim is the
memory-overhead trade-off: TCM permanently sacrifices scratchpad
proportional to the routine size while the cache-based strategy has no
memory footprint at all.

Honest divergence: in this repository's memory model the cache-based
variant is also *faster*, because the I-cache fills stream whole flash
lines per array access while the TCM copy loop pays a bus transaction
per word.  On the paper's silicon the copy was cheaper than the extra
loading-loop execution, giving TCM a ~9 % speed edge; the trade-off
direction on the time axis is therefore memory-system-dependent (see
EXPERIMENTS.md).
"""

from repro.analysis import table4_tcm_vs_cache


def test_table4_tcm_vs_cache(benchmark, emit):
    result = benchmark.pedantic(table4_tcm_vs_cache, rounds=1, iterations=1)
    emit(result.render())
    rows = {r.approach: r for r in result.rows}
    # The paper's headline: zero memory overhead for the cache strategy,
    # a routine-sized permanent TCM reservation for the alternative.
    assert rows["Cache-based"].memory_overhead_bytes == 0
    assert rows["TCM-based"].memory_overhead_bytes >= 2000
    # Both complete in the same order of magnitude of cycles.
    ratio = rows["TCM-based"].execution_cycles / rows["Cache-based"].execution_cycles
    assert 0.05 < ratio < 20
