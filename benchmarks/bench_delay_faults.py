"""Extension — delay faults (the paper's future-work conjecture).

The paper's conclusion: "While considering stuck-at faults, few specific
test programs exhibit these issues in a multi-core execution.  Instead,
it might be further emphasized with delay faults which require test
patterns applied in a timed sequence."

This bench implements that experiment: transition-delay faults on the
forwarding logic are graded against *temporally ordered* activation
patterns, where detection needs a launch transition and its capture on
consecutive applied vectors.  Multi-core fetch gaps break exactly those
adjacencies, so the relative coverage loss without caches must be
larger for transition faults than for stuck-at faults — and the
cache-based strategy must restore a stable figure.
"""

from repro.core import cache_wrapped_builder
from repro.core.determinism import default_scenarios, run_scenario
from repro.cpu.core import CORE_MODEL_A, CORE_MODEL_B, CORE_MODEL_C
from repro.faults import (
    coverage_range,
    forwarding_coverage,
    forwarding_transition_coverage,
)
from repro.stl import RoutineContext
from repro.stl.routines import make_forwarding_routine
from repro.utils.tables import format_table

MODELS = {0: CORE_MODEL_A, 1: CORE_MODEL_B, 2: CORE_MODEL_C}


def run_delay_fault_experiment():
    contexts = {i: RoutineContext.for_core(i, m) for i, m in MODELS.items()}
    plain = {
        i: make_forwarding_routine(m, with_pcs=False).builder_for(contexts[i])
        for i, m in MODELS.items()
    }
    wrapped = {
        i: cache_wrapped_builder(
            make_forwarding_routine(m, with_pcs=False), contexts[i]
        )
        for i, m in MODELS.items()
    }
    scenarios = default_scenarios()[::2]
    plain_results = [run_scenario(plain, s) for s in scenarios]
    wrapped_results = [run_scenario(wrapped, s) for s in scenarios]
    outcome = {}
    for core_id, model in MODELS.items():
        stuck_plain = coverage_range(
            [
                forwarding_coverage(r.per_core[core_id].log, model)
                for r in plain_results
                if core_id in r.per_core
            ]
        )
        stuck_cached = coverage_range(
            [
                forwarding_coverage(r.per_core[core_id].log, model)
                for r in wrapped_results
                if core_id in r.per_core
            ]
        )
        tdf_plain = coverage_range(
            [
                forwarding_transition_coverage(r.per_core[core_id].log, model)
                for r in plain_results
                if core_id in r.per_core
            ]
        )
        tdf_cached = coverage_range(
            [
                forwarding_transition_coverage(r.per_core[core_id].log, model)
                for r in wrapped_results
                if core_id in r.per_core
            ]
        )
        outcome[model.name] = (stuck_plain, stuck_cached, tdf_plain, tdf_cached)
    return outcome


def test_delay_faults(benchmark, emit):
    outcome = benchmark.pedantic(run_delay_fault_experiment, rounds=1, iterations=1)
    rows = []
    for core, (sa_p, sa_c, tdf_p, tdf_c) in outcome.items():
        rows.append(
            (
                core,
                f"{sa_p.minimum_percent:.2f}-{sa_p.maximum_percent:.2f}",
                f"{sa_c.minimum_percent:.2f}",
                f"{tdf_p.minimum_percent:.2f}-{tdf_p.maximum_percent:.2f}",
                f"{tdf_c.minimum_percent:.2f}",
            )
        )
    emit(
        format_table(
            ("core", "stuck-at no-cache", "stuck-at cached",
             "transition no-cache", "transition cached"),
            rows,
            title="Extension: stuck-at vs transition-delay coverage "
                  "(forwarding logic)",
        )
    )
    for core, (sa_p, sa_c, tdf_p, tdf_c) in outcome.items():
        # Cache-based: stable for both fault models.
        assert sa_c.stable and tdf_c.stable
        # The multi-core loss, relative to the cached reference, is
        # larger for delay faults — the paper's conjecture.
        sa_loss = 1 - sa_p.maximum_percent / sa_c.minimum_percent
        tdf_loss = 1 - tdf_p.maximum_percent / tdf_c.minimum_percent
        assert tdf_loss > sa_loss, core
