"""Fig. 1 — forwarding path (a) vs. broken forwarding path (b).

Paper: the same two dependent ``add`` instructions exercise the EX->EX
forwarding path when fetched without stalls (Fig. 1a); under multi-core
bus contention the consumer enters the pipeline several cycles later
and reads R7 from the register file instead, leaving the forwarding
path unexercised and adding extra stalls to the performance counters
(Fig. 1b, "+3 additional stalls").
"""

from repro.analysis import fig1_pipeline_traces


def test_fig1_pipeline_trace(benchmark, emit):
    result = benchmark.pedantic(fig1_pipeline_traces, rounds=1, iterations=1)
    emit(result.render())
    # Fig. 1a: the consumer receives its operand over EX->EX.
    assert "fwd: EX0" in result.single_core_diagram
    # Fig. 1b: the consumer's line carries no forwarding annotation.
    consumer_line = next(
        line for line in result.contended_diagram.splitlines()
        if line.startswith("add r9")
    )
    assert "fwd" not in consumer_line
    # The performance counters see the additional stalls.
    assert result.contended_stalls > result.single_core_stalls
